"""Section 6.3: validation against reported platform ARPU.

Paper: the 25th-75th percentile user (8-102 CPM observed on mobile
HTTP) extrapolates to $0.54-6.85 of annual advertiser value, the same
order of magnitude as Twitter's reported $7-8 and Facebook's $14-17
ARPU for 2015-2016.
"""

from repro.core.cost import CostDistribution
from repro.core.validation import REPORTED_ARPU, MarketFactors, validate_arpu

from .conftest import emit


def test_sec63_arpu_validation(benchmark, user_costs):
    dist = CostDistribution.from_costs(user_costs)

    validation = benchmark(validate_arpu, dist.total)
    factors = MarketFactors()

    lines = ["Regenerated section 6.3 (ARPU extrapolation):", ""]
    lines.append(
        f"observed annual cost, 25th-75th percentile: "
        f"{validation.observed_p25_cpm:.1f}-{validation.observed_p75_cpm:.1f} CPM "
        "(paper: 8-102)"
    )
    lines.append(f"extrapolation multiplier: {validation.multiplier:.1f}x, from:")
    lines.append(f"  observed share of mobile usage: {factors.observed_fraction_of_mobile:.0%}")
    lines.append(f"  mobile share of internet time:  {factors.mobile_fraction_of_internet:.0%}")
    lines.append(f"  HTTP (observable) share:        {factors.http_fraction:.0%}")
    lines.append(f"  RTB overhead:                   {factors.rtb_overhead:.0%}")
    lines.append(f"  RTB share of online advertising:{factors.rtb_fraction_of_advertising:.0%}")
    lines.append(
        f"extrapolated annual user value: "
        f"${validation.extrapolated_low_usd:.2f}-"
        f"${validation.extrapolated_high_usd:.2f} (paper: $0.54-6.85)"
    )
    for platform, (low, high) in REPORTED_ARPU.items():
        lines.append(f"reported ARPU, {platform}: ${low:.0f}-{high:.0f}")

    assert validation.observed_p25_cpm < validation.observed_p75_cpm
    assert validation.agrees_with_market()
    # Order of magnitude: dollars, not cents or hundreds.
    assert 0.05 < validation.extrapolated_low_usd < 30
    assert 0.5 < validation.extrapolated_high_usd < 100
    emit("sec63_arpu_validation", lines)
