"""Figure 17: CDF of cumulative per-user annual ad cost.

Paper findings: median user ~25 CPM/year; ~73% of users below 100 CPM;
~2% of users cost 1000-10000 CPM; the estimated encrypted prices add
~55% on top of cleartext for about 60% of users (median uplift
~14.3 CPM).
"""

import numpy as np

from repro.core.cost import CostDistribution
from repro.stats.textplot import cdf_plot

from .conftest import bench_scale, emit


def test_fig17_user_cost_cdf(benchmark, user_costs):
    dist = benchmark(CostDistribution.from_costs, user_costs)

    lines = ["Regenerated Figure 17 (cumulative CPM paid per user, one year):", ""]
    lines.append(f"{'series':<24} {'p25':>8} {'p50':>8} {'p75':>8} {'p95':>9} {'max':>10}")
    for name, values in (
        ("cleartext", dist.cleartext),
        ("cleartext (time corr.)", dist.cleartext_corrected),
        ("est. encrypted", dist.encrypted),
        ("total", dist.total),
    ):
        p25, p50, p75, p95 = np.percentile(values, [25, 50, 75, 95])
        lines.append(
            f"{name:<24} {p25:>8.1f} {p50:>8.1f} {p75:>8.1f} {p95:>9.1f} "
            f"{values.max():>10.1f}"
        )

    median = dist.median_total()
    below_100 = dist.fraction_below(100.0)
    extreme = dist.fraction_in(1000.0, 10_000.0)
    uplifts = dist.encrypted[dist.cleartext_corrected > 0] / dist.cleartext_corrected[
        dist.cleartext_corrected > 0
    ]
    uplifted_users = float(np.mean(dist.encrypted > 0))
    lines.append("")
    lines.append(f"median user cost: {median:.1f} CPM (paper ~25)")
    lines.append(f"users below 100 CPM: {below_100:.1%} (paper ~73%)")
    lines.append(f"users in 1000-10000 CPM: {extreme:.2%} (paper ~2%)")
    lines.append(
        f"users with encrypted add-on: {uplifted_users:.0%}; mean uplift "
        f"{float(np.mean(uplifts)):.0%} of cleartext (paper: ~55% for ~60% of users)"
    )

    # Shape assertions: band checks around the paper's values.
    assert 8 < median < 80
    assert 0.55 < below_100 < 0.92
    if bench_scale() >= 0.5:
        assert 0.002 < extreme < 0.08
    assert dist.total.max() > 20 * median          # heavy tail exists
    assert uplifted_users > 0.4
    assert float(np.mean(uplifts)) > 0.15

    lines.append("")
    lines.extend(cdf_plot(
        {
            "cleartext": dist.cleartext[dist.cleartext > 0],
            "corrected": dist.cleartext_corrected[dist.cleartext_corrected > 0],
            "encrypted": dist.encrypted[dist.encrypted > 0],
            "total": dist.total[dist.total > 0],
        },
        width=64,
        height=12,
    ))
    emit("fig17_user_cost_cdf", lines)
