"""Ablation: the time-correction coefficient (paper section 6.2).

The paper scales 2015 cleartext sums by the A2-vs-D median ratio to
account for the 2015->2016 price drift.  This ablation quantifies how
much user cost the correction adds, and validates the coefficient
against the simulator's known monthly drift.
"""

import numpy as np

from repro.core.cost import compute_user_costs
from repro.trace.pricing import MONTHLY_DRIFT

from .conftest import emit


def test_ablation_time_correction(benchmark, analysis, price_model, time_correction):
    def evaluate():
        with_correction = compute_user_costs(analysis, price_model, time_correction)
        without = compute_user_costs(analysis, price_model, 1.0)
        return with_correction, without

    corrected, uncorrected = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    total_with = sum(c.total_cpm for c in corrected.values())
    total_without = sum(c.total_cpm for c in uncorrected.values())

    # Expected drift: D is centred mid-2015 (~month 5.5 of drift),
    # A2 runs in June 2016 (month 17); the multiplicative model gives
    # (1 + 17d) / (1 + 5.5d) at d = MONTHLY_DRIFT per month.
    expected = (1 + 17 * MONTHLY_DRIFT) / (1 + 5.5 * MONTHLY_DRIFT)

    lines = ["Ablation: time-correction coefficient:", ""]
    lines.append(f"measured coefficient (A2 median / D-MoPub median): {time_correction:.3f}")
    lines.append(f"expected from the simulator's drift model:         {expected:.3f}")
    lines.append(f"total population cost with correction:    {total_with:,.0f} CPM")
    lines.append(f"total population cost without correction: {total_without:,.0f} CPM")
    lines.append(
        f"correction adds {total_with / total_without - 1:+.1%} to total user cost"
    )
    lines.append("Paper: cleartext sums are scaled up to campaign-time prices.")

    assert time_correction > 1.0
    assert abs(time_correction - expected) / expected < 0.25
    assert total_with > total_without
    emit("ablation_time_correction", lines)
