"""Ablation: dimensionality-reduction technique (paper section 5.1).

Compares the paper's grouped Random-Forest selection against the two
alternatives it names: PCA (rejected for losing interpretability) and
the target-free high-correlation filter (the fallback when cleartext
prices are scarce).  Also verifies the accuracy loss from reducing the
feature set stays within the paper's tolerance (<2% precision, <6%
recall).
"""

import numpy as np

from repro.core.binning import fit_price_binner
from repro.core.feature_selection import DimensionalityReducer
from repro.ml.forest import RandomForestClassifier
from repro.ml.model_selection import cross_validate_classifier
from repro.ml.pca import PCA
from repro.ml.preprocessing import CorrelationFilter, FrameEncoder, Standardizer

from .conftest import emit

MAX_ROWS = 4000


def test_ablation_feature_selection(benchmark, analysis):
    observations = [
        (analysis.extractor.full_vector(det), obs.price_cpm)
        for det, obs in zip(analysis.notifications, analysis.observations)
        if not obs.is_encrypted and obs.price_cpm and obs.price_cpm > 0
    ][:MAX_ROWS]
    rows = [r for r, _ in observations]
    prices = [p for _, p in observations]

    def evaluate():
        # Grouped-RF selection (the paper's choice).
        reducer = DimensionalityReducer(
            n_folds=3, n_estimators=12, max_depth=10, max_rows=MAX_ROWS, seed=61
        )
        report = reducer.fit(rows, prices)

        # Common encoding for the alternatives.
        names = sorted({k for row in rows for k in row if k != "publisher"})
        encoder = FrameEncoder(names)
        x = encoder.fit_transform(rows)
        binner = fit_price_binner(prices, n_classes=4)
        y = binner.assign(prices)
        k = max(3, len(report.selected_features))

        def forest():
            return RandomForestClassifier(n_estimators=12, max_depth=10, seed=61)

        # PCA to the same dimensionality.
        z = PCA(n_components=k).fit_transform(Standardizer().fit_transform(x))
        pca_cv = cross_validate_classifier(forest, z, y, n_folds=3, seed=61)

        # Correlation filter (unsupervised).
        filtered = CorrelationFilter(threshold=0.9).fit_transform(x)
        corr_cv = cross_validate_classifier(forest, filtered, y, n_folds=3, seed=61)
        return report, pca_cv, corr_cv, filtered.shape[1]

    report, pca_cv, corr_cv, corr_kept = benchmark.pedantic(
        evaluate, rounds=1, iterations=1
    )

    lines = ["Ablation: dimensionality-reduction technique:", ""]
    lines.append(f"{'technique':<22} {'features':>9} {'accuracy':>9}")
    lines.append(
        f"{'all features':<22} {report.n_features_after_filters:>9} "
        f"{report.baseline_accuracy:>8.1%}"
    )
    lines.append(
        f"{'grouped-RF selection':<22} {len(report.selected_features):>9} "
        f"{report.selected_accuracy:>8.1%}"
    )
    lines.append(
        f"{'PCA':<22} {len(report.selected_features):>9} {pca_cv.accuracy:>8.1%}"
    )
    lines.append(f"{'correlation filter':<22} {corr_kept:>9} {corr_cv.accuracy:>8.1%}")
    lines.append("")
    lines.append(f"selected features: {', '.join(report.selected_features)}")
    lines.append(
        f"precision loss {report.precision_loss:+.1%} (paper < 2%), "
        f"recall loss {report.recall_loss:+.1%} (paper < 6%)"
    )
    lines.append("Paper: RF selection keeps interpretable features at minimal loss;")
    lines.append("PCA loses interpretability; the correlation filter needs no target.")

    # Shape: the selected subset stays within tolerance of the full set.
    assert report.selected_accuracy >= report.baseline_accuracy - 0.06
    # RF-selected interpretable features do at least as well as PCA at
    # equal dimensionality (they also remain human-readable).
    assert report.selected_accuracy >= pca_cv.accuracy - 0.03
    emit("ablation_feature_selection", lines)
