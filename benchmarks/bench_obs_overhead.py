"""No-op overhead guard for the observability spine.

The cardinal rule of ``repro.obs`` is that *disabled* observability is
(nearly) free: with no active trace and profiling off, every
``obs.span`` / ``obs.stage`` call in the hot paths must collapse to one
ContextVar read and a None check.  This benchmark measures that cost on
the two tier-1 hot paths the spine instruments most densely:

* the sequential analyzer scan (``WeblogAnalyzer.analyze``), whose
  per-row work is small enough that any per-call overhead shows; and
* flattened forest inference (``predict_proba`` over a trained forest),
  the serve layer's per-request critical path.

For each path it times the *instrumented* disabled-mode code against a
"stripped" twin that bypasses the obs entry points entirely (the
pre-instrumentation shape of the code), and asserts the overhead stays
under the 3% budget.  One JSON record (with the shared
``_record.provenance()`` fields) lands in
``benchmarks/output/bench_obs_overhead.json`` so the trajectory is
comparable across PRs.

Entry points::

    pytest benchmarks/bench_obs_overhead.py -s
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py \
        --json benchmarks/output/bench_obs_overhead.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

try:  # package import under pytest, sibling import as a script
    from ._record import provenance
except ImportError:  # pragma: no cover - script mode
    from _record import provenance

from repro import obs
from repro.analyzer.interests import PublisherDirectory
from repro.analyzer.pipeline import WeblogAnalyzer, scan_rows_single_pass
from repro.analyzer.features import FeatureExtractor
from repro.ml.forest import RandomForestClassifier

#: The budget the obs spine must honour in disabled mode.
OVERHEAD_BUDGET = 0.03

#: Repeats for best-of timing (resists noisy-neighbour skew).
REPEATS = 5


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _overhead(instrumented_s: float, stripped_s: float) -> float:
    """Relative overhead of the instrumented path (negative = faster)."""
    if stripped_s <= 0:
        return 0.0
    return instrumented_s / stripped_s - 1.0


# -- analyzer path -----------------------------------------------------------

def _analyzer_stripped(analyzer: WeblogAnalyzer, rows) -> None:
    """The analyze() body with the obs entry points bypassed."""
    extractor = FeatureExtractor.incremental(
        analyzer.blacklist, analyzer.directory, analyzer.geoip
    )
    traffic_counts, indexed = scan_rows_single_pass(
        enumerate(rows), analyzer.blacklist, extractor
    )
    extractor.finalize_interests()
    [analyzer._to_observation(det, extractor) for _, det in indexed]


def measure_analyzer(dataset, directory, repeats: int = REPEATS) -> dict:
    rows = list(dataset.rows)
    analyzer = WeblogAnalyzer(directory)
    assert obs.active_trace() is None and not obs.profiling_enabled()
    instrumented = _best_of(lambda: analyzer.analyze(rows), repeats)
    stripped = _best_of(lambda: _analyzer_stripped(analyzer, rows), repeats)
    return {
        "path": "analyzer.analyze",
        "rows": len(rows),
        "instrumented_s": round(instrumented, 5),
        "stripped_s": round(stripped, 5),
        "overhead": round(_overhead(instrumented, stripped), 5),
    }


# -- forest path -------------------------------------------------------------

def _forest_stripped(forest: RandomForestClassifier, x) -> np.ndarray:
    """predict_proba without the obs.span wrapper."""
    total = np.zeros((x.shape[0], forest.n_classes_), dtype=float)
    for tree in forest.trees_:
        total += forest._aligned_probs(tree, tree.predict_proba(x))
    return total / len(forest.trees_)


def measure_forest(repeats: int = REPEATS) -> dict:
    rng = np.random.default_rng(7)
    x = rng.normal(size=(1200, 8))
    y = (x[:, 0] + x[:, 1] > 0).astype(int) + (x[:, 2] > 0.5).astype(int)
    forest = RandomForestClassifier(
        n_estimators=30, max_depth=10, seed=3
    ).fit(x, y)
    x_pred = np.atleast_2d(np.asarray(rng.normal(size=(2000, 8)), dtype=float))
    assert obs.active_trace() is None and not obs.profiling_enabled()
    instrumented = _best_of(lambda: forest.predict_proba(x_pred), repeats)
    stripped = _best_of(lambda: _forest_stripped(forest, x_pred), repeats)
    assert np.array_equal(
        forest.predict_proba(x_pred), _forest_stripped(forest, x_pred)
    )
    return {
        "path": "forest.predict_proba",
        "rows": int(x_pred.shape[0]),
        "trees": forest.n_estimators,
        "instrumented_s": round(instrumented, 5),
        "stripped_s": round(stripped, 5),
        "overhead": round(_overhead(instrumented, stripped), 5),
    }


# -- micro path: raw span cost ----------------------------------------------

def measure_span_call(n: int = 200_000) -> dict:
    """Per-call cost of the disabled span fast path, in nanoseconds."""
    assert obs.active_trace() is None

    def disabled():
        for _ in range(n):
            with obs.span("noop"):
                pass

    def baseline():
        for _ in range(n):
            pass

    disabled_s = _best_of(disabled, 3)
    baseline_s = _best_of(baseline, 3)
    return {
        "path": "span.disabled_call",
        "calls": n,
        "ns_per_call": round((disabled_s - baseline_s) / n * 1e9, 1),
    }


def run_all(dataset, directory, repeats: int = REPEATS) -> dict:
    runs = [
        measure_analyzer(dataset, directory, repeats),
        measure_forest(repeats),
        measure_span_call(),
    ]
    worst = max(r["overhead"] for r in runs if "overhead" in r)
    return {
        "benchmark": "obs_overhead",
        "budget": OVERHEAD_BUDGET,
        "worst_overhead": round(worst, 5),
        "within_budget": bool(worst < OVERHEAD_BUDGET),
        **provenance(),
        "runs": runs,
    }


def _render(record: dict) -> list[str]:
    lines = [
        "Disabled-mode observability overhead "
        f"(budget {record['budget']:.0%}, {record['cpu_count']} CPUs):",
        "",
        f"{'path':<24} {'instrumented':>13} {'stripped':>10} {'overhead':>9}",
    ]
    for run in record["runs"]:
        if "overhead" in run:
            lines.append(
                f"{run['path']:<24} {run['instrumented_s']:>12.4f}s "
                f"{run['stripped_s']:>9.4f}s {run['overhead']:>8.2%}"
            )
        else:
            lines.append(
                f"{run['path']:<24} {run['ns_per_call']:>10.1f} ns/call"
            )
    lines.append("")
    lines.append(
        f"worst overhead {record['worst_overhead']:.2%} -- "
        + ("within budget" if record["within_budget"] else "OVER BUDGET")
    )
    return lines


def _write_json(record: dict, path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2) + "\n")


# -- pytest entry point ------------------------------------------------------

def test_obs_disabled_overhead_under_budget(dataset_d, directory):
    from .conftest import OUTPUT_DIR, emit

    record = run_all(dataset_d, directory)
    _write_json(record, OUTPUT_DIR / "bench_obs_overhead.json")
    emit("obs_overhead", _render(record) + ["", json.dumps(record)])
    assert record["within_budget"], (
        f"disabled-mode obs overhead {record['worst_overhead']:.2%} "
        f"exceeds the {OVERHEAD_BUDGET:.0%} budget"
    )


# -- standalone script -------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.1,
                        help="fraction of paper-scale dataset D (default 0.1)")
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument("--json", type=Path, default=None,
                        help="also write the JSON record to this path")
    args = parser.parse_args(argv)

    from repro.trace.simulate import default_config, simulate_dataset

    config = default_config()
    if args.scale < 0.999:
        config = config.scaled(args.scale)
    print(f"simulating dataset D at scale {args.scale}...", file=sys.stderr)
    dataset = simulate_dataset(config)
    directory = PublisherDirectory.from_universe(dataset.universe)

    record = run_all(dataset, directory, repeats=args.repeats)
    print("\n".join(_render(record)), file=sys.stderr)
    print(json.dumps(record, indent=2))
    if args.json:
        _write_json(record, args.json)
    return 0 if record["within_budget"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
