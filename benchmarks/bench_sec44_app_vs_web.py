"""Section 4.4: app impressions are dearer than mobile-web ones.

Paper finding: apps draw on average 2.6x higher prices (0.712 CPM vs
0.273 CPM).
"""

import numpy as np

from .conftest import emit


def test_sec44_app_vs_web(benchmark, analysis):
    def compute():
        return analysis.prices_by("context")

    groups = benchmark(compute)
    app = np.array(groups["app"])
    web = np.array(groups["web"])

    mean_ratio = float(app.mean() / web.mean())
    lines = ["Regenerated section 4.4 (app vs mobile-web prices):", ""]
    lines.append(f"{'context':<6} {'n':>8} {'mean CPM':>10} {'median CPM':>11}")
    lines.append(f"{'app':<6} {app.size:>8} {app.mean():>10.3f} {np.median(app):>11.3f}")
    lines.append(f"{'web':<6} {web.size:>8} {web.mean():>10.3f} {np.median(web):>11.3f}")
    lines.append("")
    lines.append(f"app/web mean ratio: {mean_ratio:.2f}x "
                 "(paper: 2.6x -- 0.712 vs 0.273 CPM)")

    assert 2.0 < mean_ratio < 3.3
    assert np.median(app) > 1.8 * np.median(web)
    emit("sec44_app_vs_web", lines)
