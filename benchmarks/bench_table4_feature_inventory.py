"""Table 4: the feature inventory extracted from price notifications.

Regenerates the geo-temporal / user / ad feature groups over dataset D
and checks the extractor materialises every Table-4 family, expanding
to the hundreds-dimensional F vector the paper's reduction starts from.
"""

from collections import Counter

from repro.core.feature_selection import group_of

from .conftest import emit


def test_table4_feature_inventory(benchmark, analysis):
    det = analysis.notifications[0]

    def compute():
        return analysis.extractor.full_vector(det)

    vector = benchmark(compute)

    names = analysis.extractor.feature_names_full()
    by_group = Counter(group_of(name) for name in names)

    lines = ["Regenerated Table 4 (feature inventory):", ""]
    lines.append(f"{'group':<22} {'features':>9}")
    for group, count in sorted(by_group.items()):
        lines.append(f"{group:<22} {count:>9}")
    lines.append(f"{'TOTAL':<22} {len(names):>9}")
    lines.append("")
    lines.append("Paper: 288 raw features across geo-temporal/user/ad groups;")
    lines.append("our extractor materialises the same families (sparse interest")
    lines.append("weights and indicator expansions included).")

    # Every Table-4 family must be populated.
    assert {"time", "ad", "dsp", "publisher_interests", "user_http_stats",
            "user_interests", "user_locations", "device"} <= set(by_group)
    assert len(names) >= 70
    assert set(vector) == set(names)
    # Spot-check semantic values.
    assert vector["user_n_requests"] > 0
    assert vector["adx"] in analysis.entity_rtb_shares()

    emit("table4_feature_inventory", lines)
