"""Table 5 + section 5.2: probe-campaign design and sizing.

Regenerates (a) the 144-setup experimental grid over the Table-5
filters, and (b) the sample-size arithmetic: 144 setups approximate the
across-campaign mean price within ~0.35 CPM at 95% confidence, and
>=185 impressions per campaign bound the within-campaign error at
0.1 CPM.  The campaign statistics (mean/std of per-campaign prices)
are measured from D's MoPub campaigns exactly as the paper did.
"""

from collections import defaultdict

import numpy as np

from repro.core.campaigns import build_probe_setups
from repro.rtb.entities import ENCRYPTING_ADXS
from repro.stats.sampling import CampaignSizing, margin_of_error

from .conftest import emit


def test_table5_campaign_design(benchmark, analysis):
    def compute():
        setups = build_probe_setups(tuple(ENCRYPTING_ADXS))
        per_campaign: dict[str, list[float]] = defaultdict(list)
        for obs in analysis.cleartext():
            if obs.adx == "MoPub" and obs.campaign_id:
                per_campaign[obs.campaign_id].append(obs.price_cpm)
        means = np.array([np.mean(v) for v in per_campaign.values() if len(v) >= 5])
        biggest = max(per_campaign.values(), key=len)
        return setups, means, np.array(biggest)

    setups, campaign_means, biggest = benchmark(compute)

    mean = float(campaign_means.mean())
    std = float(campaign_means.std(ddof=1))
    within_std = float(biggest.std(ddof=1))
    sizing = CampaignSizing.design(
        campaign_mean=mean,
        campaign_std=std,
        within_campaign_std=within_std,
        n_setups=len(setups),
    )

    lines = ["Regenerated Table 5 / section 5.2 (campaign design):", ""]
    lines.append(f"experimental setups: {len(setups)}")
    lines.append(
        f"Table-5 filters: {len({s.city for s in setups})} cities x "
        f"{len({s.context for s in setups})} interaction types x "
        f"{len({s.daypart for s in setups})} dayparts x "
        f"{len({s.day_type for s in setups})} day types x 3 ad formats"
    )
    lines.append("")
    lines.append(f"MoPub campaigns observed in D: {len(campaign_means)}")
    lines.append(f"per-campaign mean price: m={mean:.2f}, std={std:.2f} CPM "
                 f"(paper: m=1.84, std=2.15 over 280 campaigns)")
    lines.append(
        f"margin of error with {sizing.n_setups} setups: "
        f"{sizing.setup_margin:.3f} CPM at 95% CI (paper: 0.35)"
    )
    lines.append(
        f"largest campaign: {biggest.size} impressions, within-std "
        f"{within_std:.2f} CPM -> {sizing.impressions_per_campaign} impressions "
        f"per campaign for a 0.1 CPM margin (paper: 185 from a 1.8k campaign)"
    )

    assert len(setups) == 144
    assert margin_of_error(std, 144) < std  # sizing sanity
    assert sizing.impressions_per_campaign > 10
    assert mean > 0 and std > 0
    emit("table5_campaign_design", lines)
