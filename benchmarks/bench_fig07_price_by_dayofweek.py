"""Figure 7: charge-price distribution per day of week.

Paper finding: medians are close across days, but weekday maxima run
higher than weekend ones; the distributions differ statistically
(two-sample KS, p < 0.002).
"""

import numpy as np

from repro.stats.descriptive import summarize_groups
from repro.stats.ks import ks_two_sample
from repro.util.timeutil import DAY_NAMES, day_of_week, is_weekend

from .conftest import bench_scale, emit


def test_fig07_price_by_dayofweek(benchmark, analysis):
    def compute():
        return summarize_groups(
            analysis.prices_by(lambda o: day_of_week(o.timestamp))
        )

    summaries = benchmark(compute)

    lines = ["Regenerated Figure 7 (charge price per day of week):", ""]
    lines.append(f"{'day':<11} {'n':>8} {'p50':>7} {'p95':>7}")
    # Paper's x-axis starts on Sunday.
    for day in (6, 0, 1, 2, 3, 4, 5):
        s = summaries[day]
        lines.append(f"{DAY_NAMES[day]:<11} {s.count:>8} {s.p50:>7.3f} {s.p95:>7.3f}")

    medians = [summaries[d].p50 for d in range(7)]
    weekday_p95 = np.mean([summaries[d].p95 for d in range(5)])
    weekend_p95 = np.mean([summaries[d].p95 for d in (5, 6)])
    lines.append("")
    lines.append(f"median range across days: {min(medians):.3f}-{max(medians):.3f} CPM")
    lines.append(f"weekday mean p95 {weekday_p95:.3f} vs weekend {weekend_p95:.3f}")

    # Shape: medians close (within ~35%), weekday tails hotter.
    assert max(medians) / min(medians) < 1.35
    assert weekday_p95 > weekend_p95

    groups = analysis.prices_by(lambda o: "wd" if not is_weekend(o.timestamp) else "we")
    ks = ks_two_sample(groups["wd"], groups["we"])
    lines.append(f"KS(weekday vs weekend): D={ks.statistic:.3f}, p={ks.pvalue:.2e}")
    lines.append("Paper: distributions differ, p_dow < 0.002.")
    # The weekday/weekend difference is subtle (the paper needed the
    # full year of data to certify it); only assert significance when
    # the bench runs at full scale.
    if bench_scale() >= 0.999:
        assert ks.pvalue < 0.002
    emit("fig07_price_by_dayofweek", lines)
