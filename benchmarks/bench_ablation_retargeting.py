"""Ablation (paper future work): the effect of retargeting on prices.

The paper hypothesises that aggressive retargeting is one reason
encrypted prices run higher, but explicitly defers measuring it.  This
benchmark runs the deferred experiment on the simulator *causally*:
the same world is simulated twice -- once with and once without a
retargeting DSP -- and we compare the charge prices of the retargeted
audience across the two runs.  Composition effects cancel; the
difference is the retargeter's demand.
"""

import numpy as np

from repro.rtb.bidding import Dsp, RetargetingEngine
from repro.rtb.campaign import Campaign
from repro.rtb.cookiesync import synced_uid
from repro.trace.population import build_population
from repro.trace.simulate import build_market, simulate_period, small_config
from repro.trace.weblog import Weblog
from repro.util.rng import RngRegistry

from .conftest import emit

RETARGETER = "RetargetDSP"
AUDIENCE_IAB = "IAB22"   # shopping intent


def _run_world(with_retargeter: bool):
    config = small_config(seed=88)
    config = config.scaled(2.0)
    rngs = RngRegistry(config.seed)
    market = build_market(config, rngs)
    users = build_population(rngs.get("population"), config.n_users)
    audience = [
        u for u in users if u.interests.weight(AUDIENCE_IAB) > 0.25
    ] or users[:10]
    audience_ids = {u.user_id for u in audience}

    # Two competing retargeters chase the same audience: under
    # second-price clearing a lone aggressive bidder pays the ordinary
    # market price, but a retargeting *war* sets the charge at the
    # runner-up retargeter's boosted bid -- the actual premium channel.
    extra = []
    if with_retargeter:
        for name, boost in ((RETARGETER, 2.5), (RETARGETER + "2", 2.2)):
            for user in audience:
                for adx in market.exchanges:
                    market.sync_registry.sync(user.user_id, adx, name)
            extra.append(
                Dsp(
                    name,
                    RetargetingEngine(
                        dsp_name=name,
                        value_model=market.value_model,
                        audience_uids=frozenset(
                            synced_uid(name, u.user_id) for u in audience
                        ),
                        boost=boost,
                    ),
                    rngs.get(f"retargeter:{name}"),
                    campaigns=[Campaign(f"retarget-{name}", "ShopBrand",
                                        max_bid_cpm=60.0)],
                )
            )

    weblog = Weblog(
        period=config.period, users=users,
        universe=market.universe, policy=market.policy,
    )
    simulate_period(
        market, users, config.period, config.target_auctions, rngs,
        weblog, extra_dsps=extra, config=config,
    )
    audience_prices = np.array(
        [i.charge_price_cpm for i in weblog.impressions if i.user_id in audience_ids]
    )
    wins = sum(
        1
        for i in weblog.impressions
        if i.user_id in audience_ids
        and i.record.outcome.winner.dsp.startswith(RETARGETER)
    )
    return audience_prices, wins, len(audience)


def test_ablation_retargeting(benchmark):
    def run():
        baseline, _, _ = _run_world(with_retargeter=False)
        contested, wins, n_audience = _run_world(with_retargeter=True)
        return baseline, contested, wins, n_audience

    baseline, contested, wins, n_audience = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    lift = float(np.median(contested) / np.median(baseline))
    mean_lift = float(contested.mean() / baseline.mean())
    lines = ["Ablation (paper future work): causal retargeting price lift:", ""]
    lines.append(f"retargeting audience: {n_audience} users (dominant {AUDIENCE_IAB})")
    lines.append(
        f"audience impressions: {baseline.size} (baseline run), "
        f"{contested.size} (contested run, {wins} won by the retargeter)"
    )
    lines.append(
        f"audience median price: {np.median(baseline):.3f} CPM (no retargeter) "
        f"-> {np.median(contested):.3f} CPM (with retargeter)"
    )
    lines.append(f"median lift {lift:.2f}x, mean lift {mean_lift:.2f}x")
    lines.append("")
    lines.append("Paper (section 2.3): aggressive retargeting is hypothesised to")
    lines.append("drive higher (hidden) prices; same-audience comparison across")
    lines.append("otherwise-identical worlds confirms the demand-side mechanism.")

    assert wins > 0
    # Adding a high-boost bidder cannot lower second-price charges; it
    # should visibly raise them for the audience it contests.
    assert mean_lift > 1.3
    emit("ablation_retargeting", lines)
