"""Figure 2: encrypted vs cleartext ADX-DSP pairs per month of 2015.

Paper finding: the fraction of pairs delivering encrypted prices rises
steadily through the year.
"""

from .conftest import emit


def test_fig02_encryption_adoption(benchmark, analysis):
    monthly = benchmark(analysis.monthly_pair_encryption)

    assert set(monthly) == set(range(1, 13))
    fractions = {}
    lines = ["Regenerated Figure 2 (ADX-DSP pair encryption per month, 2015):", ""]
    lines.append(f"{'month':>5} {'enc pairs':>10} {'clr pairs':>10} {'enc %':>7}")
    for month in range(1, 13):
        enc, clr = monthly[month]
        frac = enc / (enc + clr)
        fractions[month] = frac
        lines.append(f"{month:>5} {enc:>10} {clr:>10} {frac:>6.1%}")

    # Shape: encryption adoption rises through the year.
    first_quarter = sum(fractions[m] for m in (1, 2, 3)) / 3
    last_quarter = sum(fractions[m] for m in (10, 11, 12)) / 3
    lines.append("")
    lines.append(f"Q1 mean encrypted-pair share: {first_quarter:.1%}")
    lines.append(f"Q4 mean encrypted-pair share: {last_quarter:.1%}")
    lines.append("Paper: encrypted share of pairs increases steadily through 2015.")
    assert last_quarter > first_quarter

    emit("fig02_encryption_adoption", lines)
