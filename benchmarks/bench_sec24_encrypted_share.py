"""Section 2.4: encrypted prices on the rise.

Paper findings: ~26% of mobile RTB impressions carry encrypted prices
(vs ~68% reported on desktop), and the encrypting entities are exactly
the major exchanges the paper names (DoubleClick, RubiconProject,
OpenX, plus PulsePoint among those probed).
"""

import numpy as np

from repro.rtb.entities import ENCRYPTING_ADXS

from .conftest import emit


def test_sec24_encrypted_share(benchmark, analysis):
    def compute():
        total = len(analysis.observations)
        encrypted = len(analysis.encrypted())
        per_adx = {}
        for obs in analysis.observations:
            stats = per_adx.setdefault(obs.adx, [0, 0])
            stats[0] += 1
            stats[1] += int(obs.is_encrypted)
        return total, encrypted, per_adx

    total, encrypted, per_adx = benchmark(compute)
    share = encrypted / total

    lines = ["Regenerated section 2.4 (encrypted share of mobile RTB):", ""]
    lines.append(f"impressions: {total:,}; encrypted: {encrypted:,} ({share:.1%})")
    lines.append("Paper: ~26% of mobile RTB ads carry encrypted prices.")
    lines.append("")
    lines.append(f"{'exchange':<14} {'impressions':>12} {'encrypted':>10}")
    for adx, (n, enc) in sorted(per_adx.items(), key=lambda kv: -kv[1][0]):
        lines.append(f"{adx:<14} {n:>12,} {enc / n:>9.1%}")

    assert 0.18 < share < 0.34
    for adx, (n, enc) in per_adx.items():
        if adx in ENCRYPTING_ADXS:
            assert enc / n > 0.5          # encrypting exchanges mostly encrypt
        else:
            assert enc == 0               # everyone else is cleartext
    emit("sec24_encrypted_share", lines)
