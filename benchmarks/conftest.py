"""Shared fixtures for the figure/table reproduction benchmarks.

Expensive artefacts (dataset D, the analyzer pass, probe campaigns A1
and A2, the trained price model) are built once per pytest session and
shared by every benchmark.  Each benchmark times only its own
aggregation step and writes the regenerated table to
``benchmarks/output/<id>.txt`` (also echoed to stdout under ``-s``).

Scale: ``REPRO_BENCH_SCALE`` (default 1.0) scales dataset D's user and
auction counts; campaign depth follows the paper's 185-impressions-per-
setup sizing scaled the same way.  The default regenerates every number
at the paper's scale in roughly five minutes on a laptop.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analyzer.interests import PublisherDirectory
from repro.analyzer.pipeline import WeblogAnalyzer
from repro.core.campaigns import run_campaign_a1, run_campaign_a2
from repro.core.pme import PAPER_FEATURE_SET, mopub_cleartext_prices
from repro.core.price_model import EncryptedPriceModel
from repro.core.cost import compute_user_costs
from repro.stats.distributions import median_ratio
from repro.trace.simulate import build_market, default_config, simulate_dataset
from repro.util.rng import RngRegistry

BENCH_SEED = 20151231
OUTPUT_DIR = Path(__file__).parent / "output"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def config():
    scale = bench_scale()
    cfg = default_config()
    return cfg if scale >= 0.999 else cfg.scaled(scale)


@pytest.fixture(scope="session")
def dataset_d(config):
    """The full dataset D (paper scale: 1,594 users, ~80k impressions)."""
    return simulate_dataset(config)


@pytest.fixture(scope="session")
def directory(dataset_d):
    return PublisherDirectory.from_universe(dataset_d.universe)


@pytest.fixture(scope="session")
def analysis(dataset_d, directory):
    """The observer-side analyzer pass over D."""
    return WeblogAnalyzer(directory).analyze(dataset_d.rows)


@pytest.fixture(scope="session")
def market(config):
    return build_market(config, RngRegistry(config.seed))


@pytest.fixture(scope="session")
def auctions_per_setup():
    return max(10, int(185 * bench_scale()))


@pytest.fixture(scope="session")
def campaign_a1(market, auctions_per_setup):
    return run_campaign_a1(market, seed=BENCH_SEED, auctions_per_setup=auctions_per_setup)


@pytest.fixture(scope="session")
def campaign_a2(market, auctions_per_setup):
    return run_campaign_a2(market, seed=BENCH_SEED, auctions_per_setup=auctions_per_setup)


@pytest.fixture(scope="session")
def price_model(campaign_a1):
    rows = campaign_a1.feature_rows()
    names = [n for n in PAPER_FEATURE_SET] + ["os"]
    return EncryptedPriceModel.train(
        rows, list(campaign_a1.prices()), feature_names=names, seed=BENCH_SEED
    )


@pytest.fixture(scope="session")
def time_correction(campaign_a2, analysis):
    return median_ratio(campaign_a2.prices(), mopub_cleartext_prices(analysis))


@pytest.fixture(scope="session")
def user_costs(analysis, price_model, time_correction):
    return compute_user_costs(analysis, price_model, time_correction)


def emit(name: str, lines: list[str]) -> None:
    """Print a regenerated table and persist it under benchmarks/output."""
    text = "\n".join(lines)
    print(f"\n===== {name} =====\n{text}\n")
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
