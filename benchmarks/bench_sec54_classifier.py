"""Section 5.4: the encrypted-price classifier.

Paper targets (10-fold CV averaged over 10 runs, 4 price classes):
TP=82.9%, FP=6.8%, Precision=83.5%, Recall=82.9%, AUCROC=0.964, with
no class worse than 5% from the average; adding the exact publisher
inflates accuracy to ~95% (rejected as overfitting); regression on raw
prices fails.

The CV protocol here uses 10 folds x 2 runs (the full 10x10 protocol
only narrows the confidence band; means are stable by run 2) so the
benchmark finishes in minutes.
"""

from repro.core.pme import PAPER_FEATURE_SET
from repro.core.price_model import (
    PAPER_AUCROC,
    PAPER_PRECISION,
    PAPER_TP_RATE,
    EncryptedPriceModel,
    regression_baseline,
)

from .conftest import bench_scale, emit

CV_FOLDS = 10
CV_RUNS = 2


def test_sec54_classifier(benchmark, campaign_a1, price_model):
    rows = campaign_a1.feature_rows()
    prices = list(campaign_a1.prices())

    def evaluate():
        return price_model.cross_validate(
            rows, prices, n_folds=CV_FOLDS, n_runs=CV_RUNS, seed=54
        )

    result = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    summary = result.summary()

    lines = ["Regenerated section 5.4 (classifier performance, 10-fold CV):", ""]
    lines.append(f"{'metric':<12} {'measured':>9} {'paper':>8}")
    lines.append(f"{'TP rate':<12} {summary['tp_rate']:>8.1%} {PAPER_TP_RATE:>7.1%}")
    lines.append(f"{'FP rate':<12} {summary['fp_rate']:>8.1%} {'6.8%':>8}")
    lines.append(f"{'precision':<12} {summary['precision']:>8.1%} {PAPER_PRECISION:>7.1%}")
    lines.append(f"{'recall':<12} {summary['recall']:>8.1%} {'82.9%':>8}")
    lines.append(f"{'AUCROC':<12} {summary['auc_roc']:>9.3f} {PAPER_AUCROC:>8.3f}")

    worst_gap = max(r.worst_class_gap("recall") for r in result.reports)
    lines.append(f"worst per-class recall gap: {worst_gap:.1%} (paper: < 5%)")

    reg = regression_baseline(rows, prices, seed=54)
    lines.append("")
    lines.append(
        f"regression baseline: RMSE {reg.rmse_cpm:.2f} CPM "
        f"({reg.relative_rmse:.0%} of the mean price), R^2 {reg.r2:.2f}"
    )
    lines.append("Paper: high regression error pushed the design to classification.")

    full_scale = bench_scale() >= 0.999
    if full_scale:
        assert summary["tp_rate"] > 0.78
        assert summary["precision"] > 0.78
        assert summary["auc_roc"] > 0.92
        assert summary["fp_rate"] < 0.12
    else:
        assert summary["tp_rate"] > 0.6
        assert summary["auc_roc"] > 0.85
    assert reg.relative_rmse > 0.25
    emit("sec54_classifier", lines)


def test_sec54_publisher_overfit(benchmark, campaign_a1):
    """The exact-publisher variant scores higher in CV -- the paper's
    overfitting caution."""
    import numpy as np

    all_rows = campaign_a1.feature_rows()
    all_prices = list(campaign_a1.prices())
    if len(all_rows) > 8000:
        picks = np.random.default_rng(54).choice(len(all_rows), 8000, replace=False)
        rows = [all_rows[i] for i in picks]
        prices = [all_prices[i] for i in picks]
    else:
        rows, prices = all_rows, all_prices
    names = list(PAPER_FEATURE_SET) + ["os"]

    def evaluate():
        base = EncryptedPriceModel.train(
            rows, prices, feature_names=names, seed=54
        ).cross_validate(rows, prices, n_folds=5, n_runs=1, seed=11)
        with_pub = EncryptedPriceModel.train(
            rows, prices, feature_names=names + ["publisher"], seed=54
        ).cross_validate(rows, prices, n_folds=5, n_runs=1, seed=11)
        return base, with_pub

    base, with_pub = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    lines = ["Regenerated section 5.4 (exact-publisher overfitting check):", ""]
    lines.append(f"S features:              acc {base.accuracy:.1%}, AUC {base.auc_roc:.3f}")
    lines.append(f"S + exact publisher:     acc {with_pub.accuracy:.1%}, AUC {with_pub.auc_roc:.3f}")
    lines.append("")
    lines.append("Paper: publisher lifts accuracy (95% vs 83%) but only because the")
    lines.append("campaign's publishers are a small subset of the real web -- the")
    lines.append("configuration is rejected as overfitting.")

    assert with_pub.accuracy > base.accuracy
    assert with_pub.auc_roc >= base.auc_roc
    emit("sec54_publisher_overfit", lines)
