"""Figure 8: share of RTB traffic per mobile OS over the months of 2015.

Paper finding: Android and iOS dominate all year, with Android-based
devices appearing in roughly 2x more RTB auctions.
"""

from .conftest import emit


def test_fig08_os_share(benchmark, analysis):
    monthly = benchmark(analysis.monthly_os_counts)

    lines = ["Regenerated Figure 8 (RTB share per OS per month):", ""]
    oses = ("Android", "iOS", "Windows Mobile", "Other")
    lines.append(f"{'month':>5} " + " ".join(f"{o:>14}" for o in oses))
    android_total = ios_total = grand_total = 0
    for month in sorted(monthly):
        counts = monthly[month]
        total = sum(counts.values())
        grand_total += total
        android_total += counts.get("Android", 0)
        ios_total += counts.get("iOS", 0)
        shares = " ".join(f"{counts.get(o, 0) / total:>13.1%}" for o in oses)
        lines.append(f"{month:>5} {shares}")

    ratio = android_total / max(1, ios_total)
    lines.append("")
    lines.append(f"Android/iOS auction ratio over the year: {ratio:.2f}x")
    lines.append("Paper: Android devices appear in ~2x more RTB auctions.")

    assert set(monthly) == set(range(1, 13))
    assert 1.3 < ratio < 3.2
    assert (android_total + ios_total) / grand_total > 0.8
    emit("fig08_os_share", lines)
