"""Ablation: probe-campaign depth vs model quality (paper section 5.2).

The paper sizes campaigns at >=185 impressions per setup.  This
ablation retrains the classifier on shrinking subsamples of A1 to show
how accuracy degrades below the paper's sizing -- the empirical
justification for the sample-size arithmetic.
"""

import numpy as np

from repro.core.pme import PAPER_FEATURE_SET
from repro.core.price_model import EncryptedPriceModel

from .conftest import emit

FRACTIONS = (1.0, 0.5, 0.2, 0.05)


def _subsample(rows, prices, cap, seed):
    import numpy as _np

    if len(rows) <= cap:
        return rows, list(prices)
    picks = _np.random.default_rng(seed).choice(len(rows), size=cap, replace=False)
    return [rows[i] for i in picks], [prices[i] for i in picks]


def test_ablation_training_size(benchmark, campaign_a1):
    rows, price_list = _subsample(
        campaign_a1.feature_rows(), list(campaign_a1.prices()), 8000, 71
    )
    prices = np.array(price_list)
    names = list(PAPER_FEATURE_SET) + ["os"]
    rng = np.random.default_rng(71)

    def evaluate():
        scores = {}
        for fraction in FRACTIONS:
            n = max(60, int(len(rows) * fraction))
            picks = rng.choice(len(rows), size=min(n, len(rows)), replace=False)
            sub_rows = [rows[i] for i in picks]
            sub_prices = list(prices[picks])
            model = EncryptedPriceModel.train(
                sub_rows, sub_prices, feature_names=names, seed=71, n_estimators=30
            )
            cv = model.cross_validate(sub_rows, sub_prices, n_folds=4, n_runs=1, seed=71)
            scores[fraction] = (len(sub_rows), cv.accuracy, cv.auc_roc)
        return scores

    scores = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    lines = ["Ablation: training-set size vs classifier quality:", ""]
    lines.append(f"{'fraction':>9} {'rows':>8} {'accuracy':>9} {'AUCROC':>8}")
    for fraction in FRACTIONS:
        n, acc, auc = scores[fraction]
        lines.append(f"{fraction:>9.2f} {n:>8} {acc:>8.1%} {auc:>8.3f}")
    lines.append("")
    lines.append("Paper: >=185 impressions/setup bound the per-setup price error;")
    lines.append("starving the campaigns degrades the model they train.")

    assert scores[1.0][1] >= scores[0.05][1]
    assert scores[1.0][2] >= scores[0.05][2] - 0.01
    emit("ablation_training_size", lines)
