"""Reproduction-only check: encrypted estimates vs simulator truth.

The paper could not score its per-impression encrypted estimates
against reality (the prices are hidden from everyone but the ADX); the
reproduction can, because it owns the simulator.  This benchmark closes
the loop: the model trained on campaign A1 estimates D's encrypted
prices, and we score class accuracy and total-cost recovery against
the simulator's private ground truth.
"""

from repro.core.cost import estimation_accuracy

from .conftest import emit


def test_repro_estimation_accuracy(benchmark, dataset_d, analysis, price_model):
    truth = {
        i.record.notification.encrypted_price: i.charge_price_cpm
        for i in dataset_d.impressions
        if i.is_encrypted
    }

    scores = benchmark.pedantic(
        estimation_accuracy, args=(analysis, price_model, truth),
        rounds=1, iterations=1,
    )

    lines = ["Estimation accuracy against simulator ground truth:", ""]
    lines.append(f"encrypted impressions scored: {scores['n']:,}")
    lines.append(f"price-class accuracy:         {scores['class_accuracy']:.1%}")
    lines.append(f"median |log price error|:     {scores['median_abs_log_error']:.3f}")
    lines.append(
        f"total encrypted cost: true {scores['total_true_cpm']:,.0f} CPM vs "
        f"estimated {scores['total_estimated_cpm']:,.0f} CPM "
        f"(ratio {scores['total_ratio']:.2f})"
    )
    lines.append("")
    lines.append("This is the reproduction's end-to-end soundness check: the")
    lines.append("campaign-trained model, applied to weblog traffic it never saw,")
    lines.append("recovers aggregate encrypted spend within tens of percent.")

    assert scores["class_accuracy"] > 0.55
    assert 0.6 < scores["total_ratio"] < 1.6
    assert scores["median_abs_log_error"] < 0.8
    emit("repro_estimation_accuracy", lines)
