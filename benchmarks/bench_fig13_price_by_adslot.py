"""Figure 13: charge price per ad-slot size (Turn traffic).

Paper finding: price does NOT grow with slot area -- the 300x250 MPU
(median ~0.47 CPM) and 300x600 Monster MPU (~0.39 CPM) are the two
dearest slots.
"""

from repro.rtb.adslots import TURN_SIZES, AdSlotSize, sort_by_area
from repro.stats.descriptive import summarize_groups

from .conftest import emit


def test_fig13_price_by_adslot(benchmark, analysis):
    def compute():
        groups: dict[str, list[float]] = {}
        for obs in analysis.cleartext():
            if obs.adx == "Turn" and obs.slot_size in TURN_SIZES:
                groups.setdefault(obs.slot_size, []).append(obs.price_cpm)
        return summarize_groups({k: v for k, v in groups.items() if len(v) >= 5})

    summaries = benchmark(compute)

    lines = ["Regenerated Figure 13 (Turn charge price per slot size):", ""]
    lines.append(f"{'slot':<9} {'area':>7} {'n':>6} {'p50':>7} {'p95':>7}")
    for slot in sort_by_area(list(summaries)):
        s = summaries[slot]
        lines.append(
            f"{slot:<9} {AdSlotSize.parse(slot).area:>7} {s.count:>6} "
            f"{s.p50:>7.3f} {s.p95:>7.3f}"
        )

    medians = {slot: s.p50 for slot, s in summaries.items()}
    dearest = max(medians, key=medians.get)
    lines.append("")
    lines.append(f"dearest slot: {dearest} at {medians[dearest]:.3f} CPM median")
    lines.append("Paper: 300x250 dearest (~0.47), 300x600 second (~0.39);")
    lines.append("display area does not order prices.")

    assert dearest == "300x250"
    if "300x600" in medians and "160x600" in medians:
        assert medians["300x600"] > medians["160x600"]
    # Not monotone in area: the largest slot must not be the dearest.
    largest = sort_by_area(list(medians))[-1]
    assert medians[largest] < medians["300x250"]
    emit("fig13_price_by_adslot", lines)
