"""Figure 11: CDF of charge prices per IAB category (MoPub, 2 months).

Paper finding: categories differ strongly -- IAB3 (Business) draws up
to ~5 CPM at the median while IAB15 (Science) stays under ~0.2 CPM.
"""

from repro.rtb.iab import FIGURE11_CATEGORIES
from repro.stats.descriptive import Cdf
from repro.util.timeutil import month_of

from .conftest import emit


def test_fig11_iab_cost_cdf(benchmark, analysis):
    def compute():
        groups: dict[str, list[float]] = {}
        for obs in analysis.cleartext():
            if obs.adx != "MoPub" or month_of(obs.timestamp) not in (7, 8):
                continue
            if obs.publisher_iab in FIGURE11_CATEGORIES:
                groups.setdefault(obs.publisher_iab, []).append(obs.price_cpm)
        return {iab: Cdf.from_sample(v) for iab, v in groups.items() if len(v) >= 5}

    cdfs = benchmark(compute)

    lines = ["Regenerated Figure 11 (price CDF per IAB, MoPub 2-month slice):", ""]
    lines.append(f"{'IAB':<7} {'n':>6} {'p25':>8} {'p50':>8} {'p75':>8}")
    for iab in FIGURE11_CATEGORIES:
        if iab not in cdfs:
            continue
        cdf = cdfs[iab]
        lines.append(
            f"{iab:<7} {len(cdf):>6} {cdf.quantile(0.25):>8.3f} "
            f"{cdf.quantile(0.50):>8.3f} {cdf.quantile(0.75):>8.3f}"
        )

    assert "IAB3" in cdfs and "IAB15" in cdfs
    dear = cdfs["IAB3"].quantile(0.5)
    cheap = cdfs["IAB15"].quantile(0.5)
    lines.append("")
    lines.append(f"IAB3 median {dear:.2f} CPM vs IAB15 median {cheap:.2f} CPM")
    lines.append("Paper: IAB3 up to ~5 CPM for 50% of cases; IAB15 under ~0.2 CPM.")

    assert dear > 5 * cheap
    medians = {iab: c.quantile(0.5) for iab, c in cdfs.items()}
    assert max(medians, key=medians.get) == "IAB3"
    assert min(medians, key=medians.get) == "IAB15"
    emit("fig11_iab_cost_cdf", lines)
