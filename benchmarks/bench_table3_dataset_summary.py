"""Table 3: summary of dataset D and the two probe ad-campaigns.

Paper values (absolute scale): D = 12 months, 78,560 impressions,
~5.6k RTB publishers/month, 18 IAB categories, 1,594 users;
A1 = 13 days, 632,667 impressions; A2 = 8 days, 318,964 impressions.
Our reproduction regenerates the same summary rows; counts scale with
``REPRO_BENCH_SCALE`` (publishers and campaign depth are laptop-scale,
see EXPERIMENTS.md).
"""

from .conftest import bench_scale, emit


def test_table3_dataset_summary(benchmark, dataset_d, campaign_a1, campaign_a2):
    def compute():
        return dataset_d.summary(), campaign_a1.summary(), campaign_a2.summary()

    d_summary, a1_summary, a2_summary = benchmark(compute)

    lines = ["Regenerated Table 3 (dataset and ad-campaign summary):", ""]
    lines.append(f"{'metric':<22} {'D':>12} {'A1':>10} {'A2':>10}")
    lines.append(
        f"{'time period':<22} {'12 months':>12} "
        f"{str(round(a1_summary['period_days'])) + ' days':>10} "
        f"{str(round(a2_summary['period_days'])) + ' days':>10}"
    )
    lines.append(
        f"{'impressions':<22} {d_summary['impressions']:>12,} "
        f"{a1_summary['impressions']:>10,} {a2_summary['impressions']:>10,}"
    )
    lines.append(
        f"{'RTB publishers':<22} {d_summary['rtb_publishers']:>12,} "
        f"{a1_summary['publishers']:>10,} {a2_summary['publishers']:>10,}"
    )
    lines.append(
        f"{'IAB categories':<22} {d_summary['iab_categories']:>12} "
        f"{a1_summary['iab_categories']:>10} {a2_summary['iab_categories']:>10}"
    )
    lines.append(f"{'users':<22} {d_summary['users']:>12,} {'-':>10} {'-':>10}")
    lines.append("")
    lines.append(
        "Paper: D=78,560 impressions / 1,594 users / 18 IABs; "
        "A1=632,667; A2=318,964 (13 / 8 days)."
    )

    scale = bench_scale()
    # Shape assertions (paper-relative at full scale).
    assert round(a1_summary["period_days"]) == 13
    assert round(a2_summary["period_days"]) == 8
    assert d_summary["iab_categories"] == 18
    if scale >= 0.999:
        assert d_summary["users"] == 1594
        assert d_summary["impressions"] > 70_000
    # A2 wins more impressions than A1: the probe faces weaker
    # competition on MoPub than against premium bidders -- and in the
    # paper too the per-day A2 rate exceeds A1's.
    assert a2_summary["impressions"] > a1_summary["impressions"] * 0.5

    emit("table3_dataset_summary", lines)
