"""Table 1: examples of cleartext and encrypted price notifications.

Regenerates the table's three exemplar nURL shapes (MoPub cleartext,
Rubicon/Mathtag encrypted, Turn-style encrypted with slot dimensions)
from the nURL grammar, and times a build+parse round trip.
"""

from repro.rtb.nurl import WinNotification, build_nurl, parse_nurl
from repro.rtb.pricecrypto import PriceKeys, encrypt_price

from .conftest import emit

KEYS = PriceKeys.derive("table1")


def _examples():
    token = encrypt_price(1.31, KEYS, bytes(range(16)))
    rows = [
        WinNotification(
            adx="MoPub", dsp="Criteo-DSP", charge_price_cpm=0.95,
            encrypted_price=None, impression_id="imp-1", auction_id="a-1",
            ad_domain="amazon.es", slot_size="300x250",
            publisher="news.example.es", country="ES", bid_price_cpm=0.99,
        ),
        WinNotification(
            adx="Rubicon", dsp="MediaMath-DSP", charge_price_cpm=None,
            encrypted_price=token, impression_id="imp-2", auction_id="a-2",
            slot_size="320x50", publisher="blog.example.es",
        ),
        WinNotification(
            adx="Turn", dsp="DBM", charge_price_cpm=None,
            encrypted_price=token, impression_id="imp-3", auction_id="a-3",
            slot_size="300x250", publisher="portal.example.es",
        ),
    ]
    return [build_nurl(n) for n in rows]


def test_table1_nurl_formats(benchmark):
    urls = benchmark(_examples)
    parsed = [parse_nurl(u) for u in urls]

    assert parsed[0] is not None and not parsed[0].is_encrypted
    assert parsed[0].cleartext_price_cpm is not None
    assert parsed[1] is not None and parsed[1].is_encrypted
    assert parsed[2] is not None and parsed[2].is_encrypted
    assert parsed[2].slot_size == "300x250"   # Turn carries dimensions

    lines = ["Regenerated Table 1 (win notification URL examples):", ""]
    for label, url in zip(("A: cleartext", "B: encrypted", "C: encrypted+size"), urls):
        lines.append(f"({label})")
        lines.append(f"  {url}")
    emit("table1_nurl_formats", lines)
