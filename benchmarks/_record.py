"""Shared provenance fields for benchmark JSON records.

Every perf benchmark (``bench_parallel_analyzer``, ``bench_forest``,
...) emits one JSON record; stamping each with the machine's CPU count
and the git SHA it was measured at makes the perf trajectory comparable
across PRs (``BENCH_*.json`` files under ``benchmarks/output``).

Underscore-prefixed so pytest never collects it; import works both as
part of the ``benchmarks`` package (pytest) and as a sibling module
(standalone ``python benchmarks/bench_*.py`` runs).
"""

from __future__ import annotations

import os
import subprocess


def git_sha() -> str | None:
    """Short SHA of the measured tree, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def provenance() -> dict:
    """The fields every benchmark record carries."""
    return {"cpu_count": os.cpu_count(), "git_sha": git_sha()}
