"""Figure 10: charge prices per mobile OS on the top exchange (MoPub).

Paper finding: despite Android's volume dominance, iOS devices draw
higher median RTB prices.
"""

from repro.stats.descriptive import summarize_groups

from .conftest import emit


def test_fig10_price_by_os(benchmark, analysis):
    def compute():
        groups = {}
        for obs in analysis.cleartext():
            if obs.adx == "MoPub" and obs.os in ("Android", "iOS"):
                groups.setdefault(obs.os, []).append(obs.price_cpm)
        return summarize_groups(groups)

    summaries = benchmark(compute)

    lines = ["Regenerated Figure 10 (MoPub charge price per mobile OS):", ""]
    lines.append(f"{'OS':<9} {'n':>8} {'p5':>7} {'p50':>7} {'p95':>7}")
    for os_name in ("Android", "iOS"):
        s = summaries[os_name]
        lines.append(
            f"{os_name:<9} {s.count:>8} {s.p5:>7.3f} {s.p50:>7.3f} {s.p95:>7.3f}"
        )

    ratio = summaries["iOS"].p50 / summaries["Android"].p50
    lines.append("")
    lines.append(f"iOS/Android median ratio: {ratio:.2f}")
    lines.append("Paper: iOS devices receive higher median RTB prices.")

    assert summaries["Android"].count > summaries["iOS"].count
    assert ratio > 1.1
    emit("fig10_price_by_os", lines)
