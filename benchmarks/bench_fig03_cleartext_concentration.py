"""Figure 3: cumulative cleartext-price share vs per-entity RTB share.

Paper finding: the largest ad entities (MoPub 33.55% of RTB, Adnxs
10.74%) deliver a disproportionate share of the *cleartext* prices
(MoPub alone 45.4%), so a strategy flip by one or two companies would
wreck ecosystem transparency.
"""

from .conftest import emit


def test_fig03_cleartext_concentration(benchmark, analysis):
    def compute():
        return analysis.entity_rtb_shares(), analysis.entity_cleartext_shares()

    rtb_shares, clr_shares = benchmark(compute)

    lines = ["Regenerated Figure 3 (RTB share vs cleartext share per entity):", ""]
    lines.append(f"{'entity':<14} {'RTB share':>10} {'cleartext share':>16} {'cum cleartext':>14}")
    cumulative = 0.0
    for adx, share in rtb_shares.items():
        clr = clr_shares.get(adx, 0.0)
        cumulative += clr
        lines.append(f"{adx:<14} {share:>9.2%} {clr:>15.2%} {cumulative:>13.2%}")

    # Shape assertions.
    top = list(rtb_shares)
    assert top[0] == "MoPub"
    assert rtb_shares["MoPub"] > 0.25
    # MoPub's cleartext contribution exceeds its RTB share (paper:
    # 45.4% of cleartext vs 33.55% of RTB).
    assert clr_shares["MoPub"] > rtb_shares["MoPub"]
    # The encrypting exchanges contribute less cleartext than volume.
    for adx in ("DoubleClick", "OpenX", "Rubicon", "PulsePoint"):
        assert clr_shares.get(adx, 0.0) < rtb_shares[adx]

    lines.append("")
    lines.append(
        f"MoPub: {rtb_shares['MoPub']:.1%} of RTB but "
        f"{clr_shares['MoPub']:.1%} of cleartext prices "
        "(paper: 33.6% -> 45.4%)."
    )
    emit("fig03_cleartext_concentration", lines)
