"""Ablation (post-paper extension): first-price auction migration.

After the paper's publication the RTB industry migrated from second-
to first-price auctions.  Does the transparency methodology survive?
It should: nURLs still carry the charge price, and the model learns
whatever price process the market produces.  This benchmark rebuilds
the market with first-price clearing, re-runs a scaled probe campaign,
and verifies (a) charge prices rise (no more second-price discount)
and (b) the price classifier still trains to comparable accuracy.
"""

import numpy as np

from repro.core.campaigns import run_campaign_a2
from repro.core.pme import PAPER_FEATURE_SET
from repro.core.price_model import EncryptedPriceModel
from repro.trace.simulate import build_market, small_config
from repro.util.rng import RngRegistry

from .conftest import emit


def test_ablation_first_price(benchmark):
    def run():
        config = small_config(seed=77)
        results = {}
        for mechanism in ("second_price", "first_price"):
            market = build_market(config, RngRegistry(config.seed))
            for exchange in market.exchanges.values():
                exchange.mechanism = mechanism
            campaign = run_campaign_a2(market, seed=77, auctions_per_setup=20)
            rows = campaign.feature_rows()
            model = EncryptedPriceModel.train(
                rows,
                list(campaign.prices()),
                feature_names=list(PAPER_FEATURE_SET) + ["os"],
                seed=77,
                n_estimators=25,
                max_depth=12,
            )
            cv = model.cross_validate(rows, list(campaign.prices()),
                                      n_folds=4, n_runs=1, seed=77)
            results[mechanism] = (campaign.prices(), cv.accuracy, cv.auc_roc)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    second_prices, second_acc, second_auc = results["second_price"]
    first_prices, first_acc, first_auc = results["first_price"]
    uplift = float(np.median(first_prices) / np.median(second_prices))

    lines = ["Ablation (post-paper): second-price vs first-price clearing:", ""]
    lines.append(f"{'mechanism':<14} {'median CPM':>11} {'model acc':>10} {'AUCROC':>8}")
    lines.append(
        f"{'second price':<14} {np.median(second_prices):>11.3f} "
        f"{second_acc:>9.1%} {second_auc:>8.3f}"
    )
    lines.append(
        f"{'first price':<14} {np.median(first_prices):>11.3f} "
        f"{first_acc:>9.1%} {first_auc:>8.3f}"
    )
    lines.append("")
    lines.append(f"first-price charge uplift: {uplift:.2f}x (no runner-up discount)")
    lines.append("The methodology is mechanism-agnostic: it models observed")
    lines.append("charges, so the classifier trains equally well either way.")

    assert uplift > 1.05
    assert first_acc > second_acc - 0.10
    assert first_auc > 0.85
    emit("ablation_first_price", lines)
