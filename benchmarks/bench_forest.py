"""Forest throughput benchmark: parallel training + flattened inference.

Tracks the ML half of the pipeline's hot path (ISSUE 2): training the
section-5.4 price forest and scoring every encrypted impression in
dataset D.  Reports, as one JSON record (``BENCH_forest.json``):

* ``train_rows_per_sec`` per worker count (1/2/4 by default), with the
  bit-identical-to-sequential guarantee asserted along the way;
* ``predict_rows_per_sec`` per traversal mode -- naive per-row
  recursion, the index-partition node walk, and the flattened
  level-synchronous batch walk -- over >= 50k rows through a 60-tree,
  depth-18 forest (the paper's production shape);
* ``speedup_vs_per_row`` / ``speedup_vs_sequential`` so the acceptance
  bar (flattened >= 5x per-row recursion) is visible in the record;
* ``cpu_count`` and ``git_sha`` provenance, matching
  ``bench_parallel_analyzer``.

Two entry points:

* standalone script (no pytest needed)::

      PYTHONPATH=src python benchmarks/bench_forest.py \
          --train-rows 4000 --predict-rows 50000 --workers 1 2 4 \
          --json benchmarks/output/BENCH_forest.json

* pytest benchmark (scaled by ``REPRO_BENCH_SCALE``)::

      pytest benchmarks/bench_forest.py -s

As with ``bench_parallel_analyzer``, process-pool speedup is bounded by
hardware parallelism: on a 1-core box the workers>1 rows/sec can only
show pool overhead (fork + per-tree result pickling), never a win.  The
record carries ``cpu_count`` so readers can judge; the bit-identical
guarantee is asserted regardless of the core count.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.ml.forest import RandomForestClassifier
from repro.ml.serialize import dumps, forest_to_dict

try:  # package import under pytest, sibling import as a script
    from ._record import provenance
except ImportError:  # pragma: no cover - script mode
    from _record import provenance

#: The paper's production forest shape (section 5.4 / EncryptedPriceModel).
N_ESTIMATORS = 60
MAX_DEPTH = 18


def _synthetic(n_rows: int, n_features: int = 10, n_classes: int = 4,
               seed: int = 20151231) -> tuple[np.ndarray, np.ndarray]:
    """Ordinally-encoded-feature-like matrix with 4 learnable classes."""
    rng = np.random.default_rng(seed)
    x = np.column_stack(
        [rng.integers(0, rng.integers(3, 40), size=n_rows).astype(float)
         for _ in range(n_features)]
    )
    score = (
        0.8 * x[:, 0] / max(1.0, x[:, 0].max())
        + 0.6 * x[:, 1] / max(1.0, x[:, 1].max())
        + 0.3 * rng.normal(size=n_rows)
    )
    y = np.digitize(score, np.quantile(score, [0.25, 0.5, 0.75]))
    return x, y.astype(int)


def _time(fn, repeats: int = 1) -> tuple[float, object]:
    """Best-of-``repeats`` wall time."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_matrix(
    train_rows: int = 4_000,
    predict_rows: int = 50_000,
    workers_list=(1, 2, 4),
    n_estimators: int = N_ESTIMATORS,
    max_depth: int = MAX_DEPTH,
    repeats: int = 1,
    per_row_cap: int | None = None,
) -> dict:
    """Time training per worker count and inference per traversal mode.

    ``per_row_cap`` optionally bounds how many rows the (very slow)
    per-row recursive baseline scores; its rows/sec is measured on that
    subset and the speedup computed rate-to-rate, which favours the
    baseline if anything (no cold-start amortisation).
    """
    x_train, y_train = _synthetic(train_rows, seed=20151231)
    x_pred, _ = _synthetic(predict_rows, seed=715517)

    records: list[dict] = []

    # -- training: workers sweep, bit-identity asserted ---------------------
    def fit_with(workers: int) -> RandomForestClassifier:
        return RandomForestClassifier(
            n_estimators=n_estimators,
            max_depth=max_depth,
            min_samples_leaf=2,
            seed=20151231,
            workers=workers,
        ).fit(x_train, y_train)

    seq_s, forest = _time(lambda: fit_with(1), repeats)
    reference_payload = dumps(forest_to_dict(forest))
    records.append(
        {
            "phase": "train",
            "workers": 1,
            "seconds": round(seq_s, 4),
            "train_rows_per_sec": round(train_rows / seq_s, 1),
        }
    )
    for workers in workers_list:
        if workers == 1:
            continue
        par_s, par = _time(lambda w=workers: fit_with(w), repeats)
        assert dumps(forest_to_dict(par)) == reference_payload, (
            f"workers={workers} training diverged from sequential"
        )
        records.append(
            {
                "phase": "train",
                "workers": workers,
                "seconds": round(par_s, 4),
                "train_rows_per_sec": round(train_rows / par_s, 1),
                "speedup_vs_sequential": round(seq_s / par_s, 2),
            }
        )

    # -- inference: traversal sweep ----------------------------------------
    n_per_row = min(predict_rows, per_row_cap or predict_rows)
    per_row_s, per_row_out = _time(
        lambda: forest.predict_proba(x_pred[:n_per_row], traversal="per-row"),
        1,  # the naive path is too slow to repeat
    )
    per_row_rate = n_per_row / per_row_s
    records.append(
        {
            "phase": "predict",
            "traversal": "per-row-recursive",
            "rows": n_per_row,
            "seconds": round(per_row_s, 4),
            "predict_rows_per_sec": round(per_row_rate, 1),
        }
    )

    nodes_s, nodes_out = _time(
        lambda: forest.predict_proba(x_pred, traversal="nodes"), repeats
    )
    records.append(
        {
            "phase": "predict",
            "traversal": "node-walk-batch",
            "rows": predict_rows,
            "seconds": round(nodes_s, 4),
            "predict_rows_per_sec": round(predict_rows / nodes_s, 1),
            "speedup_vs_per_row": round((predict_rows / nodes_s) / per_row_rate, 2),
        }
    )

    flat_s, flat_out = _time(
        lambda: forest.predict_proba(x_pred, traversal="flat"), repeats
    )
    assert np.array_equal(flat_out, nodes_out), "flat diverged from node walk"
    assert np.array_equal(flat_out[:n_per_row], per_row_out), (
        "flat diverged from per-row recursion"
    )
    records.append(
        {
            "phase": "predict",
            "traversal": "flattened-batch",
            "rows": predict_rows,
            "seconds": round(flat_s, 4),
            "predict_rows_per_sec": round(predict_rows / flat_s, 1),
            "speedup_vs_per_row": round((predict_rows / flat_s) / per_row_rate, 2),
            "speedup_vs_node_walk": round(nodes_s / flat_s, 2),
        }
    )

    return {
        "benchmark": "forest",
        "n_estimators": n_estimators,
        "max_depth": max_depth,
        "fitted_depth_max": max(t.depth() for t in forest.trees_),
        "train_rows": train_rows,
        "predict_rows": predict_rows,
        **provenance(),
        "runs": records,
    }


def _render(record: dict) -> list[str]:
    lines = [
        f"Price-forest throughput ({record['n_estimators']} trees, "
        f"max depth {record['max_depth']}, {record['cpu_count']} CPUs, "
        f"git {record['git_sha']}):",
        "",
        f"{'phase':<8} {'config':<22} {'rows/sec':>12} {'speedup':>8}",
    ]
    for run in record["runs"]:
        config = (
            f"workers={run['workers']}" if run["phase"] == "train"
            else run["traversal"]
        )
        rate = run.get("train_rows_per_sec", run.get("predict_rows_per_sec"))
        speed = run.get("speedup_vs_sequential", run.get("speedup_vs_per_row", ""))
        lines.append(f"{run['phase']:<8} {config:<22} {rate:>12,.1f} {str(speed):>8}")
    lines.append("")
    lines.append(
        "train speedup: vs workers=1 (bit-identical output asserted); "
        "predict speedup: vs per-row recursive traversal."
    )
    return lines


# -- pytest entry point ------------------------------------------------------

def test_forest_throughput(benchmark):
    from .conftest import bench_scale, emit

    scale = bench_scale()
    record = run_matrix(
        train_rows=max(400, int(4_000 * scale)),
        predict_rows=max(5_000, int(50_000 * scale)),
        workers_list=(1, 2, 4),
        per_row_cap=max(500, int(5_000 * scale)),
    )
    x_pred, _ = _synthetic(max(5_000, int(50_000 * scale)), seed=715517)
    x_train, y_train = _synthetic(max(400, int(4_000 * scale)), seed=20151231)
    forest = RandomForestClassifier(
        n_estimators=N_ESTIMATORS, max_depth=MAX_DEPTH, min_samples_leaf=2,
        seed=20151231,
    ).fit(x_train, y_train)
    benchmark(lambda: forest.predict_proba(x_pred))
    emit("BENCH_forest", _render(record) + ["", json.dumps(record)])
    flat = next(r for r in record["runs"] if r.get("traversal") == "flattened-batch")
    # The ISSUE-2 acceptance bar, relaxed only at tiny scales.
    if scale >= 0.999:
        assert flat["speedup_vs_per_row"] >= 5.0
    else:
        assert flat["speedup_vs_per_row"] >= 2.0


# -- standalone script -------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--train-rows", type=int, default=4_000)
    parser.add_argument("--predict-rows", type=int, default=50_000)
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--trees", type=int, default=N_ESTIMATORS)
    parser.add_argument("--max-depth", type=int, default=MAX_DEPTH)
    parser.add_argument("--repeats", type=int, default=1,
                        help="best-of-N timing repeats (default 1)")
    parser.add_argument("--per-row-cap", type=int, default=None,
                        help="cap rows scored by the slow per-row baseline")
    parser.add_argument("--json", type=Path, default=None,
                        help="also write the JSON record to this path")
    args = parser.parse_args(argv)

    record = run_matrix(
        train_rows=args.train_rows,
        predict_rows=args.predict_rows,
        workers_list=tuple(args.workers),
        n_estimators=args.trees,
        max_depth=args.max_depth,
        repeats=args.repeats,
        per_row_cap=args.per_row_cap,
    )
    print("\n".join(_render(record)), file=sys.stderr)
    print(json.dumps(record, indent=2))
    if args.json:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(record, indent=2) + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
