"""Forest throughput benchmark: training engines + flattened inference.

Tracks the ML half of the pipeline's hot path: training the
section-5.4 price forest and scoring every encrypted impression in
dataset D.

Two records:

* ``BENCH_forest_train.json`` (``train_matrix``) -- the **training
  engine matrix** over a feature-set-S-shaped matrix (the paper's
  section-5.1 cardinalities): the legacy one-hot exact splitter (the
  seed implementation, kept as ``best_classification_split_onehot``),
  the allocation-free exact splitter, and the pre-binned ``hist``
  engine, each at workers 1/N.  Asserted along the way: exact is
  bit-identical to legacy, hist is bit-identical across worker counts,
  and hist's holdout accuracy stays within a point of exact's.
* ``BENCH_forest.json`` (``run_matrix``) -- the original workers sweep
  + inference traversal sweep below.

Reports, as one JSON record (``BENCH_forest.json``):

* ``train_rows_per_sec`` per worker count (1/2/4 by default), with the
  bit-identical-to-sequential guarantee asserted along the way;
* ``predict_rows_per_sec`` per traversal mode -- naive per-row
  recursion, the index-partition node walk, and the flattened
  level-synchronous batch walk -- over >= 50k rows through a 60-tree,
  depth-18 forest (the paper's production shape);
* ``speedup_vs_per_row`` / ``speedup_vs_sequential`` so the acceptance
  bar (flattened >= 5x per-row recursion) is visible in the record;
* ``cpu_count`` and ``git_sha`` provenance, matching
  ``bench_parallel_analyzer``.

Two entry points:

* standalone script (no pytest needed)::

      PYTHONPATH=src python benchmarks/bench_forest.py \
          --train-rows 4000 --predict-rows 50000 --workers 1 2 4 \
          --json benchmarks/output/BENCH_forest.json

* pytest benchmark (scaled by ``REPRO_BENCH_SCALE``)::

      pytest benchmarks/bench_forest.py -s

As with ``bench_parallel_analyzer``, process-pool speedup is bounded by
hardware parallelism: on a 1-core box the workers>1 rows/sec can only
show pool overhead (fork + per-tree result pickling), never a win.  The
record carries ``cpu_count`` so readers can judge; the bit-identical
guarantee is asserted regardless of the core count.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.ml.forest import RandomForestClassifier
from repro.ml.serialize import dumps, forest_to_dict
from repro.ml.tree import _SplitSearch

try:  # package import under pytest, sibling import as a script
    from ._record import provenance
except ImportError:  # pragma: no cover - script mode
    from _record import provenance

#: The paper's production forest shape (section 5.4 / EncryptedPriceModel).
N_ESTIMATORS = 60
MAX_DEPTH = 18


def _synthetic(n_rows: int, n_features: int = 10, n_classes: int = 4,
               seed: int = 20151231) -> tuple[np.ndarray, np.ndarray]:
    """Ordinally-encoded-feature-like matrix with 4 learnable classes."""
    rng = np.random.default_rng(seed)
    x = np.column_stack(
        [rng.integers(0, rng.integers(3, 40), size=n_rows).astype(float)
         for _ in range(n_features)]
    )
    score = (
        0.8 * x[:, 0] / max(1.0, x[:, 0].max())
        + 0.6 * x[:, 1] / max(1.0, x[:, 1].max())
        + 0.3 * rng.normal(size=n_rows)
    )
    y = np.digitize(score, np.quantile(score, [0.25, 0.5, 0.75]))
    return x, y.astype(int)


def _time(fn, repeats: int = 1) -> tuple[float, object]:
    """Best-of-``repeats`` wall time."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


# -- training engine matrix ---------------------------------------------------

#: Paper section 5.1's selected feature set S with realistic
#: cardinalities: context, device_type, city, time_of_day, day_of_week,
#: slot_size, publisher_iab, adx.
S_CARDINALITIES = (2, 4, 50, 4, 7, 10, 25, 6)


def _feature_set_s(n_rows: int, seed: int = 20151231) -> tuple[np.ndarray, np.ndarray]:
    """Feature-set-S-shaped ordinal matrix with 4 learnable price classes.

    Price drivers mirror the paper's findings: city (fig 5), time of
    day (fig 6), IAB category (fig 11) and the ADX mix dominate.
    """
    rng = np.random.default_rng(seed)
    x = np.column_stack(
        [rng.integers(0, c, size=n_rows).astype(float) for c in S_CARDINALITIES]
    )
    score = (
        0.9 * (x[:, 2] / 49.0)
        + 0.5 * (x[:, 3] / 3.0)
        + 0.4 * (x[:, 6] / 24.0)
        + 0.3 * (x[:, 7] / 5.0)
        + 0.25 * rng.normal(size=n_rows)
    )
    y = np.digitize(score, np.quantile(score, [0.25, 0.5, 0.75]))
    return x, y.astype(int)


@contextmanager
def _legacy_onehot_splitter():
    """Swap the seed one-hot exact splitter back in (timing baseline).

    The seed engine called the one-hot splitter once per (node,
    candidate feature); the growth loop now routes through the batched
    ``best_classification_split_multi``, so the legacy baseline is
    restored by patching that entry with a per-column one-hot loop --
    reproducing the seed's per-call overhead profile as well as its
    arithmetic.  The pool workers see the patch too: fork happens at
    pool creation, after the class attribute is swapped.
    """

    def _onehot_multi(cols, y, n_classes, criterion, nan_free=False):
        return [
            _SplitSearch.best_classification_split_onehot(
                cols[:, j], y, n_classes, criterion
            )
            for j in range(cols.shape[1])
        ]

    original = _SplitSearch.__dict__["best_classification_split_multi"]
    _SplitSearch.best_classification_split_multi = staticmethod(  # type: ignore[method-assign]
        _onehot_multi
    )
    try:
        yield
    finally:
        _SplitSearch.best_classification_split_multi = original  # type: ignore[method-assign]


def train_matrix(
    train_rows: int = 50_000,
    eval_rows: int = 10_000,
    workers_list=(1, 4),
    n_estimators: int = N_ESTIMATORS,
    max_depth: int = MAX_DEPTH,
    repeats: int = 1,
) -> dict:
    """Time the three training engines over feature set S.

    Engines: ``exact-onehot-legacy`` (the seed splitter, patched back
    in), ``exact`` (allocation-free integer-count rewrite) and ``hist``
    (pre-binned histogram engine), the latter two across
    ``workers_list``.  Contracts asserted, not just reported:

    * exact == legacy bit for bit (same trees, same payload);
    * exact and hist are each bit-identical across worker counts;
    * hist holdout accuracy within one point of exact's (all S
      cardinalities are < 256, so hist scans the same candidate
      thresholds the exact engine does).
    """
    workers_list = tuple(sorted({1, *workers_list}))
    x_all, y_all = _feature_set_s(train_rows + eval_rows)
    x, y = x_all[:train_rows], y_all[:train_rows]
    x_eval, y_eval = x_all[train_rows:], y_all[train_rows:]

    def fit(splitter: str, workers: int) -> RandomForestClassifier:
        return RandomForestClassifier(
            n_estimators=n_estimators,
            max_depth=max_depth,
            min_samples_leaf=2,
            seed=20151231,
            workers=workers,
            splitter=splitter,
        ).fit(x, y)

    records: list[dict] = []

    with _legacy_onehot_splitter():
        legacy_s, legacy = _time(lambda: fit("exact", 1), repeats)
    legacy_payload = dumps(forest_to_dict(legacy))
    records.append(
        {
            "engine": "exact-onehot-legacy",
            "workers": 1,
            "seconds": round(legacy_s, 4),
            "train_rows_per_sec": round(train_rows / legacy_s, 1),
            "holdout_accuracy": round(
                float(np.mean(legacy.predict(x_eval) == y_eval)), 4
            ),
        }
    )

    timings: dict[tuple[str, int], float] = {}
    payloads: dict[tuple[str, int], str] = {}
    accuracy: dict[str, float] = {}
    for splitter in ("exact", "hist"):
        for workers in workers_list:
            t_s, forest = _time(lambda: fit(splitter, workers), repeats)
            timings[(splitter, workers)] = t_s
            payloads[(splitter, workers)] = dumps(forest_to_dict(forest))
            acc = float(np.mean(forest.predict(x_eval) == y_eval))
            accuracy[splitter] = acc
            records.append(
                {
                    "engine": splitter,
                    "workers": workers,
                    "seconds": round(t_s, 4),
                    "train_rows_per_sec": round(train_rows / t_s, 1),
                    "holdout_accuracy": round(acc, 4),
                    "speedup_vs_legacy": round(legacy_s / t_s, 2),
                }
            )

    # -- contracts ----------------------------------------------------------
    for workers in workers_list:
        assert payloads[("exact", workers)] == legacy_payload, (
            f"exact (workers={workers}) diverged from the legacy one-hot engine"
        )
    hist_reference = payloads[("hist", 1)]
    for workers in workers_list:
        assert payloads[("hist", workers)] == hist_reference, (
            f"hist workers={workers} diverged from sequential"
        )
    assert accuracy["hist"] >= accuracy["exact"] - 0.01, (
        f"hist accuracy {accuracy['hist']:.4f} fell more than a point below "
        f"exact {accuracy['exact']:.4f}"
    )

    return {
        "benchmark": "forest_train",
        "n_estimators": n_estimators,
        "max_depth": max_depth,
        "train_rows": train_rows,
        "eval_rows": eval_rows,
        "feature_cardinalities": list(S_CARDINALITIES),
        **provenance(),
        "speedups": {
            "exact_vs_legacy": round(legacy_s / timings[("exact", 1)], 2),
            "hist_vs_legacy": round(legacy_s / timings[("hist", 1)], 2),
            "hist_vs_exact": round(
                timings[("exact", 1)] / timings[("hist", 1)], 2
            ),
        },
        "runs": records,
    }


def _render_train(record: dict) -> list[str]:
    lines = [
        f"Price-forest training engines ({record['n_estimators']} trees, "
        f"max depth {record['max_depth']}, {record['train_rows']:,} rows, "
        f"feature set S, {record['cpu_count']} CPUs, git {record['git_sha']}):",
        "",
        f"{'engine':<22} {'workers':>7} {'seconds':>9} {'rows/sec':>12} "
        f"{'acc':>7} {'vs legacy':>9}",
    ]
    for run in record["runs"]:
        lines.append(
            f"{run['engine']:<22} {run['workers']:>7} {run['seconds']:>9.3f} "
            f"{run['train_rows_per_sec']:>12,.1f} "
            f"{run['holdout_accuracy']:>7.4f} "
            f"{str(run.get('speedup_vs_legacy', '')):>9}"
        )
    s = record["speedups"]
    lines += [
        "",
        f"exact vs legacy one-hot: {s['exact_vs_legacy']}x (bit-identical); "
        f"hist vs legacy: {s['hist_vs_legacy']}x; "
        f"hist vs exact: {s['hist_vs_exact']}x "
        "(hist bit-identical across workers; accuracy within a point).",
    ]
    return lines


def run_matrix(
    train_rows: int = 4_000,
    predict_rows: int = 50_000,
    workers_list=(1, 2, 4),
    n_estimators: int = N_ESTIMATORS,
    max_depth: int = MAX_DEPTH,
    repeats: int = 1,
    per_row_cap: int | None = None,
) -> dict:
    """Time training per worker count and inference per traversal mode.

    ``per_row_cap`` optionally bounds how many rows the (very slow)
    per-row recursive baseline scores; its rows/sec is measured on that
    subset and the speedup computed rate-to-rate, which favours the
    baseline if anything (no cold-start amortisation).
    """
    x_train, y_train = _synthetic(train_rows, seed=20151231)
    x_pred, _ = _synthetic(predict_rows, seed=715517)

    records: list[dict] = []

    # -- training: workers sweep, bit-identity asserted ---------------------
    def fit_with(workers: int) -> RandomForestClassifier:
        return RandomForestClassifier(
            n_estimators=n_estimators,
            max_depth=max_depth,
            min_samples_leaf=2,
            seed=20151231,
            workers=workers,
        ).fit(x_train, y_train)

    seq_s, forest = _time(lambda: fit_with(1), repeats)
    reference_payload = dumps(forest_to_dict(forest))
    records.append(
        {
            "phase": "train",
            "workers": 1,
            "seconds": round(seq_s, 4),
            "train_rows_per_sec": round(train_rows / seq_s, 1),
        }
    )
    for workers in workers_list:
        if workers == 1:
            continue
        par_s, par = _time(lambda w=workers: fit_with(w), repeats)
        assert dumps(forest_to_dict(par)) == reference_payload, (
            f"workers={workers} training diverged from sequential"
        )
        records.append(
            {
                "phase": "train",
                "workers": workers,
                "seconds": round(par_s, 4),
                "train_rows_per_sec": round(train_rows / par_s, 1),
                "speedup_vs_sequential": round(seq_s / par_s, 2),
            }
        )

    # -- inference: traversal sweep ----------------------------------------
    n_per_row = min(predict_rows, per_row_cap or predict_rows)
    per_row_s, per_row_out = _time(
        lambda: forest.predict_proba(x_pred[:n_per_row], traversal="per-row"),
        1,  # the naive path is too slow to repeat
    )
    per_row_rate = n_per_row / per_row_s
    records.append(
        {
            "phase": "predict",
            "traversal": "per-row-recursive",
            "rows": n_per_row,
            "seconds": round(per_row_s, 4),
            "predict_rows_per_sec": round(per_row_rate, 1),
        }
    )

    nodes_s, nodes_out = _time(
        lambda: forest.predict_proba(x_pred, traversal="nodes"), repeats
    )
    records.append(
        {
            "phase": "predict",
            "traversal": "node-walk-batch",
            "rows": predict_rows,
            "seconds": round(nodes_s, 4),
            "predict_rows_per_sec": round(predict_rows / nodes_s, 1),
            "speedup_vs_per_row": round((predict_rows / nodes_s) / per_row_rate, 2),
        }
    )

    flat_s, flat_out = _time(
        lambda: forest.predict_proba(x_pred, traversal="flat"), repeats
    )
    assert np.array_equal(flat_out, nodes_out), "flat diverged from node walk"
    assert np.array_equal(flat_out[:n_per_row], per_row_out), (
        "flat diverged from per-row recursion"
    )
    records.append(
        {
            "phase": "predict",
            "traversal": "flattened-batch",
            "rows": predict_rows,
            "seconds": round(flat_s, 4),
            "predict_rows_per_sec": round(predict_rows / flat_s, 1),
            "speedup_vs_per_row": round((predict_rows / flat_s) / per_row_rate, 2),
            "speedup_vs_node_walk": round(nodes_s / flat_s, 2),
        }
    )

    return {
        "benchmark": "forest",
        "n_estimators": n_estimators,
        "max_depth": max_depth,
        "fitted_depth_max": max(t.depth() for t in forest.trees_),
        "train_rows": train_rows,
        "predict_rows": predict_rows,
        **provenance(),
        "runs": records,
    }


def _render(record: dict) -> list[str]:
    lines = [
        f"Price-forest throughput ({record['n_estimators']} trees, "
        f"max depth {record['max_depth']}, {record['cpu_count']} CPUs, "
        f"git {record['git_sha']}):",
        "",
        f"{'phase':<8} {'config':<22} {'rows/sec':>12} {'speedup':>8}",
    ]
    for run in record["runs"]:
        config = (
            f"workers={run['workers']}" if run["phase"] == "train"
            else run["traversal"]
        )
        rate = run.get("train_rows_per_sec", run.get("predict_rows_per_sec"))
        speed = run.get("speedup_vs_sequential", run.get("speedup_vs_per_row", ""))
        lines.append(f"{run['phase']:<8} {config:<22} {rate:>12,.1f} {str(speed):>8}")
    lines.append("")
    lines.append(
        "train speedup: vs workers=1 (bit-identical output asserted); "
        "predict speedup: vs per-row recursive traversal."
    )
    return lines


# -- pytest entry points -----------------------------------------------------

def test_forest_training_engines():
    """CI smoke of the training-engine matrix (scaled by
    ``REPRO_BENCH_SCALE``); writes ``BENCH_forest_train.json``."""
    from .conftest import OUTPUT_DIR, bench_scale, emit

    scale = bench_scale()
    record = train_matrix(
        train_rows=max(2_000, int(50_000 * scale)),
        # Holdout stays full-size at every scale: scoring is cheap and
        # the accuracy-parity contract needs the binomial noise floor
        # well under the one-point tolerance.
        eval_rows=10_000,
        workers_list=(1, 4),
        n_estimators=max(12, int(N_ESTIMATORS * scale)),
        # Best-of-2 at full scale: single-CPU wall times swing by
        # ~+-20% run to run, and the acceptance bars compare ratios of
        # single measurements.  Minimum-of-N is the standard antidote.
        repeats=2 if scale >= 0.999 else 1,
    )
    emit("BENCH_forest_train", _render_train(record) + ["", json.dumps(record)])
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_forest_train.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )
    speedups = record["speedups"]
    # The acceptance bars, relaxed at smoke scales (fewer rows per node
    # means less sorting for the exact engines to lose).
    if scale >= 0.999:
        assert speedups["hist_vs_legacy"] >= 5.0
        assert speedups["exact_vs_legacy"] >= 1.5
    else:
        assert speedups["hist_vs_legacy"] >= 2.0
        assert speedups["exact_vs_legacy"] >= 1.1


def test_forest_throughput(benchmark):
    from .conftest import bench_scale, emit

    scale = bench_scale()
    record = run_matrix(
        train_rows=max(400, int(4_000 * scale)),
        predict_rows=max(5_000, int(50_000 * scale)),
        workers_list=(1, 2, 4),
        per_row_cap=max(500, int(5_000 * scale)),
    )
    x_pred, _ = _synthetic(max(5_000, int(50_000 * scale)), seed=715517)
    x_train, y_train = _synthetic(max(400, int(4_000 * scale)), seed=20151231)
    forest = RandomForestClassifier(
        n_estimators=N_ESTIMATORS, max_depth=MAX_DEPTH, min_samples_leaf=2,
        seed=20151231,
    ).fit(x_train, y_train)
    benchmark(lambda: forest.predict_proba(x_pred))
    emit("BENCH_forest", _render(record) + ["", json.dumps(record)])
    flat = next(r for r in record["runs"] if r.get("traversal") == "flattened-batch")
    # The ISSUE-2 acceptance bar, relaxed only at tiny scales.
    if scale >= 0.999:
        assert flat["speedup_vs_per_row"] >= 5.0
    else:
        assert flat["speedup_vs_per_row"] >= 2.0


# -- standalone script -------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--train-bench", action="store_true",
                        help="run the training-engine matrix (legacy "
                             "one-hot vs exact vs hist over feature set "
                             "S) instead of the throughput matrix")
    parser.add_argument("--train-rows", type=int, default=None,
                        help="default 4000 (throughput) / 50000 (train "
                             "bench)")
    parser.add_argument("--eval-rows", type=int, default=10_000,
                        help="holdout rows for the train bench's "
                             "accuracy parity check")
    parser.add_argument("--predict-rows", type=int, default=50_000)
    parser.add_argument("--workers", type=int, nargs="+", default=None,
                        help="default 1 2 4 (throughput) / 1 4 (train "
                             "bench)")
    parser.add_argument("--trees", type=int, default=N_ESTIMATORS)
    parser.add_argument("--max-depth", type=int, default=MAX_DEPTH)
    parser.add_argument("--repeats", type=int, default=1,
                        help="best-of-N timing repeats (default 1)")
    parser.add_argument("--per-row-cap", type=int, default=None,
                        help="cap rows scored by the slow per-row baseline")
    parser.add_argument("--json", type=Path, default=None,
                        help="also write the JSON record to this path")
    args = parser.parse_args(argv)

    if args.train_bench:
        record = train_matrix(
            train_rows=args.train_rows or 50_000,
            eval_rows=args.eval_rows,
            workers_list=tuple(args.workers or (1, 4)),
            n_estimators=args.trees,
            max_depth=args.max_depth,
            repeats=args.repeats,
        )
        print("\n".join(_render_train(record)), file=sys.stderr)
    else:
        record = run_matrix(
            train_rows=args.train_rows or 4_000,
            predict_rows=args.predict_rows,
            workers_list=tuple(args.workers or (1, 2, 4)),
            n_estimators=args.trees,
            max_depth=args.max_depth,
            repeats=args.repeats,
            per_row_cap=args.per_row_cap,
        )
        print("\n".join(_render(record)), file=sys.stderr)
    print(json.dumps(record, indent=2))
    if args.json:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(record, indent=2) + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
