"""Figure 15: CPM per IAB category -- dataset vs the two probe campaigns.

Paper finding: per category, the A2 cleartext campaign medians sit
above the 2015 dataset medians (time shift), and the A1 encrypted
campaign medians sit above both.
"""

import numpy as np

from repro.rtb.iab import FIGURE15_CATEGORIES
from repro.util.timeutil import month_of

from .conftest import emit


def test_fig15_iab_campaign_comparison(benchmark, analysis, campaign_a1, campaign_a2):
    def compute():
        dataset_groups: dict[str, list[float]] = {}
        for obs in analysis.cleartext():
            if obs.adx == "MoPub" and month_of(obs.timestamp) in (7, 8):
                dataset_groups.setdefault(obs.publisher_iab, []).append(obs.price_cpm)
        return dataset_groups, campaign_a1.prices_by_iab(), campaign_a2.prices_by_iab()

    dataset_groups, a1_groups, a2_groups = benchmark(compute)

    lines = [
        "Regenerated Figure 15 (median CPM per IAB: D 2-month MoPub slice vs",
        "A2 cleartext campaign vs A1 encrypted campaign):",
        "",
        f"{'IAB':<7} {'D 2015':>9} {'A2 clr 2016':>12} {'A1 enc 2016':>12}",
    ]
    wins_a2_over_d = wins_a1_over_a2 = comparable = 0
    for iab in FIGURE15_CATEGORIES:
        d = dataset_groups.get(iab)
        a1 = a1_groups.get(iab)
        a2 = a2_groups.get(iab)
        if not d or not a1 or not a2 or min(len(d), len(a1), len(a2)) < 5:
            continue
        comparable += 1
        md, m1, m2 = np.median(d), np.median(a1), np.median(a2)
        lines.append(f"{iab:<7} {md:>9.3f} {m2:>12.3f} {m1:>12.3f}")
        if m2 > md:
            wins_a2_over_d += 1
        if m1 > m2:
            wins_a1_over_a2 += 1

    lines.append("")
    lines.append(
        f"A2 median above D in {wins_a2_over_d}/{comparable} categories "
        "(paper: campaign prices higher due to 2015->2016 shift)"
    )
    lines.append(
        f"A1 (encrypted) median above A2 (cleartext) in "
        f"{wins_a1_over_a2}/{comparable} categories "
        "(paper: encrypted medians always higher)"
    )

    assert comparable >= 4
    assert wins_a2_over_d >= comparable - 1
    assert wins_a1_over_a2 >= comparable - 1
    emit("fig15_iab_campaign_comparison", lines)
