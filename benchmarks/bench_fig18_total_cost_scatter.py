"""Figure 18: per-user total cleartext vs total estimated encrypted cost.

Paper findings: ~20-25% of users cost similarly in both channels; a
large portion (~75%) is cleartext-dominant (cleartext still carries
most mobile volume); a small portion (~2%) costs 2-32x MORE in
encrypted form.
"""

import numpy as np

from .conftest import emit


def test_fig18_total_cost_scatter(benchmark, user_costs):
    def compute():
        both = [
            (c.cleartext_cpm, c.encrypted_estimated_cpm)
            for c in user_costs.values()
            if c.cleartext_cpm > 0 and c.encrypted_estimated_cpm > 0
        ]
        return np.array(both)

    pairs = benchmark(compute)
    clr, enc = pairs[:, 0], pairs[:, 1]
    ratio = enc / clr

    similar = float(np.mean((ratio >= 0.5) & (ratio <= 2.0)))
    clr_dominant = float(np.mean(ratio < 1.0))
    enc_heavy = float(np.mean(ratio >= 2.0))

    lines = ["Regenerated Figure 18 (total cleartext vs total encrypted per user):", ""]
    lines.append(f"users with both channels: {len(pairs)}")
    lines.append(f"{'enc/clr ratio':<16} {'share':>7}")
    for low, high, label in (
        (0.0, 0.25, "< 0.25"),
        (0.25, 0.5, "0.25-0.5"),
        (0.5, 1.0, "0.5-1"),
        (1.0, 2.0, "1-2"),
        (2.0, 32.0, "2-32"),
        (32.0, np.inf, ">= 32"),
    ):
        share = float(np.mean((ratio >= low) & (ratio < high)))
        lines.append(f"{label:<16} {share:>6.1%}")
    lines.append("")
    lines.append(f"similar cost in both channels (0.5-2x): {similar:.0%} (paper ~20-25%)")
    lines.append(f"cleartext-dominant users: {clr_dominant:.0%} (paper ~75%)")
    lines.append(f"users costing >=2x more encrypted: {enc_heavy:.1%} (paper ~2%)")

    assert clr_dominant > 0.5
    assert 0.05 < similar < 0.75
    assert enc_heavy < 0.15
    emit("fig18_total_cost_scatter", lines)
