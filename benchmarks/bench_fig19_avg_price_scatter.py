"""Figure 19: per-user AVERAGE price per impression, cleartext vs encrypted.

Paper findings: normalising by impressions delivered, cleartext
dominates below ~3 CPM/impression; a small portion (~2%) of users cost
up to 5x more per impression in encrypted form.
"""

import numpy as np

from .conftest import emit


def test_fig19_avg_price_scatter(benchmark, user_costs):
    def compute():
        both = [
            (c.avg_cleartext_cpm, c.avg_encrypted_cpm)
            for c in user_costs.values()
            if c.n_cleartext > 0 and c.n_encrypted > 0
        ]
        return np.array(both)

    pairs = benchmark(compute)
    avg_clr, avg_enc = pairs[:, 0], pairs[:, 1]
    ratio = avg_enc / avg_clr

    lines = [
        "Regenerated Figure 19 (avg price per impression: cleartext vs encrypted):",
        "",
        f"users with both channels: {len(pairs)}",
        f"median avg cleartext price: {np.median(avg_clr):.3f} CPM",
        f"median avg encrypted price: {np.median(avg_enc):.3f} CPM",
        f"median per-user enc/clr avg-price ratio: {np.median(ratio):.2f}",
        f"users with enc avg >= 3x clr avg: {float(np.mean(ratio >= 3)):.1%}",
        f"users with enc avg >= 5x clr avg: {float(np.mean(ratio >= 5)):.1%} (paper ~2% up to 5x)",
    ]

    # Shape: per-impression encrypted prices typically above cleartext
    # (the ~1.7x premium), extreme multiples rare.
    assert np.median(ratio) > 1.1
    assert float(np.mean(ratio >= 5)) < 0.10
    # Most cleartext averages sit in the low-CPM region (paper: <=3).
    assert float(np.mean(avg_clr <= 3.0)) > 0.7
    emit("fig19_avg_price_scatter", lines)
