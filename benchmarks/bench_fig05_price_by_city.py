"""Figure 5: charge-price distribution per city (sorted by city size).

Paper finding: larger cities show lower median prices but wider
fluctuation (5th-95th percentile spread).
"""

import numpy as np

from repro.stats.descriptive import summarize_groups
from repro.stats.textplot import percentile_box
from repro.trace.geography import CITIES_BY_SIZE

from .conftest import emit


def test_fig05_price_by_city(benchmark, analysis):
    def compute():
        return summarize_groups(analysis.prices_by("city"))

    summaries = benchmark(compute)

    lines = ["Regenerated Figure 5 (charge price percentiles per city):", ""]
    lines.append(
        f"{'city':<22} {'n':>7} {'p5':>7} {'p10':>7} {'p50':>7} {'p90':>7} "
        f"{'p95':>7} {'spread':>7}"
    )
    for city in CITIES_BY_SIZE:
        if city not in summaries:
            continue
        s = summaries[city]
        lines.append(
            f"{city:<22} {s.count:>7} {s.p5:>7.3f} {s.p10:>7.3f} {s.p50:>7.3f} "
            f"{s.p90:>7.3f} {s.p95:>7.3f} {s.spread:>7.3f}"
        )

    big = ["Madrid", "Barcelona"]
    small = [c for c in ("Priego de Cordoba", "Torello", "Villaviciosa de Odon")
             if c in summaries]
    big_median = np.mean([summaries[c].p50 for c in big])
    small_median = np.mean([summaries[c].p50 for c in small])
    big_rel_spread = np.mean([summaries[c].spread / summaries[c].p50 for c in big])
    small_rel_spread = np.mean([summaries[c].spread / summaries[c].p50 for c in small])

    lines.append("")
    lines.append(f"big-city median {big_median:.3f} vs small-town {small_median:.3f} CPM")
    lines.append(
        f"big-city relative spread {big_rel_spread:.2f} vs small-town "
        f"{small_rel_spread:.2f}"
    )
    lines.append("Paper: large cities -> lower medians, wider fluctuation.")

    assert big_median < small_median
    assert big_rel_spread > small_rel_spread

    groups = analysis.prices_by("city")
    ordered = {c: groups[c] for c in CITIES_BY_SIZE if c in groups}
    lines.append("")
    lines.extend(percentile_box(ordered, width=48))
    emit("fig05_price_by_city", lines)
