"""Figure 9: RTB share normalised by each OS's device population.

Paper finding: once normalised per device, Android and iOS receive
roughly equal RTB impressions, with the lead alternating month to
month.
"""

from collections import Counter

import numpy as np

from .conftest import emit


def test_fig09_os_share_normalized(benchmark, analysis, dataset_d):
    device_counts = Counter(u.device.os for u in dataset_d.users)

    def compute():
        monthly = analysis.monthly_os_counts()
        normalised = {}
        for month, counts in monthly.items():
            normalised[month] = {
                os_name: counts.get(os_name, 0) / device_counts[os_name]
                for os_name in ("Android", "iOS")
                if device_counts.get(os_name)
            }
        return normalised

    normalised = benchmark(compute)

    lines = ["Regenerated Figure 9 (RTB impressions per device, by OS):", ""]
    lines.append(f"{'month':>5} {'Android/dev':>12} {'iOS/dev':>10} {'ratio':>7}")
    ratios = []
    for month in sorted(normalised):
        android = normalised[month]["Android"]
        ios = normalised[month]["iOS"]
        ratio = android / ios if ios else float("inf")
        ratios.append(ratio)
        lines.append(f"{month:>5} {android:>12.2f} {ios:>10.2f} {ratio:>7.2f}")

    mean_ratio = float(np.mean(ratios))
    lines.append("")
    lines.append(f"mean per-device Android/iOS ratio: {mean_ratio:.2f}")
    lines.append("Paper: normalised shares are roughly equal, lead alternating.")

    # Shape: normalised ratio near 1 (far below the raw ~2x of Fig 8).
    assert 0.5 < mean_ratio < 2.0
    emit("fig09_os_share_normalized", lines)
