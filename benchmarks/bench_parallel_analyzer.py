"""Throughput benchmark: sequential vs sharded parallel analyzer.

Tracks the hottest path in the repo from this PR onward.  Reports, as
one JSON record per configuration:

* ``rows_per_sec`` -- weblog rows analysed per second;
* ``peak_observations`` -- observation count held at the end of the
  run (the analyzer's dominant retained state);
* ``speedup_vs_sequential`` -- relative to the single-pass sequential
  baseline measured in the same process.

Two entry points:

* standalone script (no pytest needed)::

      PYTHONPATH=src python benchmarks/bench_parallel_analyzer.py \
          --scale 0.4 --workers 1 2 4 --chunk-size 20000 \
          --json benchmarks/output/parallel_analyzer.json

* pytest benchmark (session dataset D fixtures)::

      pytest benchmarks/bench_parallel_analyzer.py -s

Also times the pre-refactor *dual-pass* layout (classify for the
histogram, re-classify for detection, re-classify in the feature
extractor) so the single-pass win is visible even on 1-core boxes,
where process-pool speedup is bounded by hardware parallelism (the
record carries ``cpu_count`` so readers can judge).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.analyzer.blacklist import default_blacklist

try:  # package import under pytest, sibling import as a script
    from ._record import provenance
except ImportError:  # pragma: no cover - script mode
    from _record import provenance
from repro.analyzer.detector import classify_rows, detect_notifications
from repro.analyzer.features import FeatureExtractor
from repro.analyzer.interests import PublisherDirectory
from repro.analyzer.parallel import analyze_parallel
from repro.analyzer.pipeline import WeblogAnalyzer


def _time_run(fn, repeats: int = 3) -> tuple[float, object]:
    """Best-of-``repeats`` wall time (resists noisy-neighbour skew)."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _dual_pass_baseline(rows, directory):
    """The pre-refactor analyzer layout: classify every domain thrice
    (traffic histogram, nURL detection, feature-extractor scan), then
    build the observation list -- exactly what ``analyze()`` did before
    the single-pass refactor."""
    blacklist = default_blacklist()
    analyzer = WeblogAnalyzer(directory, blacklist)
    traffic = classify_rows(rows, blacklist)
    notifications = list(detect_notifications(rows, blacklist))
    extractor = FeatureExtractor(
        rows, notifications, blacklist, directory, analyzer.geoip
    )
    observations = [
        analyzer._to_observation(det, extractor) for det in notifications
    ]
    return traffic, notifications, extractor, observations


def run_matrix(
    rows, directory, workers_list=(1, 2, 4), chunk_size=20_000, repeats=3
) -> dict:
    """Time every configuration over ``rows``; returns the JSON record."""
    rows = list(rows)  # pay materialisation once, outside the timings
    n_rows = len(rows)
    records = []

    legacy_s, _ = _time_run(
        lambda: _dual_pass_baseline(rows, directory), repeats
    )
    records.append(
        {
            "mode": "legacy-dual-pass",
            "workers": 1,
            "seconds": round(legacy_s, 4),
            "rows_per_sec": round(n_rows / legacy_s, 1),
        }
    )

    # Fresh analyzer per repeat so per-instance memo caches start cold,
    # matching the legacy and parallel runs.
    seq_s, seq = _time_run(
        lambda: WeblogAnalyzer(directory).analyze(rows), repeats
    )
    records.append(
        {
            "mode": "sequential-single-pass",
            "workers": 1,
            "seconds": round(seq_s, 4),
            "rows_per_sec": round(n_rows / seq_s, 1),
            "peak_observations": len(seq.observations),
            "speedup_vs_dual_pass": round(legacy_s / seq_s, 2),
        }
    )

    for workers in workers_list:
        par_s, par = _time_run(
            lambda w=workers: analyze_parallel(
                rows, directory, workers=w, chunk_size=chunk_size
            ),
            repeats,
        )
        assert par.observations == seq.observations, (
            f"parallel(workers={workers}) diverged from sequential result"
        )
        records.append(
            {
                "mode": "parallel",
                "workers": workers,
                "chunk_size": chunk_size,
                "seconds": round(par_s, 4),
                "rows_per_sec": round(n_rows / par_s, 1),
                "peak_observations": len(par.observations),
                "speedup_vs_sequential": round(seq_s / par_s, 2),
            }
        )

    return {
        "benchmark": "parallel_analyzer",
        "n_rows": n_rows,
        **provenance(),  # cpu_count + git_sha, shared record convention
        "runs": records,
    }


def _render(record: dict) -> list[str]:
    lines = [
        "Sharded parallel analyzer throughput "
        f"({record['n_rows']:,} rows, {record['cpu_count']} CPUs):",
        "",
        f"{'mode':<24} {'workers':>7} {'rows/sec':>12} {'speedup':>8}",
    ]
    for run in record["runs"]:
        speed = run.get("speedup_vs_sequential", run.get("speedup_vs_dual_pass", ""))
        lines.append(
            f"{run['mode']:<24} {run['workers']:>7} "
            f"{run['rows_per_sec']:>12,.1f} {str(speed):>8}"
        )
    lines.append("")
    lines.append(
        "speedup: vs the single-pass sequential baseline (the "
        "single-pass row shows its win over the legacy dual-pass)."
    )
    return lines


# -- pytest entry point ------------------------------------------------------

def test_parallel_analyzer_throughput(benchmark, dataset_d, directory):
    from .conftest import emit

    rows = list(dataset_d.rows)
    analyzer = WeblogAnalyzer(directory)
    seq = benchmark(lambda: analyzer.analyze(rows))
    record = run_matrix(rows, directory)
    emit("parallel_analyzer", _render(record) + ["", json.dumps(record)])
    for run in record["runs"]:
        if run["mode"] == "parallel":
            assert run["peak_observations"] == len(seq.observations)
    # Throughput accounting must cover every row exactly once.
    assert sum(seq.traffic_counts.values()) == len(rows)


# -- standalone script -------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.2,
                        help="fraction of paper-scale dataset D (default 0.2)")
    parser.add_argument("--seed", type=int, default=20151231)
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--chunk-size", type=int, default=20_000)
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing repeats (default 3)")
    parser.add_argument("--json", type=Path, default=None,
                        help="also write the JSON record to this path")
    args = parser.parse_args(argv)

    from repro.trace.simulate import default_config, simulate_dataset

    config = default_config()
    if args.scale < 0.999:
        config = config.scaled(args.scale)
    print(f"simulating dataset D at scale {args.scale}...", file=sys.stderr)
    dataset = simulate_dataset(config)
    directory = PublisherDirectory.from_universe(dataset.universe)

    record = run_matrix(
        dataset.rows, directory,
        workers_list=tuple(args.workers), chunk_size=args.chunk_size,
        repeats=args.repeats,
    )
    print("\n".join(_render(record)), file=sys.stderr)
    print(json.dumps(record, indent=2))
    if args.json:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(record, indent=2) + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
