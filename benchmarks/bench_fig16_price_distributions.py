"""Figure 16: CDFs of cleartext vs encrypted prices across datasets.

Paper findings: (1) A1's encrypted prices are distinctly dearer than
A2's cleartext ones (~1.7x at the median), refuting the prior-work
assumption of equality; (2) D's MoPub cleartext distribution tracks
D's overall cleartext distribution, so MoPub is a valid cleartext
representative; (3) A2 (2016) sits above D (2015): the time shift.
"""

import numpy as np

from repro.stats.distributions import median_ratio
from repro.stats.textplot import cdf_plot
from repro.util.timeutil import month_of

from .conftest import emit


def test_fig16_price_distributions(benchmark, analysis, campaign_a1, campaign_a2):
    def compute():
        d_all = np.array(analysis.cleartext_prices())
        d_mopub = np.array(
            [o.price_cpm for o in analysis.cleartext() if o.adx == "MoPub"]
        )
        d_mopub_2m = np.array(
            [
                o.price_cpm
                for o in analysis.cleartext()
                if o.adx == "MoPub" and month_of(o.timestamp) in (7, 8)
            ]
        )
        return d_all, d_mopub, d_mopub_2m, campaign_a1.prices(), campaign_a2.prices()

    d_all, d_mopub, d_mopub_2m, a1, a2 = benchmark(compute)

    series = {
        "A1-encrypted'16": a1,
        "A2-mopub'16": a2,
        "D-cleartext'15": d_all,
        "D-mopub'15": d_mopub,
        "D-mopub'15(2m)": d_mopub_2m,
    }
    lines = ["Regenerated Figure 16 (price distributions):", ""]
    lines.append(f"{'series':<18} {'n':>8} {'p10':>7} {'p50':>7} {'p90':>7}")
    for name, values in series.items():
        p10, p50, p90 = np.percentile(values, [10, 50, 90])
        lines.append(f"{name:<18} {len(values):>8} {p10:>7.3f} {p50:>7.3f} {p90:>7.3f}")

    enc_ratio = median_ratio(a1, a2)
    shift = median_ratio(a2, d_mopub)
    mopub_vs_all = median_ratio(d_mopub, d_all)
    lines.append("")
    lines.append(f"encrypted/cleartext median ratio (A1/A2): {enc_ratio:.2f} (paper ~1.7)")
    lines.append(f"2016/2015 cleartext shift (A2/D-mopub):   {shift:.2f} (paper: >1)")
    lines.append(f"D-mopub vs D-all cleartext medians:       {mopub_vs_all:.2f} (paper ~1)")

    assert 1.4 < enc_ratio < 2.1
    assert shift > 1.05
    assert 0.75 < mopub_vs_all < 1.3

    lines.append("")
    lines.extend(cdf_plot(series, width=64, height=12))
    emit("fig16_price_distributions", lines)
