"""Figure 6: charge-price distribution per time-of-day bucket.

Paper finding: early-morning-to-noon hours carry more high prices;
the time-of-day distributions are statistically different (two-sample
KS, p < 0.0002).
"""

from repro.stats.descriptive import summarize_groups
from repro.stats.ks import ks_two_sample
from repro.util.timeutil import TIME_OF_DAY_BUCKETS, hour_of

from .conftest import emit


def test_fig06_price_by_timeofday(benchmark, analysis):
    def compute():
        return summarize_groups(
            analysis.prices_by(lambda o: hour_of(o.timestamp) // 4)
        )

    summaries = benchmark(compute)

    lines = ["Regenerated Figure 6 (charge price per time of day):", ""]
    lines.append(f"{'bucket':<13} {'n':>8} {'p5':>7} {'p50':>7} {'p95':>7}")
    for bucket in range(6):
        s = summaries[bucket]
        lines.append(
            f"{TIME_OF_DAY_BUCKETS[bucket]:<13} {s.count:>8} {s.p5:>7.3f} "
            f"{s.p50:>7.3f} {s.p95:>7.3f}"
        )

    # Shape: morning (08-11) prices above the overnight trough (00-03).
    assert summaries[2].p50 > summaries[0].p50

    # KS test between the morning and night price samples.
    groups = analysis.prices_by(lambda o: hour_of(o.timestamp) // 4)
    ks = ks_two_sample(groups[2], groups[0])
    lines.append("")
    lines.append(
        f"KS(morning 08-11 vs night 00-03): D={ks.statistic:.3f}, "
        f"p={ks.pvalue:.2e}"
    )
    lines.append("Paper: distributions differ, p_tod < 0.0002.")
    assert ks.pvalue < 0.0002
    emit("fig06_price_by_timeofday", lines)
