"""Section 8 application: independent estimation of exchange revenues.

The paper's discussion proposes that "tax auditors could estimate
ad-companies' revenues, and detect discrepancies from their tax
declarations".  The reproduction can actually *audit the auditor*:
estimate every exchange's RTB revenue from the observed nURLs (summing
cleartext, modelling encrypted) and compare against the simulator's
private books.
"""

import numpy as np

from repro.core.cost import exchange_revenue_estimates
from repro.rtb.entities import ENCRYPTING_ADXS

from .conftest import emit


def test_sec8_tax_audit(benchmark, dataset_d, analysis, price_model):
    estimates = benchmark.pedantic(
        exchange_revenue_estimates, args=(analysis, price_model),
        rounds=1, iterations=1,
    )

    # Simulator-private books: true revenue per exchange.
    true_revenue: dict[str, float] = {}
    for imp in dataset_d.impressions:
        adx = imp.record.notification.adx
        true_revenue[adx] = true_revenue.get(adx, 0.0) + imp.charge_price_cpm

    lines = ["Section-8 application: exchange revenue audit:", ""]
    lines.append(
        f"{'exchange':<14} {'declared (true)':>16} {'audited (est.)':>15} {'error':>7}"
    )
    errors = {}
    for adx, revenue in sorted(
        estimates.items(), key=lambda kv: -kv[1].total_cpm
    ):
        truth = true_revenue.get(adx, 0.0)
        if truth <= 0:
            continue
        error = revenue.total_cpm / truth - 1.0
        errors[adx] = error
        lines.append(
            f"{adx:<14} {truth:>14.0f} {revenue.total_cpm:>15.0f} {error:>+7.1%}"
        )

    worst_encrypting = max(abs(errors[a]) for a in ENCRYPTING_ADXS if a in errors)
    lines.append("")
    lines.append(
        f"worst audit error among encrypting exchanges: {worst_encrypting:.1%}"
    )
    lines.append("Cleartext exchanges audit exactly; encrypting ones within the")
    lines.append("model's aggregate error -- the independent-revenue-estimation")
    lines.append("application the paper proposes is feasible.")

    # Cleartext-only exchanges must audit (nearly) exactly.
    for adx, error in errors.items():
        if adx not in ENCRYPTING_ADXS:
            assert abs(error) < 0.01
    # Encrypting exchanges audit within the model's aggregate error.
    assert worst_encrypting < 0.35
    emit("sec8_tax_audit", lines)
