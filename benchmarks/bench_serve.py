"""Serving throughput benchmark: micro-batched vs per-request estimation.

Tracks the serving half of the ISSUE-3 acceptance bar: rows/sec and
client-side p50/p99 latency through a real ``PmeServer`` socket under
concurrent load, with micro-batching **on** (``max_batch=32``) vs
**off** (``max_batch=1``).  PR 2's forest bench showed one flattened
``predict_proba`` call costs O(trees x depth) python-level work however
many rows ride along; the serve layer's batching queue is what converts
that property into request throughput, and this benchmark is the
record of how much.

One JSON record (``BENCH_serve.json``) carries, per configuration:
``rows_per_sec``, ``latency_p50_ms`` / ``latency_p99_ms`` (measured
client-side, so batching delay is included), the server-side mean batch
size, plus the shared ``_record.provenance()`` fields (``cpu_count``,
``git_sha``) and ``batched_speedup`` at the top level.

Two entry points:

* standalone script (no pytest needed)::

      PYTHONPATH=src python benchmarks/bench_serve.py \
          --requests 3000 --concurrency 32 \
          --json benchmarks/output/BENCH_serve.json

* pytest benchmark (scaled by ``REPRO_BENCH_SCALE``)::

      pytest benchmarks/bench_serve.py -s

The acceptance bar lives in the pytest entry: at concurrency >= 32 the
micro-batched configuration must out-throughput batching-off.  Unlike
the process-pool benches this holds on a 1-core box too -- batching
removes python-level forest walks from the request path instead of
adding parallelism.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

import numpy as np

from repro.core.price_model import EncryptedPriceModel
from repro.serve import PmeServer
from repro.serve.loadgen import run_load

try:  # package import under pytest, sibling import as a script
    from ._record import provenance
except ImportError:  # pragma: no cover - script mode
    from _record import provenance

#: The paper's production forest shape (section 5.4).
N_ESTIMATORS = 60
MAX_DEPTH = 18


def build_package(
    train_rows: int = 400,
    n_estimators: int = N_ESTIMATORS,
    max_depth: int = MAX_DEPTH,
    seed: int = 20151231,
) -> tuple[dict, dict]:
    """A packaged model at production shape + one feature row to score."""
    rng = np.random.default_rng(seed)
    vocab = {
        "context": ["app", "web"],
        "device_type": ["smartphone", "tablet", "desktop"],
        "city": [f"city-{i}" for i in range(20)],
        "slot_size": ["320x50", "300x250", "728x90", "160x600"],
        "publisher_iab": [f"IAB{i}" for i in range(1, 15)],
        "adx": [f"AdX-{i}" for i in range(4)],
    }
    rows = []
    for _ in range(train_rows):
        row = {k: v[int(rng.integers(0, len(v)))] for k, v in vocab.items()}
        row["time_of_day"] = int(rng.integers(0, 6))
        row["day_of_week"] = int(rng.integers(0, 7))
        rows.append(row)
    prices = np.exp(rng.normal(0.0, 1.0, size=train_rows)).tolist()
    model = EncryptedPriceModel.train(
        rows, prices, n_estimators=n_estimators, max_depth=max_depth,
        seed=seed,
    )
    package = model.to_package()
    package["time_correction"] = 1.17
    return package, rows[0]


async def _measure(
    package: dict,
    features: dict,
    *,
    max_batch: int,
    max_delay_ms: float,
    requests: int,
    concurrency: int,
) -> dict:
    server = PmeServer(
        package, max_batch=max_batch, max_delay_ms=max_delay_ms
    )
    await server.start(port=0)
    try:
        assert server.port is not None
        # Warm the path (connection setup, first forest walk) off-record.
        await run_load(
            "127.0.0.1", server.port,
            total=min(128, requests), concurrency=concurrency,
            features=features,
        )
        warm_flushes = sum(server.metrics.batch_histogram().values())
        result = await run_load(
            "127.0.0.1", server.port,
            total=requests, concurrency=concurrency, features=features,
        )
        flushes = sum(server.metrics.batch_histogram().values()) - warm_flushes
        assert result.errors == 0, f"{result.errors} estimate errors"
        return {
            "max_batch": max_batch,
            "max_delay_ms": max_delay_ms,
            "concurrency": concurrency,
            **result.summary(),
            "mean_batch_size": round(requests / flushes, 2) if flushes else 0.0,
        }
    finally:
        await server.stop()


def run_matrix(
    requests: int = 3_000,
    concurrency: int = 32,
    max_batch: int = 32,
    max_delay_ms: float = 2.0,
    train_rows: int = 400,
    n_estimators: int = N_ESTIMATORS,
    max_depth: int = MAX_DEPTH,
) -> dict:
    """Measure batching-off then batching-on over one packaged model."""
    package, features = build_package(
        train_rows=train_rows, n_estimators=n_estimators, max_depth=max_depth
    )

    async def scenario() -> list[dict]:
        off = await _measure(
            package, features,
            max_batch=1, max_delay_ms=0.0,
            requests=requests, concurrency=concurrency,
        )
        on = await _measure(
            package, features,
            max_batch=max_batch, max_delay_ms=max_delay_ms,
            requests=requests, concurrency=concurrency,
        )
        return [off, on]

    off, on = asyncio.run(scenario())
    off["config"] = "batching-off"
    on["config"] = "micro-batched"
    return {
        "benchmark": "serve",
        "n_estimators": n_estimators,
        "max_depth": max_depth,
        "requests": requests,
        "concurrency": concurrency,
        **provenance(),
        "batched_speedup": round(
            on["rows_per_sec"] / off["rows_per_sec"], 2
        ) if off["rows_per_sec"] else float("inf"),
        "runs": [off, on],
    }


def _render(record: dict) -> list[str]:
    lines = [
        f"PME serving throughput ({record['n_estimators']} trees, "
        f"max depth {record['max_depth']}, concurrency "
        f"{record['concurrency']}, {record['cpu_count']} CPUs, "
        f"git {record['git_sha']}):",
        "",
        f"{'config':<16} {'rows/sec':>10} {'p50 ms':>8} {'p99 ms':>8} "
        f"{'mean batch':>11}",
    ]
    for run in record["runs"]:
        lines.append(
            f"{run['config']:<16} {run['rows_per_sec']:>10,.1f} "
            f"{run['latency_p50_ms']:>8.2f} {run['latency_p99_ms']:>8.2f} "
            f"{run['mean_batch_size']:>11.2f}"
        )
    lines.append("")
    lines.append(
        f"micro-batched speedup over batching-off: "
        f"{record['batched_speedup']}x "
        "(latency measured client-side over real sockets, batching delay "
        "included)"
    )
    return lines


# -- pytest entry point ------------------------------------------------------

def test_serve_throughput(benchmark):
    from .conftest import bench_scale, emit

    scale = bench_scale()
    requests = max(500, int(3_000 * scale))
    record = run_matrix(requests=requests, concurrency=32)
    emit("BENCH_serve", _render(record) + ["", json.dumps(record)])

    package, features = build_package(train_rows=200, n_estimators=20,
                                      max_depth=10)

    def one_shot():
        async def run():
            return await _measure(
                package, features, max_batch=32, max_delay_ms=2.0,
                requests=200, concurrency=16,
            )

        return asyncio.run(run())

    benchmark(one_shot)

    on = next(r for r in record["runs"] if r["config"] == "micro-batched")
    off = next(r for r in record["runs"] if r["config"] == "batching-off")
    # ISSUE-3 acceptance bar: micro-batched throughput strictly above
    # the batching-off baseline at concurrency >= 32.
    assert on["rows_per_sec"] > off["rows_per_sec"], (
        f"micro-batching did not pay: {on['rows_per_sec']:.0f} <= "
        f"{off['rows_per_sec']:.0f} rows/sec"
    )
    assert on["mean_batch_size"] > 1.5, "requests never coalesced"


# -- standalone script -------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=3_000)
    parser.add_argument("--concurrency", type=int, default=32)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--max-delay-ms", type=float, default=2.0)
    parser.add_argument("--train-rows", type=int, default=400)
    parser.add_argument("--trees", type=int, default=N_ESTIMATORS)
    parser.add_argument("--max-depth", type=int, default=MAX_DEPTH)
    parser.add_argument("--json", type=Path, default=None,
                        help="also write the JSON record to this path")
    args = parser.parse_args(argv)

    record = run_matrix(
        requests=args.requests,
        concurrency=args.concurrency,
        max_batch=args.max_batch,
        max_delay_ms=args.max_delay_ms,
        train_rows=args.train_rows,
        n_estimators=args.trees,
        max_depth=args.max_depth,
    )
    print("\n".join(_render(record)), file=sys.stderr)
    print(json.dumps(record, indent=2))
    if args.json:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(record, indent=2) + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
