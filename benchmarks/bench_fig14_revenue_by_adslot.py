"""Figure 14: accumulated revenue per ad-slot size (Turn traffic).

Paper finding: thanks to their popularity, the 300x250 MPU and the
728x90 leaderboard accumulate most of Turn's RTB revenue (64.3% and
20.6% respectively).
"""

from repro.rtb.adslots import TURN_SIZES, sort_by_area

from .conftest import emit


def test_fig14_revenue_by_adslot(benchmark, analysis):
    def compute():
        revenue: dict[str, float] = {}
        for obs in analysis.cleartext():
            if obs.adx == "Turn" and obs.slot_size in TURN_SIZES:
                revenue[obs.slot_size] = revenue.get(obs.slot_size, 0.0) + obs.price_cpm
        return revenue

    revenue = benchmark(compute)
    total = sum(revenue.values())

    lines = ["Regenerated Figure 14 (Turn revenue share per slot size):", ""]
    lines.append(f"{'slot':<9} {'revenue CPM':>12} {'share':>8}")
    for slot in sort_by_area(list(revenue)):
        lines.append(
            f"{slot:<9} {revenue[slot]:>12.2f} {revenue[slot] / total:>7.1%}"
        )

    shares = {slot: r / total for slot, r in revenue.items()}
    top = max(shares, key=shares.get)
    lines.append("")
    lines.append(f"top earner: {top} with {shares[top]:.1%} of revenue")
    lines.append("Paper: MPU 64.3% and leaderboard 20.6% of Turn revenue.")

    # Shape: the MPU earns the largest share by a wide margin, and the
    # MPU + leaderboard together dominate.
    assert top == "300x250"
    assert shares["300x250"] > 0.35
    assert shares["300x250"] + shares.get("728x90", 0.0) > 0.5
    emit("fig14_revenue_by_adslot", lines)
