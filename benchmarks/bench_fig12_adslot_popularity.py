"""Figure 12: ad-slot size popularity through 2015.

Paper finding: the 300x250 MPU overtakes the 320x50 large mobile
banner around May 2015; the 728x90 leaderboard stays popular.
"""

from .conftest import emit


def test_fig12_adslot_popularity(benchmark, analysis):
    monthly = benchmark(analysis.monthly_slot_counts)

    focus = ("320x50", "300x250", "728x90")
    lines = ["Regenerated Figure 12 (slot-size share per month):", ""]
    lines.append(f"{'month':>5} " + " ".join(f"{s:>9}" for s in focus))
    shares: dict[int, dict[str, float]] = {}
    for month in sorted(monthly):
        counts = monthly[month]
        total = sum(counts.values())
        shares[month] = {s: counts.get(s, 0) / total for s in focus}
        lines.append(
            f"{month:>5} "
            + " ".join(f"{shares[month][s]:>8.1%}" for s in focus)
        )

    lines.append("")
    crossover = next(
        (m for m in sorted(shares) if shares[m]["300x250"] > shares[m]["320x50"]),
        None,
    )
    lines.append(f"300x250 overtakes 320x50 in month: {crossover}")
    lines.append("Paper: the MPU takes over from the banner around May 2015.")

    # Shape: banner leads early, MPU leads late, crossover mid-year.
    assert shares[1]["320x50"] > shares[1]["300x250"]
    assert shares[12]["300x250"] > shares[12]["320x50"]
    assert crossover is not None and 3 <= crossover <= 8
    # Leaderboard remains a visible slice all year.
    assert all(shares[m]["728x90"] > 0.03 for m in shares)
    emit("fig12_adslot_popularity", lines)
