"""Ablation: number of price classes (paper section 5.4).

The paper "repeated this process with more price classes (i.e., 5-10
groups) for higher granularity of price prediction, but the results
with 4 classes outperformed them."
"""

from repro.core.pme import PAPER_FEATURE_SET
from repro.core.price_model import EncryptedPriceModel

from .conftest import emit

CLASS_COUNTS = (3, 4, 6, 8)


MAX_ROWS = 6000


def _subsample(rows, prices, cap, seed):
    import numpy as _np

    if len(rows) <= cap:
        return rows, list(prices)
    picks = _np.random.default_rng(seed).choice(len(rows), size=cap, replace=False)
    return [rows[i] for i in picks], [prices[i] for i in picks]


def test_ablation_class_count(benchmark, campaign_a1):
    rows, prices = _subsample(
        campaign_a1.feature_rows(), list(campaign_a1.prices()), MAX_ROWS, 99
    )
    names = list(PAPER_FEATURE_SET) + ["os"]

    def evaluate():
        scores = {}
        for k in CLASS_COUNTS:
            model = EncryptedPriceModel.train(
                rows, prices, feature_names=names, n_classes=k, seed=99,
                n_estimators=30,
            )
            cv = model.cross_validate(rows, prices, n_folds=4, n_runs=1, seed=99)
            scores[k] = (cv.accuracy, cv.auc_roc)
        return scores

    scores = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    lines = ["Ablation: price-class count vs classifier quality:", ""]
    lines.append(f"{'classes':>8} {'accuracy':>9} {'AUCROC':>8} {'chance':>7}")
    for k in CLASS_COUNTS:
        acc, auc = scores[k]
        lines.append(f"{k:>8} {acc:>8.1%} {auc:>8.3f} {1/k:>6.1%}")
    lines.append("")
    lines.append("Paper: 4 classes outperform 5-10 class variants in accuracy;")
    lines.append("finer classes trade accuracy for granularity.")

    # Shape: accuracy decays as classes multiply; 4-class accuracy is
    # far above chance.
    assert scores[4][0] > scores[8][0]
    assert scores[4][0] > 2 * (1 / 4)
    assert scores[6][0] > scores[8][0] - 0.05
    emit("ablation_class_count", lines)
