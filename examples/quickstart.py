"""Quickstart: the whole methodology, end to end, in two minutes.

Simulates a scaled-down year of mobile browsing (dataset D), analyses
the weblog observer-side, runs the two probe ad-campaigns, trains the
encrypted-price model, computes every user's advertiser cost and
replays the most valuable user's traffic through a YourAdValue client.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import quickstart_pipeline
from repro.core.cost import CostDistribution
from repro.core.validation import validate_arpu


def main() -> None:
    print("Running the full pipeline at 5% scale (about a minute)...")
    result = quickstart_pipeline(seed=7, scale=0.05)

    dataset = result["dataset"]
    analysis = result["analysis"]
    pme = result["pme"]
    costs = result["costs"]

    print()
    print("=== dataset D (simulated) ===")
    for key, value in dataset.summary().items():
        print(f"  {key}: {value}")

    print()
    print("=== analyzer pass ===")
    print(f"  observations: {len(analysis.observations)}")
    print(f"  encrypted: {len(analysis.encrypted())}, cleartext: {len(analysis.cleartext())}")
    shares = analysis.entity_rtb_shares()
    top3 = list(shares.items())[:3]
    print("  top exchanges:", ", ".join(f"{a} {s:.1%}" for a, s in top3))

    print()
    print("=== probe campaigns & model ===")
    a1, a2 = pme.state.campaign_a1, pme.state.campaign_a2
    ratio = float(np.median(a1.prices()) / np.median(a2.prices()))
    print(f"  A1 (encrypted ADXs): {len(a1.impressions)} impressions, "
          f"median {np.median(a1.prices()):.2f} CPM")
    print(f"  A2 (MoPub cleartext): {len(a2.impressions)} impressions, "
          f"median {np.median(a2.prices()):.2f} CPM")
    print(f"  encrypted/cleartext median ratio: {ratio:.2f} (paper: ~1.7)")
    print(f"  time-correction coefficient: {pme.state.time_correction:.2f}")

    print()
    print("=== user costs (V_u = C_u + E_u) ===")
    dist = CostDistribution.from_costs(costs)
    print(f"  users with ad traffic: {len(costs)}")
    print(f"  median annual cost: {dist.median_total():.1f} CPM (paper: ~25)")
    print(f"  users under 100 CPM: {dist.fraction_below(100):.0%} (paper: ~73%)")
    validation = validate_arpu(dist.total)
    print(f"  extrapolated annual value (p25-p75): "
          f"${validation.extrapolated_low_usd:.2f}-"
          f"${validation.extrapolated_high_usd:.2f} (paper: $0.54-6.85)")

    print()
    print("=== YourAdValue client (most valuable user) ===")
    print(" ", result["summary"].headline())


if __name__ == "__main__":
    main()
