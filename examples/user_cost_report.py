"""User cost report: "how much do advertisers pay to reach you?"

The paper's section-6 scenario: given a year-long weblog and a trained
price model, compute every user's advertiser cost V_u = C_u + E_u,
rank the population, and extrapolate to whole-footprint dollar values
the way section 6.3 validates against platform ARPU.

Run:  python examples/user_cost_report.py
"""

from __future__ import annotations

import numpy as np

from repro.analyzer.interests import PublisherDirectory
from repro.analyzer.pipeline import WeblogAnalyzer
from repro.core.campaigns import run_campaign_a1, run_campaign_a2
from repro.core.cost import (
    CostDistribution,
    compute_user_costs,
    exchange_revenue_estimates,
)
from repro.core.reporting import render_regulator_report
from repro.core.pme import PAPER_FEATURE_SET, mopub_cleartext_prices
from repro.core.price_model import EncryptedPriceModel
from repro.core.validation import REPORTED_ARPU, validate_arpu
from repro.stats.distributions import median_ratio
from repro.trace.simulate import build_market, default_config, simulate_dataset
from repro.util.rng import RngRegistry

SCALE = 0.1


def main() -> None:
    config = default_config().scaled(SCALE)
    print(f"Simulating dataset D at {SCALE:.0%} scale "
          f"({config.n_users} users, ~{config.target_auctions:,} auctions)...")
    dataset = simulate_dataset(config)
    directory = PublisherDirectory.from_universe(dataset.universe)
    analysis = WeblogAnalyzer(directory).analyze(dataset.rows)

    print("Training the price model from probe campaigns...")
    market = build_market(config, RngRegistry(config.seed))
    a1 = run_campaign_a1(market, seed=11, auctions_per_setup=25)
    a2 = run_campaign_a2(market, seed=11, auctions_per_setup=25)
    rows = a1.feature_rows()
    model = EncryptedPriceModel.train(
        rows, list(a1.prices()),
        feature_names=list(PAPER_FEATURE_SET) + ["os"], seed=11,
    )
    correction = median_ratio(a2.prices(), mopub_cleartext_prices(analysis))

    costs = compute_user_costs(analysis, model, correction)
    dist = CostDistribution.from_costs(costs)

    print()
    print("=== population cost distribution (CPM per year) ===")
    for pct in (10, 25, 50, 75, 90, 99):
        print(f"  p{pct:<3} {np.percentile(dist.total, pct):>10.1f}")
    print(f"  max  {dist.total.max():>10.1f}")
    print(f"  users under 100 CPM: {dist.fraction_below(100):.0%}")
    print(f"  users in 1000-10000 CPM: {dist.fraction_in(1000, 10_000):.1%}")

    print()
    print("=== the ten most valuable users ===")
    ranked = sorted(costs.values(), key=lambda c: -c.total_cpm)[:10]
    print(f"  {'user':<10} {'total':>9} {'cleartext':>10} {'encrypted':>10} {'ads':>5}")
    for cost in ranked:
        print(f"  {cost.user_id:<10} {cost.total_cpm:>9.1f} "
              f"{cost.cleartext_corrected_cpm:>10.1f} "
              f"{cost.encrypted_estimated_cpm:>10.1f} {cost.n_impressions:>5}")

    print()
    print("=== extrapolation to whole-footprint value (section 6.3) ===")
    validation = validate_arpu(dist.total)
    print(f"  observed p25-p75: {validation.observed_p25_cpm:.1f}-"
          f"{validation.observed_p75_cpm:.1f} CPM "
          f"-> ${validation.extrapolated_low_usd:.2f}-"
          f"${validation.extrapolated_high_usd:.2f} per user-year "
          f"(multiplier {validation.multiplier:.0f}x)")
    for platform, (low, high) in REPORTED_ARPU.items():
        print(f"  reported ARPU, {platform}: ${low:.0f}-{high:.0f}")
    verdict = "agrees" if validation.agrees_with_market() else "DISAGREES"
    print(f"  -> extrapolation {verdict} with reported platform ARPU "
          "(order of magnitude)")

    print()
    print(render_regulator_report(exchange_revenue_estimates(analysis, model)))


if __name__ == "__main__":
    main()
