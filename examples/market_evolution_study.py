"""Market-evolution study: beyond the paper's 2015 snapshot.

Three what-if experiments the paper motivates but could not run:

1. **Retargeting** (section 5.3 defers it): a retargeting DSP joins the
   market and we measure the price lift on its audience -- the
   mechanism hypothesised to explain the encrypted-price premium.
2. **Encryption everywhere** (section 2.4's warning): what happens to
   observable transparency if the big cleartext exchanges flip to
   desktop-level encryption rates?
3. **First-price migration** (the industry's actual post-2017 move):
   does the estimation methodology survive the mechanism change?

Run:  python examples/market_evolution_study.py
"""

from __future__ import annotations

import numpy as np

from repro.core.campaigns import run_campaign_a2
from repro.core.pme import PAPER_FEATURE_SET
from repro.core.price_model import EncryptedPriceModel
from repro.rtb.bidding import Dsp, RetargetingEngine
from repro.rtb.campaign import Campaign
from repro.rtb.cookiesync import synced_uid
from repro.trace.population import build_population
from repro.trace.simulate import (
    build_desktop_policy,
    build_market,
    simulate_period,
    small_config,
)
from repro.trace.weblog import Weblog
from repro.util.rng import RngRegistry

AUDIENCE_IAB = "IAB22"


def retargeting_study() -> None:
    print("=== 1. retargeting (the paper's deferred future work) ===")
    config = small_config(seed=88)
    rngs = RngRegistry(config.seed)
    market = build_market(config, rngs)
    users = build_population(rngs.get("population"), config.n_users)

    # Audience = users whose dominant interest is shopping: the
    # retargeter's "abandoned cart" segment.  (Comparing against the
    # rest of the population includes a composition effect -- shopping
    # pages are dearer -- exactly as real retargeting premiums do.)
    audience = [u for u in users if u.interests.dominant == AUDIENCE_IAB] or users[:8]
    for user in audience:
        for adx in market.exchanges:
            market.sync_registry.sync(user.user_id, adx, "Retargeter")
    retargeter = Dsp(
        "Retargeter",
        RetargetingEngine(
            dsp_name="Retargeter",
            value_model=market.value_model,
            audience_uids=frozenset(synced_uid("Retargeter", u.user_id) for u in audience),
            boost=2.5,
        ),
        rngs.get("retargeter"),
        campaigns=[Campaign("rt", "ShopBrand", max_bid_cpm=60.0)],
    )
    weblog = Weblog(period=config.period, users=users,
                    universe=market.universe, policy=market.policy)
    simulate_period(market, users, config.period, config.target_auctions,
                    rngs, weblog, extra_dsps=[retargeter], config=config)

    audience_ids = {u.user_id for u in audience}
    targeted = [i.charge_price_cpm for i in weblog.impressions if i.user_id in audience_ids]
    others = [i.charge_price_cpm for i in weblog.impressions if i.user_id not in audience_ids]
    print(f"  audience: {len(audience)} shopping-interest users "
          f"({len(targeted)} impressions)")
    print(f"  median price, retargeted users: {np.median(targeted):.3f} CPM")
    print(f"  median price, other users:      {np.median(others):.3f} CPM")
    print(f"  -> retargeting lifts the audience's market price "
          f"{np.median(targeted) / np.median(others):.2f}x\n")


def encryption_everywhere_study() -> None:
    print("=== 2. encryption everywhere (section 2.4's warning) ===")
    config = small_config(seed=99)
    rngs = RngRegistry(config.seed)
    market = build_market(config, rngs)
    market.policy = build_desktop_policy(rngs.get("desktop-policy"))
    users = build_population(rngs.get("population"), config.n_users)
    weblog = Weblog(period=config.period, users=users,
                    universe=market.universe, policy=market.policy)
    simulate_period(market, users, config.period, config.target_auctions,
                    rngs, weblog, config=config)
    encrypted = sum(1 for i in weblog.impressions if i.is_encrypted)
    share = encrypted / max(1, weblog.n_impressions)
    print(f"  with desktop-level adoption, {share:.0%} of impressions hide "
          f"their price (mobile 2015: ~26%)")
    print("  -> cleartext tallying alone would miss most of the spend;")
    print("     the probe-campaign + model pipeline becomes essential.\n")


def first_price_study() -> None:
    print("=== 3. first-price migration (post-2017 industry shift) ===")
    results = {}
    for mechanism in ("second_price", "first_price"):
        config = small_config(seed=77)
        market = build_market(config, RngRegistry(config.seed))
        for exchange in market.exchanges.values():
            exchange.mechanism = mechanism
        campaign = run_campaign_a2(market, seed=77, auctions_per_setup=15)
        rows = campaign.feature_rows()
        model = EncryptedPriceModel.train(
            rows, list(campaign.prices()),
            feature_names=list(PAPER_FEATURE_SET) + ["os"],
            seed=77, n_estimators=20, max_depth=12,
        )
        cv = model.cross_validate(rows, list(campaign.prices()),
                                  n_folds=4, n_runs=1, seed=77)
        results[mechanism] = (float(np.median(campaign.prices())), cv.accuracy)
    for mechanism, (median, acc) in results.items():
        print(f"  {mechanism:<13} median charge {median:.3f} CPM, "
              f"model accuracy {acc:.0%}")
    uplift = results["first_price"][0] / results["second_price"][0]
    print(f"  -> charges rise {uplift:.2f}x without the runner-up discount;")
    print("     the estimation methodology is mechanism-agnostic.")


def main() -> None:
    retargeting_study()
    encryption_everywhere_study()
    first_price_study()


if __name__ == "__main__":
    main()
