"""YourAdValue live: watch your advertiser cost tick up as you browse.

Simulates the paper's Chrome-extension experience (Figure 20): a PME
back-end trains and publishes a model package; a client installs it,
then streams one user's day-by-day traffic through the monitor.  Every
detected win notification updates the toolbar; encrypted prices are
estimated locally with the shipped decision-tree model; and at the end
the user opts into contributing their anonymised cleartext prices back
to the platform.

Run:  python examples/youradvalue_live.py
"""

from __future__ import annotations

from collections import defaultdict

from repro.analyzer.interests import PublisherDirectory
from repro.analyzer.pipeline import WeblogAnalyzer
from repro.core.contributions import ContributionServer
from repro.core.reporting import render_transparency_report
from repro.core.pme import PriceModelingEngine, mopub_cleartext_prices
from repro.core.youradvalue import YourAdValue
from repro.trace.simulate import build_market, simulate_dataset, small_config
from repro.util.rng import RngRegistry
from repro.util.timeutil import from_epoch


def main() -> None:
    config = small_config(seed=2016)
    print("Back-end: simulating traffic and training the PME model...")
    dataset = simulate_dataset(config)
    directory = PublisherDirectory.from_universe(dataset.universe)
    analysis = WeblogAnalyzer(directory).analyze(dataset.rows)

    pme = PriceModelingEngine(seed=2016)
    pme.bootstrap(analysis, use_paper_features=True)
    market = build_market(config, RngRegistry(config.seed))
    pme.run_probe_campaigns(market, auctions_per_setup=15)
    pme.train_model(evaluate=False)
    pme.compute_time_correction(mopub_cleartext_prices(analysis))
    package = pme.package_model()
    print(f"  model package published (version {package['version']}, "
          f"{len(package['feature_names'])} features)")

    # Pick a reasonably active user to follow.
    activity = defaultdict(int)
    for imp in dataset.impressions:
        activity[imp.user_id] += 1
    user_id = sorted(activity, key=activity.get)[-3]
    rows = sorted(
        (r for r in dataset.rows if r.user_id == user_id),
        key=lambda r: r.timestamp,
    )
    print(f"\nClient: installing YourAdValue for user {user_id} "
          f"({len(rows)} requests across the year)\n")

    client = YourAdValue(package, directory)
    last_month = None
    for row in rows:
        entry = client.observe(row)
        if entry is None:
            continue
        month = from_epoch(row.timestamp).strftime("%Y-%m")
        if month != last_month:
            summary = client.summary()
            print(f"  [{month}] running total {summary.total_cpm:8.2f} CPM "
                  f"({summary.n_cleartext + summary.n_encrypted} ads)")
            last_month = month

    print()
    summary = client.summary()
    print("Toolbar popup:")
    print(" ", summary.headline())
    enc = [e for e in client.ledger if e.encrypted]
    if enc:
        print(f"  encrypted ads estimated locally: {len(enc)} "
              f"(avg {sum(e.amount_cpm for e in enc) / len(enc):.2f} CPM)")

    print()
    print(render_transparency_report(client.ledger, top_k=4))

    print("\nOpting into anonymous contribution...")
    server = ContributionServer(k_anonymity=1)
    accepted = server.submit_batch(client.contribution_records(),
                                   contributor_token=hash(user_id) & 0xFFFF)
    print(f"  {accepted} anonymised cleartext records accepted by the platform")
    released_rows, _ = server.training_rows()
    print(f"  {len(released_rows)} records releasable for PME retraining")
    model = pme.retrain_with_contributions(*server.training_rows())
    print(f"  PME retrained; client updates on next poll: "
          f"{client.check_for_update({**model.to_package(version=2), 'time_correction': 1.0})}")


if __name__ == "__main__":
    main()
