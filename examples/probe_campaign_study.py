"""Probe-campaign study: how an auditor prices the encrypted web.

The scenario of the paper's section 5: you can see that an exchange
delivered an ad, but the charge price on the wire is an opaque 28-byte
blob.  This example plays the auditor:

1. design the 144-setup campaign grid (Table 5) and size it with the
   margin-of-error arithmetic of section 5.2;
2. execute campaign A1 on the four encrypting exchanges and campaign
   A2 on MoPub (cleartext) against the simulated market;
3. compare the two price distributions (the ~1.7x finding);
4. train the 4-class Random Forest and report the section-5.4 metrics;
5. demonstrate price estimation for a handful of hypothetical
   impressions.

Run:  python examples/probe_campaign_study.py
"""

from __future__ import annotations

import numpy as np

from repro.core.campaigns import (
    build_probe_setups,
    run_campaign_a1,
    run_campaign_a2,
)
from repro.core.estimator import Estimator
from repro.core.pme import PAPER_FEATURE_SET
from repro.core.price_model import EncryptedPriceModel, regression_baseline
from repro.rtb.entities import ENCRYPTING_ADXS
from repro.stats.sampling import CampaignSizing
from repro.trace.simulate import build_market, default_config
from repro.util.rng import RngRegistry

AUCTIONS_PER_SETUP = 30   # scaled; the paper's sizing is 185


def main() -> None:
    print("=== 1. campaign design (Table 5 / section 5.2) ===")
    setups = build_probe_setups(tuple(ENCRYPTING_ADXS))
    print(f"  experimental setups: {len(setups)}")
    sizing = CampaignSizing.design(
        campaign_mean=1.84, campaign_std=2.15, within_campaign_std=0.693
    )
    print(f"  margin of error across {sizing.n_setups} setups: "
          f"{sizing.setup_margin:.2f} CPM at 95% CI")
    print(f"  impressions per campaign for a 0.1 CPM margin: "
          f"{sizing.impressions_per_campaign}")

    print()
    print("=== 2. executing campaigns against the simulated market ===")
    config = default_config().scaled(0.1)
    market = build_market(config, RngRegistry(config.seed))
    a1 = run_campaign_a1(market, seed=42, auctions_per_setup=AUCTIONS_PER_SETUP)
    a2 = run_campaign_a2(market, seed=42, auctions_per_setup=AUCTIONS_PER_SETUP)
    print(f"  A1 (DoubleClick/Rubicon/OpenX/PulsePoint, encrypted): "
          f"{len(a1.impressions)} impressions won")
    print(f"  A2 (MoPub, cleartext): {len(a2.impressions)} impressions won")

    print()
    print("=== 3. encrypted vs cleartext price distributions ===")
    for name, prices in (("A1 encrypted", a1.prices()), ("A2 cleartext", a2.prices())):
        p10, p50, p90 = np.percentile(prices, [10, 50, 90])
        print(f"  {name:<13} p10={p10:.2f}  p50={p50:.2f}  p90={p90:.2f} CPM")
    ratio = float(np.median(a1.prices()) / np.median(a2.prices()))
    print(f"  median ratio: {ratio:.2f}x  (paper: ~1.7x; prior work assumed 1.0x)")

    print()
    print("=== 4. training the 4-class price model ===")
    rows = a1.feature_rows()
    names = list(PAPER_FEATURE_SET) + ["os"]
    model = EncryptedPriceModel.train(
        rows, list(a1.prices()), feature_names=names, seed=42
    )
    cv = model.cross_validate(rows, list(a1.prices()), n_folds=5, n_runs=1, seed=42)
    print(f"  class representatives: "
          + ", ".join(f"{r:.2f}" for r in model.binner.representatives) + " CPM")
    print(f"  5-fold CV: accuracy {cv.accuracy:.1%}, precision {cv.precision:.1%}, "
          f"AUCROC {cv.auc_roc:.3f}")
    reg = regression_baseline(rows, list(a1.prices()), seed=42)
    print(f"  regression baseline RMSE: {reg.rmse_cpm:.2f} CPM "
          f"({reg.relative_rmse:.0%} of the mean) -> classification wins")

    print()
    print("=== 5. estimating hypothetical encrypted impressions ===")
    scenarios = [
        ("business site, iOS app, MPU, morning",
         dict(context="app", device_type="smartphone", city="Madrid",
              time_of_day=2, day_of_week=1, slot_size="300x250",
              publisher_iab="IAB3", adx="DoubleClick", os="iOS")),
        ("science site, Android web, banner, night",
         dict(context="web", device_type="smartphone", city="Madrid",
              time_of_day=0, day_of_week=6, slot_size="320x50",
              publisher_iab="IAB15", adx="OpenX", os="Android")),
        ("news site, tablet app, leaderboard, evening",
         dict(context="app", device_type="tablet", city="Barcelona",
              time_of_day=5, day_of_week=3, slot_size="728x90",
              publisher_iab="IAB12", adx="Rubicon", os="iOS")),
    ]
    estimator = Estimator(model)
    for label, features in scenarios:
        estimate = estimator.estimate_one(features)
        print(f"  {label:<45} -> {estimate:.2f} CPM")


if __name__ == "__main__":
    main()
