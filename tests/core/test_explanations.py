"""Tests for price-estimate explanations."""

import pytest

from repro.core.estimator import Estimator
from repro.core.price_model import EncryptedPriceModel


@pytest.fixture(scope="module")
def model():
    rows = []
    prices = []
    # Price determined by context and slot; other features are noise.
    for i in range(400):
        context = "app" if i % 2 else "web"
        slot = "300x250" if i % 3 == 0 else "320x50"
        price = 0.3 * (2.6 if context == "app" else 1.0)
        price *= 1.7 if slot == "300x250" else 1.0
        price *= 1.0 + 0.001 * (i % 7)
        rows.append({"context": context, "slot_size": slot, "noise": i % 5})
        prices.append(price)
    trained = EncryptedPriceModel.train(
        rows, prices, feature_names=["context", "slot_size", "noise"],
        n_estimators=10, max_depth=6, seed=1,
    )
    return Estimator(trained), rows


class TestExplanations:
    def test_explanation_matches_estimate(self, model):
        m, rows = model
        explanation = m.explain(rows[0])
        assert explanation["estimated_cpm"] == pytest.approx(m.estimate_one(rows[0]))

    def test_class_probabilities_sum_to_one(self, model):
        m, rows = model
        explanation = m.explain(rows[1])
        assert sum(explanation["class_probabilities"]) == pytest.approx(1.0)
        assert explanation["predicted_class"] == max(
            range(len(explanation["class_probabilities"])),
            key=explanation["class_probabilities"].__getitem__,
        )

    def test_decision_path_names_real_features(self, model):
        m, rows = model
        explanation = m.explain(rows[2])
        for step in explanation["decision_path"]:
            assert step["feature"] in m.feature_names
            assert isinstance(step["went_left"], bool)

    def test_top_features_are_the_informative_ones(self, model):
        m, rows = model
        explanation = m.explain(rows[0])
        top_names = [t["feature"] for t in explanation["top_features"][:2]]
        assert set(top_names) <= {"context", "slot_size", "noise"}
        assert "context" in top_names or "slot_size" in top_names

    def test_path_values_echo_the_row(self, model):
        m, rows = model
        row = rows[3]
        explanation = m.explain(row)
        for step in explanation["decision_path"]:
            assert step["value"] == row.get(step["feature"])
