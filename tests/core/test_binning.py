"""Tests for log-space price binning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binning import PriceBinner, fit_price_binner, loo_entropy


def lognormal_prices(n=2000, seed=0):
    rng = np.random.default_rng(seed)
    return rng.lognormal(mean=0.0, sigma=1.0, size=n)


class TestFit:
    def test_four_classes_by_default(self):
        binner = fit_price_binner(lognormal_prices())
        assert binner.n_classes == 4
        assert len(binner.cuts) == 3

    def test_classes_reasonably_balanced(self):
        binner = fit_price_binner(lognormal_prices())
        assert binner.balance() > 0.10

    def test_cuts_sorted(self):
        binner = fit_price_binner(lognormal_prices(), n_classes=5)
        assert list(binner.cuts) == sorted(binner.cuts)

    def test_representatives_increase_with_class(self):
        binner = fit_price_binner(lognormal_prices())
        reps = binner.representatives
        assert all(a < b for a, b in zip(reps, reps[1:]))

    def test_too_few_prices_rejected(self):
        with pytest.raises(ValueError):
            fit_price_binner([1.0, 2.0], n_classes=4)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            fit_price_binner([1.0, -1.0, 2.0, 3.0])

    def test_identical_prices_rejected(self):
        with pytest.raises(ValueError):
            fit_price_binner([2.0] * 10)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=6))
    def test_every_class_populated(self, n_classes):
        binner = fit_price_binner(lognormal_prices(seed=n_classes), n_classes=n_classes)
        assert all(c > 0 for c in binner.counts)


class TestAssign:
    def test_assignment_consistent_with_cuts(self):
        prices = lognormal_prices()
        binner = fit_price_binner(prices)
        labels = binner.assign(prices)
        for price, label in zip(prices[:200], labels[:200]):
            log_price = np.log(price)
            assert all(log_price > c for c in binner.cuts[:label])
            assert all(log_price <= c for c in binner.cuts[label:])

    def test_assign_one(self):
        binner = fit_price_binner(lognormal_prices())
        tiny = binner.assign_one(1e-6)
        huge = binner.assign_one(1e6)
        assert tiny == 0
        assert huge == binner.n_classes - 1

    def test_monotone_in_price(self):
        binner = fit_price_binner(lognormal_prices())
        grid = np.logspace(-3, 3, 50)
        labels = binner.assign(grid)
        assert all(a <= b for a, b in zip(labels, labels[1:]))

    def test_nonpositive_assignment_rejected(self):
        binner = fit_price_binner(lognormal_prices())
        with pytest.raises(ValueError):
            binner.assign([0.0])

    def test_estimate_maps_to_representatives(self):
        binner = fit_price_binner(lognormal_prices())
        out = binner.estimate([0, 3])
        assert out[0] == binner.representatives[0]
        assert out[1] == binner.representatives[3]

    def test_representative_inside_class_range(self):
        prices = lognormal_prices()
        binner = fit_price_binner(prices)
        labels = binner.assign(prices)
        for cls in range(binner.n_classes):
            members = prices[labels == cls]
            assert members.min() <= binner.representative(cls) <= members.max()


class TestSerialization:
    def test_roundtrip(self):
        binner = fit_price_binner(lognormal_prices())
        clone = PriceBinner.from_dict(binner.to_dict())
        prices = lognormal_prices(seed=9)
        assert np.array_equal(binner.assign(prices), clone.assign(prices))
        assert clone.representatives == binner.representatives


class TestLooEntropy:
    def test_balanced_binning_entropy_near_log_k(self):
        prices = lognormal_prices()
        binner = fit_price_binner(prices, n_classes=4)
        entropy = loo_entropy(prices, binner)
        assert 0.9 * np.log(4) < entropy < 1.5 * np.log(4)

    def test_more_classes_higher_entropy(self):
        prices = lognormal_prices()
        e4 = loo_entropy(prices, fit_price_binner(prices, 4))
        e8 = loo_entropy(prices, fit_price_binner(prices, 8))
        assert e8 > e4

    def test_needs_two_prices(self):
        binner = fit_price_binner(lognormal_prices())
        with pytest.raises(ValueError):
            loo_entropy([1.0], binner)
