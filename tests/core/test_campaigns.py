"""Tests for the probe ad-campaign planner and executor."""

import numpy as np
import pytest

from repro.core.campaigns import (
    PROBE_DSP_NAME,
    build_probe_setups,
    run_campaign_a1,
    run_campaign_a2,
)
from repro.rtb.adslots import CAMPAIGN_PHONE_SIZES, CAMPAIGN_TABLET_SIZES
from repro.rtb.entities import ENCRYPTING_ADXS
from repro.trace.geography import CAMPAIGN_CITIES
from repro.trace.simulate import build_market, small_config
from repro.util.rng import RngRegistry
from repro.util.timeutil import (
    CAMPAIGN_A1_PERIOD,
    CAMPAIGN_A2_PERIOD,
    hour_of,
    is_weekend,
)


class TestSetupGrid:
    def test_144_setups(self):
        setups = build_probe_setups(tuple(ENCRYPTING_ADXS))
        assert len(setups) == 144

    def test_ids_unique(self):
        setups = build_probe_setups(tuple(ENCRYPTING_ADXS))
        assert len({s.setup_id for s in setups}) == 144

    def test_covers_table5_vocabulary(self):
        setups = build_probe_setups(tuple(ENCRYPTING_ADXS))
        assert {s.city for s in setups} == set(CAMPAIGN_CITIES)
        assert {s.context for s in setups} == {"app", "web"}
        assert {s.day_type for s in setups} == {"weekday", "weekend"}
        assert {s.os for s in setups} == {"Android", "iOS"}
        assert {s.adx for s in setups} == set(ENCRYPTING_ADXS)

    def test_tablet_setups_use_tablet_formats(self):
        for setup in build_probe_setups(("MoPub",)):
            if setup.device_type == "tablet":
                assert setup.slot_size in CAMPAIGN_TABLET_SIZES
            else:
                assert setup.slot_size in CAMPAIGN_PHONE_SIZES

    def test_a2_targets_only_mopub(self):
        assert {s.adx for s in build_probe_setups(("MoPub",))} == {"MoPub"}


@pytest.fixture(scope="module")
def market():
    return build_market(small_config(), RngRegistry(small_config().seed))


@pytest.fixture(scope="module")
def a1(market):
    return run_campaign_a1(market, seed=11, auctions_per_setup=8)


@pytest.fixture(scope="module")
def a2(market):
    return run_campaign_a2(market, seed=11, auctions_per_setup=8)


class TestCampaignExecution:
    def test_wins_substantial_fraction(self, a1, a2):
        assert len(a1.impressions) > 100
        assert len(a2.impressions) > 400

    def test_a1_prices_positive(self, a1):
        assert (a1.prices() > 0).all()

    def test_impressions_respect_targeting(self, a1):
        setups = {s.setup_id: s for s in a1.setups}
        for imp in a1.impressions:
            setup = setups[imp.setup_id]
            req = imp.request
            assert req.geo.city == setup.city
            assert req.context == setup.context
            assert req.device.os == setup.os
            assert req.device.device_type == setup.device_type
            assert req.imp.slot_size.label == setup.slot_size
            assert req.adx == setup.adx
            assert is_weekend(req.timestamp) == (setup.day_type == "weekend")

    def test_timestamps_inside_campaign_window(self, a1, a2):
        for imp in a1.impressions:
            assert CAMPAIGN_A1_PERIOD.contains(imp.request.timestamp)
        for imp in a2.impressions:
            assert CAMPAIGN_A2_PERIOD.contains(imp.request.timestamp)

    def test_daypart_respected(self, a1):
        setups = {s.setup_id: s for s in a1.setups}
        for imp in a1.impressions:
            hour = hour_of(imp.request.timestamp)
            daypart = setups[imp.setup_id].daypart
            if daypart == "12am-9am":
                assert hour < 9
            elif daypart == "9am-6pm":
                assert 9 <= hour < 18
            else:
                assert hour >= 18

    def test_encrypted_channel_flags(self, a1, a2):
        assert all(i.encrypted_channel for i in a1.impressions)
        assert all(not i.encrypted_channel for i in a2.impressions)

    def test_encrypted_campaign_prices_higher(self, a1, a2):
        """Section 6.1: A1 medians exceed A2 medians (~1.7x)."""
        ratio = float(np.median(a1.prices()) / np.median(a2.prices()))
        assert 1.2 < ratio < 2.4

    def test_feature_rows_schema(self, a1):
        row = a1.feature_rows()[0]
        assert {
            "context", "device_type", "city", "time_of_day", "day_of_week",
            "slot_size", "publisher_iab", "adx", "os", "publisher",
        } <= set(row)

    def test_prices_by_iab_groups(self, a1):
        groups = a1.prices_by_iab()
        assert groups
        assert all(len(v) > 0 for v in groups.values())

    def test_summary_fields(self, a1):
        summary = a1.summary()
        assert summary["impressions"] == len(a1.impressions)
        assert summary["median_cpm"] > 0
        assert round(summary["period_days"]) == 13

    def test_policy_pins_probe_channel(self):
        # Fresh market: running A2 afterwards re-pins the probe's
        # channel, so the A1 policy must be asserted in isolation.
        fresh = build_market(small_config(), RngRegistry(3))
        run_campaign_a1(fresh, seed=5, auctions_per_setup=1)
        ts = CAMPAIGN_A1_PERIOD.start + 10
        for adx in ENCRYPTING_ADXS:
            assert fresh.policy.is_encrypted(adx, PROBE_DSP_NAME, ts)
        assert not fresh.policy.is_encrypted("MoPub", PROBE_DSP_NAME, ts)

    def test_impressions_per_setup_accounting(self, a1):
        counts = a1.impressions_per_setup()
        assert sum(counts.values()) == len(a1.impressions)
        assert len(counts) == 144
