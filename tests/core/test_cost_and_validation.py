"""Tests for per-user cost computation and the ARPU validation."""

import numpy as np
import pytest

from repro.core.cost import (
    CostDistribution,
    UserCost,
    compute_user_costs,
    estimation_accuracy,
)
from repro.core.validation import (
    REPORTED_ARPU,
    MarketFactors,
    extrapolate_user_value_usd,
    validate_arpu,
)


class TestUserCost:
    def make(self, clr=10.0, enc=5.0, tc=1.2):
        return UserCost(
            user_id="u1",
            cleartext_cpm=clr,
            cleartext_corrected_cpm=clr * tc,
            encrypted_estimated_cpm=enc,
            n_cleartext=20,
            n_encrypted=5,
        )

    def test_total_uses_corrected_cleartext(self):
        cost = self.make()
        assert cost.total_cpm == pytest.approx(10.0 * 1.2 + 5.0)
        assert cost.total_uncorrected_cpm == pytest.approx(15.0)

    def test_averages(self):
        cost = self.make()
        assert cost.avg_cleartext_cpm == pytest.approx(0.5)
        assert cost.avg_encrypted_cpm == pytest.approx(1.0)
        assert cost.n_impressions == 25

    def test_uplift(self):
        cost = self.make(clr=10, enc=6, tc=1.0)
        assert cost.encrypted_uplift == pytest.approx(0.6)

    def test_uplift_with_no_cleartext(self):
        cost = UserCost("u", 0.0, 0.0, 3.0, 0, 2)
        assert cost.encrypted_uplift == float("inf")
        assert UserCost("u", 0.0, 0.0, 0.0, 0, 0).encrypted_uplift == 0.0


class TestCostDistribution:
    def make_costs(self):
        costs = {}
        for i, (clr, enc) in enumerate([(10, 2), (50, 20), (200, 90), (1500, 400)]):
            costs[f"u{i}"] = UserCost(f"u{i}", clr, clr, enc, 10, 3)
        return costs

    def test_from_costs_arrays(self):
        dist = CostDistribution.from_costs(self.make_costs())
        assert dist.total.shape == (4,)
        assert dist.median_total() == pytest.approx(np.median(dist.total))

    def test_fractions(self):
        dist = CostDistribution.from_costs(self.make_costs())
        assert dist.fraction_below(100) == pytest.approx(0.5)
        assert dist.fraction_in(1000, 10_000) == pytest.approx(0.25)

    def test_uplift_mean(self):
        dist = CostDistribution.from_costs(self.make_costs())
        assert dist.average_encrypted_uplift() > 0


class TestMarketFactors:
    def test_default_multiplier_matches_paper(self):
        """8-102 CPM must extrapolate to ~$0.54-6.85 (section 6.3)."""
        factors = MarketFactors()
        low = extrapolate_user_value_usd(8.0, factors)
        high = extrapolate_user_value_usd(102.0, factors)
        assert low == pytest.approx(0.54, abs=0.03)
        assert high == pytest.approx(6.85, abs=0.3)

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValueError):
            MarketFactors(http_fraction=0.0)
        with pytest.raises(ValueError):
            MarketFactors(rtb_overhead=1.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            extrapolate_user_value_usd(-1.0)


class TestValidateArpu:
    def test_brackets_reported_platforms(self):
        rng = np.random.default_rng(0)
        costs = rng.lognormal(np.log(25), 1.3, 2000)
        validation = validate_arpu(costs)
        assert validation.observed_p25_cpm < validation.observed_p75_cpm
        assert validation.agrees_with_market()
        for band in REPORTED_ARPU.values():
            assert validation.brackets(band)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            validate_arpu([])


class TestComputeUserCosts:
    @pytest.fixture(scope="class")
    def pipeline(self):
        from repro.analyzer.interests import PublisherDirectory
        from repro.analyzer.pipeline import WeblogAnalyzer
        from repro.core.campaigns import run_campaign_a1
        from repro.core.price_model import EncryptedPriceModel
        from repro.trace.simulate import build_market, simulate_dataset, small_config
        from repro.util.rng import RngRegistry

        config = small_config()
        dataset = simulate_dataset(config)
        analyzer = WeblogAnalyzer(PublisherDirectory.from_universe(dataset.universe))
        analysis = analyzer.analyze(dataset.rows)
        market = build_market(config, RngRegistry(config.seed))
        campaign = run_campaign_a1(market, seed=21, auctions_per_setup=20)
        rows = campaign.feature_rows()
        model = EncryptedPriceModel.train(
            rows,
            list(campaign.prices()),
            feature_names=[k for k in rows[0] if k != "publisher"],
            seed=2,
            n_estimators=25,
            max_depth=12,
        )
        return dataset, analysis, model

    def test_costs_cover_active_users(self, pipeline):
        dataset, analysis, model = pipeline
        costs = compute_user_costs(analysis, model, time_correction=1.1)
        observed_users = {o.user_id for o in analysis.observations}
        assert set(costs) == observed_users

    def test_totals_consistent(self, pipeline):
        _, analysis, model = pipeline
        costs = compute_user_costs(analysis, model, time_correction=1.0)
        total_clr = sum(c.cleartext_cpm for c in costs.values())
        assert total_clr == pytest.approx(sum(analysis.cleartext_prices()), rel=1e-9)
        assert all(c.total_cpm >= c.cleartext_cpm for c in costs.values())

    def test_time_correction_scales_cleartext(self, pipeline):
        _, analysis, model = pipeline
        base = compute_user_costs(analysis, model, time_correction=1.0)
        corrected = compute_user_costs(analysis, model, time_correction=1.5)
        for uid in base:
            assert corrected[uid].cleartext_corrected_cpm == pytest.approx(
                1.5 * base[uid].cleartext_cpm
            )

    def test_bad_time_correction_rejected(self, pipeline):
        _, analysis, model = pipeline
        with pytest.raises(ValueError):
            compute_user_costs(analysis, model, time_correction=0.0)

    def test_estimation_accuracy_against_truth(self, pipeline):
        """The end-to-end check: estimated totals track true totals."""
        dataset, analysis, model = pipeline
        truth = {
            i.record.notification.encrypted_price: i.charge_price_cpm
            for i in dataset.impressions
            if i.is_encrypted
        }
        scores = estimation_accuracy(analysis, model, truth)
        assert scores["n"] > 100
        assert scores["class_accuracy"] > 0.5
        assert 0.5 < scores["total_ratio"] < 2.0
