"""Tests for the exchange-revenue audit (section-8 application)."""

import pytest

from repro.analyzer.interests import PublisherDirectory
from repro.analyzer.pipeline import WeblogAnalyzer
from repro.core.campaigns import run_campaign_a1
from repro.core.cost import exchange_revenue_estimates
from repro.core.price_model import EncryptedPriceModel
from repro.rtb.entities import ENCRYPTING_ADXS
from repro.trace.simulate import build_market, simulate_dataset, small_config
from repro.util.rng import RngRegistry


@pytest.fixture(scope="module")
def audited():
    config = small_config(seed=61)
    dataset = simulate_dataset(config)
    analysis = WeblogAnalyzer(
        PublisherDirectory.from_universe(dataset.universe)
    ).analyze(dataset.rows)
    market = build_market(config, RngRegistry(config.seed))
    campaign = run_campaign_a1(market, seed=61, auctions_per_setup=20)
    rows = campaign.feature_rows()
    model = EncryptedPriceModel.train(
        rows, list(campaign.prices()),
        feature_names=[k for k in rows[0] if k != "publisher"],
        seed=61, n_estimators=25, max_depth=12,
    )
    estimates = exchange_revenue_estimates(analysis, model)
    truth = {}
    for imp in dataset.impressions:
        adx = imp.record.notification.adx
        truth[adx] = truth.get(adx, 0.0) + imp.charge_price_cpm
    return estimates, truth


class TestExchangeRevenue:
    def test_every_observed_exchange_estimated(self, audited):
        estimates, truth = audited
        assert set(truth) == set(estimates)

    def test_cleartext_exchanges_audit_exactly(self, audited):
        estimates, truth = audited
        for adx, revenue in estimates.items():
            if adx not in ENCRYPTING_ADXS:
                assert revenue.encrypted_estimated_cpm == 0.0
                assert revenue.total_cpm == pytest.approx(truth[adx], rel=1e-4)

    def test_encrypting_exchanges_within_model_error(self, audited):
        estimates, truth = audited
        for adx in ENCRYPTING_ADXS:
            if adx not in estimates or truth.get(adx, 0) <= 0:
                continue
            ratio = estimates[adx].total_cpm / truth[adx]
            assert 0.5 < ratio < 1.8

    def test_counts_consistent(self, audited):
        estimates, _ = audited
        for revenue in estimates.values():
            assert revenue.n_cleartext >= 0
            assert revenue.n_encrypted >= 0
            if revenue.n_encrypted == 0:
                assert revenue.encrypted_estimated_cpm == 0.0
            assert revenue.total_usd == pytest.approx(revenue.total_cpm / 1000.0)
