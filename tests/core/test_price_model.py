"""Tests for the encrypted-price model and regression baseline."""

import json

import numpy as np
import pytest

from repro.core.campaigns import run_campaign_a1
from repro.core.price_model import EncryptedPriceModel, regression_baseline
from repro.trace.simulate import build_market, small_config
from repro.util.rng import RngRegistry


@pytest.fixture(scope="module")
def campaign():
    market = build_market(small_config(), RngRegistry(small_config().seed))
    return run_campaign_a1(market, seed=13, auctions_per_setup=25)


@pytest.fixture(scope="module")
def model(campaign):
    rows = campaign.feature_rows()
    names = [k for k in rows[0] if k != "publisher"]
    return EncryptedPriceModel.train(
        rows, list(campaign.prices()), feature_names=names, seed=5,
        n_estimators=30, max_depth=14,
    )


class TestTraining:
    def test_trains_and_estimates(self, campaign, model):
        rows = campaign.feature_rows()
        estimates = model.estimate(rows[:50])
        assert estimates.shape == (50,)
        assert (estimates > 0).all()

    def test_estimates_are_class_representatives(self, model, campaign):
        rows = campaign.feature_rows()[:100]
        estimates = model.estimate(rows)
        assert set(np.round(estimates, 9)) <= set(
            np.round(model.binner.representatives, 9)
        )

    def test_training_accuracy_high(self, campaign, model):
        rows = campaign.feature_rows()
        prices = campaign.prices()
        y = model.binner.assign(prices)
        pred = model.predict_class(rows)
        assert (pred == y).mean() > 0.8

    def test_estimate_correlates_with_truth(self, campaign, model):
        rows = campaign.feature_rows()
        prices = campaign.prices()
        estimates = model.estimate(rows)
        corr = np.corrcoef(np.log(estimates), np.log(prices))[0, 1]
        assert corr > 0.7

    def test_too_few_rows_rejected(self):
        with pytest.raises(ValueError):
            EncryptedPriceModel.train([{"a": 1}], [1.0])

    def test_length_mismatch_rejected(self, campaign):
        rows = campaign.feature_rows()
        with pytest.raises(ValueError):
            EncryptedPriceModel.train(rows, [1.0])

    def test_oob_score_populated(self, model):
        assert model.forest.oob_score_ is not None
        assert model.forest.oob_score_ > 0.5


class TestPackaging:
    def test_package_roundtrip_preserves_estimates(self, campaign, model):
        package = model.to_package()
        clone = EncryptedPriceModel.from_package(package)
        rows = campaign.feature_rows()[:100]
        assert np.allclose(model.estimate(rows), clone.estimate(rows))

    def test_package_is_json_serialisable(self, model):
        text = json.dumps(model.to_package())
        assert isinstance(json.loads(text), dict)

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError):
            EncryptedPriceModel.from_package({"kind": "nope"})

    def test_package_carries_version(self, model):
        assert model.to_package(version=3)["version"] == 3


class TestCrossValidation:
    def test_cv_protocol_scores(self, campaign, model):
        rows = campaign.feature_rows()
        prices = list(campaign.prices())
        result = model.cross_validate(rows, prices, n_folds=4, n_runs=1, seed=2)
        assert len(result.reports) == 4
        assert result.accuracy > 0.6
        assert result.auc_roc > 0.8


class TestRegressionBaseline:
    def test_regression_is_poor(self, campaign):
        """Section 5.4's negative result: regression on raw prices has
        high relative error compared to the classifier's granularity."""
        rows = campaign.feature_rows()
        result = regression_baseline(rows, list(campaign.prices()), seed=4)
        assert result.rmse_cpm > 0
        assert result.relative_rmse > 0.2

    def test_r2_bounded(self, campaign):
        rows = campaign.feature_rows()
        result = regression_baseline(rows, list(campaign.prices()), seed=4)
        assert result.r2 <= 1.0
