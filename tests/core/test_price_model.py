"""Tests for the encrypted-price model and regression baseline."""

import json

import numpy as np
import pytest

from repro.core.campaigns import run_campaign_a1
from repro.core.estimator import Estimator
from repro.core.price_model import EncryptedPriceModel, regression_baseline
from repro.trace.simulate import build_market, small_config
from repro.util.rng import RngRegistry


@pytest.fixture(scope="module")
def campaign():
    market = build_market(small_config(), RngRegistry(small_config().seed))
    return run_campaign_a1(market, seed=13, auctions_per_setup=25)


@pytest.fixture(scope="module")
def model(campaign):
    rows = campaign.feature_rows()
    names = [k for k in rows[0] if k != "publisher"]
    return EncryptedPriceModel.train(
        rows, list(campaign.prices()), feature_names=names, seed=5,
        n_estimators=30, max_depth=14,
    )


class TestTraining:
    def test_trains_and_estimates(self, campaign, model):
        rows = campaign.feature_rows()
        estimates = Estimator(model).estimate(rows[:50]).prices
        assert estimates.shape == (50,)
        assert (estimates > 0).all()

    def test_estimates_are_class_representatives(self, model, campaign):
        rows = campaign.feature_rows()[:100]
        estimates = Estimator(model).estimate(rows).prices
        assert set(np.round(estimates, 9)) <= set(
            np.round(model.binner.representatives, 9)
        )

    def test_training_accuracy_high(self, campaign, model):
        rows = campaign.feature_rows()
        prices = campaign.prices()
        y = model.binner.assign(prices)
        pred = model.predict_class(rows)
        assert (pred == y).mean() > 0.8

    def test_estimate_correlates_with_truth(self, campaign, model):
        rows = campaign.feature_rows()
        prices = campaign.prices()
        estimates = Estimator(model).estimate(rows).prices
        corr = np.corrcoef(np.log(estimates), np.log(prices))[0, 1]
        assert corr > 0.7

    def test_too_few_rows_rejected(self):
        with pytest.raises(ValueError):
            EncryptedPriceModel.train([{"a": 1}], [1.0])

    def test_length_mismatch_rejected(self, campaign):
        rows = campaign.feature_rows()
        with pytest.raises(ValueError):
            EncryptedPriceModel.train(rows, [1.0])

    def test_oob_score_populated(self, model):
        assert model.forest.oob_score_ is not None
        assert model.forest.oob_score_ > 0.5


class TestPackaging:
    def test_package_roundtrip_preserves_estimates(self, campaign, model):
        package = model.to_package()
        clone = EncryptedPriceModel.from_package(package)
        rows = campaign.feature_rows()[:100]
        assert np.allclose(
            Estimator(model).estimate(rows).prices,
            Estimator(clone).estimate(rows).prices,
        )

    def test_package_is_json_serialisable(self, model):
        text = json.dumps(model.to_package())
        assert isinstance(json.loads(text), dict)

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError):
            EncryptedPriceModel.from_package({"kind": "nope"})

    def test_package_carries_version(self, model):
        assert model.to_package(version=3)["version"] == 3


@pytest.mark.tier1
class TestTimeCorrectionRoundTrip:
    """Regression: the PME writes ``time_correction`` into the package;
    it must survive ``from_package`` and be applied to estimates (the
    pre-PR-3 bug silently dropped it on load)."""

    def test_fresh_model_is_neutral(self, model):
        assert model.time_correction == 1.0
        assert model.to_package()["time_correction"] == 1.0

    def test_coefficient_survives_the_round_trip(self, model):
        package = model.to_package()
        package["time_correction"] = 1.37          # what the PME stamps
        clone = EncryptedPriceModel.from_package(package)
        assert clone.time_correction == 1.37

    def test_loaded_model_estimates_are_time_corrected(self, campaign, model):
        package = model.to_package()
        package["time_correction"] = 1.37
        clone = EncryptedPriceModel.from_package(package)
        rows = campaign.feature_rows()[:50]
        assert np.allclose(
            Estimator(clone).estimate(rows).prices,
            Estimator(model).estimate(rows).prices * 1.37,
        )
        assert Estimator(clone).estimate_one(rows[0]) == pytest.approx(
            Estimator(model).estimate_one(rows[0]) * 1.37
        )

    def test_estimate_one_matches_batch_bitwise(self, campaign, model):
        package = model.to_package()
        package["time_correction"] = 1.37
        clone = EncryptedPriceModel.from_package(package)
        estimator = Estimator(clone)
        rows = campaign.feature_rows()[:32]
        batch = estimator.estimate(rows).prices
        assert [estimator.estimate_one(r) for r in rows] == list(batch)

    def test_explain_one_reports_corrected_price(self, campaign, model):
        package = model.to_package()
        package["time_correction"] = 1.37
        clone = EncryptedPriceModel.from_package(package)
        estimator = Estimator(clone)
        row = campaign.feature_rows()[0]
        explanation = estimator.explain(row)
        assert explanation["estimated_cpm"] == pytest.approx(
            estimator.estimate_one(row)
        )

    def test_legacy_package_defaults_to_neutral(self, model):
        package = model.to_package()
        del package["time_correction"]             # pre-PR-3 artefact
        clone = EncryptedPriceModel.from_package(package)
        assert clone.time_correction == 1.0

    def test_nonpositive_coefficient_rejected(self, model):
        package = model.to_package()
        package["time_correction"] = 0.0
        with pytest.raises(ValueError, match="time_correction"):
            EncryptedPriceModel.from_package(package)

    def test_pme_package_applies_state_coefficient(self, campaign):
        """End to end through the PME: package_model -> from_package."""
        from repro.core.pme import PriceModelingEngine

        pme = PriceModelingEngine(seed=3)
        pme.state.campaign_a1 = campaign
        raw_model = pme.train_model(
            feature_names=[k for k in campaign.feature_rows()[0]],
            evaluate=False,
        )
        pme.state.time_correction = 1.19
        loaded = EncryptedPriceModel.from_package(pme.package_model())
        row = campaign.feature_rows()[0]
        assert Estimator(loaded).estimate_one(row) == pytest.approx(
            Estimator(raw_model).estimate_one(row) * 1.19
        )


class TestCrossValidation:
    def test_cv_protocol_scores(self, campaign, model):
        rows = campaign.feature_rows()
        prices = list(campaign.prices())
        result = model.cross_validate(rows, prices, n_folds=4, n_runs=1, seed=2)
        assert len(result.reports) == 4
        assert result.accuracy > 0.6
        assert result.auc_roc > 0.8


class TestRegressionBaseline:
    def test_regression_is_poor(self, campaign):
        """Section 5.4's negative result: regression on raw prices has
        high relative error compared to the classifier's granularity."""
        rows = campaign.feature_rows()
        result = regression_baseline(rows, list(campaign.prices()), seed=4)
        assert result.rmse_cpm > 0
        assert result.relative_rmse > 0.2

    def test_r2_bounded(self, campaign):
        rows = campaign.feature_rows()
        result = regression_baseline(rows, list(campaign.prices()), seed=4)
        assert result.r2 <= 1.0
