"""Tests for the YourAdValue client and the contribution channel."""

import pytest

from repro.analyzer.interests import PublisherDirectory
from repro.core.contributions import ContributionError, ContributionServer
from repro.core.youradvalue import YourAdValue
from repro.core.campaigns import run_campaign_a1
from repro.core.price_model import EncryptedPriceModel
from repro.trace.simulate import build_market, simulate_dataset, small_config
from repro.util.rng import RngRegistry


@pytest.fixture(scope="module")
def environment():
    config = small_config()
    dataset = simulate_dataset(config)
    market = build_market(config, RngRegistry(config.seed))
    campaign = run_campaign_a1(market, seed=17, auctions_per_setup=15)
    rows = campaign.feature_rows()
    model = EncryptedPriceModel.train(
        rows,
        list(campaign.prices()),
        feature_names=[k for k in rows[0] if k != "publisher"],
        seed=9,
        n_estimators=20,
        max_depth=12,
    )
    package = model.to_package()
    directory = PublisherDirectory.from_universe(dataset.universe)
    return dataset, package, directory


@pytest.fixture()
def client(environment):
    dataset, package, directory = environment
    return YourAdValue(package, directory)


def rows_for_user(dataset, user_id):
    return [r for r in dataset.rows if r.user_id == user_id]


def busiest_user(dataset):
    from collections import Counter

    counts = Counter(i.user_id for i in dataset.impressions)
    return counts.most_common(1)[0][0]


class TestYourAdValue:
    def test_tallies_only_nurls(self, environment, client):
        dataset, _, _ = environment
        user = busiest_user(dataset)
        found = client.observe_many(rows_for_user(dataset, user))
        truth = sum(1 for i in dataset.impressions if i.user_id == user)
        assert found == truth
        assert len(client.ledger) == truth

    def test_cleartext_sums_match_truth(self, environment, client):
        dataset, _, _ = environment
        user = busiest_user(dataset)
        client.observe_many(rows_for_user(dataset, user))
        summary = client.summary()
        truth_clr = sum(
            i.charge_price_cpm
            for i in dataset.impressions
            if i.user_id == user and not i.is_encrypted
        )
        assert summary.cleartext_cpm == pytest.approx(truth_clr, rel=1e-4)

    def test_encrypted_entries_are_estimates(self, environment, client):
        dataset, _, _ = environment
        user = busiest_user(dataset)
        client.observe_many(rows_for_user(dataset, user))
        enc_entries = [e for e in client.ledger if e.encrypted]
        assert enc_entries
        assert all(e.estimated and e.amount_cpm > 0 for e in enc_entries)

    def test_estimated_encrypted_total_tracks_truth(self, environment, client):
        dataset, _, _ = environment
        user = busiest_user(dataset)
        client.observe_many(rows_for_user(dataset, user))
        truth_enc = sum(
            i.charge_price_cpm
            for i in dataset.impressions
            if i.user_id == user and i.is_encrypted
        )
        if truth_enc > 1.0:
            estimated = client.summary().encrypted_estimated_cpm
            assert 0.3 * truth_enc < estimated < 3.0 * truth_enc

    def test_headline_mentions_counts(self, environment, client):
        dataset, _, _ = environment
        user = busiest_user(dataset)
        client.observe_many(rows_for_user(dataset, user))
        headline = client.summary().headline()
        assert "Advertisers paid" in headline
        assert "CPM" in headline

    def test_notifications_drain(self, environment, client):
        dataset, _, _ = environment
        user = busiest_user(dataset)
        client.observe_many(rows_for_user(dataset, user))
        first = client.drain_notifications()
        assert first
        assert client.drain_notifications() == []

    def test_content_rows_ignored(self, environment, client):
        dataset, _, _ = environment
        content = [r for r in dataset.rows if r.kind == "content"][:200]
        assert client.observe_many(content) == 0

    def test_model_update_only_upgrades(self, environment, client):
        _, package, _ = environment
        same = dict(package)
        assert not client.check_for_update(same)
        newer = dict(package)
        newer["version"] = 2
        assert client.check_for_update(newer)
        assert client.model_version == 2

    def test_contribution_records_are_anonymous(self, environment, client):
        dataset, _, _ = environment
        user = busiest_user(dataset)
        client.observe_many(rows_for_user(dataset, user))
        records = client.contribution_records()
        assert records
        for record in records:
            assert "user_id" not in record
            assert "url" not in record
            assert record["price_cpm"] > 0


class TestContributionServer:
    def good_record(self, **overrides):
        record = {
            "adx": "MoPub",
            "dsp": "Criteo-DSP",
            "slot_size": "300x250",
            "publisher_iab": "IAB12",
            "hour_of_day": 10,
            "day_of_week": 2,
            "price_cpm": 0.8,
        }
        record.update(overrides)
        return record

    def test_accepts_valid_record(self):
        server = ContributionServer()
        assert server.submit(self.good_record(), contributor_token=1)

    def test_rejects_identifying_fields(self):
        server = ContributionServer()
        with pytest.raises(ContributionError, match="identifying"):
            server.submit(self.good_record(user_id="u1"), 1)

    def test_rejects_unknown_fields(self):
        server = ContributionServer()
        with pytest.raises(ContributionError, match="unknown"):
            server.submit(self.good_record(extra="x"), 1)

    def test_rejects_implausible_price(self):
        server = ContributionServer()
        with pytest.raises(ContributionError):
            server.submit(self.good_record(price_cpm=1e9), 1)
        with pytest.raises(ContributionError):
            server.submit(self.good_record(price_cpm="free"), 1)

    def test_k_anonymity_gate(self):
        server = ContributionServer(k_anonymity=3)
        for token in (1, 2):
            server.submit(self.good_record(), token)
        rows, prices = server.training_rows()
        assert rows == []
        server.submit(self.good_record(), 3)
        rows, prices = server.training_rows()
        assert len(rows) == 3
        assert all(p == 0.8 for p in prices)

    def test_same_contributor_does_not_satisfy_k(self):
        server = ContributionServer(k_anonymity=2)
        for _ in range(5):
            server.submit(self.good_record(), contributor_token=42)
        assert server.training_rows()[0] == []

    def test_batch_submission_counts(self):
        server = ContributionServer()
        batch = [self.good_record(), self.good_record(price_cpm=-5)]
        assert server.submit_batch(batch, 1) == 1

    def test_stats(self):
        server = ContributionServer()
        server.submit(self.good_record(), 1)
        stats = server.stats
        assert stats["accepted"] == 1
        assert stats["stored"] == 1

    def test_training_rows_schema(self):
        server = ContributionServer(k_anonymity=1)
        server.submit(self.good_record(), 1)
        rows, _ = server.training_rows()
        assert rows[0]["time_of_day"] == 2  # hour 10 -> bucket 2
        assert rows[0]["adx"] == "MoPub"
