"""K-anonymity release dynamics and O(1) stats bookkeeping.

The contribution server quarantines each (ADX, IAB) group until
``k_anonymity`` *distinct* contributors have reported it, then releases
the whole backlog retroactively.  These tests pin down the release
dynamics at the boundary and gate the incrementally-maintained
``stats["releasable"]`` counter against the ground-truth scan.
"""

import pytest

from repro.core.contributions import ContributionError, ContributionServer


def record(adx="MoPub", iab="IAB12", price=0.8, **overrides):
    base = {
        "adx": adx,
        "dsp": "Criteo-DSP",
        "slot_size": "300x250",
        "publisher_iab": iab,
        "hour_of_day": 10,
        "day_of_week": 2,
        "price_cpm": price,
    }
    base.update(overrides)
    return base


def releasable_by_scan(server: ContributionServer) -> int:
    return len(server.training_rows()[0])


class TestReleaseDynamics:
    def test_group_quarantined_below_k(self):
        server = ContributionServer(k_anonymity=3)
        for token in (1, 2):
            for _ in range(4):
                server.submit(record(), token)
        assert server.stats["stored"] == 8
        assert server.stats["releasable"] == 0
        assert releasable_by_scan(server) == 0

    def test_released_exactly_at_kth_distinct_token(self):
        server = ContributionServer(k_anonymity=3)
        server.submit(record(price=0.5), 1)
        server.submit(record(price=0.6), 1)    # same token: still 1 distinct
        server.submit(record(price=0.7), 2)
        assert server.stats["releasable"] == 0

        # The k-th distinct contributor releases the entire backlog
        # retroactively, earlier records included.
        server.submit(record(price=0.9), 3)
        assert server.stats["releasable"] == 4
        rows, prices = server.training_rows()
        assert sorted(prices) == [0.5, 0.6, 0.7, 0.9]

    def test_post_release_records_release_immediately(self):
        server = ContributionServer(k_anonymity=2)
        server.submit(record(), 1)
        server.submit(record(), 2)             # releases the group
        assert server.stats["releasable"] == 2
        server.submit(record(), 1)             # already-public group
        assert server.stats["releasable"] == 3

    def test_groups_release_independently(self):
        server = ContributionServer(k_anonymity=2)
        server.submit(record(iab="IAB1"), 1)
        server.submit(record(iab="IAB1"), 2)
        server.submit(record(iab="IAB2"), 1)   # still quarantined
        assert server.stats["releasable"] == 2
        rows, _ = server.training_rows()
        assert {r["publisher_iab"] for r in rows} == {"IAB1"}
        server.submit(record(iab="IAB2"), 9)
        assert server.stats["releasable"] == 4

    def test_adx_is_part_of_the_group_key(self):
        server = ContributionServer(k_anonymity=2)
        server.submit(record(adx="MoPub"), 1)
        server.submit(record(adx="AdX"), 2)    # different group entirely
        assert server.stats["releasable"] == 0

    def test_rejected_records_never_count_anywhere(self):
        server = ContributionServer(k_anonymity=1)
        with pytest.raises(ContributionError):
            server.submit(record(price=-1.0), 1)
        with pytest.raises(ContributionError):
            server.submit(record(user_id="u1"), 2)
        assert server.stats == {
            "accepted": 0, "rejected": 2, "stored": 0, "releasable": 0,
        }


@pytest.mark.tier1
class TestStatsConsistency:
    def test_incremental_releasable_matches_scan_throughout(self):
        """The O(1) counter equals the O(n) ground truth after every
        submit, across interleaved groups, duplicate tokens, rejects."""
        server = ContributionServer(k_anonymity=3)
        script = [
            (record(iab="IAB1"), 1),
            (record(iab="IAB1"), 1),
            (record(iab="IAB2"), 1),
            (record(iab="IAB1"), 2),
            (record(iab="IAB2"), 2),
            (record(iab="IAB1"), 3),     # IAB1 crosses k=3 here
            (record(iab="IAB1"), 4),
            (record(iab="IAB2"), 3),     # IAB2 crosses k=3 here
            (record(iab="IAB2"), 3),
            (record(iab="IAB3"), 5),
        ]
        for rec, token in script:
            server.submit(rec, token)
            assert server.stats["releasable"] == releasable_by_scan(server)

    def test_stats_is_constant_time_no_scan(self):
        """`stats` must not rebuild training rows (the /metrics path)."""
        server = ContributionServer(k_anonymity=1)
        for i in range(100):
            server.submit(record(price=0.1 + i * 0.001), i)
        calls = 0
        original = server.training_rows

        def counting():
            nonlocal calls
            calls += 1
            return original()

        server.training_rows = counting
        stats = server.stats
        assert calls == 0
        assert stats["releasable"] == 100


class TestBatchAccounting:
    def test_partial_failure_accounting_consistent(self):
        """`submit_batch` returns accepted; `stats` carries the rejects,
        and accepted + rejected always equals what was submitted."""
        server = ContributionServer(k_anonymity=1)
        batch = [
            record(price=0.5),
            record(price=-5.0),              # implausible
            record(price=0.7),
            record(user_id="u9"),            # identifying
            record(extra_field=1),           # unknown field
            record(price=0.9),
        ]
        accepted = server.submit_batch(batch, contributor_token=1)
        assert accepted == 3
        stats = server.stats
        assert stats["accepted"] == 3
        assert stats["rejected"] == 3
        assert accepted + stats["rejected"] == len(batch)
        assert stats["stored"] == accepted
        assert stats["releasable"] == releasable_by_scan(server) == 3

    def test_batches_accumulate_across_calls(self):
        server = ContributionServer(k_anonymity=2)
        assert server.submit_batch([record(), record(price=-1)], 1) == 1
        assert server.submit_batch([record()], 2) == 1
        stats = server.stats
        assert stats["accepted"] == 2
        assert stats["rejected"] == 1
        assert stats["releasable"] == 2 == releasable_by_scan(server)
