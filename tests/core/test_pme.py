"""Tests for the Price Modeling Engine lifecycle."""

import pytest

from repro.analyzer.interests import PublisherDirectory
from repro.analyzer.pipeline import WeblogAnalyzer
from repro.core.pme import (
    PAPER_FEATURE_SET,
    PriceModelingEngine,
    mopub_cleartext_prices,
)
from repro.trace.simulate import build_market, simulate_dataset, small_config
from repro.util.rng import RngRegistry


@pytest.fixture(scope="module")
def analysis():
    dataset = simulate_dataset(small_config())
    analyzer = WeblogAnalyzer(PublisherDirectory.from_universe(dataset.universe))
    return analyzer.analyze(dataset.rows)


@pytest.fixture(scope="module")
def fitted_pme(analysis):
    pme = PriceModelingEngine(seed=23)
    pme.bootstrap(analysis, use_paper_features=True)
    market = build_market(small_config(), RngRegistry(small_config().seed))
    pme.run_probe_campaigns(market, auctions_per_setup=12)
    pme.train_model(evaluate=False)
    pme.compute_time_correction(mopub_cleartext_prices(analysis))
    return pme


class TestBootstrap:
    def test_paper_features_shortcut(self, analysis):
        pme = PriceModelingEngine(seed=1)
        selected = pme.bootstrap(analysis, use_paper_features=True)
        assert selected == list(PAPER_FEATURE_SET)

    def test_real_reduction_runs(self, analysis):
        from repro.core.feature_selection import DimensionalityReducer

        pme = PriceModelingEngine(seed=2)
        reducer = DimensionalityReducer(
            n_folds=3, n_estimators=8, max_depth=8, max_rows=1200, seed=4
        )
        selected = pme.bootstrap(analysis, reducer=reducer)
        assert len(selected) >= 3
        assert pme.state.selection is not None
        assert pme.state.selection.n_features_input > 50


class TestLifecycleOrderEnforced:
    def test_train_before_campaigns_raises(self):
        with pytest.raises(RuntimeError):
            PriceModelingEngine().train_model()

    def test_time_correction_before_a2_raises(self):
        with pytest.raises(RuntimeError):
            PriceModelingEngine().compute_time_correction([1.0])

    def test_package_before_training_raises(self):
        with pytest.raises(RuntimeError):
            PriceModelingEngine().package_model()

    def test_retrain_without_campaign_raises(self):
        with pytest.raises(RuntimeError):
            PriceModelingEngine().retrain_with_contributions([], [])


class TestFittedPme:
    def test_campaign_results_stored(self, fitted_pme):
        assert fitted_pme.state.campaign_a1 is not None
        assert fitted_pme.state.campaign_a2 is not None
        assert len(fitted_pme.state.campaign_a1.impressions) > 50

    def test_time_correction_above_one(self, fitted_pme):
        """Prices drift up 2015 -> 2016, so the correction exceeds 1."""
        assert 1.0 < fitted_pme.state.time_correction < 2.0

    def test_package_contents(self, fitted_pme):
        package = fitted_pme.package_model()
        assert package["kind"] == "yav_price_model"
        assert package["time_correction"] == fitted_pme.state.time_correction
        assert "publisher" not in package["feature_names"]
        assert package["selected_features"] == list(PAPER_FEATURE_SET)

    def test_retrain_with_contributions(self, fitted_pme):
        rows = [
            {
                "adx": "MoPub",
                "dsp": "Criteo-DSP",
                "slot_size": "300x250",
                "publisher_iab": "IAB12",
                "time_of_day": 2,
                "day_of_week": 1,
            }
        ] * 30
        prices = [0.9] * 30
        model = fitted_pme.retrain_with_contributions(rows, prices)
        assert model is fitted_pme.state.model

    def test_mopub_prices_helper(self, analysis):
        prices = mopub_cleartext_prices(analysis)
        assert prices
        assert all(p > 0 for p in prices)
