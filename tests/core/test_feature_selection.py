"""Tests for the grouped dimensionality-reduction pipeline."""

import numpy as np
import pytest

from repro.core.feature_selection import (
    GROUP_AD,
    GROUP_DEVICE,
    GROUP_TIME,
    GROUP_USER_INTERESTS,
    GROUP_USER_LOCATION,
    DimensionalityReducer,
    group_of,
)


class TestGroupMapping:
    def test_exact_names(self):
        assert group_of("time_of_day") == GROUP_TIME
        assert group_of("slot_size") == GROUP_AD
        assert group_of("context") == GROUP_DEVICE
        assert group_of("city") == GROUP_USER_LOCATION

    def test_prefix_rules(self):
        assert group_of("interest_IAB3") == GROUP_USER_INTERESTS
        assert group_of("hour_05") == GROUP_TIME
        assert group_of("dow_3") == GROUP_TIME


def synthetic_observations(n=800, seed=0):
    """Feature rows where price depends on a few known features."""
    rng = np.random.default_rng(seed)
    cities = ["Madrid", "Torello"]
    slots = ["320x50", "300x250"]
    rows = []
    prices = []
    for _ in range(n):
        city = cities[rng.integers(0, 2)]
        slot = slots[rng.integers(0, 2)]
        context = "app" if rng.random() < 0.5 else "web"
        tod = int(rng.integers(0, 6))
        noise_a = float(rng.random())        # pure noise features
        noise_b = float(rng.random())
        constant = 1.0
        price = 0.3
        price *= 2.6 if context == "app" else 1.0
        price *= 1.7 if slot == "300x250" else 1.0
        price *= 0.9 if city == "Madrid" else 1.1
        price *= 1.0 + 0.05 * tod
        price *= float(np.exp(rng.normal(0, 0.1)))
        rows.append(
            {
                "city": city,
                "slot_size": slot,
                "context": context,
                "time_of_day": tod,
                "noise_a": noise_a,
                "noise_b": noise_b,
                "constant_feature": constant,
                "publisher": f"pub{rng.integers(0, 5)}",
            }
        )
        prices.append(price)
    return rows, prices


class TestDimensionalityReducer:
    @pytest.fixture(scope="class")
    def report(self):
        rows, prices = synthetic_observations()
        reducer = DimensionalityReducer(
            n_folds=3, n_estimators=10, max_depth=8, max_rows=800, seed=3
        )
        return reducer.fit(rows, prices)

    def test_constant_feature_dropped(self, report):
        assert "constant_feature" in report.dropped_constant_or_noise
        assert "constant_feature" not in report.selected_features

    def test_informative_features_selected(self, report):
        selected = set(report.selected_features)
        assert "context" in selected or "slot_size" in selected

    def test_noise_features_rank_below_drivers(self, report):
        imp = report.importances
        assert imp["context"] > imp["noise_a"]
        assert imp["slot_size"] > imp["noise_b"]

    def test_publisher_excluded_by_default(self, report):
        assert "publisher" not in report.selected_features

    def test_selected_accuracy_close_to_baseline(self, report):
        assert report.selected_accuracy >= report.baseline_accuracy - 0.05

    def test_loss_metrics_consistent(self, report):
        assert report.precision_loss == pytest.approx(
            report.baseline_precision - report.selected_precision
        )

    def test_importances_cover_kept_features(self, report):
        assert report.n_features_after_filters == len(report.importances)

    def test_group_scores_present(self, report):
        assert report.group_scores

    def test_too_few_rows_rejected(self):
        rows, prices = synthetic_observations(n=20)
        with pytest.raises(ValueError):
            DimensionalityReducer().fit(rows, prices)

    def test_length_mismatch_rejected(self):
        rows, prices = synthetic_observations(n=60)
        with pytest.raises(ValueError):
            DimensionalityReducer().fit(rows, prices[:-1])

    def test_allow_publisher_keeps_candidate(self):
        rows, prices = synthetic_observations(n=300, seed=5)
        reducer = DimensionalityReducer(
            n_folds=3, n_estimators=5, max_depth=6, allow_publisher=True, seed=1
        )
        report = reducer.fit(rows, prices)
        assert "publisher" in report.importances
