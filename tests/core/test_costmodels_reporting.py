"""Tests for cost-model sensitivity and transparency reporting."""

import pytest

from repro.core.costmodels import (
    CostBounds,
    CostModelAssumptions,
    cost_bounds,
)
from repro.core.reporting import render_transparency_report
from repro.core.youradvalue import LedgerEntry


class TestCostModelAssumptions:
    def test_pure_cpm_multiplier_is_one(self):
        assumptions = CostModelAssumptions(cpc_share=0.0)
        assert assumptions.expected_multiplier == 1.0

    def test_pure_cpc_multiplier_is_ctr(self):
        assumptions = CostModelAssumptions(cpc_share=1.0, click_through_rate=0.01)
        assert assumptions.expected_multiplier == pytest.approx(0.01)
        assert assumptions.lower_multiplier == pytest.approx(0.01)

    def test_mix_interpolates(self):
        assumptions = CostModelAssumptions(cpc_share=0.5, click_through_rate=0.01)
        assert assumptions.expected_multiplier == pytest.approx(0.505)

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValueError):
            CostModelAssumptions(cpc_share=1.5)
        with pytest.raises(ValueError):
            CostModelAssumptions(click_through_rate=-0.1)


class TestCostBounds:
    def test_ordering(self):
        bounds = cost_bounds(100.0)
        assert bounds.lower <= bounds.expected <= bounds.upper
        assert bounds.upper == 100.0

    def test_contains(self):
        bounds = cost_bounds(100.0)
        assert bounds.contains(bounds.expected)
        assert not bounds.contains(200.0)

    def test_zero_cost(self):
        bounds = cost_bounds(0.0)
        assert bounds.lower == bounds.expected == bounds.upper == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            cost_bounds(-1.0)

    def test_paper_upper_bound_semantics(self):
        """The paper's V_u is exactly the CPM-assumption upper bound."""
        bounds = cost_bounds(25.0, CostModelAssumptions())
        assert bounds.cpm_assumption == bounds.upper == 25.0
        assert bounds.expected < 25.0


def make_entry(amount=1.0, encrypted=False, adx="MoPub", iab="IAB12",
               slot="300x250", ts=1.43e9):
    return LedgerEntry(
        timestamp=ts,
        adx=adx,
        dsp="Criteo-DSP",
        encrypted=encrypted,
        amount_cpm=amount,
        estimated=encrypted,
        slot_size=slot,
        publisher_iab=iab,
    )


class TestTransparencyReport:
    def test_empty_ledger(self):
        assert "No RTB charge prices" in render_transparency_report([])

    def test_totals_and_sections(self):
        entries = [
            make_entry(1.0),
            make_entry(2.0, adx="OpenX", encrypted=True, iab="IAB3"),
            make_entry(0.5, slot="320x50"),
        ]
        report = render_transparency_report(entries)
        assert "3.50 CPM" in report
        assert "MoPub" in report and "OpenX" in report
        assert "IAB3" in report
        assert "320x50" in report
        assert "estimated" in report          # encrypted note present
        assert "cost-model sensitivity" in report

    def test_no_encrypted_note_when_all_cleartext(self):
        report = render_transparency_report([make_entry(1.0)])
        assert "estimated from" not in report

    def test_regulator_report(self):
        from repro.core.cost import ExchangeRevenue
        from repro.core.reporting import render_regulator_report

        revenues = {
            "MoPub": ExchangeRevenue("MoPub", 100.0, 0.0, 200, 0),
            "OpenX": ExchangeRevenue("OpenX", 5.0, 45.0, 10, 60),
        }
        report = render_regulator_report(revenues)
        assert "MoPub" in report and "OpenX" in report
        assert "150.00 CPM" in report          # grand total
        assert report.index("MoPub") < report.index("OpenX")  # ranked
        assert render_regulator_report({}) == "No exchange revenue observed."

    def test_top_k_limits_groups(self):
        entries = [make_entry(1.0, adx=adx) for adx in
                   ("MoPub", "OpenX", "Rubicon", "Turn", "Adnxs", "Criteo")]
        report = render_transparency_report(entries, top_k=2)
        # Only the 2 largest exchange lines appear in that section.
        exchange_section = report.split("(top exchanges):")[1].split("by content")[0]
        assert exchange_section.count("1.00 CPM") == 2
