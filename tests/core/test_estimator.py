"""Tests for the unified Estimator facade (and the legacy shims).

The central contract is bit-identity: the facade must produce exactly
the arrays the four deprecated ``EncryptedPriceModel`` entry points
produced, for any chunking, with the time correction applied.  The
legacy entry points must keep working -- but warn.
"""

import warnings

import numpy as np
import pytest

from repro.core.campaigns import run_campaign_a1
from repro.core.estimator import EstimateResult, Estimator
from repro.core.price_model import EncryptedPriceModel
from repro.trace.simulate import build_market, small_config
from repro.util.rng import RngRegistry
from repro import obs


@pytest.fixture(scope="module")
def campaign():
    market = build_market(small_config(), RngRegistry(small_config().seed))
    return run_campaign_a1(market, seed=17, auctions_per_setup=20)


@pytest.fixture(scope="module")
def model(campaign):
    rows = campaign.feature_rows()
    names = [k for k in rows[0] if k != "publisher"]
    trained = EncryptedPriceModel.train(
        rows, list(campaign.prices()), feature_names=names, seed=9,
        n_estimators=20, max_depth=10,
    )
    package = trained.to_package()
    package["time_correction"] = 1.23      # non-trivial drift coefficient
    return EncryptedPriceModel.from_package(package)


@pytest.fixture(scope="module")
def rows(campaign):
    return campaign.feature_rows()[:64]


def _legacy(model, method, *args):
    """Call a deprecated entry point with its warning silenced."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return getattr(model, method)(*args)


@pytest.mark.tier1
class TestBitIdentity:
    """Facade outputs == legacy outputs, bit for bit."""

    def test_estimate_matches_legacy_batch(self, model, rows):
        facade = Estimator(model).estimate(rows)
        legacy = _legacy(model, "estimate", rows)
        assert np.array_equal(facade.prices, legacy)

    def test_estimate_one_matches_legacy_scalar(self, model, rows):
        estimator = Estimator(model)
        for row in rows[:8]:
            assert estimator.estimate_one(row) == _legacy(
                model, "estimate_one", row
            )

    def test_proba_matches_legacy_predict_proba(self, model, rows):
        facade = Estimator(model).estimate(rows)
        legacy = _legacy(model, "predict_proba", rows)
        assert np.array_equal(facade.proba, legacy)

    def test_classes_are_argmax_of_proba(self, model, rows):
        result = Estimator(model).estimate(rows)
        assert np.array_equal(result.classes, np.argmax(result.proba, axis=1))

    def test_chunked_estimation_identical(self, model, rows):
        estimator = Estimator(model)
        whole = estimator.estimate(rows)
        for chunk_size in (1, 7, 64, 1000):
            chunked = estimator.estimate(rows, chunk_size=chunk_size)
            assert np.array_equal(whole.prices, chunked.prices)
            assert np.array_equal(whole.proba, chunked.proba)

    def test_explain_matches_legacy_explain_one(self, model, rows):
        facade = Estimator(model).explain(rows[0])
        legacy = _legacy(model, "explain_one", rows[0])
        assert facade == legacy

    def test_time_correction_is_applied(self, model, rows):
        result = Estimator(model).estimate(rows)
        assert result.time_correction == model.time_correction == 1.23
        raw = model.binner.estimate(result.classes)
        assert np.array_equal(result.prices, raw * 1.23)


class TestEstimateResult:
    def test_len_and_price_of(self, model, rows):
        result = Estimator(model).estimate(rows[:5])
        assert len(result) == 5
        assert result.price_of(2) == float(result.prices[2])

    def test_empty_batch(self, model):
        result = Estimator(model).estimate([])
        assert len(result) == 0
        assert result.prices.shape == (0,)
        assert result.proba.shape == (0, model.binner.n_classes)

    def test_to_dict_is_json_shaped(self, model, rows):
        import json

        payload = json.loads(json.dumps(Estimator(model).estimate(rows[:3]).to_dict()))
        assert set(payload) == {"prices", "classes", "proba", "time_correction"}
        assert len(payload["prices"]) == 3

    def test_spans_empty_without_trace(self, model, rows):
        assert obs.active_trace() is None
        assert Estimator(model).estimate(rows[:3]).spans == ()

    def test_spans_captured_under_trace(self, model, rows):
        with obs.start_trace("request"):
            result = Estimator(model).estimate(rows[:3])
        names = [s["name"] for s in result.spans]
        assert "estimator.encode" in names
        assert "forest.inference" in names
        assert "estimator.time_correction" in names


class TestFacadeApi:
    def test_wraps_only_price_models(self):
        with pytest.raises(TypeError, match="EncryptedPriceModel"):
            Estimator(object())

    def test_from_package_round_trip(self, model, rows):
        via_package = Estimator.from_package(model.to_package())
        direct = Estimator(model)
        assert via_package.time_correction == direct.time_correction
        assert np.array_equal(
            via_package.estimate(rows).prices, direct.estimate(rows).prices
        )

    def test_passthrough_properties(self, model):
        estimator = Estimator(model)
        assert estimator.feature_names == model.feature_names
        assert estimator.to_package()["kind"] == model.to_package()["kind"]

    def test_bad_chunk_size_rejected(self, model, rows):
        with pytest.raises(ValueError, match="chunk_size"):
            Estimator(model).estimate(rows, chunk_size=0)

    def test_legacy_kwargs_rejected_with_guidance(self, model, rows):
        with pytest.raises(TypeError, match="chunk_size"):
            Estimator(model).estimate(rows, chunksize=10)


class TestDeprecatedShims:
    """The old entry points warn but still deliver correct results."""

    def test_estimate_warns(self, model, rows):
        with pytest.warns(DeprecationWarning, match="Estimator"):
            out = model.estimate(rows[:4])
        assert out.shape == (4,)

    def test_estimate_one_warns(self, model, rows):
        with pytest.warns(DeprecationWarning, match="estimate_one"):
            value = model.estimate_one(rows[0])
        assert value > 0

    def test_predict_proba_warns(self, model, rows):
        with pytest.warns(DeprecationWarning, match="predict_proba"):
            proba = model.predict_proba(rows[:4])
        assert proba.shape[0] == 4

    def test_explain_one_warns(self, model, rows):
        with pytest.warns(DeprecationWarning, match="explain_one"):
            explanation = model.explain_one(rows[0])
        assert "estimated_cpm" in explanation


class TestLegacyKwargRejection:
    """Normalized parallelism kwargs: old spellings fail loudly, naming
    the replacement, across every layer that grew ``workers=``."""

    def test_forest_rejects_n_jobs(self):
        from repro.ml.forest import RandomForestClassifier

        with pytest.raises(TypeError, match="'workers'"):
            RandomForestClassifier(n_jobs=4)

    def test_analyze_rejects_n_jobs(self, model):
        from repro.analyzer.interests import PublisherDirectory
        from repro.analyzer.pipeline import WeblogAnalyzer

        analyzer = WeblogAnalyzer(PublisherDirectory({}))
        with pytest.raises(TypeError, match="'workers'"):
            analyzer.analyze([], n_jobs=2)

    def test_analyze_parallel_rejects_chunksize(self):
        from repro.analyzer.interests import PublisherDirectory
        from repro.analyzer.parallel import analyze_parallel

        with pytest.raises(TypeError, match="'chunk_size'"):
            analyze_parallel([], PublisherDirectory({}), chunksize=100)

    def test_pme_train_rejects_num_workers(self):
        from repro.core.pme import PriceModelingEngine

        with pytest.raises(TypeError, match="'workers'"):
            PriceModelingEngine().train_model(num_workers=2)

    def test_pme_retrain_rejects_retrain_workers(self):
        from repro.core.pme import PriceModelingEngine

        with pytest.raises(TypeError, match="'workers'"):
            PriceModelingEngine().retrain_with_contributions(
                [], [], retrain_workers=2
            )

    def test_server_rejects_retrain_workers(self, model):
        from repro.serve.app import PmeServer

        with pytest.raises(TypeError, match="'workers'"):
            PmeServer(package=model.to_package(), retrain_workers=2)

    def test_unknown_kwarg_still_a_type_error(self, model, rows):
        with pytest.raises(TypeError, match="unexpected keyword"):
            Estimator(model).estimate(rows, frobnicate=1)
