"""Regression gate for the allocation-free exact splitter.

The seed implementation built an ``n x n_classes`` float one-hot matrix
and cumsum'd it per candidate column; the rewrite accumulates integer
class counts with one segment ``bincount`` (rows between candidate
boundaries share a segment id; ``bincount(seg * n_classes + y)`` plus a
short per-segment cumulative sum replaces every per-class pass) and
skips the label gather entirely on constant columns.  The contract is
**bit-identity**: integer counts convert to exactly the float64 values
the one-hot cumsum produced, and every downstream operation runs in the
same order -- so thresholds, scores, and therefore whole fitted forests
must match the legacy path bit for bit.  (The rewrite sorts with the
default introsort rather than the reference's stable mergesort; equal
feature values share a segment, so the counts are invariant to tie
order and identity still holds.)  The legacy implementation is kept as
``best_classification_split_onehot`` purely as the reference here (and
as the training benchmark's baseline).
"""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier
from repro.ml.serialize import forest_to_dict
from repro.ml.tree import _SplitSearch


def _random_column(rng, n, kind):
    if kind == 0:
        return rng.integers(0, 6, n).astype(float)     # heavy ties
    if kind == 1:
        return rng.normal(size=n)                      # distinct floats
    if kind == 2:
        return np.repeat(rng.normal(), n)              # constant
    return np.round(rng.normal(size=n), 1)             # clustered ties


class TestExactSplitterBitIdentity:
    @pytest.mark.tier1
    def test_split_matches_onehot_reference_exactly(self):
        """(threshold, score) equality -- not approx -- over random
        datasets spanning ties, constants, both criteria and several
        class counts."""
        rng = np.random.default_rng(123)
        checked = 0
        for trial in range(400):
            n = int(rng.integers(2, 300))
            n_classes = int(rng.integers(2, 7))
            col = _random_column(rng, n, trial % 4)
            y = rng.integers(0, n_classes, n)
            criterion = "gini" if trial % 2 == 0 else "entropy"
            new = _SplitSearch.best_classification_split(
                col, y, n_classes, criterion
            )
            ref = _SplitSearch.best_classification_split_onehot(
                col, y, n_classes, criterion
            )
            assert new == ref  # None == None, or exact float equality
            if new is not None:
                checked += 1
        assert checked > 200  # the sweep actually exercised real splits

    @pytest.mark.tier1
    def test_multi_matches_per_column_exactly(self):
        """The batched multi-column splitter (the growth loop's entry)
        must equal per-column ``best_classification_split`` calls --
        tuple equality, not approx -- including constant columns and
        single-column blocks."""
        rng = np.random.default_rng(99)
        for trial in range(120):
            n = int(rng.integers(2, 250))
            k = int(rng.integers(1, 6))
            n_classes = int(rng.integers(2, 7))
            cols = np.column_stack(
                [_random_column(rng, n, (trial + j) % 4) for j in range(k)]
            )
            y = rng.integers(0, n_classes, n)
            criterion = "gini" if trial % 2 == 0 else "entropy"
            batched = _SplitSearch.best_classification_split_multi(
                cols, y, n_classes, criterion
            )
            for j in range(k):
                single = _SplitSearch.best_classification_split(
                    cols[:, j], y, n_classes, criterion
                )
                assert batched[j] == single

    @pytest.mark.tier1
    def test_whole_forest_bit_identical_to_onehot_engine(self, monkeypatch):
        """Swap the legacy one-hot engine back in (a per-column loop
        over the seed splitter, patched at the batched entry the growth
        loop calls) and refit: the serialised forests must be identical
        byte for byte."""
        rng = np.random.default_rng(7)
        x = np.column_stack([
            rng.integers(0, 10, 500),
            rng.normal(size=500),
            rng.integers(0, 3, 500),
        ]).astype(float)
        y = np.clip(
            (x[:, 0] > 4).astype(int) + (x[:, 2] > 0).astype(int), 0, 2
        )
        kw = dict(n_estimators=5, seed=13, max_depth=8, criterion="entropy")
        fast = RandomForestClassifier(**kw).fit(x, y)

        def onehot_multi(cols, yy, n_classes, criterion, nan_free=False):
            return [
                _SplitSearch.best_classification_split_onehot(
                    cols[:, j], yy, n_classes, criterion
                )
                for j in range(cols.shape[1])
            ]

        monkeypatch.setattr(
            _SplitSearch,
            "best_classification_split_multi",
            staticmethod(onehot_multi),
        )
        legacy = RandomForestClassifier(**kw).fit(x, y)
        assert forest_to_dict(fast) == forest_to_dict(legacy)
        assert np.array_equal(fast.predict_proba(x), legacy.predict_proba(x))

    def test_constant_column_short_circuits(self):
        y = np.array([0, 1, 0, 1])
        col = np.full(4, 2.5)
        assert (
            _SplitSearch.best_classification_split(col, y, 2, "gini") is None
        )
