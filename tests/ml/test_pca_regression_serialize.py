"""Tests for PCA, regression baselines and model serialisation."""

import json

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier
from repro.ml.pca import PCA
from repro.ml.regression import LinearRegression, RidgeRegression
from repro.ml.serialize import (
    dumps,
    forest_from_dict,
    forest_to_dict,
    loads,
    tree_from_dict,
    tree_to_dict,
)
from repro.ml.tree import DecisionTreeClassifier


class TestPCA:
    def test_recovers_dominant_direction(self):
        rng = np.random.default_rng(0)
        t = rng.normal(size=1000)
        x = np.column_stack([t, 2 * t + rng.normal(0, 0.01, 1000), rng.normal(0, 0.01, 1000)])
        pca = PCA(n_components=1).fit(x)
        direction = pca.components_[0] / np.linalg.norm(pca.components_[0])
        expected = np.array([1.0, 2.0, 0.0]) / np.sqrt(5)
        assert abs(abs(direction @ expected) - 1.0) < 1e-3

    def test_explained_variance_ratio_sums_below_one(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(100, 5))
        pca = PCA(n_components=3).fit(x)
        assert 0 < pca.explained_variance_ratio_.sum() <= 1.0 + 1e-9

    def test_transform_shape(self):
        x = np.random.default_rng(2).normal(size=(50, 4))
        z = PCA(n_components=2).fit_transform(x)
        assert z.shape == (50, 2)

    def test_inverse_transform_approximates(self):
        rng = np.random.default_rng(3)
        t = rng.normal(size=(200, 2))
        x = np.column_stack([t[:, 0], t[:, 1], t[:, 0] + t[:, 1]])
        pca = PCA(n_components=2).fit(x)
        recon = pca.inverse_transform(pca.transform(x))
        assert np.allclose(recon, x, atol=1e-8)

    def test_too_many_components_raises(self):
        with pytest.raises(ValueError):
            PCA(n_components=10).fit(np.zeros((5, 3)))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PCA(n_components=1).transform(np.zeros((2, 2)))


class TestLinearRegression:
    def test_exact_fit_on_linear_data(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 3))
        y = 2.0 * x[:, 0] - 1.5 * x[:, 1] + 0.5
        model = LinearRegression().fit(x, y)
        assert model.coef_ == pytest.approx([2.0, -1.5, 0.0], abs=1e-8)
        assert model.intercept_ == pytest.approx(0.5, abs=1e-8)

    def test_predict_shape(self):
        x = np.random.default_rng(1).normal(size=(30, 2))
        y = x[:, 0]
        model = LinearRegression().fit(x, y)
        assert model.predict(x).shape == (30,)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LinearRegression().predict(np.zeros((2, 2)))


class TestRidgeRegression:
    def test_shrinks_towards_zero_with_large_alpha(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(100, 2))
        y = 3.0 * x[:, 0]
        small = RidgeRegression(alpha=1e-6).fit(x, y)
        large = RidgeRegression(alpha=1e5).fit(x, y)
        assert abs(large.coef_[0]) < abs(small.coef_[0])

    def test_alpha_zero_matches_ols(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(80, 2))
        y = x[:, 0] - 2 * x[:, 1] + 1.0
        ridge = RidgeRegression(alpha=0.0).fit(x, y)
        ols = LinearRegression().fit(x, y)
        assert np.allclose(ridge.coef_, ols.coef_, atol=1e-8)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            RidgeRegression(alpha=-1.0)


class TestSerialization:
    def _fitted_tree(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(150, 4))
        y = (x[:, 0] > 0).astype(int) + (x[:, 1] > 1).astype(int)
        return DecisionTreeClassifier(max_depth=6).fit(x, y), x

    def test_tree_roundtrip_preserves_predictions(self):
        tree, x = self._fitted_tree()
        clone = tree_from_dict(tree_to_dict(tree))
        assert np.array_equal(tree.predict(x), clone.predict(x))
        assert np.allclose(tree.predict_proba(x), clone.predict_proba(x))

    def test_tree_json_roundtrip(self):
        tree, x = self._fitted_tree()
        payload = loads(dumps(tree_to_dict(tree)))
        clone = tree_from_dict(payload)
        assert np.array_equal(tree.predict(x), clone.predict(x))

    def test_unfitted_tree_rejected(self):
        with pytest.raises(ValueError):
            tree_to_dict(DecisionTreeClassifier())

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError):
            tree_from_dict({"kind": "pickle"})
        with pytest.raises(ValueError):
            forest_from_dict({"kind": "tree"})

    def test_forest_roundtrip(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(200, 3))
        y = (x[:, 0] + x[:, 1] > 0).astype(int)
        forest = RandomForestClassifier(n_estimators=7, max_depth=5, seed=2).fit(x, y)
        clone = forest_from_dict(forest_to_dict(forest))
        assert np.array_equal(forest.predict(x), clone.predict(x))
        assert np.allclose(forest.predict_proba(x), clone.predict_proba(x))

    def test_serialised_forest_is_pure_json(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(60, 2))
        y = (x[:, 0] > 0).astype(int)
        forest = RandomForestClassifier(n_estimators=3, max_depth=3, seed=1).fit(x, y)
        text = dumps(forest_to_dict(forest))
        assert isinstance(json.loads(text), dict)


class TestSerializationV2:
    """Version-2 payloads round-trip fitted state and hyperparameters."""

    def _fitted_forest(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(250, 4))
        y = (x[:, 0] > 0).astype(int) + (x[:, 1] > 0.5).astype(int)
        forest = RandomForestClassifier(
            n_estimators=6,
            max_depth=7,
            min_samples_leaf=2,
            min_samples_split=3,
            max_features="sqrt",
            criterion="entropy",
            oob_score=True,
            seed=42,
        ).fit(x, y)
        return forest, x

    def test_payload_declares_version_2(self):
        forest, _ = self._fitted_forest()
        payload = forest_to_dict(forest)
        assert payload["format"] == 2
        assert payload["trees"][0]["format"] == 2

    def test_hyperparameters_roundtrip(self):
        forest, _ = self._fitted_forest()
        clone = forest_from_dict(loads(dumps(forest_to_dict(forest))))
        for key in ("n_estimators", "max_depth", "min_samples_leaf",
                    "min_samples_split", "max_features", "criterion",
                    "bootstrap", "oob_score", "seed"):
            assert getattr(clone, key) == getattr(forest, key), key

    def test_fitted_state_roundtrip(self):
        forest, x = self._fitted_forest()
        clone = forest_from_dict(loads(dumps(forest_to_dict(forest))))
        assert clone.oob_score_ == forest.oob_score_
        assert np.array_equal(clone.feature_importances_,
                              forest.feature_importances_)
        # serialise -> deserialise -> predict is bit-identical
        assert np.array_equal(clone.predict_proba(x), forest.predict_proba(x))

    def test_refit_after_roundtrip_matches_original(self):
        # Because hyperparameters (incl. seed) survive, refitting the
        # clone on the same data reproduces the original forest.
        forest, x = self._fitted_forest()
        rng = np.random.default_rng(5)
        x2 = rng.normal(size=(250, 4))
        y2 = (x2[:, 0] > 0).astype(int) + (x2[:, 1] > 0.5).astype(int)
        clone = forest_from_dict(forest_to_dict(forest))
        clone.fit(x2, y2)
        assert dumps(forest_to_dict(clone)) == dumps(forest_to_dict(forest))

    def test_version_1_payload_still_loads(self):
        forest, x = self._fitted_forest()
        payload = forest_to_dict(forest)
        # Strip everything version 2 added, emulating an old artefact.
        legacy = {
            "format": 1,
            "kind": payload["kind"],
            "n_classes": payload["n_classes"],
            "n_features": payload["n_features"],
            "trees": [
                {k: v for k, v in t.items() if k != "format"} | {"format": 1}
                for t in payload["trees"]
            ],
        }
        clone = forest_from_dict(legacy)
        assert clone.feature_importances_ is None
        assert clone.oob_score_ is None
        assert np.array_equal(clone.predict_proba(x), forest.predict_proba(x))

    def test_future_format_rejected(self):
        forest, _ = self._fitted_forest()
        payload = forest_to_dict(forest)
        payload["format"] = 99
        with pytest.raises(ValueError, match="unsupported"):
            forest_from_dict(payload)

    def test_unknown_params_rejected(self):
        forest, _ = self._fitted_forest()
        payload = forest_to_dict(forest)
        payload["params"]["workers"] = 8  # runtime knob must not sneak in
        with pytest.raises(ValueError, match="unknown forest params"):
            forest_from_dict(payload)
