"""Unit tests for the flattened tree representation (repro.ml.flat)."""

import numpy as np
import pytest

from repro.ml.flat import (
    FlatTree,
    flatten_classifier_tree,
    flatten_regressor_tree,
)
from repro.ml.serialize import dumps, loads, tree_from_dict, tree_to_dict
from repro.ml.tree import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    TreeNode,
)


def _data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 4))
    y = ((x[:, 0] > 0).astype(int) + (x[:, 1] > 0.2).astype(int))
    return x, y


class TestCompilation:
    def test_node_count_matches_tree(self):
        x, y = _data()
        tree = DecisionTreeClassifier(max_depth=6).fit(x, y)
        flat = tree.flat_
        assert isinstance(flat, FlatTree)
        assert flat.n_nodes == 2 * tree.n_leaves() - 1
        assert flat.n_outputs == tree.n_classes_
        # Leaves carry no children; internals always carry both.
        leaves = flat.feature < 0
        assert np.all(flat.left[leaves] == -1)
        assert np.all(flat.right[leaves] == -1)
        assert np.all(flat.left[~leaves] >= 0)
        assert np.all(flat.right[~leaves] >= 0)
        assert np.all(np.isnan(flat.threshold[leaves]))

    def test_recompilation_is_deterministic(self):
        x, y = _data()
        tree = DecisionTreeClassifier(max_depth=8).fit(x, y)
        first = tree.flat_
        second = tree.compile_flat()
        for field in ("feature", "threshold", "left", "right", "value"):
            a, b = getattr(first, field), getattr(second, field)
            assert np.array_equal(a, b, equal_nan=True)

    def test_single_leaf_tree(self):
        x = np.zeros((10, 2))
        y = np.zeros(10, dtype=int)
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.flat_.n_nodes == 1
        probs = tree.predict_proba(np.ones((3, 2)))
        assert probs.shape == (3, 1)
        assert np.all(probs == 1.0)

    def test_leaf_probabilities_bit_identical_to_recursive(self):
        x, y = _data(500, seed=3)
        tree = DecisionTreeClassifier(max_depth=10).fit(x, y)
        fresh = np.random.default_rng(11).normal(size=(200, 4))
        assert np.array_equal(
            tree.flat_.predict_value(fresh), tree._predict_proba_nodes(fresh)
        )
        assert np.array_equal(
            tree.flat_.predict_value(fresh[:30]),
            tree._predict_proba_per_row(fresh[:30]),
        )

    def test_wider_class_space_alignment(self):
        # Compiling into a wider forest class space scatters by label.
        x, y = _data()
        tree = DecisionTreeClassifier(max_depth=3).fit(x, y)
        wide = flatten_classifier_tree(tree.root_, tree.n_classes_ + 2)
        probs = wide.predict_value(x[:10])
        assert probs.shape == (10, tree.n_classes_ + 2)
        assert np.array_equal(probs[:, : tree.n_classes_],
                              tree.predict_proba(x[:10]))
        assert np.all(probs[:, tree.n_classes_:] == 0.0)

    def test_narrower_class_space_rejected(self):
        x, y = _data()
        tree = DecisionTreeClassifier(max_depth=3).fit(x, y)
        with pytest.raises(ValueError):
            flatten_classifier_tree(tree.root_, tree.n_classes_ - 1)


class TestApply:
    def test_apply_returns_leaf_ids(self):
        x, y = _data()
        tree = DecisionTreeClassifier(max_depth=7).fit(x, y)
        leaves = tree.apply(x)
        assert leaves.shape == (len(x),)
        assert np.all(tree.flat_.feature[leaves] == -1)

    def test_apply_agrees_with_per_row_walk(self):
        x, y = _data(200, seed=9)
        tree = DecisionTreeClassifier(max_depth=9).fit(x, y)
        flat = tree.flat_
        for i in range(0, 200, 17):
            leaf_node = tree._leaf_for(x[i])
            flat_leaf = flat.apply(x[i : i + 1])[0]
            counts = leaf_node.value
            assert np.array_equal(flat.value[flat_leaf], counts / counts.sum())

    def test_nan_routes_right_like_recursive(self):
        x, y = _data()
        tree = DecisionTreeClassifier(max_depth=5).fit(x, y)
        probe = np.full((1, x.shape[1]), np.nan)
        assert np.array_equal(
            tree.predict_proba(probe), tree._predict_proba_nodes(probe)
        )


class TestRegressorFlat:
    def test_flat_vs_nodes_exact(self):
        rng = np.random.default_rng(4)
        x = rng.uniform(-2, 2, size=(400, 3))
        y = x[:, 0] ** 2 + x[:, 1]
        tree = DecisionTreeRegressor(max_depth=8).fit(x, y)
        fresh = rng.uniform(-2, 2, size=(150, 3))
        assert np.array_equal(tree.predict(fresh), tree._predict_nodes(fresh))

    def test_flatten_regressor_single_output(self):
        root = TreeNode(value=1.5, n_samples=3, impurity=0.0)
        flat = flatten_regressor_tree(root)
        assert flat.n_outputs == 1
        assert flat.predict_value(np.zeros((2, 1)))[0, 0] == 1.5


class TestSerializeRoundTrip:
    def test_deserialised_tree_predicts_bit_identically(self):
        x, y = _data(350, seed=6)
        tree = DecisionTreeClassifier(max_depth=9).fit(x, y)
        clone = tree_from_dict(loads(dumps(tree_to_dict(tree))))
        assert clone.flat_ is not None  # recompiled on load
        fresh = np.random.default_rng(21).normal(size=(120, 4))
        assert np.array_equal(clone.predict_proba(fresh),
                              tree.predict_proba(fresh))
        assert np.array_equal(clone.apply(fresh), tree.apply(fresh))
