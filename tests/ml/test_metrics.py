"""Tests for the classification/regression metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.metrics import (
    accuracy,
    classification_report,
    confusion_matrix,
    mean_absolute_error,
    mean_squared_error,
    r2_score,
    roc_auc_ovr_weighted,
    root_mean_squared_error,
)


class TestConfusionMatrix:
    def test_known_matrix(self):
        m = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        assert m.tolist() == [[1, 1], [0, 2]]

    def test_n_classes_override(self):
        m = confusion_matrix([0], [0], n_classes=3)
        assert m.shape == (3, 3)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix([0, 1], [0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix([], [])


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([1, 2, 3], [1, 2, 3]) == 1.0

    def test_half(self):
        assert accuracy([0, 0, 1, 1], [0, 1, 1, 0]) == 0.5


class TestClassificationReport:
    def test_perfect_predictions(self):
        report = classification_report([0, 1, 2, 0], [0, 1, 2, 0])
        assert report.accuracy == 1.0
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.fp_rate == 0.0

    def test_weighted_averaging(self):
        # Class 0: 3 samples all right; class 1: 1 sample wrong.
        report = classification_report([0, 0, 0, 1], [0, 0, 0, 0])
        assert report.recall == pytest.approx(0.75)
        assert report.tp_rate == report.recall

    def test_worst_class_gap(self):
        report = classification_report([0, 0, 1, 1], [0, 0, 1, 0])
        assert report.worst_class_gap("recall") >= 0.0

    def test_auc_included_with_probabilities(self):
        y = [0, 0, 1, 1]
        probs = np.array([[0.9, 0.1], [0.8, 0.2], [0.2, 0.8], [0.1, 0.9]])
        report = classification_report(y, [0, 0, 1, 1], probs)
        assert report.auc_roc == 1.0

    def test_auc_none_without_probabilities(self):
        report = classification_report([0, 1], [0, 1])
        assert report.auc_roc is None


class TestAuc:
    def test_perfect_separation(self):
        y = [0, 0, 1, 1]
        probs = np.array([[0.9, 0.1], [0.7, 0.3], [0.3, 0.7], [0.1, 0.9]])
        assert roc_auc_ovr_weighted(y, probs) == 1.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 2000)
        probs = rng.random((2000, 2))
        assert roc_auc_ovr_weighted(y, probs) == pytest.approx(0.5, abs=0.05)

    def test_ties_give_half_credit(self):
        y = [0, 1]
        probs = np.array([[0.5, 0.5], [0.5, 0.5]])
        assert roc_auc_ovr_weighted(y, probs) == pytest.approx(0.5)

    def test_reversed_scores_give_zero(self):
        y = [0, 1]
        probs = np.array([[0.1, 0.9], [0.9, 0.1]])
        assert roc_auc_ovr_weighted(y, probs) == 0.0

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            roc_auc_ovr_weighted([1, 1], np.array([[0, 1], [0, 1]]))

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            roc_auc_ovr_weighted([0, 1], np.array([0.2, 0.8]))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=4), st.integers(min_value=20, max_value=60))
    def test_auc_in_unit_interval(self, n_classes, n):
        rng = np.random.default_rng(n)
        y = rng.integers(0, n_classes, n)
        if len(np.unique(y)) < 2:
            y[0] = 0
            y[1] = 1
        probs = rng.random((n, n_classes))
        assert 0.0 <= roc_auc_ovr_weighted(y, probs) <= 1.0


class TestRegressionMetrics:
    def test_mse_rmse_mae(self):
        y, p = [0, 0, 0, 0], [1, 1, 1, 1]
        assert mean_squared_error(y, p) == 1.0
        assert root_mean_squared_error(y, p) == 1.0
        assert mean_absolute_error(y, p) == 1.0

    def test_r2_perfect_and_mean(self):
        y = [1.0, 2.0, 3.0]
        assert r2_score(y, y) == 1.0
        assert r2_score(y, [2.0, 2.0, 2.0]) == 0.0

    def test_r2_constant_target(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r2_score([2.0, 2.0], [1.0, 3.0]) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_squared_error([], [])
