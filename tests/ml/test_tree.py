"""Tests for the CART decision trees."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


def _separable_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 4))
    y = (x[:, 0] > 0).astype(int)
    return x, y


class TestClassifierBasics:
    def test_fits_separable_data_perfectly(self):
        x, y = _separable_data()
        tree = DecisionTreeClassifier().fit(x, y)
        assert np.array_equal(tree.predict(x), y)

    def test_single_class_is_one_leaf(self):
        x = np.random.default_rng(0).normal(size=(30, 3))
        y = np.zeros(30, dtype=int)
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.n_leaves() == 1
        assert tree.depth() == 0

    def test_max_depth_respected(self):
        x, y = _separable_data(400, 1)
        y = ((x[:, 0] > 0) & (x[:, 1] > 0)).astype(int) + (x[:, 2] > 0.5)
        tree = DecisionTreeClassifier(max_depth=2).fit(x, y)
        assert tree.depth() <= 2

    def test_min_samples_leaf_respected(self):
        x, y = _separable_data(100, 2)
        tree = DecisionTreeClassifier(min_samples_leaf=20).fit(x, y)

        def check(node):
            if node.is_leaf:
                assert node.n_samples >= 20
            else:
                check(node.left)
                check(node.right)

        check(tree.root_)

    def test_predict_proba_rows_sum_to_one(self):
        x, y = _separable_data()
        tree = DecisionTreeClassifier(max_depth=3).fit(x, y)
        probs = tree.predict_proba(x)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_constant_features_yield_single_leaf(self):
        x = np.ones((50, 3))
        y = np.array([0, 1] * 25)
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.n_leaves() == 1

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    def test_mismatched_shapes_raise(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((5, 2)), np.zeros(4, dtype=int))

    def test_zero_samples_raise(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((0, 2)), np.zeros(0, dtype=int))

    def test_negative_labels_raise(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((2, 1)), np.array([-1, 0]))

    def test_bad_criterion_raises(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(criterion="chaos")

    def test_entropy_criterion_works(self):
        x, y = _separable_data()
        tree = DecisionTreeClassifier(criterion="entropy").fit(x, y)
        assert np.array_equal(tree.predict(x), y)

    def test_feature_importances_sum_to_one(self):
        x, y = _separable_data()
        tree = DecisionTreeClassifier(max_depth=4).fit(x, y)
        assert tree.feature_importances_.sum() == pytest.approx(1.0)

    def test_importance_concentrated_on_informative_feature(self):
        x, y = _separable_data(500, 3)
        tree = DecisionTreeClassifier(max_depth=4).fit(x, y)
        assert np.argmax(tree.feature_importances_) == 0

    def test_decision_path_reaches_leaf(self):
        x, y = _separable_data()
        tree = DecisionTreeClassifier(max_depth=5).fit(x, y)
        path = tree.decision_path(x[0])
        assert len(path) <= tree.depth()
        for feature, threshold, went_left in path:
            assert 0 <= feature < x.shape[1]

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=5))
    def test_multiclass_labels_covered(self, n_classes):
        rng = np.random.default_rng(n_classes)
        x = rng.normal(size=(200, 3))
        y = (np.abs(x[:, 0]) * n_classes / 4).astype(int).clip(0, n_classes - 1)
        tree = DecisionTreeClassifier(max_depth=8).fit(x, y)
        assert set(np.unique(tree.predict(x))) <= set(range(n_classes))

    def test_batch_prediction_matches_single(self):
        x, y = _separable_data(300, 5)
        y = ((x[:, 0] + x[:, 1]) > 0.3).astype(int) * 2
        tree = DecisionTreeClassifier(max_depth=6).fit(x, y)
        batch = tree.predict(x)
        singles = np.array([tree.predict(row[None, :])[0] for row in x[:40]])
        assert np.array_equal(batch[:40], singles)


class TestRegressor:
    def test_fits_step_function(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(300, 2))
        y = np.where(x[:, 0] > 0, 5.0, -5.0)
        tree = DecisionTreeRegressor(max_depth=3).fit(x, y)
        pred = tree.predict(x)
        assert np.abs(pred - y).max() < 1.0

    def test_constant_target_one_leaf(self):
        x = np.random.default_rng(1).normal(size=(40, 2))
        y = np.full(40, 3.3)
        tree = DecisionTreeRegressor().fit(x, y)
        assert np.allclose(tree.predict(x), 3.3)

    def test_prediction_within_target_range(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(200, 3))
        y = rng.uniform(2.0, 9.0, 200)
        tree = DecisionTreeRegressor(max_depth=6).fit(x, y)
        pred = tree.predict(x)
        assert pred.min() >= 2.0 - 1e-9
        assert pred.max() <= 9.0 + 1e-9

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.zeros((1, 2)))
