"""Tests for cross-validation and splitting."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier
from repro.ml.model_selection import (
    cross_validate_classifier,
    kfold_indices,
    stratified_kfold_indices,
    train_test_split,
)


class TestTrainTestSplit:
    def test_partition_is_complete_and_disjoint(self):
        train, test = train_test_split(100, 0.25, seed=1)
        combined = np.sort(np.concatenate([train, test]))
        assert np.array_equal(combined, np.arange(100))
        assert len(test) == 25

    def test_deterministic(self):
        a = train_test_split(50, 0.2, seed=3)
        b = train_test_split(50, 0.2, seed=3)
        assert np.array_equal(a[0], b[0])

    def test_bad_fraction_raises(self):
        with pytest.raises(ValueError):
            train_test_split(10, 0.0)
        with pytest.raises(ValueError):
            train_test_split(10, 1.0)

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            train_test_split(1)


class TestKFold:
    def test_each_sample_tested_exactly_once(self):
        seen = np.zeros(50, dtype=int)
        for train, test in kfold_indices(50, 5, seed=0):
            seen[test] += 1
            assert len(set(train) & set(test)) == 0
        assert np.all(seen == 1)

    def test_fold_count(self):
        folds = list(kfold_indices(30, 3, seed=0))
        assert len(folds) == 3

    def test_too_many_folds_raises(self):
        with pytest.raises(ValueError):
            list(kfold_indices(3, 10))

    def test_single_fold_rejected(self):
        with pytest.raises(ValueError):
            list(kfold_indices(10, 1))


class TestStratifiedKFold:
    def test_class_balance_preserved(self):
        y = np.array([0] * 40 + [1] * 10)
        for train, test in stratified_kfold_indices(y, 5, seed=0):
            test_labels = y[test]
            # Every fold carries both classes in proportion.
            assert (test_labels == 1).sum() == 2
            assert (test_labels == 0).sum() == 8

    def test_partition_complete(self):
        y = np.array([0, 1] * 25)
        seen = np.zeros(50, dtype=int)
        for _, test in stratified_kfold_indices(y, 5, seed=1):
            seen[test] += 1
        assert np.all(seen == 1)


class TestCrossValidate:
    def test_scores_sensible_on_learnable_data(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(300, 4))
        y = (x[:, 0] > 0).astype(int)
        result = cross_validate_classifier(
            lambda: RandomForestClassifier(n_estimators=8, seed=0),
            x, y, n_folds=5, n_runs=1, seed=2,
        )
        assert result.accuracy > 0.85
        assert 0.9 < result.auc_roc <= 1.0
        assert result.tp_rate == pytest.approx(result.recall)

    def test_report_count(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(60, 3))
        y = (x[:, 0] > 0).astype(int)
        result = cross_validate_classifier(
            lambda: RandomForestClassifier(n_estimators=3, seed=0),
            x, y, n_folds=4, n_runs=2, seed=0,
        )
        assert len(result.reports) == 8

    def test_summary_keys(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(60, 3))
        y = (x[:, 0] > 0).astype(int)
        result = cross_validate_classifier(
            lambda: RandomForestClassifier(n_estimators=3, seed=0),
            x, y, n_folds=3, n_runs=1, seed=0,
        )
        summary = result.summary()
        assert {"accuracy", "precision", "recall", "auc_roc", "fp_rate"} <= set(summary)
