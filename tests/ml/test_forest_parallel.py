"""Equivalence suite: parallel training and flattened inference.

The scale contract of the ML layer (ISSUE 2) is that neither knob
changes a single bit of output:

* ``workers=N`` training must be **bit-identical** to sequential --
  same serialised trees, same ``predict_proba``, same OOB votes, same
  importances (every tree's randomness derives from
  ``derive_seed(seed, "tree-t")`` and per-tree results merge in tree
  order);
* flattened batch traversal must agree **exactly** with the
  index-partition node walk and the naive per-row recursion.

The sequential-vs-parallel identity is a ``tier1`` gate, like the
analyzer's: a merge-order or seeding regression must fail fast.
"""

import numpy as np
import pytest

from repro.core.price_model import EncryptedPriceModel
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.serialize import dumps, forest_to_dict


def _data(n=300, n_features=6, n_classes=4, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, n_features))
    y = (
        (x[:, 0] > 0).astype(int)
        + (x[:, 1] > 0.3).astype(int)
        + (x[:, 2] > 0.8).astype(int)
    )
    return x, np.clip(y, 0, n_classes - 1)


def _feature_rows(n=120, seed=1):
    rng = np.random.default_rng(seed)
    cities = ["athens", "madrid", "berlin"]
    rows = [
        {
            "city": cities[int(rng.integers(0, 3))],
            "device_type": ["phone", "tablet"][int(rng.integers(0, 2))],
            "time_of_day": int(rng.integers(0, 4)),
        }
        for _ in range(n)
    ]
    prices = (rng.lognormal(0.0, 0.8, size=n) + 0.01).tolist()
    return rows, prices


class TestParallelTrainingIdentity:
    @pytest.mark.tier1
    def test_sequential_vs_two_workers_bit_identical(self):
        """The tier-1 gate: workers=2 is indistinguishable from workers=1."""
        x, y = _data()
        seq = RandomForestClassifier(
            n_estimators=12, max_depth=8, oob_score=True, seed=9, workers=1
        ).fit(x, y)
        par = RandomForestClassifier(
            n_estimators=12, max_depth=8, oob_score=True, seed=9, workers=2
        ).fit(x, y)
        # Same serialised trees (structure, thresholds, leaf counts)...
        assert dumps(forest_to_dict(seq)) == dumps(forest_to_dict(par))
        # ...same probabilities to the last bit...
        assert np.array_equal(seq.predict_proba(x), par.predict_proba(x))
        # ...and same fitted state merged in tree order.
        assert seq.oob_score_ == par.oob_score_
        assert np.array_equal(seq.feature_importances_, par.feature_importances_)

    def test_worker_count_does_not_matter(self):
        x, y = _data(200)
        reference = None
        for workers in (1, 2, 4, None):
            forest = RandomForestClassifier(
                n_estimators=7, max_depth=6, seed=3, workers=workers
            ).fit(x, y)
            payload = dumps(forest_to_dict(forest))
            if reference is None:
                reference = payload
            assert payload == reference, f"workers={workers} diverged"

    def test_more_workers_than_trees(self):
        x, y = _data(150)
        a = RandomForestClassifier(n_estimators=3, seed=1, workers=1).fit(x, y)
        b = RandomForestClassifier(n_estimators=3, seed=1, workers=8).fit(x, y)
        assert np.array_equal(a.predict_proba(x), b.predict_proba(x))

    def test_regressor_parallel_identity(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(250, 4))
        y = 2.0 * x[:, 0] - x[:, 1] + rng.normal(0, 0.1, size=250)
        seq = RandomForestRegressor(n_estimators=10, seed=4, workers=1).fit(x, y)
        par = RandomForestRegressor(n_estimators=10, seed=4, workers=2).fit(x, y)
        assert np.array_equal(seq.predict(x), par.predict(x))

    def test_price_model_workers_identical_package(self):
        rows, prices = _feature_rows()
        one = EncryptedPriceModel.train(rows, prices, n_estimators=8, seed=5,
                                        workers=1)
        two = EncryptedPriceModel.train(rows, prices, n_estimators=8, seed=5,
                                        workers=2)
        assert one.to_package() == two.to_package()
        from repro.core.estimator import Estimator

        assert np.array_equal(
            Estimator(one).estimate(rows).prices,
            Estimator(two).estimate(rows).prices,
        )


class TestTraversalEquivalence:
    def test_flat_vs_nodes_vs_per_row_exact(self):
        x, y = _data(400, seed=7)
        forest = RandomForestClassifier(
            n_estimators=10, max_depth=10, seed=13
        ).fit(x, y)
        rng = np.random.default_rng(99)
        fresh = rng.normal(size=(200, x.shape[1]))
        flat = forest.predict_proba(fresh, traversal="flat")
        nodes = forest.predict_proba(fresh, traversal="nodes")
        per_row = forest.predict_proba(fresh[:40], traversal="per-row")
        assert np.array_equal(flat, nodes)
        assert np.array_equal(flat[:40], per_row)
        assert np.array_equal(
            forest.predict(fresh, traversal="flat"),
            forest.predict(fresh, traversal="nodes"),
        )

    def test_rows_exactly_on_thresholds(self):
        """x[feature] == threshold must route left in every traversal."""
        x, y = _data(300, seed=5)
        forest = RandomForestClassifier(n_estimators=6, seed=21).fit(x, y)
        # Build probe rows that sit exactly on fitted thresholds.
        probes = []
        for tree in forest.trees_:
            flat = tree.flat_
            internal = np.flatnonzero(flat.feature >= 0)[:5]
            for idx in internal:
                row = x[0].copy()
                row[flat.feature[idx]] = flat.threshold[idx]
                probes.append(row)
        probes = np.asarray(probes)
        assert np.array_equal(
            forest.predict_proba(probes, traversal="flat"),
            forest.predict_proba(probes, traversal="nodes"),
        )
        assert np.array_equal(
            forest.predict_proba(probes, traversal="flat"),
            forest.predict_proba(probes, traversal="per-row"),
        )

    def test_unknown_traversal_rejected(self):
        x, y = _data(100)
        forest = RandomForestClassifier(n_estimators=2, seed=0).fit(x, y)
        with pytest.raises(ValueError, match="traversal"):
            forest.predict_proba(x, traversal="warp")

    def test_apply_reaches_leaves(self):
        x, y = _data(200)
        forest = RandomForestClassifier(n_estimators=5, seed=2).fit(x, y)
        leaves = forest.apply(x[:50])
        assert leaves.shape == (50, 5)
        for column, tree in zip(leaves.T, forest.trees_):
            assert np.all(tree.flat_.feature[column] == -1)
