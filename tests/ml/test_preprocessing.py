"""Tests for encoders and feature filters."""

import numpy as np
import pytest

from repro.ml.preprocessing import (
    CorrelationFilter,
    FrameEncoder,
    OneHotEncoder,
    OrdinalEncoder,
    Standardizer,
    VarianceFilter,
)


class TestOrdinalEncoder:
    def test_codes_stable_by_first_appearance(self):
        enc = OrdinalEncoder().fit([["b", "a", "b", "c"]])
        out = enc.transform([["a", "b", "c"]])
        assert out[:, 0].tolist() == [1.0, 0.0, 2.0]

    def test_unknown_maps_to_minus_one(self):
        enc = OrdinalEncoder().fit([["x", "y"]])
        assert enc.transform([["z"]])[0, 0] == -1.0

    def test_column_count_mismatch_raises(self):
        enc = OrdinalEncoder().fit([["a"], ["b"]])
        with pytest.raises(ValueError):
            enc.transform([["a"]])

    def test_vocabulary(self):
        enc = OrdinalEncoder().fit([["a", "b"]])
        assert enc.vocabulary(0) == {"a": 0, "b": 1}


class TestOneHotEncoder:
    def test_expansion(self):
        enc = OneHotEncoder().fit([["a", "b", "a"]])
        out = enc.transform([["a", "b"]])
        assert out.tolist() == [[1.0, 0.0], [0.0, 1.0]]

    def test_unknown_category_all_zeros(self):
        enc = OneHotEncoder().fit([["a", "b"]])
        assert enc.transform([["z"]]).tolist() == [[0.0, 0.0]]

    def test_feature_names(self):
        enc = OneHotEncoder().fit([["a", "b"], ["x"]])
        assert enc.feature_names(["c1", "c2"]) == ["c1=a", "c1=b", "c2=x"]

    def test_n_output_features(self):
        enc = OneHotEncoder().fit([["a", "b", "c"], ["x", "y"]])
        assert enc.n_output_features == 5


class TestStandardizer:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 2.0, size=(500, 3))
        z = Standardizer().fit_transform(x)
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_passes_through_centred(self):
        x = np.column_stack([np.ones(10), np.arange(10, dtype=float)])
        z = Standardizer().fit_transform(x)
        assert np.allclose(z[:, 0], 0.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            Standardizer().transform(np.zeros((2, 2)))


class TestVarianceFilter:
    def test_drops_constant_column(self):
        x = np.column_stack([np.ones(50), np.random.default_rng(0).normal(size=50)])
        filt = VarianceFilter(upper_quantile=None).fit(x)
        assert filt.kept_.tolist() == [1]

    def test_drops_extreme_variance_column(self):
        rng = np.random.default_rng(1)
        x = np.column_stack(
            [rng.normal(size=200) for _ in range(10)] + [rng.normal(0, 1000, 200)]
        )
        filt = VarianceFilter(upper_quantile=0.9).fit(x)
        assert 10 not in filt.kept_.tolist()

    def test_all_constant_raises(self):
        with pytest.raises(ValueError):
            VarianceFilter().fit(np.ones((10, 3)))

    def test_kept_names(self):
        x = np.column_stack([np.ones(20), np.arange(20, dtype=float)])
        filt = VarianceFilter(upper_quantile=None).fit(x)
        assert filt.kept_names(["const", "ramp"]) == ["ramp"]


class TestCorrelationFilter:
    def test_drops_duplicate_column(self):
        rng = np.random.default_rng(2)
        base = rng.normal(size=200)
        x = np.column_stack([base, base * 2.0, rng.normal(size=200)])
        filt = CorrelationFilter(threshold=0.95).fit(x)
        assert filt.kept_.tolist() == [0, 2]

    def test_keeps_uncorrelated(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(300, 4))
        filt = CorrelationFilter().fit(x)
        assert filt.kept_.tolist() == [0, 1, 2, 3]

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            CorrelationFilter().transform(np.zeros((2, 2)))


class TestFrameEncoder:
    ROWS = [
        {"city": "Madrid", "price": 1.0, "os": "iOS"},
        {"city": "Torello", "price": 2.5, "os": "Android"},
    ]

    def test_numeric_passthrough_and_categorical_codes(self):
        enc = FrameEncoder(["city", "price", "os"])
        x = enc.fit_transform(self.ROWS)
        assert x[:, 1].tolist() == [1.0, 2.5]
        assert x[0, 0] != x[1, 0]

    def test_schema_fixed_at_fit(self):
        enc = FrameEncoder(["city", "price"])
        enc.fit(self.ROWS)
        out = enc.transform([{"city": "Madrid", "price": 9.0}])
        assert out[0, 1] == 9.0

    def test_unseen_category_is_minus_one(self):
        enc = FrameEncoder(["city"])
        enc.fit(self.ROWS)
        assert enc.transform([{"city": "Paris"}])[0, 0] == -1.0

    def test_missing_key_handled(self):
        enc = FrameEncoder(["city", "os"])
        enc.fit(self.ROWS)
        out = enc.transform([{"city": "Madrid"}])
        assert out[0, 1] == -1.0  # missing categorical -> unseen

    def test_serialisation_roundtrip(self):
        enc = FrameEncoder(["city", "price"]).fit(self.ROWS)
        clone = FrameEncoder.from_dict(enc.to_dict())
        a = enc.transform(self.ROWS)
        b = clone.transform(self.ROWS)
        assert np.array_equal(a, b)

    def test_empty_features_rejected(self):
        with pytest.raises(ValueError):
            FrameEncoder([])

    def test_fit_zero_rows_rejected(self):
        with pytest.raises(ValueError):
            FrameEncoder(["a"]).fit([])

    def test_unfitted_transform_raises(self):
        with pytest.raises(RuntimeError):
            FrameEncoder(["a"]).transform([{"a": 1}])
