"""The histogram training engine: quantiser properties + parity gates.

Three layers of protection for ``splitter="hist"``:

* **Quantiser properties** (hypothesis): the bin ladder is strictly
  increasing with at most 255 thresholds; codes fit ``uint8``; and the
  structural round-trip -- ``code(v) <= b`` iff ``v <= thresholds[b]``
  -- holds for *every* boundary, which is what lets a split chosen in
  code space replay as a real-valued threshold with the identical row
  partition (serialisation and serving never see codes).
* **tier1 gates**: hist training is bit-identical across
  ``workers=1/N`` (the PR 2 contract extended to the new engine), and
  a hist forest's accuracy tracks the exact forest's on separable data
  (the engines need not match split-for-split; quality must).
* **End-to-end**: the price model trains, packages and round-trips
  with ``splitter="hist"``; CV inherits the engine.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.price_model import EncryptedPriceModel
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.histsplit import (
    MAX_BINS,
    BinnedDataset,
    bin_thresholds,
    column_codes,
)
from repro.ml.serialize import forest_to_dict
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor

# -- strategies --------------------------------------------------------------

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
#: Columns that force heavy duplication (small int support) or arbitrary
#: finite floats, optionally with NaNs sprinkled in.
columns = st.one_of(
    st.lists(st.integers(-5, 5).map(float), min_size=2, max_size=200),
    st.lists(finite, min_size=2, max_size=200),
    st.lists(st.one_of(finite, st.just(float("nan"))), min_size=2, max_size=120),
)


def _col(values):
    return np.asarray(values, dtype=float)


class TestQuantiserProperties:
    @settings(max_examples=80, deadline=None)
    @given(columns)
    def test_thresholds_strictly_increasing_and_bounded(self, values):
        thr = bin_thresholds(_col(values))
        assert thr.size <= MAX_BINS - 1
        assert np.all(np.diff(thr) > 0)

    @settings(max_examples=80, deadline=None)
    @given(columns)
    def test_codes_fit_uint8_and_stay_in_range(self, values):
        col = _col(values)
        thr = bin_thresholds(col)
        codes = column_codes(col, thr)
        assert codes.dtype == np.uint8
        assert codes.max(initial=0) <= thr.size  # n_bins - 1

    @settings(max_examples=100, deadline=None)
    @given(columns)
    def test_threshold_round_trip_partition_identity(self, values):
        """The structural invariant the whole engine rests on.

        For every bin boundary ``b``, splitting the codes at ``b``
        partitions the rows *identically* to splitting the raw column
        at the real threshold ``thr[b]`` -- including NaNs, which take
        the top code and fail ``v <= thr[b]``, i.e. route right both
        ways (FlatTree's IEEE comparison semantics).
        """
        col = _col(values)
        thr = bin_thresholds(col)
        codes = column_codes(col, thr)
        for b in range(thr.size):
            code_left = codes <= b
            value_left = col <= thr[b]  # NaN compares False
            assert np.array_equal(code_left, value_left)

    @settings(max_examples=60, deadline=None)
    @given(st.floats(allow_nan=False, allow_infinity=False), st.integers(2, 300))
    def test_constant_column_never_splittable(self, value, n):
        thr = bin_thresholds(np.full(n, value))
        assert thr.size == 0
        codes = column_codes(np.full(n, value), thr)
        assert np.all(codes == 0)

    def test_high_cardinality_column_respects_bin_cap(self):
        rng = np.random.default_rng(0)
        col = rng.normal(size=5000)  # ~5000 distinct values
        thr = bin_thresholds(col)
        assert 0 < thr.size <= MAX_BINS - 1
        codes = column_codes(col, thr)
        # Every bin below the top one is actually populated (rank cuts).
        assert np.unique(codes).size == thr.size + 1
        for b in range(thr.size):
            assert np.array_equal(codes <= b, col <= thr[b])

    def test_low_cardinality_thresholds_are_exact_midpoints(self):
        """<=256 distinct values: hist considers exactly the candidate
        thresholds the exact splitter would (midpoints of adjacent
        uniques) -- the lossless case for the paper's feature set S."""
        col = np.array([3.0, 1.0, 1.0, 2.0, 7.0, 2.0])
        thr = bin_thresholds(col)
        assert np.array_equal(thr, [1.5, 2.5, 5.0])

    def test_nan_takes_top_bin(self):
        col = np.array([1.0, np.nan, 2.0, 3.0])
        thr = bin_thresholds(col)
        codes = column_codes(col, thr)
        assert codes[1] == thr.size  # top bin
        assert np.isnan(thr).sum() == 0

    def test_degenerate_concentration_falls_back(self):
        # 99.9% of the mass on one value, >256 distinct values overall:
        # rank cuts all land on the heavy value; the fallback still
        # produces a usable ladder.
        col = np.concatenate([np.zeros(100_000), np.arange(1.0, 301.0)])
        thr = bin_thresholds(col)
        assert 0 < thr.size <= MAX_BINS - 1
        assert np.all(np.diff(thr) > 0)

    def test_max_bins_validation(self):
        with pytest.raises(ValueError):
            bin_thresholds(np.arange(10.0), max_bins=1)
        with pytest.raises(ValueError):
            bin_thresholds(np.arange(10.0), max_bins=MAX_BINS + 1)


class TestBinnedDataset:
    def test_from_matrix_layout(self):
        rng = np.random.default_rng(1)
        x = np.column_stack([
            rng.integers(0, 4, 100),
            rng.integers(0, 7, 100),
            np.zeros(100),  # constant: 1 bin, no thresholds
        ]).astype(float)
        ds = BinnedDataset.from_matrix(x)
        assert ds.codes.dtype == np.uint8
        assert ds.codes.shape == x.shape
        assert ds.n_bins.tolist() == [4, 7, 1]
        assert ds.offsets.tolist() == [0, 4, 11]
        assert ds.total_bins == 12

    def test_check_matches_rejects_wrong_shape(self):
        x = np.random.default_rng(2).normal(size=(50, 3))
        ds = BinnedDataset.from_matrix(x)
        with pytest.raises(ValueError, match="shape"):
            ds.check_matches(x[:, :2])


# -- forest-level parity gates ----------------------------------------------

def _classification_data(n=2000, seed=0):
    rng = np.random.default_rng(seed)
    x = np.column_stack([
        rng.integers(0, 24, n),      # hour-like
        rng.integers(0, 7, n),       # day-of-week-like
        rng.integers(0, 50, n),      # city-like
        rng.normal(size=n),          # continuous noise
    ]).astype(float)
    y = (
        (x[:, 0] > 11).astype(int)
        + (x[:, 1] > 3).astype(int)
        + (x[:, 2] > 24).astype(int)
    )
    return x, np.clip(y, 0, 3)


class TestHistForestGates:
    @pytest.mark.tier1
    def test_hist_parallel_bit_identical_to_sequential(self):
        """workers=N must not change a single bit of a hist forest."""
        x, y = _classification_data(600)
        kw = dict(n_estimators=6, seed=9, oob_score=True, splitter="hist")
        seq = RandomForestClassifier(workers=1, **kw).fit(x, y)
        par = RandomForestClassifier(workers=2, **kw).fit(x, y)
        assert forest_to_dict(seq) == forest_to_dict(par)
        assert np.array_equal(seq.predict_proba(x), par.predict_proba(x))
        assert seq.oob_score_ == par.oob_score_
        assert np.array_equal(
            seq.feature_importances_, par.feature_importances_
        )

    @pytest.mark.tier1
    def test_hist_quality_tracks_exact(self):
        """Hist need not reproduce exact's trees, but accuracy must
        stay within noise of the exact engine on separable data."""
        x, y = _classification_data(2000)
        train, test = np.arange(1500), np.arange(1500, 2000)
        kw = dict(n_estimators=20, seed=4, max_depth=12)
        exact = RandomForestClassifier(splitter="exact", **kw).fit(
            x[train], y[train]
        )
        hist = RandomForestClassifier(splitter="hist", **kw).fit(
            x[train], y[train]
        )
        acc_exact = float(np.mean(exact.predict(x[test]) == y[test]))
        acc_hist = float(np.mean(hist.predict(x[test]) == y[test]))
        assert acc_hist >= acc_exact - 0.02

    def test_hist_deterministic_across_fits(self):
        x, y = _classification_data(400, seed=3)
        kw = dict(n_estimators=4, seed=11, splitter="hist")
        a = RandomForestClassifier(**kw).fit(x, y)
        b = RandomForestClassifier(**kw).fit(x, y)
        assert forest_to_dict(a) == forest_to_dict(b)

    def test_hist_regressor_parity(self):
        rng = np.random.default_rng(5)
        n = 1500
        x = np.column_stack([
            rng.integers(0, 24, n), rng.normal(size=n)
        ]).astype(float)
        y = 0.4 * x[:, 0] + 2.0 * x[:, 1] + rng.normal(scale=0.1, size=n)
        kw = dict(n_estimators=10, seed=2, max_depth=10)
        exact = RandomForestRegressor(splitter="exact", **kw).fit(x, y)
        hist = RandomForestRegressor(splitter="hist", **kw).fit(x, y)
        r2 = lambda p: 1 - np.sum((y - p) ** 2) / np.sum((y - y.mean()) ** 2)
        assert r2(hist.predict(x)) >= r2(exact.predict(x)) - 0.02

    def test_hist_regressor_workers_bit_identical(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(300, 3))
        y = x @ np.array([1.0, -2.0, 0.5]) + rng.normal(scale=0.05, size=300)
        kw = dict(n_estimators=5, seed=8, splitter="hist")
        seq = RandomForestRegressor(workers=1, **kw).fit(x, y)
        par = RandomForestRegressor(workers=2, **kw).fit(x, y)
        assert np.array_equal(seq.predict(x), par.predict(x))

    def test_single_tree_self_bins_when_binned_missing(self):
        x, y = _classification_data(300, seed=7)
        tree = DecisionTreeClassifier(splitter="hist", max_depth=6)
        tree.fit(x, y)
        assert float(np.mean(tree.predict(x) == y)) > 0.9
        rtree = DecisionTreeRegressor(splitter="hist", max_depth=6)
        rtree.fit(x, x[:, 0])
        assert np.corrcoef(rtree.predict(x), x[:, 0])[0, 1] > 0.9

    def test_unknown_splitter_rejected_everywhere(self):
        with pytest.raises(ValueError, match="splitter"):
            RandomForestClassifier(splitter="histo")
        with pytest.raises(ValueError, match="splitter"):
            RandomForestRegressor(splitter="fast")
        with pytest.raises(ValueError, match="splitter"):
            DecisionTreeClassifier(splitter="")
        with pytest.raises(ValueError, match="splitter"):
            DecisionTreeRegressor(splitter="Exact")


class TestPriceModelHist:
    def _rows(self, n=200, seed=1):
        rng = np.random.default_rng(seed)
        cities = ["athens", "madrid", "berlin", "paris"]
        rows = [
            {
                "city": cities[int(rng.integers(0, 4))],
                "device_type": ["phone", "tablet"][int(rng.integers(0, 2))],
                "time_of_day": int(rng.integers(0, 4)),
            }
            for _ in range(n)
        ]
        prices = (rng.lognormal(0.0, 0.8, size=n) + 0.01).tolist()
        return rows, prices

    def test_train_package_roundtrip_with_hist(self):
        rows, prices = self._rows()
        model = EncryptedPriceModel.train(
            rows, prices, n_estimators=8, splitter="hist", seed=3
        )
        assert model.forest.splitter == "hist"
        # Serialised packages are engine-agnostic: the loaded forest is
        # plain TreeNode/FlatTree structure and estimates identically.
        loaded = EncryptedPriceModel.from_package(model.to_package())
        a = model.predict_class(rows[:20])
        b = loaded.predict_class(rows[:20])
        assert np.array_equal(a, b)

    def test_cross_validate_inherits_hist(self):
        rows, prices = self._rows(150)
        model = EncryptedPriceModel.train(
            rows, prices, n_estimators=6, splitter="hist", seed=5
        )
        result = model.cross_validate(rows, prices, n_folds=3, n_runs=1)
        assert 0.0 <= result.accuracy <= 1.0
