"""Tests for the Random Forest ensembles."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.util.rng import derive_seed


def _data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 5))
    y = ((x[:, 0] > 0).astype(int) + (x[:, 1] > 0.5).astype(int))
    return x, y


def _skewed_data(n=60, seed=3):
    """Four classes, the top one carried by a single sample.

    A bootstrap of size ``n`` misses that sample with probability
    ``(1 - 1/n)**n ~ 0.36`` per tree, so a modest forest is all but
    guaranteed to contain trees whose bootstrap dropped the top class.
    """
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 4))
    y = rng.integers(0, 3, size=n)
    y[0] = 3
    x[0] += 10.0  # make the lone top-class sample separable
    return x, y


def _dropped_top_class_trees(forest, y, n):
    """Indices of member trees whose bootstrap missed the top label.

    Replays each tree's seeded bootstrap draw (the generator is fully
    determined by ``derive_seed(seed, "tree-t")``), independent of the
    forest implementation under test.
    """
    top = int(y.max())
    dropped = []
    for t in range(forest.n_estimators):
        rng = np.random.default_rng(derive_seed(forest.seed, f"tree-{t}"))
        indices = rng.integers(0, n, size=n)
        if top not in y[indices]:
            dropped.append(t)
    return dropped


class TestForestClassifier:
    def test_beats_chance_on_structured_data(self):
        x, y = _data()
        forest = RandomForestClassifier(n_estimators=15, seed=1).fit(x, y)
        assert (forest.predict(x) == y).mean() > 0.85

    def test_deterministic_given_seed(self):
        x, y = _data()
        a = RandomForestClassifier(n_estimators=8, seed=5).fit(x, y).predict(x)
        b = RandomForestClassifier(n_estimators=8, seed=5).fit(x, y).predict(x)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        x, y = _data()
        a = RandomForestClassifier(n_estimators=5, max_depth=3, seed=1).fit(x, y)
        b = RandomForestClassifier(n_estimators=5, max_depth=3, seed=2).fit(x, y)
        assert not np.allclose(a.predict_proba(x), b.predict_proba(x))

    def test_oob_score_reasonable(self):
        x, y = _data(600)
        forest = RandomForestClassifier(n_estimators=25, oob_score=True, seed=3)
        forest.fit(x, y)
        assert forest.oob_score_ is not None
        assert 0.7 < forest.oob_score_ <= 1.0
        assert forest.oob_error_ == pytest.approx(1.0 - forest.oob_score_)

    def test_oob_none_without_flag(self):
        x, y = _data(100)
        forest = RandomForestClassifier(n_estimators=5, seed=0).fit(x, y)
        assert forest.oob_score_ is None
        assert forest.oob_error_ is None

    def test_feature_importances_normalised(self):
        x, y = _data()
        forest = RandomForestClassifier(n_estimators=10, seed=1).fit(x, y)
        assert forest.feature_importances_.sum() == pytest.approx(1.0)
        top_two = set(np.argsort(forest.feature_importances_)[-2:])
        assert top_two == {0, 1}

    def test_predict_proba_shape_and_sums(self):
        x, y = _data()
        forest = RandomForestClassifier(n_estimators=6, seed=1).fit(x, y)
        probs = forest.predict_proba(x[:10])
        assert probs.shape == (10, forest.n_classes_)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict(np.zeros((1, 2)))

    def test_zero_estimators_rejected(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_no_bootstrap_mode(self):
        x, y = _data(150)
        forest = RandomForestClassifier(
            n_estimators=5, bootstrap=False, max_features=None, seed=0
        ).fit(x, y)
        assert (forest.predict(x) == y).mean() > 0.9


class TestClassSpaceAlignment:
    """Regression tests for the missing-class bootstrap bug.

    Pre-fix, ``RandomForestClassifier.fit`` promised to "re-align tree
    output to the forest's class space" but never did: a bootstrap that
    missed the highest price class produced a member tree with fewer
    ``predict_proba`` columns than ``n_classes_``.
    """

    def test_bootstrap_drops_top_class_premise(self):
        # The scenario must actually occur for the regression test to
        # mean anything: at least one member bootstrap misses class 3.
        x, y = _skewed_data()
        forest = RandomForestClassifier(n_estimators=25, seed=11).fit(x, y)
        assert _dropped_top_class_trees(forest, y, len(y)), (
            "test premise broken: no bootstrap dropped the top class; "
            "re-tune _skewed_data"
        )

    def test_member_trees_span_forest_class_space(self):
        # Pre-fix this fails: trees whose bootstrap missed class 3 had
        # n_classes_ == 3 and emitted 3-column probabilities.
        x, y = _skewed_data()
        forest = RandomForestClassifier(n_estimators=25, seed=11).fit(x, y)
        dropped = _dropped_top_class_trees(forest, y, len(y))
        for t in dropped:
            tree = forest.trees_[t]
            assert tree.n_classes_ == forest.n_classes_ == 4
            assert tree.predict_proba(x[:5]).shape == (5, 4)
            assert np.array_equal(tree.classes_, np.arange(4))

    def test_forest_proba_well_formed_under_skew(self):
        x, y = _skewed_data()
        forest = RandomForestClassifier(n_estimators=25, seed=11).fit(x, y)
        probs = forest.predict_proba(x)
        assert probs.shape == (len(y), 4)
        assert np.allclose(probs.sum(axis=1), 1.0)
        # The separable lone sample must still receive top-class mass
        # from the trees that did see it.
        assert probs[0, 3] > 0

    def test_oob_votes_aligned_under_skew(self):
        x, y = _skewed_data(n=80, seed=5)
        forest = RandomForestClassifier(
            n_estimators=30, oob_score=True, seed=7
        ).fit(x, y)
        assert forest.oob_score_ is not None
        assert 0.0 <= forest.oob_score_ <= 1.0

    def test_alignment_is_by_label_not_column_count(self):
        # A member tree living in a *gappy* class space (e.g. loaded
        # from an external payload whose labels were {0, 2}) must have
        # its columns scattered to the labels it knows, not packed into
        # the first columns.
        x, y = _data(200)
        forest = RandomForestClassifier(n_estimators=4, seed=2).fit(x, y)
        tree = forest.trees_[0]
        narrow = np.array([[0.25, 0.75]])
        tree_like = type("T", (), {"classes_": np.array([0, 2])})()
        aligned = forest._aligned_probs(tree_like, narrow)
        assert aligned.shape == (1, forest.n_classes_)
        assert aligned[0, 0] == 0.25
        assert aligned[0, 1] == 0.0      # label 1 unknown to the tree
        assert aligned[0, 2] == 0.75     # column 1 is label 2, not label 1
        # Sanity: a full-width tree passes through untouched.
        full = tree.predict_proba(x[:3])
        assert forest._aligned_probs(tree, full) is full

    def test_wider_tree_than_forest_rejected(self):
        x, y = _data(200)
        forest = RandomForestClassifier(n_estimators=2, seed=0).fit(x, y)
        too_wide = np.ones((1, forest.n_classes_ + 1))
        with pytest.raises(ValueError):
            forest._aligned_probs(forest.trees_[0], too_wide)


class TestLabelValidation:
    """`n_classes_ = y.max() + 1` must not silently allocate phantoms."""

    def test_negative_labels_rejected(self):
        x = np.zeros((4, 2))
        with pytest.raises(ValueError, match="non-negative"):
            RandomForestClassifier(n_estimators=1).fit(x, [-1, 0, 1, 1])

    def test_non_contiguous_labels_rejected(self):
        x = np.zeros((4, 2))
        with pytest.raises(ValueError, match="contiguous"):
            RandomForestClassifier(n_estimators=1).fit(x, [0, 2, 2, 0])

    def test_labels_missing_zero_rejected(self):
        x = np.zeros((4, 2))
        with pytest.raises(ValueError, match="contiguous"):
            RandomForestClassifier(n_estimators=1).fit(x, [1, 2, 1, 2])

    def test_contiguous_labels_accepted(self):
        x, y = _data(100)
        forest = RandomForestClassifier(n_estimators=3, seed=0).fit(x, y)
        assert forest.n_classes_ == int(y.max()) + 1

    def test_single_class_accepted(self):
        x = np.random.default_rng(0).normal(size=(30, 2))
        forest = RandomForestClassifier(n_estimators=2, seed=0).fit(
            x, np.zeros(30, dtype=int)
        )
        assert forest.n_classes_ == 1
        assert np.all(forest.predict(x) == 0)


class TestForestRegressor:
    def test_fits_smooth_function(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-2, 2, size=(500, 2))
        y = 3.0 * x[:, 0] + x[:, 1]
        forest = RandomForestRegressor(n_estimators=20, seed=1).fit(x, y)
        pred = forest.predict(x)
        rmse = np.sqrt(np.mean((pred - y) ** 2))
        assert rmse < 1.0

    def test_deterministic(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(100, 3))
        y = x[:, 0] ** 2
        a = RandomForestRegressor(n_estimators=5, seed=9).fit(x, y).predict(x)
        b = RandomForestRegressor(n_estimators=5, seed=9).fit(x, y).predict(x)
        assert np.allclose(a, b)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.zeros((1, 2)))
