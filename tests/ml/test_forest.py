"""Tests for the Random Forest ensembles."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier, RandomForestRegressor


def _data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 5))
    y = ((x[:, 0] > 0).astype(int) + (x[:, 1] > 0.5).astype(int))
    return x, y


class TestForestClassifier:
    def test_beats_chance_on_structured_data(self):
        x, y = _data()
        forest = RandomForestClassifier(n_estimators=15, seed=1).fit(x, y)
        assert (forest.predict(x) == y).mean() > 0.85

    def test_deterministic_given_seed(self):
        x, y = _data()
        a = RandomForestClassifier(n_estimators=8, seed=5).fit(x, y).predict(x)
        b = RandomForestClassifier(n_estimators=8, seed=5).fit(x, y).predict(x)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        x, y = _data()
        a = RandomForestClassifier(n_estimators=5, max_depth=3, seed=1).fit(x, y)
        b = RandomForestClassifier(n_estimators=5, max_depth=3, seed=2).fit(x, y)
        assert not np.allclose(a.predict_proba(x), b.predict_proba(x))

    def test_oob_score_reasonable(self):
        x, y = _data(600)
        forest = RandomForestClassifier(n_estimators=25, oob_score=True, seed=3)
        forest.fit(x, y)
        assert forest.oob_score_ is not None
        assert 0.7 < forest.oob_score_ <= 1.0
        assert forest.oob_error_ == pytest.approx(1.0 - forest.oob_score_)

    def test_oob_none_without_flag(self):
        x, y = _data(100)
        forest = RandomForestClassifier(n_estimators=5, seed=0).fit(x, y)
        assert forest.oob_score_ is None
        assert forest.oob_error_ is None

    def test_feature_importances_normalised(self):
        x, y = _data()
        forest = RandomForestClassifier(n_estimators=10, seed=1).fit(x, y)
        assert forest.feature_importances_.sum() == pytest.approx(1.0)
        top_two = set(np.argsort(forest.feature_importances_)[-2:])
        assert top_two == {0, 1}

    def test_predict_proba_shape_and_sums(self):
        x, y = _data()
        forest = RandomForestClassifier(n_estimators=6, seed=1).fit(x, y)
        probs = forest.predict_proba(x[:10])
        assert probs.shape == (10, forest.n_classes_)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict(np.zeros((1, 2)))

    def test_zero_estimators_rejected(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_no_bootstrap_mode(self):
        x, y = _data(150)
        forest = RandomForestClassifier(
            n_estimators=5, bootstrap=False, max_features=None, seed=0
        ).fit(x, y)
        assert (forest.predict(x) == y).mean() > 0.9


class TestForestRegressor:
    def test_fits_smooth_function(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-2, 2, size=(500, 2))
        y = 3.0 * x[:, 0] + x[:, 1]
        forest = RandomForestRegressor(n_estimators=20, seed=1).fit(x, y)
        pred = forest.predict(x)
        rmse = np.sqrt(np.mean((pred - y) ** 2))
        assert rmse < 1.0

    def test_deterministic(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(100, 3))
        y = x[:, 0] ** 2
        a = RandomForestRegressor(n_estimators=5, seed=9).fit(x, y).predict(x)
        b = RandomForestRegressor(n_estimators=5, seed=9).fit(x, y).predict(x)
        assert np.allclose(a, b)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.zeros((1, 2)))
