"""Tests for file persistence and the CLI."""

import gzip
import json

import pytest

from repro.analyzer.interests import PublisherDirectory
from repro.analyzer.pipeline import WeblogAnalyzer
from repro.cli import main
from repro.io import (
    load_model_package,
    read_directory_csv,
    read_observations_csv,
    read_weblog_csv,
    save_model_package,
    write_directory_csv,
    write_observations_csv,
    write_weblog_csv,
)
from repro.trace.simulate import SimulationConfig, simulate_dataset


@pytest.fixture(scope="module")
def dataset():
    return simulate_dataset(
        SimulationConfig(
            n_users=30, target_auctions=400, n_web_publishers=30,
            n_app_publishers=15, n_advertisers=8, seed=5,
        )
    )


class TestWeblogRoundtrip:
    def test_plain_csv(self, dataset, tmp_path):
        path = tmp_path / "weblog.csv"
        count = write_weblog_csv(dataset.rows, path)
        rows = read_weblog_csv(path)
        assert count == len(dataset.rows) == len(rows)
        assert rows[0] == dataset.rows[0]
        assert rows[-1] == dataset.rows[-1]

    def test_gzip_csv(self, dataset, tmp_path):
        path = tmp_path / "weblog.csv.gz"
        write_weblog_csv(dataset.rows[:50], path)
        with gzip.open(path, "rt") as handle:
            header = handle.readline()
        assert header.startswith("timestamp,")
        assert read_weblog_csv(path) == dataset.rows[:50]

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("timestamp,user_id\n1.0,u1\n")
        with pytest.raises(ValueError, match="missing columns"):
            read_weblog_csv(path)


class TestObservationsRoundtrip:
    def test_roundtrip(self, dataset, tmp_path):
        directory = PublisherDirectory.from_universe(dataset.universe)
        analysis = WeblogAnalyzer(directory).analyze(dataset.rows)
        path = tmp_path / "obs.csv"
        count = write_observations_csv(analysis.observations, path)
        observations = read_observations_csv(path)
        assert count == len(observations) == len(analysis.observations)
        assert observations[0] == analysis.observations[0]


class TestDirectoryRoundtrip:
    def test_roundtrip(self, dataset, tmp_path):
        directory = PublisherDirectory.from_universe(dataset.universe)
        path = tmp_path / "dir.csv"
        entries = write_directory_csv(directory, path)
        clone = read_directory_csv(path)
        assert entries == len(directory) == len(clone)
        domain, category = directory.items()[0]
        assert clone.category_of(domain) == category


class TestModelPackageIo:
    def _package(self, dataset):
        from repro.core.pme import PAPER_FEATURE_SET
        from repro.core.price_model import EncryptedPriceModel

        directory = PublisherDirectory.from_universe(dataset.universe)
        analysis = WeblogAnalyzer(directory).analyze(dataset.rows)
        rows = []
        prices = []
        from repro.core.cost import observation_features

        for obs in analysis.cleartext():
            rows.append(observation_features(obs))
            prices.append(obs.price_cpm)
        model = EncryptedPriceModel.train(
            rows, prices, feature_names=list(PAPER_FEATURE_SET),
            seed=1, n_estimators=5, max_depth=6,
        )
        return model.to_package()

    def test_json_roundtrip(self, dataset, tmp_path):
        package = self._package(dataset)
        path = tmp_path / "model.json"
        save_model_package(package, path)
        assert load_model_package(path) == package

    def test_gzip_roundtrip(self, dataset, tmp_path):
        package = self._package(dataset)
        path = tmp_path / "model.json.gz"
        save_model_package(package, path)
        assert load_model_package(path) == package

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"kind": "other"}')
        with pytest.raises(ValueError):
            load_model_package(path)


class TestCli:
    def test_simulate_then_analyze(self, tmp_path, capsys):
        weblog = tmp_path / "weblog.csv.gz"
        directory = tmp_path / "dir.csv"
        observations = tmp_path / "obs.csv"
        assert main([
            "simulate", "--scale", "0.005", "--seed", "3",
            "--out", str(weblog), "--directory", str(directory),
        ]) == 0
        assert weblog.exists() and directory.exists()

        assert main([
            "analyze", "--weblog", str(weblog),
            "--directory", str(directory), "--out", str(observations),
        ]) == 0
        out = capsys.readouterr().out
        assert "price observations" in out
        assert read_observations_csv(observations)

    def test_analyze_parallel_workers_match_sequential(self, tmp_path, capsys):
        weblog = tmp_path / "weblog.csv.gz"
        directory = tmp_path / "dir.csv"
        obs_seq = tmp_path / "obs_seq.csv"
        obs_par = tmp_path / "obs_par.csv"
        assert main([
            "simulate", "--scale", "0.005", "--seed", "9",
            "--out", str(weblog), "--directory", str(directory),
        ]) == 0
        assert main([
            "analyze", "--weblog", str(weblog),
            "--directory", str(directory), "--out", str(obs_seq),
        ]) == 0
        assert main([
            "analyze", "--weblog", str(weblog),
            "--directory", str(directory), "--out", str(obs_par),
            "--workers", "2", "--chunk-size", "500",
        ]) == 0
        capsys.readouterr()
        # The sharded parallel CLI path is byte-identical to sequential.
        assert obs_par.read_text() == obs_seq.read_text()

    def test_analyze_rejects_bad_flags(self, tmp_path):
        assert main([
            "analyze", "--weblog", "w.csv", "--directory", "d.csv",
            "--out", "o.csv", "--workers", "0",
        ]) == 2
        assert main([
            "analyze", "--weblog", "w.csv", "--directory", "d.csv",
            "--out", "o.csv", "--chunk-size", "0",
        ]) == 2

    def test_pipeline_and_estimate(self, tmp_path, capsys):
        model_path = tmp_path / "model.json.gz"
        assert main([
            "pipeline", "--scale", "0.02", "--seed", "4",
            "--model", str(model_path),
        ]) == 0
        assert model_path.exists()

        features = json.dumps({
            "context": "app", "device_type": "smartphone", "city": "Madrid",
            "time_of_day": 2, "day_of_week": 1, "slot_size": "300x250",
            "publisher_iab": "IAB3", "adx": "DoubleClick", "os": "iOS",
            "publisher": "x.example.es",
        })
        assert main([
            "estimate", "--model", str(model_path), "--features", features,
        ]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out.strip().splitlines()[-1])
        assert payload["estimated_cpm"] > 0

    def test_estimate_rejects_bad_json(self, tmp_path):
        model_path = tmp_path / "model.json"
        # Build the tiniest valid package so the features-JSON
        # validation path is what fires.
        import numpy as np
        from repro.core.price_model import EncryptedPriceModel

        rows = [{"a": i % 3} for i in range(30)]
        prices = list(np.linspace(0.1, 5.0, 30))
        model = EncryptedPriceModel.train(
            rows, prices, n_estimators=2, max_depth=3, seed=0
        )
        save_model_package(model.to_package(), model_path)
        assert main([
            "estimate", "--model", str(model_path), "--features", "{not json",
        ]) == 2
