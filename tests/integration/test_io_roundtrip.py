"""Round-trip property tests for weblog persistence (repro.io).

Property: for any weblog — including URLs and user agents containing
commas, quotes, newlines, and unicode — ``write_weblog_csv`` followed
by either the materialising reader (``read_weblog_csv``), the streaming
reader (``iter_weblog_csv``), or the chunked reader
(``read_weblog_chunks``) reproduces the rows exactly, for both plain
and gzipped files.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.io import (
    iter_weblog_csv,
    read_weblog_chunks,
    read_weblog_csv,
    write_weblog_csv,
)
from repro.trace.weblog import HttpRequest

# Text that stresses the CSV layer: delimiters, quoting, unicode,
# embedded newlines.
_nasty_text = st.text(
    alphabet=st.characters(
        codec="utf-8",
        categories=("L", "N", "P", "S", "Zs"),
        include_characters=',"\n\'=&?%;ÁñüЖ中🜚',
    ),
    max_size=60,
)

_rows = st.builds(
    HttpRequest,
    timestamp=st.floats(
        min_value=0, max_value=2e9, allow_nan=False, allow_infinity=False
    ),
    user_id=_nasty_text,
    url=_nasty_text,
    domain=_nasty_text,
    user_agent=_nasty_text,
    kind=st.sampled_from(("content", "nurl", "sync", "analytics")),
    bytes_transferred=st.integers(min_value=0, max_value=10**12),
    duration_ms=st.floats(
        min_value=0, max_value=1e7, allow_nan=False, allow_infinity=False
    ),
    client_ip=st.one_of(st.just(""), st.just("85.1.0.7"), _nasty_text),
)

_weblogs = st.lists(_rows, max_size=25)

_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.mark.parametrize("suffix", [".csv", ".csv.gz"])
class TestWeblogRoundtripProperties:
    @given(rows=_weblogs)
    @_SETTINGS
    def test_read_equals_written(self, rows, suffix, tmp_path):
        path = tmp_path / f"weblog{suffix}"
        count = write_weblog_csv(rows, path)
        assert count == len(rows)
        assert read_weblog_csv(path) == rows

    @given(rows=_weblogs)
    @_SETTINGS
    def test_iter_equals_read(self, rows, suffix, tmp_path):
        path = tmp_path / f"weblog{suffix}"
        write_weblog_csv(rows, path)
        assert list(iter_weblog_csv(path)) == read_weblog_csv(path) == rows

    @given(rows=_weblogs, chunk_size=st.integers(min_value=1, max_value=30))
    @_SETTINGS
    def test_chunks_flatten_to_rows(self, rows, chunk_size, suffix, tmp_path):
        path = tmp_path / f"weblog{suffix}"
        write_weblog_csv(rows, path)
        chunks = list(read_weblog_chunks(path, chunk_size=chunk_size))
        assert [row for chunk in chunks for row in chunk] == rows
        # Every chunk except the last is exactly chunk_size.
        for chunk in chunks[:-1]:
            assert len(chunk) == chunk_size
        if chunks:
            assert 1 <= len(chunks[-1]) <= chunk_size


class TestStreamingReaderEdges:
    def test_iter_is_lazy(self, tmp_path):
        """The generator must not materialise the file: the first row
        is available without consuming the rest."""
        path = tmp_path / "weblog.csv"
        rows = [
            HttpRequest(
                timestamp=float(i), user_id=f"u{i}", url="http://x.test/",
                domain="x.test", user_agent="UA", kind="content",
                bytes_transferred=i, duration_ms=1.0, client_ip="",
            )
            for i in range(100)
        ]
        write_weblog_csv(rows, path)
        stream = iter_weblog_csv(path)
        assert next(stream) == rows[0]
        stream.close()

    def test_missing_columns_raise(self, tmp_path):
        path = tmp_path / "weblog.csv"
        path.write_text("timestamp,user_id\n1.0,u1\n")
        with pytest.raises(ValueError, match="missing columns"):
            next(iter_weblog_csv(path))

    def test_bad_chunk_size_rejected(self, tmp_path):
        path = tmp_path / "weblog.csv"
        write_weblog_csv([], path)
        with pytest.raises(ValueError, match="chunk_size"):
            next(read_weblog_chunks(path, chunk_size=0))

    def test_empty_weblog_round_trips(self, tmp_path):
        path = tmp_path / "weblog.csv.gz"
        assert write_weblog_csv([], path) == 0
        assert read_weblog_csv(path) == []
        assert list(read_weblog_chunks(path)) == []
