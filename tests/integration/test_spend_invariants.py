"""Spend and estimation invariants under randomised schedules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtb.pacing import PacingController
from repro.util.timeutil import Period


class TestPacingInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=0.5, max_value=20.0),      # budget USD
        st.floats(min_value=1.0, max_value=200.0),     # price CPM per win
        st.integers(min_value=10, max_value=300),      # opportunities
        st.integers(min_value=0, max_value=2**31),     # seed
    )
    def test_never_exceeds_budget_by_more_than_one_win(
        self, budget, price_cpm, n_opportunities, seed
    ):
        controller = PacingController(budget_usd=budget, flight=Period(0, 1000))
        rng = np.random.default_rng(seed)
        times = np.sort(rng.uniform(0, 1000, n_opportunities))
        for ts in times:
            if controller.exhausted:
                break
            if controller.participate(float(ts), rng):
                controller.record_spend(price_cpm)
        assert controller.spent_usd <= budget + price_cpm / 1000.0 + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_counters_partition_opportunities(self, seed):
        controller = PacingController(budget_usd=1.0, flight=Period(0, 100))
        rng = np.random.default_rng(seed)
        n = 50
        for ts in np.linspace(0, 99, n):
            if controller.participate(float(ts), rng):
                controller.record_spend(30.0)
        assert controller.admitted + controller.throttled == n


class TestClientMetadataResilience:
    def test_client_estimates_with_unknown_metadata(self):
        """A nURL from an unknown city / unseen slot must still produce a
        finite positive estimate (the encoder maps unseen to -1)."""
        from repro.core.price_model import EncryptedPriceModel

        rows = [
            {
                "context": "app" if i % 2 else "web",
                "city": ["Madrid", "Barcelona"][i % 2],
                "slot_size": ["300x250", "320x50"][i % 2],
            }
            for i in range(120)
        ]
        prices = [0.3 * (3.0 if i % 2 else 1.0) * (1 + 0.001 * (i % 9))
                  for i in range(120)]
        model = EncryptedPriceModel.train(
            rows, prices, feature_names=["context", "city", "slot_size"],
            n_estimators=5, max_depth=4, seed=0,
        )
        from repro.core.estimator import Estimator

        estimate = Estimator(model).estimate_one(
            {"context": "hologram", "city": "Atlantis", "slot_size": "999x1"}
        )
        assert np.isfinite(estimate)
        assert estimate > 0
        assert min(prices) <= estimate <= max(prices)
