"""Remaining small-surface coverage: PME evaluation path, observation
properties, browsing seasonality."""

import numpy as np
import pytest

from repro.analyzer.pipeline import PriceObservation
from repro.trace.browsing import sample_event_times
from repro.util.rng import stream
from repro.util.timeutil import Period, epoch, month_of


class TestPriceObservationProperties:
    def test_month_and_year(self):
        obs = PriceObservation(
            timestamp=epoch(2015, 11, 3, 10),
            user_id="u1",
            adx="MoPub",
            dsp="D",
            is_encrypted=False,
            price_cpm=0.5,
            encrypted_token=None,
            slot_size="300x250",
            publisher="p",
            publisher_iab="IAB12",
            city="Madrid",
            os="Android",
            device_type="smartphone",
            context="web",
            campaign_id="c",
            n_url_params=5,
        )
        assert obs.month == 11
        assert obs.year == 2015


class TestBrowsingSeasonality:
    def test_august_dip(self):
        """The month weights encode the Spanish August holiday dip."""
        ts = sample_event_times(stream("season"), Period.for_year(2015), 30_000)
        months = np.array([month_of(t) for t in ts])
        august = np.mean(months == 8)
        november = np.mean(months == 11)
        assert august < november

    def test_event_count_exact(self):
        ts = sample_event_times(stream("count"), Period.for_year(2015), 123)
        assert ts.size == 123


class TestPmeEvaluationPath:
    def test_train_model_with_evaluation(self):
        """train_model(evaluate=True) populates state.evaluation."""
        from repro.core.pme import PriceModelingEngine
        from repro.trace.simulate import build_market, small_config
        from repro.util.rng import RngRegistry

        config = small_config(seed=311)
        market = build_market(config, RngRegistry(config.seed))
        pme = PriceModelingEngine(seed=311)
        pme.state.selected_features = [
            "context", "device_type", "city", "time_of_day", "day_of_week",
            "slot_size", "publisher_iab", "adx",
        ]
        pme.run_probe_campaigns(market, auctions_per_setup=6)
        pme.train_model(evaluate=True, cv_folds=3, cv_runs=1)
        assert pme.state.evaluation is not None
        assert pme.state.evaluation.accuracy > 0.3
        assert len(pme.state.evaluation.reports) == 3
