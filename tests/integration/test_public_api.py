"""Public-API integrity: every exported name must resolve and be real."""

import importlib

import pytest

PACKAGES = (
    "repro",
    "repro.util",
    "repro.stats",
    "repro.ml",
    "repro.rtb",
    "repro.trace",
    "repro.analyzer",
    "repro.core",
)


@pytest.mark.parametrize("package", PACKAGES)
class TestPublicApi:
    def test_all_exports_resolve(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), f"{package} lacks __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} is exported but missing"

    def test_no_duplicate_exports(self, package):
        module = importlib.import_module(package)
        assert len(module.__all__) == len(set(module.__all__))

    def test_exports_documented(self, package):
        """Every exported class/function carries a docstring."""
        import typing

        module = importlib.import_module(package)
        undocumented = []
        for name in module.__all__:
            obj = getattr(module, name)
            if typing.get_origin(obj) is not None:  # type aliases
                continue
            if callable(obj) and not isinstance(obj, (int, float, str, tuple, dict)):
                if not (getattr(obj, "__doc__", None) or "").strip():
                    undocumented.append(name)
        assert not undocumented, f"undocumented exports in {package}: {undocumented}"


def test_package_version():
    import repro

    assert repro.__version__ == "1.0.0"
