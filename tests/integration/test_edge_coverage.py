"""Edge-case coverage across small utility surfaces."""

import json

import pytest

from repro.cli import main
from repro.io import read_observations_csv, save_model_package
from repro.util.timeutil import days_in_month, day_name, epoch


class TestTimeutilEdges:
    def test_days_in_month(self):
        assert days_in_month(2015, 2) == 28
        assert days_in_month(2016, 2) == 29
        assert days_in_month(2015, 12) == 31

    def test_day_names_cycle(self):
        # 2015-01-05 is a Monday; the week advances by one day per day.
        names = [day_name(epoch(2015, 1, 5 + i)) for i in range(7)]
        assert names == [
            "Monday", "Tuesday", "Wednesday", "Thursday", "Friday",
            "Saturday", "Sunday",
        ]


class TestIoEdges:
    def test_observations_missing_columns(self, tmp_path):
        path = tmp_path / "obs.csv"
        path.write_text("timestamp,user_id\n1.0,u1\n")
        with pytest.raises(ValueError, match="missing columns"):
            read_observations_csv(path)

    def test_model_package_wrong_kind(self, tmp_path):
        path = tmp_path / "bad.json.gz"
        import gzip

        with gzip.open(path, "wt") as handle:
            handle.write(json.dumps({"kind": "something"}))
        from repro.io import load_model_package

        with pytest.raises(ValueError):
            load_model_package(path)


class TestCliEdges:
    def _tiny_model(self, tmp_path):
        import numpy as np

        from repro.core.price_model import EncryptedPriceModel

        rows = [{"a": i % 3} for i in range(30)]
        prices = list(np.linspace(0.1, 5.0, 30))
        model = EncryptedPriceModel.train(
            rows, prices, n_estimators=2, max_depth=3, seed=0
        )
        path = tmp_path / "m.json"
        save_model_package(model.to_package(), path)
        return path

    def test_estimate_rejects_non_object_features(self, tmp_path):
        model_path = self._tiny_model(tmp_path)
        assert main(
            ["estimate", "--model", str(model_path), "--features", "[1,2]"]
        ) == 2

    def test_estimate_happy_path(self, tmp_path, capsys):
        model_path = self._tiny_model(tmp_path)
        assert main(
            ["estimate", "--model", str(model_path), "--features", '{"a": 1}']
        ) == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["estimated_cpm"] > 0

    def test_simulate_without_directory(self, tmp_path, capsys):
        out = tmp_path / "w.csv"
        assert main(
            ["simulate", "--scale", "0.004", "--seed", "9", "--out", str(out)]
        ) == 0
        assert out.exists()
        assert "directory" not in capsys.readouterr().out.split("wrote")[0]
