"""Seed robustness: the paper-shape findings are not a lucky seed.

Simulates three different worlds (distinct seeds) at a small-but-
meaningful scale and asserts the qualitative findings hold in each:
encrypted share near a quarter, encrypted premium, app premium, iOS
premium, MoPub dominance, heavy-tailed user costs.
"""

import numpy as np
import pytest

from repro.trace.simulate import SimulationConfig, simulate_dataset

SEEDS = (101, 202, 303)


def _world(seed):
    config = SimulationConfig(
        n_users=150,
        target_auctions=6_000,
        n_web_publishers=80,
        n_app_publishers=40,
        n_advertisers=20,
        seed=seed,
    )
    return simulate_dataset(config)


@pytest.fixture(scope="module", params=SEEDS)
def world(request):
    return _world(request.param)


class TestShapesAcrossSeeds:
    def test_encrypted_share_band(self, world):
        share = world.summary()["encrypted_fraction"]
        assert 0.15 < share < 0.40

    def test_encrypted_premium(self, world):
        prices = np.array([i.charge_price_cpm for i in world.impressions])
        enc = np.array([i.is_encrypted for i in world.impressions])
        ratio = np.median(prices[enc]) / np.median(prices[~enc])
        assert 1.25 < ratio < 2.4

    def test_app_premium(self, world):
        prices = np.array([i.charge_price_cpm for i in world.impressions])
        app = np.array([i.record.request.is_app for i in world.impressions])
        assert prices[app].mean() > 1.5 * prices[~app].mean()

    def test_ios_premium(self, world):
        prices = np.array([i.charge_price_cpm for i in world.impressions])
        os_names = np.array(
            [i.record.request.device.os for i in world.impressions]
        )
        ios = prices[os_names == "iOS"]
        android = prices[os_names == "Android"]
        assert np.median(ios) > 1.1 * np.median(android)

    def test_mopub_leads_volume(self, world):
        from collections import Counter

        counts = Counter(i.record.notification.adx for i in world.impressions)
        assert counts.most_common(1)[0][0] == "MoPub"

    def test_user_costs_heavy_tailed(self, world):
        from collections import defaultdict

        costs = defaultdict(float)
        for imp in world.impressions:
            costs[imp.user_id] += imp.charge_price_cpm
        arr = np.array(list(costs.values()))
        assert arr.max() > 5 * np.median(arr)
