"""Robustness: hostile or malformed inputs must degrade, not crash.

A transparency tool runs against adversarial traffic by definition --
exchanges have an incentive to confuse it (the paper notes ADXs "could
in principle fight back").  These tests feed the observer-side
components malformed URLs, corrupted tokens and nonsense rows.
"""

import pytest

from repro.analyzer.blacklist import default_blacklist
from repro.analyzer.detector import detect_notifications
from repro.analyzer.interests import PublisherDirectory
from repro.analyzer.pipeline import WeblogAnalyzer
from repro.rtb.nurl import parse_nurl
from repro.trace.weblog import HttpRequest


def make_row(url, domain, ua="Mozilla/5.0", ip="85.10.1.1"):
    return HttpRequest(
        timestamp=1.0,
        user_id="u1",
        url=url,
        domain=domain,
        user_agent=ua,
        kind="content",
        bytes_transferred=10,
        duration_ms=1.0,
        client_ip=ip,
    )


HOSTILE_URLS = [
    "https://cpp.imp.mpx.mopub.com/imp?charge_price=",               # empty price
    "https://cpp.imp.mpx.mopub.com/imp?charge_price=NaN",            # NaN literal
    "https://cpp.imp.mpx.mopub.com/imp?charge_price=1e309",          # overflow-ish
    "https://cpp.imp.mpx.mopub.com/imp?charge_price=%00%01",         # binary junk
    "https://cpp.imp.mpx.mopub.com/imp?charge_price=1.0&charge_price=2.0",  # dup
    "https://tags.mathtag.com/notify/js?price=QUJDRA",               # short blob
    "https://tags.mathtag.com/notify/js?price=" + "A" * 500,         # huge blob
    "https://ad.turn.com/server/ads.js?mcpm=--",                     # garbage
    "https://ox-d.openx.net/w/1.0/win?price=+inf",                   # inf literal
]


class TestHostileNurls:
    @pytest.mark.parametrize("url", HOSTILE_URLS)
    def test_parser_never_crashes(self, url):
        result = parse_nurl(url)
        # Either rejected outright, or parsed into something finite.
        if result is not None and result.cleartext_price_cpm is not None:
            import math

            assert math.isfinite(result.cleartext_price_cpm)
            assert result.cleartext_price_cpm >= 0

    def test_nan_price_rejected(self):
        result = parse_nurl("https://cpp.imp.mpx.mopub.com/imp?charge_price=NaN")
        assert result is None or result.cleartext_price_cpm is None

    def test_detector_skips_hostile_rows(self):
        rows = [make_row(url, "cpp.imp.mpx.mopub.com") for url in HOSTILE_URLS]
        detections = list(detect_notifications(rows, default_blacklist()))
        for det in detections:
            if det.parsed.cleartext_price_cpm is not None:
                import math

                assert math.isfinite(det.parsed.cleartext_price_cpm)


class TestAnalyzerOnGarbage:
    def test_pipeline_survives_nonsense_rows(self):
        rows = [
            make_row("not a url", "???", ua="\x00\x01", ip="999.1.2.3"),
            make_row("", "", ua="", ip=""),
            make_row("https://x.y/" + "a" * 2000, "x.y"),
            make_row("https://cpp.imp.mpx.mopub.com/imp?charge_price=0.5"
                     "&bidder_name=D&size=300x250",
                     "cpp.imp.mpx.mopub.com"),
        ]
        analyzer = WeblogAnalyzer(PublisherDirectory())
        result = analyzer.analyze(rows)
        # Only the single well-formed nURL survives.
        assert len(result.observations) == 1
        assert result.observations[0].price_cpm == pytest.approx(0.5)
        assert sum(result.traffic_counts.values()) == len(rows)


class TestNanInfPrices:
    def test_nan_inf_literals_never_become_prices(self):
        for literal in ("nan", "NAN", "inf", "-inf", "infinity", "+inf"):
            url = f"https://cpp.imp.mpx.mopub.com/imp?charge_price={literal}"
            result = parse_nurl(url)
            if result is not None and result.cleartext_price_cpm is not None:
                import math

                assert math.isfinite(result.cleartext_price_cpm)
