"""Cross-cutting property-based tests (hypothesis).

These pin the invariants the whole methodology rests on: wire-format
round trips, estimator outputs staying in the binner's range, auction
conservation laws, and the monotonicity of the cost pipeline.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binning import fit_price_binner
from repro.rtb.auction import run_second_price_auction
from repro.rtb.nurl import WinNotification, build_nurl, parse_nurl
from repro.rtb.openrtb import Bid
from repro.rtb.pricecrypto import PriceKeys, decrypt_price, encrypt_price

KEYS = PriceKeys.derive("prop")

prices = st.floats(min_value=0.001, max_value=500.0, allow_nan=False)
price_lists = st.lists(prices, min_size=8, max_size=120)


class TestWireFormatProperties:
    @settings(max_examples=60, deadline=None)
    @given(prices, st.binary(min_size=16, max_size=16))
    def test_encrypt_decrypt_identity(self, cpm, iv):
        token = encrypt_price(cpm, KEYS, iv)
        assert decrypt_price(token, KEYS) == pytest.approx(cpm, abs=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(
        prices,
        st.sampled_from(["MoPub", "OpenX", "Turn", "Rubicon", "Adnxs"]),
        st.sampled_from(["300x250", "320x50", "728x90"]),
    )
    def test_nurl_roundtrip_identity(self, cpm, adx, slot):
        notification = WinNotification(
            adx=adx,
            dsp="DSP-X",
            charge_price_cpm=cpm,
            encrypted_price=None,
            impression_id="i",
            auction_id="a",
            slot_size=slot,
            publisher="p.example.es",
        )
        parsed = parse_nurl(build_nurl(notification))
        assert parsed is not None
        assert parsed.adx == adx
        assert parsed.cleartext_price_cpm == pytest.approx(cpm, abs=1e-4 * max(1, cpm))
        assert parsed.slot_size == slot


class TestAuctionProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(prices, min_size=1, max_size=12), st.floats(0.0, 5.0))
    def test_charge_bounded_by_winner_and_floor(self, bid_prices, floor):
        bids = [
            Bid(dsp=f"d{i}", advertiser="a", campaign_id=f"c{i}", price_cpm=p)
            for i, p in enumerate(bid_prices)
        ]
        outcome = run_second_price_auction(bids, floor_cpm=floor)
        eligible = [p for p in bid_prices if p >= floor]
        if not eligible:
            assert outcome is None
            return
        assert outcome is not None
        assert outcome.winner.price_cpm == max(eligible)
        assert outcome.charge_price_cpm <= outcome.winner.price_cpm + 1e-9
        if len(eligible) == 1 and floor > 0:
            assert outcome.charge_price_cpm == pytest.approx(floor)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(prices, min_size=2, max_size=12))
    def test_bidding_higher_never_lowers_revenue(self, bid_prices):
        """Seller-side monotonicity of second-price auctions."""
        bids = [
            Bid(dsp=f"d{i}", advertiser="a", campaign_id=f"c{i}", price_cpm=p)
            for i, p in enumerate(bid_prices)
        ]
        base = run_second_price_auction(bids)
        boosted = list(bids)
        boosted[0] = Bid(
            dsp="d0", advertiser="a", campaign_id="c0",
            price_cpm=bid_prices[0] * 2,
        )
        higher = run_second_price_auction(boosted)
        assert higher.charge_price_cpm >= base.charge_price_cpm - 1e-9


class TestBinnerProperties:
    @settings(max_examples=30, deadline=None)
    @given(price_lists)
    def test_assignment_total_and_in_range(self, sample):
        if len(set(sample)) < 4:
            return
        binner = fit_price_binner(sample, n_classes=4)
        labels = binner.assign(sample)
        assert labels.min() >= 0
        assert labels.max() < 4
        assert sum(binner.counts) == len(sample)

    @settings(max_examples=30, deadline=None)
    @given(price_lists)
    def test_estimates_within_sample_range(self, sample):
        if len(set(sample)) < 4:
            return
        binner = fit_price_binner(sample, n_classes=4)
        estimates = binner.estimate(binner.assign(sample))
        assert estimates.min() >= min(sample) - 1e-9
        assert estimates.max() <= max(sample) + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(price_lists, prices)
    def test_single_price_estimate_monotone(self, sample, probe):
        if len(set(sample)) < 4:
            return
        binner = fit_price_binner(sample, n_classes=4)
        lower = binner.assign_one(probe)
        higher = binner.assign_one(probe * 3.0)
        assert higher >= lower
