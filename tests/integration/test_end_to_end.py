"""End-to-end integration: the full methodology on one small world.

This is the reproduction's master test: simulate dataset D, analyse it
observer-side, run the probe campaigns, train the price model, compute
every user's cost, replay a user through YourAdValue, and check that
the paper's qualitative findings all hold simultaneously.
"""

import numpy as np
import pytest

from repro import quickstart_pipeline
from repro.core.cost import CostDistribution, compute_user_costs
from repro.core.pme import mopub_cleartext_prices
from repro.core.validation import validate_arpu


@pytest.fixture(scope="module")
def pipeline():
    return quickstart_pipeline(seed=31, scale=0.05)


class TestPipelineArtifacts:
    def test_all_artifacts_present(self, pipeline):
        assert {"dataset", "analysis", "pme", "model", "costs", "client",
                "summary"} <= set(pipeline)

    def test_analysis_covers_dataset(self, pipeline):
        assert len(pipeline["analysis"].observations) == pipeline["dataset"].n_impressions


class TestPaperFindingsHoldTogether:
    def test_encrypted_share_about_a_quarter(self, pipeline):
        obs = pipeline["analysis"].observations
        share = np.mean([o.is_encrypted for o in obs])
        assert 0.12 < share < 0.40

    def test_encrypted_campaign_premium(self, pipeline):
        pme = pipeline["pme"]
        a1 = pme.state.campaign_a1.prices()
        a2 = pme.state.campaign_a2.prices()
        assert 1.2 < np.median(a1) / np.median(a2) < 2.4

    def test_time_correction_positive_drift(self, pipeline):
        assert pipeline["pme"].state.time_correction > 1.0

    def test_cost_distribution_shape(self, pipeline):
        dist = CostDistribution.from_costs(pipeline["costs"])
        # Median in the tens of CPM; a heavy upper tail exists.
        assert 3 < dist.median_total() < 300
        assert dist.total.max() > 5 * dist.median_total()

    def test_total_includes_encrypted_uplift(self, pipeline):
        dist = CostDistribution.from_costs(pipeline["costs"])
        assert dist.total.sum() > dist.cleartext_corrected.sum()

    def test_arpu_extrapolation_brackets_market(self, pipeline):
        dist = CostDistribution.from_costs(pipeline["costs"])
        validation = validate_arpu(dist.total)
        assert validation.extrapolated_low_usd < validation.extrapolated_high_usd
        # Order-of-magnitude agreement with reported platform ARPU.
        assert 0.01 < validation.extrapolated_low_usd < 20
        assert validation.agrees_with_market()


class TestClientAgreesWithBackend:
    def test_client_total_matches_cost_table(self, pipeline):
        client = pipeline["client"]
        costs = pipeline["costs"]
        summary = client.summary()
        heaviest = max(costs.values(), key=lambda c: c.total_cpm)
        assert summary.cleartext_cpm == pytest.approx(
            heaviest.cleartext_cpm, rel=1e-6
        )
        assert summary.n_cleartext == heaviest.n_cleartext
        assert summary.n_encrypted == heaviest.n_encrypted
        # Same model, same features -> identical encrypted estimates.
        assert summary.encrypted_estimated_cpm == pytest.approx(
            heaviest.encrypted_estimated_cpm, rel=1e-6
        )

    def test_estimates_against_simulator_truth(self, pipeline):
        dataset = pipeline["dataset"]
        analysis = pipeline["analysis"]
        model = pipeline["model"]
        from repro.core.cost import estimation_accuracy

        truth = {
            i.record.notification.encrypted_price: i.charge_price_cpm
            for i in dataset.impressions
            if i.is_encrypted
        }
        if len(truth) < 30:
            pytest.skip("too few encrypted impressions at this scale")
        scores = estimation_accuracy(analysis, model, truth)
        assert scores["class_accuracy"] > 0.5
        assert 0.5 < scores["total_ratio"] < 2.0


class TestDeterminism:
    def test_same_seed_same_costs(self):
        a = quickstart_pipeline(seed=77, scale=0.02)
        b = quickstart_pipeline(seed=77, scale=0.02)
        ca = {u: c.total_cpm for u, c in a["costs"].items()}
        cb = {u: c.total_cpm for u, c in b["costs"].items()}
        assert ca == cb
