"""Tests for nURL building and observer-side parsing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtb.nurl import (
    FORMATS,
    WinNotification,
    build_nurl,
    parse_nurl,
)
from repro.rtb.pricecrypto import PriceKeys, encrypt_price

KEYS = PriceKeys.derive("nurl-test")
TOKEN = encrypt_price(1.5, KEYS, bytes(16))


def make_notification(adx="MoPub", price=0.95, encrypted=False, **kwargs):
    defaults = dict(
        adx=adx,
        dsp="Criteo-DSP",
        charge_price_cpm=None if encrypted else price,
        encrypted_price=TOKEN if encrypted else None,
        impression_id="imp-1",
        auction_id="auc-1",
        ad_domain="brand.example.com",
        slot_size="300x250",
        publisher="news.example.es",
        country="ES",
        bid_price_cpm=1.10,
        campaign_id="cmp-7",
    )
    defaults.update(kwargs)
    return WinNotification(**defaults)


class TestWinNotification:
    def test_requires_exactly_one_price(self):
        with pytest.raises(ValueError):
            WinNotification(
                adx="MoPub", dsp="d", charge_price_cpm=1.0, encrypted_price=TOKEN,
                impression_id="i", auction_id="a",
            )
        with pytest.raises(ValueError):
            WinNotification(
                adx="MoPub", dsp="d", charge_price_cpm=None, encrypted_price=None,
                impression_id="i", auction_id="a",
            )

    def test_is_encrypted_flag(self):
        assert make_notification(encrypted=True).is_encrypted
        assert not make_notification().is_encrypted


class TestBuildParse:
    @pytest.mark.parametrize("adx", sorted(FORMATS))
    def test_cleartext_roundtrip_every_exchange(self, adx):
        n = make_notification(adx=adx, price=0.4321)
        parsed = parse_nurl(build_nurl(n))
        assert parsed is not None
        assert parsed.adx == adx
        assert not parsed.is_encrypted
        assert parsed.cleartext_price_cpm == pytest.approx(0.4321, abs=1e-4)
        assert parsed.dsp == "Criteo-DSP"
        assert parsed.campaign_id == "cmp-7"

    @pytest.mark.parametrize("adx", sorted(FORMATS))
    def test_encrypted_roundtrip_every_exchange(self, adx):
        n = make_notification(adx=adx, encrypted=True)
        parsed = parse_nurl(build_nurl(n))
        assert parsed is not None
        assert parsed.is_encrypted
        assert parsed.encrypted_token == TOKEN
        assert parsed.cleartext_price_cpm is None

    def test_slot_size_recovered_from_size_param(self):
        parsed = parse_nurl(build_nurl(make_notification(adx="MoPub")))
        assert parsed.slot_size == "300x250"

    def test_slot_size_recovered_from_width_height(self):
        parsed = parse_nurl(build_nurl(make_notification(adx="Turn")))
        assert parsed.slot_size == "300x250"

    def test_bid_price_never_mistaken_for_charge(self):
        """MoPub carries bid_price too; the parser must take charge_price."""
        n = make_notification(adx="MoPub", price=0.5, bid_price_cpm=9.99)
        parsed = parse_nurl(build_nurl(n))
        assert parsed.cleartext_price_cpm == pytest.approx(0.5, abs=1e-4)

    def test_unknown_exchange_rejected_on_build(self):
        with pytest.raises(ValueError):
            build_nurl(make_notification(adx="NoSuchX"))

    @given(st.floats(min_value=0.001, max_value=99, allow_nan=False))
    @settings(max_examples=30)
    def test_price_roundtrip_precision(self, price):
        parsed = parse_nurl(build_nurl(make_notification(price=price)))
        assert parsed.cleartext_price_cpm == pytest.approx(price, abs=1e-4)


class TestParserRobustness:
    def test_unknown_host_returns_none(self):
        assert parse_nurl("https://unknown.example.com/win?price=1.0") is None

    def test_content_url_returns_none(self):
        assert parse_nurl("https://news.example.es/page/1") is None

    def test_known_host_without_price_returns_none(self):
        assert parse_nurl("https://cpp.imp.mpx.mopub.com/imp?foo=bar") is None

    def test_negative_price_rejected(self):
        assert parse_nurl("https://cpp.imp.mpx.mopub.com/imp?charge_price=-1") is None

    def test_garbled_price_returns_none(self):
        assert (
            parse_nurl("https://cpp.imp.mpx.mopub.com/imp?charge_price=oops") is None
        )

    def test_malformed_url_returns_none(self):
        assert parse_nurl("not a url at all") is None

    def test_params_preserved(self):
        parsed = parse_nurl(build_nurl(make_notification()))
        assert parsed.params.get("country") == "ES"
        assert parsed.params.get("pub_name") == "news.example.es"
