"""Tests for currency normalisation and budget pacing."""

import numpy as np
import pytest

from repro.rtb.bidding import FixedBidEngine
from repro.rtb.campaign import Campaign
from repro.rtb.currency import (
    CurrencyConverter,
    CurrencyError,
    normalize_price_usd,
)
from repro.rtb.pacing import PacedEngine, PacingController
from repro.util.rng import stream
from repro.util.timeutil import Period


class TestCurrencyConverter:
    def test_usd_identity(self):
        converter = CurrencyConverter()
        assert converter.to_usd(1.5, "USD") == 1.5

    def test_eur_conversion(self):
        converter = CurrencyConverter()
        assert converter.to_usd(1.0, "EUR") == pytest.approx(1.10)

    def test_case_insensitive(self):
        converter = CurrencyConverter()
        assert converter.to_usd(1.0, "eur") == pytest.approx(1.10)

    def test_unknown_assumes_usd_by_default(self):
        """The paper's footnote-4 behaviour."""
        converter = CurrencyConverter()
        assert converter.to_usd(2.0, "XXX") == 2.0

    def test_unknown_raise_policy(self):
        converter = CurrencyConverter(unknown_policy="raise")
        with pytest.raises(CurrencyError):
            converter.to_usd(1.0, "XXX")

    def test_cross_conversion_roundtrip(self):
        converter = CurrencyConverter()
        eur = converter.convert(10.0, "USD", "EUR")
        assert converter.convert(eur, "EUR", "USD") == pytest.approx(10.0)

    def test_set_rate(self):
        converter = CurrencyConverter()
        converter.set_rate("NOK", 0.12)
        assert converter.to_usd(10.0, "NOK") == pytest.approx(1.2)
        with pytest.raises(CurrencyError):
            converter.set_rate("NOK", -1)

    def test_invalid_policy_rejected(self):
        with pytest.raises(CurrencyError):
            CurrencyConverter(unknown_policy="guess")

    def test_normalize_helper(self):
        assert normalize_price_usd(1.0, "EUR") == pytest.approx(1.10)
        assert normalize_price_usd(1.0, None) == 1.0


class TestPacingController:
    FLIGHT = Period(0.0, 1000.0)

    def test_ideal_spend_linear(self):
        controller = PacingController(budget_usd=10.0, flight=self.FLIGHT)
        assert controller.ideal_spend(0.0) == 0.0
        assert controller.ideal_spend(500.0) == pytest.approx(5.0)
        assert controller.ideal_spend(2000.0) == pytest.approx(10.0)

    def test_on_schedule_always_participates(self):
        controller = PacingController(budget_usd=10.0, flight=self.FLIGHT)
        controller.spent_usd = 4.0
        assert controller.participation_probability(500.0) == 1.0

    def test_overspend_throttles(self):
        controller = PacingController(budget_usd=10.0, flight=self.FLIGHT)
        controller.spent_usd = 5.75  # 1.15x ahead at t=500
        p = controller.participation_probability(500.0)
        assert 0.0 < p < 1.0
        controller.spent_usd = 9.0   # far ahead -> fully throttled
        assert controller.participation_probability(500.0) == 0.0

    def test_exhausted_never_participates(self):
        controller = PacingController(budget_usd=1.0, flight=self.FLIGHT)
        controller.spent_usd = 1.0
        assert controller.participation_probability(999.0) == 0.0
        assert controller.exhausted
        assert controller.remaining_usd == 0.0

    def test_record_spend_and_counters(self):
        controller = PacingController(budget_usd=10.0, flight=self.FLIGHT)
        rng = stream("pace")
        allowed = controller.participate(100.0, rng)
        assert allowed and controller.admitted == 1
        controller.record_spend(2000.0)  # $2
        assert controller.spent_usd == pytest.approx(2.0)
        with pytest.raises(ValueError):
            controller.record_spend(-1)

    def test_smooths_spend_over_flight(self):
        """With pacing, spend tracks the linear curve; the greedy
        baseline burns the budget early."""
        rng = stream("pace2")
        price_per_win_cpm = 50.0  # $0.05
        budget = 2.0              # 40 wins affordable

        controller = PacingController(budget_usd=budget, flight=self.FLIGHT)
        paced_spend_at_half = None
        for ts in np.linspace(0, 999, 400):
            if controller.exhausted:
                break
            if controller.participate(float(ts), rng):
                controller.record_spend(price_per_win_cpm)
            if paced_spend_at_half is None and ts >= 500:
                paced_spend_at_half = controller.spent_usd
        # Paced spend at mid-flight stays near half the budget.
        assert paced_spend_at_half == pytest.approx(budget / 2, rel=0.35)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PacingController(budget_usd=0.0, flight=self.FLIGHT)
        with pytest.raises(ValueError):
            PacingController(budget_usd=1.0, flight=self.FLIGHT, tolerance=-1)


class TestPacedEngine:
    def test_wraps_inner_engine(self):
        from tests.rtb.test_bidding_exchange import make_request

        controller = PacingController(budget_usd=10.0, flight=Period(0, 2e9))
        engine = PacedEngine(inner=FixedBidEngine(1.5), controller=controller)
        campaign = Campaign("c", "adv")
        bid = engine.price_bid(make_request(), campaign, stream("pe"))
        assert bid == 1.5
        engine.notify_win(1.5)
        assert controller.spent_usd == pytest.approx(0.0015)

    def test_throttled_returns_none(self):
        from tests.rtb.test_bidding_exchange import make_request

        controller = PacingController(budget_usd=1.0, flight=Period(0, 2e9))
        controller.spent_usd = 1.0
        engine = PacedEngine(inner=FixedBidEngine(1.5), controller=controller)
        assert engine.price_bid(make_request(), Campaign("c", "a"), stream("pe2")) is None
