"""Tests for campaign targeting, budgets and the setup grid."""

import pytest

from repro.rtb.adslots import AdSlotSize
from repro.rtb.campaign import (
    CAMPAIGN_DAYPARTS,
    Campaign,
    TargetingSpec,
    campaign_daypart,
    clone_for_adx,
    expand_setup_grid,
)
from repro.rtb.openrtb import BidRequest, Device, Geo, Impression, UserInfo
from repro.util.timeutil import epoch


def make_request(
    city="Madrid",
    is_app=True,
    hour=10,
    day=5,          # 2015-01-05 is a Monday
    device_type="smartphone",
    os="Android",
    slot="300x250",
    adx="MoPub",
    iab="IAB12",
):
    ts = epoch(2015, 1, day, hour)
    return BidRequest(
        auction_id="a1",
        timestamp=ts,
        imp=Impression(impression_id="i1", slot_size=AdSlotSize.parse(slot)),
        publisher="pub.example.es",
        publisher_iab=iab,
        device=Device(os=os, device_type=device_type),
        geo=Geo(country="ES", city=city),
        user=UserInfo(exchange_uid="u1"),
        is_app=is_app,
        adx=adx,
    )


class TestDayparts:
    def test_boundaries(self):
        assert campaign_daypart(epoch(2015, 1, 5, 0)) == "12am-9am"
        assert campaign_daypart(epoch(2015, 1, 5, 8, 59)) == "12am-9am"
        assert campaign_daypart(epoch(2015, 1, 5, 9)) == "9am-6pm"
        assert campaign_daypart(epoch(2015, 1, 5, 17, 59)) == "9am-6pm"
        assert campaign_daypart(epoch(2015, 1, 5, 18)) == "6pm-12am"
        assert campaign_daypart(epoch(2015, 1, 5, 23, 59)) == "6pm-12am"


class TestTargetingSpec:
    def test_any_matches_everything(self):
        assert TargetingSpec.any().matches(make_request())

    def test_city_filter(self):
        spec = TargetingSpec(cities=frozenset({"Madrid"}))
        assert spec.matches(make_request(city="Madrid"))
        assert not spec.matches(make_request(city="Torello"))

    def test_context_filter(self):
        spec = TargetingSpec(contexts=frozenset({"web"}))
        assert spec.matches(make_request(is_app=False))
        assert not spec.matches(make_request(is_app=True))

    def test_daypart_filter(self):
        spec = TargetingSpec(dayparts=frozenset({"9am-6pm"}))
        assert spec.matches(make_request(hour=12))
        assert not spec.matches(make_request(hour=20))

    def test_day_type_filter(self):
        weekend = TargetingSpec(day_types=frozenset({"weekend"}))
        assert weekend.matches(make_request(day=3))       # Saturday 2015-01-03
        assert not weekend.matches(make_request(day=5))   # Monday

    def test_device_os_slot_adx_iab_filters(self):
        spec = TargetingSpec(
            device_types=frozenset({"tablet"}),
            oses=frozenset({"iOS"}),
            slot_sizes=frozenset({"728x90"}),
            adxs=frozenset({"OpenX"}),
            iab_categories=frozenset({"IAB3"}),
        )
        match = make_request(
            device_type="tablet", os="iOS", slot="728x90", adx="OpenX", iab="IAB3"
        )
        assert spec.matches(match)
        assert not spec.matches(make_request())

    def test_clone_for_adx(self):
        spec = TargetingSpec(cities=frozenset({"Madrid"}), adxs=frozenset({"OpenX"}))
        clone = clone_for_adx(spec, "MoPub")
        assert clone.adxs == frozenset({"MoPub"})
        assert clone.cities == spec.cities


class TestCampaign:
    def test_budget_accounting(self):
        campaign = Campaign("c1", "adv", budget_usd=0.01, max_bid_cpm=5.0)
        campaign.record_win(5.0)     # $0.005
        assert campaign.spent_usd == pytest.approx(0.005)
        assert campaign.impressions_won == 1
        assert not campaign.exhausted
        campaign.record_win(5.0)
        assert campaign.exhausted
        assert not campaign.eligible_for(make_request())

    def test_average_cpm(self):
        campaign = Campaign("c1", "adv")
        campaign.record_win(1.0)
        campaign.record_win(3.0)
        assert campaign.average_cpm == pytest.approx(2.0)
        assert Campaign("c2", "adv").average_cpm == 0.0

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError):
            Campaign("c1", "adv").record_win(-1.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Campaign("c1", "adv", max_bid_cpm=0)
        with pytest.raises(ValueError):
            Campaign("c1", "adv", budget_usd=-1)

    def test_unlimited_budget_never_exhausted(self):
        campaign = Campaign("c1", "adv")
        campaign.record_win(100.0)
        assert not campaign.exhausted


class TestSetupGrid:
    def test_cartesian_count(self):
        specs = expand_setup_grid(
            cities=["Madrid", "Barcelona"],
            contexts=["app", "web"],
            dayparts=CAMPAIGN_DAYPARTS,
            day_types=["weekday", "weekend"],
            device_oses=[("smartphone", "Android", "320x50")],
            adxs=["MoPub"],
        )
        assert len(specs) == 2 * 2 * 3 * 2 * 1 * 1

    def test_specs_fully_pinned(self):
        (spec,) = expand_setup_grid(
            ["Madrid"], ["app"], ["9am-6pm"], ["weekday"],
            [("smartphone", "iOS", "300x250")], ["OpenX"],
        )
        assert spec.cities == frozenset({"Madrid"})
        assert spec.oses == frozenset({"iOS"})
        assert spec.slot_sizes == frozenset({"300x250"})
        assert spec.adxs == frozenset({"OpenX"})
