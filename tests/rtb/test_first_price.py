"""Tests for first-price auction clearing and the exchange mechanism knob."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtb.auction import run_first_price_auction, run_second_price_auction
from repro.rtb.bidding import Dsp, FixedBidEngine
from repro.rtb.campaign import Campaign
from repro.rtb.exchange import AdExchange, PairEncryptionPolicy
from repro.rtb.openrtb import Bid
from repro.util.rng import stream


def bid(dsp, price):
    return Bid(dsp=dsp, advertiser="a", campaign_id=f"c-{dsp}", price_cpm=price)


class TestFirstPriceClearing:
    def test_winner_pays_own_bid(self):
        outcome = run_first_price_auction([bid("a", 2.0), bid("b", 1.5)])
        assert outcome.winner.dsp == "a"
        assert outcome.charge_price_cpm == 2.0
        assert outcome.second_price_cpm == 1.5

    def test_floor_filters(self):
        assert run_first_price_auction([bid("a", 0.5)], floor_cpm=1.0) is None

    def test_single_bidder(self):
        outcome = run_first_price_auction([bid("a", 3.0)], floor_cpm=0.1)
        assert outcome.charge_price_cpm == 3.0
        assert outcome.second_price_cpm is None

    def test_negative_floor_rejected(self):
        from repro.rtb.auction import AuctionError

        with pytest.raises(AuctionError):
            run_first_price_auction([bid("a", 1.0)], floor_cpm=-1)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(0.01, 100, allow_nan=False), min_size=2, max_size=8))
    def test_first_price_charges_at_least_second_price(self, prices):
        bids = [bid(f"d{i}", p) for i, p in enumerate(prices)]
        first = run_first_price_auction(bids)
        second = run_second_price_auction(bids)
        assert first.charge_price_cpm >= second.charge_price_cpm - 1e-9
        assert first.winner.dsp == second.winner.dsp


class TestExchangeMechanism:
    def _run(self, mechanism):
        adx = AdExchange("MoPub", stream(f"fp-{mechanism}"), mechanism=mechanism)
        dsps = [
            Dsp("D1", FixedBidEngine(2.0), stream("fp1"), [Campaign("c1", "a")]),
            Dsp("D2", FixedBidEngine(1.0), stream("fp2"), [Campaign("c2", "a")]),
        ]
        policy = PairEncryptionPolicy.always_cleartext(["MoPub"], ["D1", "D2"])
        from tests.rtb.test_bidding_exchange import make_request

        return adx.run_auction(make_request(), dsps, policy)

    def test_first_price_exchange_charges_bid(self):
        record = self._run("first_price")
        assert record.true_charge_price_cpm == pytest.approx(2.0)

    def test_second_price_exchange_charges_runner_up(self):
        record = self._run("second_price")
        assert record.true_charge_price_cpm == pytest.approx(1.01)

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ValueError):
            AdExchange("MoPub", stream("fp3"), mechanism="all_pay")
