"""Property-based tests for currency conversion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtb.currency import DEFAULT_RATES_TO_USD, CurrencyConverter

codes = st.sampled_from(sorted(DEFAULT_RATES_TO_USD))
amounts = st.floats(min_value=0.0001, max_value=1e6, allow_nan=False)


class TestConversionProperties:
    @settings(max_examples=60, deadline=None)
    @given(amounts, codes, codes)
    def test_roundtrip_identity(self, amount, source, target):
        converter = CurrencyConverter()
        there = converter.convert(amount, source, target)
        back = converter.convert(there, target, source)
        assert back == pytest.approx(amount, rel=1e-12)

    @settings(max_examples=60, deadline=None)
    @given(amounts, codes)
    def test_positive_amounts_stay_positive(self, amount, code):
        assert CurrencyConverter().to_usd(amount, code) > 0

    @settings(max_examples=60, deadline=None)
    @given(amounts, amounts, codes)
    def test_linearity(self, a, b, code):
        converter = CurrencyConverter()
        assert converter.to_usd(a + b, code) == pytest.approx(
            converter.to_usd(a, code) + converter.to_usd(b, code), rel=1e-9
        )

    @settings(max_examples=40, deadline=None)
    @given(amounts, codes, codes, codes)
    def test_triangular_consistency(self, amount, a, b, c):
        """Converting a->b->c equals a->c (no arbitrage in the table)."""
        converter = CurrencyConverter()
        via = converter.convert(converter.convert(amount, a, b), b, c)
        direct = converter.convert(amount, a, c)
        assert via == pytest.approx(direct, rel=1e-9)
