"""Tests for entities, cookie sync, IAB taxonomy and slot catalog."""

import pytest

from repro.rtb.adslots import AdSlotSize, catalog, sort_by_area
from repro.rtb.cookiesync import CookieSyncRegistry, synced_uid
from repro.rtb.entities import (
    DSP_NAMES,
    ENCRYPTING_ADXS,
    MARKET_SHARES,
    Advertiser,
    Dmp,
    Publisher,
    Ssp,
)
from repro.rtb.iab import (
    DATASET_CATEGORIES,
    IAB_CATEGORIES,
    InterestProfile,
    category_index,
    category_name,
    is_valid_category,
)


class TestAdSlots:
    def test_parse_and_label(self):
        slot = AdSlotSize.parse("300x250")
        assert slot.width == 300 and slot.height == 250
        assert slot.label == "300x250"
        assert slot.area == 75_000
        assert "MPU" in slot.nickname

    def test_parse_case_insensitive(self):
        assert AdSlotSize.parse("728X90") == AdSlotSize(728, 90)

    def test_parse_garbage_rejected(self):
        for bad in ("300", "300x", "x250", "wide", "300x250x10"):
            with pytest.raises(ValueError):
                AdSlotSize.parse(bad)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            AdSlotSize(0, 250)

    def test_sort_by_area(self):
        assert sort_by_area(["300x250", "320x50", "728x90"]) == [
            "320x50", "728x90", "300x250",
        ]

    def test_catalog_sorted_and_unique(self):
        slots = catalog()
        areas = [s.area for s in slots]
        assert areas == sorted(areas)
        assert len({s.label for s in slots}) == len(slots)


class TestIab:
    def test_full_taxonomy(self):
        assert len(IAB_CATEGORIES) == 26
        assert category_name("IAB3") == "Business"
        assert category_index("IAB13") == 13

    def test_validation(self):
        assert is_valid_category("IAB1")
        assert not is_valid_category("IAB99")
        with pytest.raises(ValueError):
            category_index("XYZ")

    def test_dataset_categories_all_valid(self):
        assert len(DATASET_CATEGORIES) == 18
        assert all(is_valid_category(c) for c in DATASET_CATEGORIES)


class TestInterestProfile:
    def test_from_counts_normalises_and_sorts(self):
        profile = InterestProfile.from_counts({"IAB3": 3.0, "IAB12": 1.0})
        assert profile.dominant == "IAB3"
        assert profile.weight("IAB3") == pytest.approx(0.75)
        assert profile.weight("IAB12") == pytest.approx(0.25)
        assert profile.weight("IAB15") == 0.0

    def test_empty_counts(self):
        profile = InterestProfile.from_counts({})
        assert profile.dominant is None
        assert profile.top(3) == []

    def test_invalid_category_rejected(self):
        with pytest.raises(ValueError):
            InterestProfile((("IAB99", 1.0),))

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            InterestProfile((("IAB1", -0.5),))

    def test_top_k(self):
        profile = InterestProfile.from_counts({"IAB1": 5, "IAB2": 3, "IAB3": 1})
        assert profile.top(2) == ["IAB1", "IAB2"]


class TestMarketRoster:
    def test_shares_sum_to_one(self):
        assert sum(MARKET_SHARES.values()) == pytest.approx(1.0)

    def test_paper_headline_shares(self):
        assert MARKET_SHARES["MoPub"] == pytest.approx(0.3355)
        assert MARKET_SHARES["Adnxs"] == pytest.approx(0.1074)

    def test_encrypting_adxs_in_roster(self):
        assert set(ENCRYPTING_ADXS) <= set(MARKET_SHARES)

    def test_dsp_names_nonempty(self):
        assert len(DSP_NAMES) >= 5


class TestEntities:
    def test_publisher_validation(self):
        slot = (AdSlotSize(300, 250),)
        pub = Publisher("x.es", "X", "IAB12", False, slot)
        assert pub.kind == "web"
        with pytest.raises(ValueError):
            Publisher("x.es", "X", "IAB99", False, slot)
        with pytest.raises(ValueError):
            Publisher("x.es", "X", "IAB12", False, ())
        with pytest.raises(ValueError):
            Publisher("x.es", "X", "IAB12", False, slot, popularity=0)

    def test_advertiser_validation(self):
        Advertiser("A", "a.com", "IAB3")
        with pytest.raises(ValueError):
            Advertiser("A", "a.com", "nope")

    def test_ssp_validation(self):
        Ssp("S", ("MoPub",))
        with pytest.raises(ValueError):
            Ssp("S", ())
        with pytest.raises(ValueError):
            Ssp("S", ("MoPub",), floor_cpm=-1)

    def test_dmp_profiles(self):
        dmp = Dmp()
        interests = InterestProfile.from_counts({"IAB3": 1.0})
        dmp.ingest("u1", interests=interests, city="Madrid", device_os="iOS")
        dmp.ingest("u1", city="Madrid")  # dedup city
        profile = dmp.query("u1")
        assert profile["cities"] == ["Madrid"]
        assert profile["device_os"] == "iOS"
        assert dmp.query("ghost") is None
        assert dmp.audience_segment("IAB3") == ["u1"]
        assert len(dmp) == 1


class TestCookieSync:
    def test_sync_once_per_triple(self):
        registry = CookieSyncRegistry()
        uid1, new1 = registry.sync("u1", "MoPub", "DBM")
        uid2, new2 = registry.sync("u1", "MoPub", "DBM")
        assert new1 and not new2
        assert uid1 == uid2
        assert registry.sync_count("u1") == 1

    def test_lookup_after_sync(self):
        registry = CookieSyncRegistry()
        assert registry.lookup("u1", "MoPub", "DBM") is None
        uid, _ = registry.sync("u1", "MoPub", "DBM")
        assert registry.lookup("u1", "MoPub", "DBM") == uid

    def test_uid_deterministic_per_party(self):
        assert synced_uid("DBM", "u1") == synced_uid("DBM", "u1")
        assert synced_uid("DBM", "u1") != synced_uid("Turn", "u1")

    def test_known_destinations(self):
        registry = CookieSyncRegistry()
        registry.sync("u1", "MoPub", "DBM")
        registry.sync("u1", "MoPub", "Turn-DSP")
        registry.sync("u2", "MoPub", "DBM")
        destinations = registry.known_destinations("u1", "MoPub")
        assert set(destinations) == {"DBM", "Turn-DSP"}

    def test_beacon_url_shape(self):
        registry = CookieSyncRegistry()
        url = registry.beacon_url("u1", "MoPub", "DBM")
        assert url.startswith("https://sync.mopub.com/match?")
        assert "partner_uid=" in url
