"""Tests for the OpenRTB JSON wire codec."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtb.adslots import AdSlotSize
from repro.rtb.iab import InterestProfile
from repro.rtb.openrtb import (
    Bid,
    BidRequest,
    BidResponse,
    Device,
    Geo,
    Impression,
    UserInfo,
)
from repro.rtb.openrtb_wire import (
    OpenRtbError,
    bid_request_from_dict,
    bid_request_to_dict,
    bid_response_from_dict,
    bid_response_to_dict,
    dumps_request,
    dumps_response,
    loads_request,
    loads_response,
)
from repro.util.timeutil import epoch


def make_request(is_app=True):
    return BidRequest(
        auction_id="auc-7",
        timestamp=epoch(2015, 6, 1, 9),
        imp=Impression(
            impression_id="auc-7-1",
            slot_size=AdSlotSize(300, 250),
            bidfloor_cpm=0.05,
            interstitial=False,
        ),
        publisher="news.example.es",
        publisher_iab="IAB12",
        device=Device(
            os="iOS", device_type="tablet", user_agent="UA", ip="85.10.1.2"
        ),
        geo=Geo(country="ES", city="Madrid"),
        user=UserInfo(
            exchange_uid="xu-1",
            buyer_uids={"DBM": "b-1"},
            interests=InterestProfile.from_counts({"IAB3": 2.0, "IAB12": 1.0}),
        ),
        is_app=is_app,
        adx="MoPub",
    )


class TestRequestCodec:
    def test_roundtrip_app(self):
        request = make_request(is_app=True)
        clone = bid_request_from_dict(bid_request_to_dict(request))
        assert clone.auction_id == request.auction_id
        assert clone.timestamp == request.timestamp
        assert clone.imp == request.imp
        assert clone.publisher == request.publisher
        assert clone.publisher_iab == request.publisher_iab
        assert clone.device == request.device
        assert clone.geo == request.geo
        assert clone.is_app is True
        assert clone.adx == "MoPub"
        assert clone.user.buyer_uids == {"DBM": "b-1"}

    def test_roundtrip_web(self):
        clone = bid_request_from_dict(bid_request_to_dict(make_request(is_app=False)))
        assert clone.is_app is False

    def test_json_string_roundtrip(self):
        request = make_request()
        text = dumps_request(request)
        assert isinstance(json.loads(text), dict)
        clone = loads_request(text)
        assert clone.auction_id == request.auction_id

    def test_spec_fields_present(self):
        payload = bid_request_to_dict(make_request())
        assert payload["at"] == 2                       # second-price
        assert payload["imp"][0]["banner"] == {"w": 300, "h": 250}
        assert payload["app"]["cat"] == ["IAB12"]
        assert payload["device"]["devicetype"] == 5     # tablet
        assert payload["tmax"] == 100

    def test_interest_keywords_roundtrip(self):
        clone = bid_request_from_dict(bid_request_to_dict(make_request()))
        assert set(clone.user.interests.top(2)) == {"IAB3", "IAB12"}

    def test_malformed_rejected(self):
        with pytest.raises(OpenRtbError):
            bid_request_from_dict({"id": "x"})
        with pytest.raises(OpenRtbError):
            loads_request("not json")
        with pytest.raises(OpenRtbError):
            loads_request("[1,2]")

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=2000),
        st.integers(min_value=1, max_value=2000),
        st.floats(min_value=0, max_value=50, allow_nan=False),
    )
    def test_slot_and_floor_roundtrip(self, w, h, floor):
        request = BidRequest(
            auction_id="a",
            timestamp=0.0,
            imp=Impression(
                impression_id="i", slot_size=AdSlotSize(w, h), bidfloor_cpm=floor
            ),
            publisher="p",
            publisher_iab="IAB1",
            device=Device(os="Android", device_type="smartphone"),
            geo=Geo(),
            user=UserInfo(exchange_uid="u"),
            is_app=False,
            adx="MoPub",
        )
        clone = bid_request_from_dict(bid_request_to_dict(request))
        assert clone.imp.slot_size == AdSlotSize(w, h)
        assert clone.imp.bidfloor_cpm == pytest.approx(floor)


class TestResponseCodec:
    def make_response(self, n_bids=1):
        bids = tuple(
            Bid(
                dsp="DBM",
                advertiser=f"Brand{i}",
                campaign_id=f"c{i}",
                price_cpm=1.5 + i,
                creative_domain=f"brand{i}.example.com",
            )
            for i in range(n_bids)
        )
        return BidResponse(auction_id="auc-7", dsp="DBM", bids=bids)

    def test_roundtrip(self):
        response = self.make_response()
        clone = bid_response_from_dict(bid_response_to_dict(response))
        assert clone.auction_id == response.auction_id
        assert clone.dsp == "DBM"
        assert clone.bids == response.bids

    def test_no_bid_roundtrip(self):
        response = BidResponse(auction_id="auc-7", dsp="DBM")
        payload = bid_response_to_dict(response)
        assert payload["nbr"] == 2
        clone = bid_response_from_dict(payload, dsp="DBM")
        assert clone.is_no_bid
        assert clone.dsp == "DBM"

    def test_multiple_bids(self):
        clone = bid_response_from_dict(
            bid_response_to_dict(self.make_response(n_bids=3))
        )
        assert len(clone.bids) == 3
        assert clone.bids[2].price_cpm == pytest.approx(3.5)

    def test_json_string_roundtrip(self):
        response = self.make_response()
        clone = loads_response(dumps_response(response))
        assert clone.bids == response.bids

    def test_malformed_rejected(self):
        with pytest.raises(OpenRtbError):
            bid_response_from_dict({})
        with pytest.raises(OpenRtbError):
            bid_response_from_dict(
                {"id": "x", "seatbid": [{"seat": "s", "bid": [{"impid": "i"}]}]}
            )
        with pytest.raises(OpenRtbError):
            loads_response("}{")
