"""Tests for DSP bidding engines and the exchange auction host."""

import numpy as np
import pytest

from repro.rtb.adslots import AdSlotSize
from repro.rtb.bidding import Dsp, FeatureBidEngine, FixedBidEngine
from repro.rtb.campaign import Campaign, TargetingSpec
from repro.rtb.exchange import AdExchange, PairEncryptionPolicy
from repro.rtb.nurl import parse_nurl
from repro.rtb.openrtb import BidRequest, Device, Geo, Impression, UserInfo
from repro.util.rng import stream
from repro.util.timeutil import epoch


def make_request(auction_id="a1", iab="IAB12", adx="MoPub", city="Madrid"):
    return BidRequest(
        auction_id=auction_id,
        timestamp=epoch(2015, 6, 15, 10),
        imp=Impression(impression_id=f"{auction_id}-i", slot_size=AdSlotSize(300, 250)),
        publisher="news.example.es",
        publisher_iab=iab,
        device=Device(os="Android", device_type="smartphone"),
        geo=Geo(country="ES", city=city),
        user=UserInfo(exchange_uid="u1"),
        is_app=False,
        adx=adx,
    )


def flat_value(request):
    return 1.0


class TestFeatureBidEngine:
    def test_zero_noise_bid_equals_value(self):
        engine = FeatureBidEngine(value_model=flat_value, noise_sigma=0.0)
        campaign = Campaign("c", "adv", max_bid_cpm=10.0)
        bid = engine.price_bid(make_request(), campaign, stream("e1"))
        assert bid == pytest.approx(1.0)

    def test_aggressiveness_scales_bid(self):
        engine = FeatureBidEngine(
            value_model=flat_value, noise_sigma=0.0, aggressiveness=1.9
        )
        campaign = Campaign("c", "adv", max_bid_cpm=10.0)
        assert engine.price_bid(make_request(), campaign, stream("e2")) == pytest.approx(1.9)

    def test_bid_capped_by_campaign(self):
        engine = FeatureBidEngine(
            value_model=lambda r: 50.0, noise_sigma=0.0
        )
        campaign = Campaign("c", "adv", max_bid_cpm=5.0)
        assert engine.price_bid(make_request(), campaign, stream("e3")) == 5.0

    def test_zero_participation_never_bids(self):
        engine = FeatureBidEngine(
            value_model=flat_value, participation=0.0
        )
        campaign = Campaign("c", "adv")
        assert engine.price_bid(make_request(), campaign, stream("e4")) is None

    def test_nonpositive_value_no_bid(self):
        engine = FeatureBidEngine(value_model=lambda r: 0.0)
        campaign = Campaign("c", "adv")
        assert engine.price_bid(make_request(), campaign, stream("e5")) is None

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            FeatureBidEngine(value_model=flat_value, noise_sigma=-1)
        with pytest.raises(ValueError):
            FeatureBidEngine(value_model=flat_value, aggressiveness=0)
        with pytest.raises(ValueError):
            FeatureBidEngine(value_model=flat_value, participation=2.0)


class TestDsp:
    def _dsp(self, campaigns=None, bid=1.0):
        return Dsp(
            "TestDSP",
            FixedBidEngine(bid_cpm=bid),
            stream("dsp"),
            campaigns=campaigns,
        )

    def test_responds_with_best_campaign(self):
        c_low = Campaign("low", "adv", max_bid_cpm=0.5)
        c_high = Campaign("high", "adv", max_bid_cpm=8.0)
        dsp = self._dsp([c_low, c_high], bid=3.0)
        response = dsp.respond(make_request())
        assert len(response.bids) == 1
        assert response.bids[0].campaign_id == "high"
        assert response.bids[0].price_cpm == 3.0

    def test_no_eligible_campaign_no_bid(self):
        targeting = TargetingSpec(cities=frozenset({"Torello"}))
        dsp = self._dsp([Campaign("c", "adv", targeting=targeting)])
        response = dsp.respond(make_request(city="Madrid"))
        assert response.is_no_bid

    def test_notify_win_books_budget(self):
        campaign = Campaign("c", "adv", budget_usd=1.0)
        dsp = self._dsp([campaign])
        dsp.notify_win("c", 2.0)
        assert dsp.wins == 1
        assert campaign.impressions_won == 1
        assert dsp.total_spend_usd == pytest.approx(0.002)

    def test_notify_unknown_campaign_raises(self):
        dsp = self._dsp([Campaign("c", "adv")])
        with pytest.raises(KeyError):
            dsp.notify_win("ghost", 1.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Dsp("", FixedBidEngine(1.0), stream("x"))


class TestAdExchange:
    def _market(self, policy=None):
        policy = policy or PairEncryptionPolicy.always_cleartext(
            ["MoPub"], ["D1", "D2"]
        )
        adx = AdExchange("MoPub", stream("adx"), floor_cpm=0.01)
        d1 = Dsp("D1", FixedBidEngine(2.0), stream("d1"), [Campaign("c1", "a1")])
        d2 = Dsp("D2", FixedBidEngine(1.0), stream("d2"), [Campaign("c2", "a2")])
        return adx, [d1, d2], policy

    def test_second_price_cleared_and_notified(self):
        adx, dsps, policy = self._market()
        record = adx.run_auction(make_request(), dsps, policy)
        assert record is not None
        assert record.outcome.winner.dsp == "D1"
        assert record.true_charge_price_cpm == pytest.approx(1.01)
        assert dsps[0].wins == 1
        assert dsps[1].wins == 0

    def test_nurl_parses_back_with_price(self):
        adx, dsps, policy = self._market()
        record = adx.run_auction(make_request(), dsps, policy)
        parsed = parse_nurl(record.nurl)
        assert parsed is not None
        assert parsed.cleartext_price_cpm == pytest.approx(1.01, abs=1e-4)
        assert parsed.dsp == "D1"

    def test_encrypted_policy_produces_decryptable_token(self):
        policy = PairEncryptionPolicy()
        policy.set_adoption("MoPub", "D1", 0.0)
        policy.set_adoption("MoPub", "D2", None)
        adx, dsps, _ = self._market()
        record = adx.run_auction(make_request(), dsps, policy)
        assert record.is_encrypted
        token = record.notification.encrypted_price
        assert adx.decrypt_own_price(token) == pytest.approx(
            record.true_charge_price_cpm, abs=1e-6
        )

    def test_unsold_when_no_bids(self):
        adx = AdExchange("MoPub", stream("adx2"), floor_cpm=5.0)
        dsp = Dsp("D1", FixedBidEngine(1.0), stream("d3"), [Campaign("c", "a")])
        policy = PairEncryptionPolicy.always_cleartext(["MoPub"], ["D1"])
        assert adx.run_auction(make_request(), [dsp], policy) is None
        assert adx.sell_through_rate == 0.0

    def test_revenue_accounting(self):
        adx, dsps, policy = self._market()
        adx.run_auction(make_request("a1"), dsps, policy)
        adx.run_auction(make_request("a2"), dsps, policy)
        assert adx.auctions_sold == 2
        assert adx.revenue_usd == pytest.approx(2 * 1.01 / 1000)
        assert adx.sell_through_rate == 1.0

    def test_unknown_exchange_name_rejected(self):
        with pytest.raises(ValueError):
            AdExchange("NotAnExchange", stream("x"))


class TestPairEncryptionPolicy:
    def test_adoption_date_semantics(self):
        policy = PairEncryptionPolicy()
        policy.set_adoption("X", "Y", 100.0)
        assert not policy.is_encrypted("X", "Y", 99.0)
        assert policy.is_encrypted("X", "Y", 100.0)

    def test_unknown_pair_cleartext(self):
        assert not PairEncryptionPolicy().is_encrypted("X", "Y", 1e12)

    def test_encrypted_fraction_over_time(self):
        policy = PairEncryptionPolicy()
        policy.set_adoption("A", "d", 10.0)
        policy.set_adoption("B", "d", 20.0)
        policy.set_adoption("C", "d", None)
        assert policy.encrypted_fraction(5.0) == 0.0
        assert policy.encrypted_fraction(15.0) == pytest.approx(1 / 3)
        assert policy.encrypted_fraction(25.0) == pytest.approx(2 / 3)

    def test_empty_policy_fraction_zero(self):
        assert PairEncryptionPolicy().encrypted_fraction(0.0) == 0.0
