"""Tests for second-price auction clearing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtb.auction import AuctionError, AuctionOutcome, run_second_price_auction
from repro.rtb.openrtb import Bid


def bid(dsp: str, price: float) -> Bid:
    return Bid(dsp=dsp, advertiser="adv", campaign_id=f"c-{dsp}", price_cpm=price)


class TestSecondPriceClearing:
    def test_winner_pays_second_price_plus_increment(self):
        outcome = run_second_price_auction([bid("a", 2.0), bid("b", 1.5)])
        assert outcome.winner.dsp == "a"
        assert outcome.charge_price_cpm == pytest.approx(1.51)
        assert outcome.second_price_cpm == 1.5

    def test_charge_never_exceeds_winning_bid(self):
        outcome = run_second_price_auction([bid("a", 1.0), bid("b", 0.999)])
        assert outcome.charge_price_cpm <= 1.0

    def test_single_bidder_pays_floor(self):
        outcome = run_second_price_auction([bid("a", 5.0)], floor_cpm=0.5)
        assert outcome.charge_price_cpm == 0.5
        assert outcome.second_price_cpm is None

    def test_single_bidder_no_floor_pays_own_bid(self):
        outcome = run_second_price_auction([bid("a", 5.0)])
        assert outcome.charge_price_cpm == 5.0

    def test_no_bids_above_floor_returns_none(self):
        assert run_second_price_auction([bid("a", 0.1)], floor_cpm=1.0) is None

    def test_empty_bids_returns_none(self):
        assert run_second_price_auction([]) is None

    def test_floor_dominates_low_second_price(self):
        outcome = run_second_price_auction(
            [bid("a", 5.0), bid("b", 0.6)], floor_cpm=0.5
        )
        assert outcome.charge_price_cpm == pytest.approx(0.61)

    def test_deterministic_tie_break(self):
        bids = [bid("beta", 1.0), bid("alpha", 1.0)]
        first = run_second_price_auction(bids)
        second = run_second_price_auction(list(reversed(bids)))
        assert first.winner.dsp == second.winner.dsp == "alpha"

    def test_negative_floor_rejected(self):
        with pytest.raises(AuctionError):
            run_second_price_auction([bid("a", 1.0)], floor_cpm=-1.0)

    def test_n_bids_counts_only_eligible(self):
        outcome = run_second_price_auction(
            [bid("a", 2.0), bid("b", 1.0), bid("c", 0.01)], floor_cpm=0.5
        )
        assert outcome.n_bids == 2

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=100, allow_nan=False),
            min_size=2,
            max_size=10,
        )
    )
    def test_invariants_hold_for_any_bid_set(self, prices):
        bids = [bid(f"d{i}", p) for i, p in enumerate(prices)]
        outcome = run_second_price_auction(bids)
        assert outcome is not None
        assert outcome.winner.price_cpm == max(prices)
        assert outcome.charge_price_cpm <= outcome.winner.price_cpm + 1e-9
        second = sorted(prices)[-2]
        assert outcome.charge_price_cpm >= second

    def test_outcome_validation_rejects_overcharge(self):
        with pytest.raises(AuctionError):
            AuctionOutcome(
                winner=bid("a", 1.0),
                charge_price_cpm=2.0,
                n_bids=1,
                second_price_cpm=None,
            )

    def test_negative_bid_rejected_at_construction(self):
        with pytest.raises(ValueError):
            bid("a", -0.5)
