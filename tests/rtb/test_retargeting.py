"""Tests for the retargeting bidding extension (the paper's future work)."""

import numpy as np
import pytest

from repro.rtb.adslots import AdSlotSize
from repro.rtb.bidding import Dsp, RetargetingEngine
from repro.rtb.campaign import Campaign
from repro.rtb.cookiesync import synced_uid
from repro.rtb.openrtb import BidRequest, Device, Geo, Impression, UserInfo
from repro.util.rng import stream
from repro.util.timeutil import epoch

DSP = "Retargeter"


def make_request(user_id="u1", synced=True):
    buyer_uids = {DSP: synced_uid(DSP, user_id)} if synced else {}
    return BidRequest(
        auction_id=f"a-{user_id}",
        timestamp=epoch(2015, 6, 15, 10),
        imp=Impression(impression_id="i", slot_size=AdSlotSize(300, 250)),
        publisher="shop.example.es",
        publisher_iab="IAB22",
        device=Device(os="Android", device_type="smartphone"),
        geo=Geo(country="ES", city="Madrid"),
        user=UserInfo(
            exchange_uid=synced_uid("MoPub", user_id), buyer_uids=buyer_uids
        ),
        is_app=False,
        adx="MoPub",
    )


def engine_for(users, boost=2.0, noise=0.0):
    return RetargetingEngine(
        dsp_name=DSP,
        value_model=lambda r: 1.0,
        audience_uids=frozenset(synced_uid(DSP, u) for u in users),
        boost=boost,
        noise_sigma=noise,
    )


class TestRetargetingEngine:
    def test_bids_only_on_audience(self):
        engine = engine_for(["u1"])
        campaign = Campaign("c", "adv", max_bid_cpm=10)
        assert engine.price_bid(make_request("u1"), campaign, stream("r1")) is not None
        assert engine.price_bid(make_request("u2"), campaign, stream("r2")) is None

    def test_requires_cookie_sync(self):
        """Without a sync, the DSP cannot recognise the user."""
        engine = engine_for(["u1"])
        campaign = Campaign("c", "adv", max_bid_cpm=10)
        request = make_request("u1", synced=False)
        assert engine.price_bid(request, campaign, stream("r3")) is None

    def test_boost_applied(self):
        engine = engine_for(["u1"], boost=2.5)
        campaign = Campaign("c", "adv", max_bid_cpm=10)
        bid = engine.price_bid(make_request("u1"), campaign, stream("r4"))
        assert bid == pytest.approx(2.5)

    def test_bid_capped(self):
        engine = engine_for(["u1"], boost=50.0)
        campaign = Campaign("c", "adv", max_bid_cpm=5.0)
        assert engine.price_bid(make_request("u1"), campaign, stream("r5")) == 5.0

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            engine_for(["u1"], boost=0.0)
        with pytest.raises(ValueError):
            RetargetingEngine(DSP, lambda r: 1.0, frozenset(), noise_sigma=-1)

    def test_dsp_integration(self):
        dsp = Dsp(
            DSP,
            engine_for(["u1"], boost=3.0),
            stream("r6"),
            campaigns=[Campaign("c", "adv", max_bid_cpm=10)],
        )
        response_in = dsp.respond(make_request("u1"))
        response_out = dsp.respond(make_request("u2"))
        assert len(response_in.bids) == 1
        assert response_in.bids[0].price_cpm == pytest.approx(3.0)
        assert response_out.is_no_bid


class TestRetargetingInMarket:
    def test_retargeted_users_draw_higher_prices(self):
        """The mechanism behind the paper's encrypted-premium hypothesis:
        retargeting demand raises the charge prices of targeted users."""
        from repro.rtb.auction import run_second_price_auction
        from repro.rtb.bidding import FixedBidEngine
        from repro.rtb.exchange import AdExchange, PairEncryptionPolicy

        adx = AdExchange("MoPub", stream("m1"))
        base = Dsp("Base", FixedBidEngine(1.0), stream("m2"),
                   [Campaign("b", "adv")])
        base2 = Dsp("Base2", FixedBidEngine(0.8), stream("m3"),
                    [Campaign("b2", "adv")])
        retargeter = Dsp(
            DSP, engine_for(["hot"], boost=3.0), stream("m4"),
            [Campaign("r", "shop")],
        )
        policy = PairEncryptionPolicy.always_cleartext(
            ["MoPub"], ["Base", "Base2", DSP]
        )
        hot = adx.run_auction(make_request("hot"), [base, base2, retargeter], policy)
        cold = adx.run_auction(make_request("cold"), [base, base2, retargeter], policy)
        # The retargeter wins its audience member and pays the next bid;
        # the cold user clears at the plain second price.
        assert hot.outcome.winner.dsp == DSP
        assert hot.true_charge_price_cpm > cold.true_charge_price_cpm
