"""Tests for the 28-byte price encryption scheme."""

import base64

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtb.pricecrypto import (
    CIPHERTEXT_SIZE,
    PriceCryptoError,
    PriceKeys,
    decrypt_price,
    encrypt_price,
    looks_like_encrypted_price,
)

KEYS = PriceKeys.derive("test-exchange")
IV = bytes(range(16))


class TestRoundtrip:
    def test_known_price(self):
        token = encrypt_price(0.95, KEYS, IV)
        assert decrypt_price(token, KEYS) == pytest.approx(0.95)

    @given(st.floats(min_value=0.0001, max_value=500, allow_nan=False))
    @settings(max_examples=50)
    def test_any_price_roundtrips_within_micro(self, cpm):
        token = encrypt_price(cpm, KEYS, IV)
        assert decrypt_price(token, KEYS) == pytest.approx(cpm, abs=1e-6)

    def test_zero_price(self):
        token = encrypt_price(0.0, KEYS, IV)
        assert decrypt_price(token, KEYS) == 0.0

    def test_ciphertext_is_28_bytes(self):
        token = encrypt_price(1.23, KEYS, IV)
        padding = "=" * (-len(token) % 4)
        raw = base64.urlsafe_b64decode(token + padding)
        assert len(raw) == CIPHERTEXT_SIZE == 28


class TestSecurityProperties:
    def test_wrong_key_fails_integrity(self):
        token = encrypt_price(1.0, KEYS, IV)
        other = PriceKeys.derive("other-exchange")
        with pytest.raises(PriceCryptoError, match="integrity"):
            decrypt_price(token, other)

    def test_tampered_ciphertext_fails(self):
        token = encrypt_price(1.0, KEYS, IV)
        padding = "=" * (-len(token) % 4)
        raw = bytearray(base64.urlsafe_b64decode(token + padding))
        raw[20] ^= 0xFF  # flip a bit in the encrypted price
        tampered = base64.urlsafe_b64encode(bytes(raw)).decode().rstrip("=")
        with pytest.raises(PriceCryptoError):
            decrypt_price(tampered, KEYS)

    def test_different_ivs_give_different_tokens(self):
        t1 = encrypt_price(1.0, KEYS, bytes(16))
        t2 = encrypt_price(1.0, KEYS, bytes(range(16)))
        assert t1 != t2

    def test_same_iv_same_token(self):
        assert encrypt_price(1.0, KEYS, IV) == encrypt_price(1.0, KEYS, IV)

    def test_bad_iv_length_rejected(self):
        with pytest.raises(PriceCryptoError):
            encrypt_price(1.0, KEYS, b"short")

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError):
            encrypt_price(-1.0, KEYS, IV)

    def test_wrong_length_token_rejected(self):
        with pytest.raises(PriceCryptoError):
            decrypt_price("QUJD", KEYS)

    def test_garbage_base64_rejected(self):
        with pytest.raises(PriceCryptoError):
            decrypt_price("!!!not-base64!!!", KEYS)


class TestDetectionHeuristic:
    def test_real_token_detected(self):
        assert looks_like_encrypted_price(encrypt_price(2.5, KEYS, IV))

    def test_cleartext_price_not_detected(self):
        assert not looks_like_encrypted_price("0.95")

    def test_short_string_not_detected(self):
        assert not looks_like_encrypted_price("abc")

    def test_empty_not_detected(self):
        assert not looks_like_encrypted_price("")

    def test_wrong_length_blob_not_detected(self):
        blob = base64.urlsafe_b64encode(bytes(20)).decode().rstrip("=")
        assert not looks_like_encrypted_price(blob)


class TestKeys:
    def test_derivation_deterministic(self):
        assert PriceKeys.derive("x") == PriceKeys.derive("x")

    def test_different_secrets_different_keys(self):
        assert PriceKeys.derive("x") != PriceKeys.derive("y")

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            PriceKeys(encryption_key=b"", integrity_key=b"k")
