"""Tests for the simulation calendar helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.timeutil import (
    CAMPAIGN_A1_PERIOD,
    CAMPAIGN_A2_PERIOD,
    DATASET_PERIOD,
    TIME_OF_DAY_BUCKETS,
    Period,
    day_name,
    day_of_week,
    epoch,
    from_epoch,
    hour_of,
    is_weekend,
    month_of,
    time_of_day_bucket,
    year_of,
)


class TestEpochConversions:
    def test_roundtrip(self):
        ts = epoch(2015, 6, 15, 13, 30)
        moment = from_epoch(ts)
        assert (moment.year, moment.month, moment.day) == (2015, 6, 15)
        assert (moment.hour, moment.minute) == (13, 30)

    def test_month_and_year(self):
        ts = epoch(2015, 11, 2)
        assert month_of(ts) == 11
        assert year_of(ts) == 2015

    def test_known_weekday(self):
        # 2015-01-01 was a Thursday.
        assert day_of_week(epoch(2015, 1, 1)) == 3
        assert day_name(epoch(2015, 1, 1)) == "Thursday"

    def test_weekend_detection(self):
        assert is_weekend(epoch(2015, 1, 3))        # Saturday
        assert is_weekend(epoch(2015, 1, 4))        # Sunday
        assert not is_weekend(epoch(2015, 1, 5))    # Monday

    @given(st.integers(min_value=0, max_value=23))
    def test_time_of_day_bucket_covers_all_hours(self, hour):
        bucket = time_of_day_bucket(epoch(2015, 3, 10, hour))
        assert bucket in TIME_OF_DAY_BUCKETS
        assert bucket == TIME_OF_DAY_BUCKETS[hour // 4]


class TestPeriod:
    def test_year_period_days(self):
        assert Period.for_year(2015).days == 365
        assert Period.for_year(2016).days == 366  # leap year

    def test_month_period(self):
        feb = Period.for_month(2015, 2)
        assert feb.days == 28
        dec = Period.for_month(2015, 12)
        assert dec.days == 31

    def test_months_range(self):
        q1 = Period.for_months(2015, 1, 3)
        assert q1.days == 31 + 28 + 31

    def test_invalid_month_range_raises(self):
        with pytest.raises(ValueError):
            Period.for_months(2015, 5, 3)

    def test_contains_is_half_open(self):
        p = Period.for_month(2015, 1)
        assert p.contains(p.start)
        assert not p.contains(p.end)

    def test_reversed_period_raises(self):
        with pytest.raises(ValueError):
            Period(10.0, 5.0)

    def test_clamp(self):
        p = Period(0.0, 100.0)
        assert p.clamp(-5) == 0.0
        assert p.clamp(50) == 50.0
        assert p.clamp(200) < 100.0

    def test_paper_windows(self):
        assert DATASET_PERIOD.days == 365
        assert round(CAMPAIGN_A1_PERIOD.days) == 13
        assert round(CAMPAIGN_A2_PERIOD.days) == 8
