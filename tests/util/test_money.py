"""Tests for CPM money arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.money import (
    cpm_to_micros,
    cpm_to_per_impression,
    format_cpm,
    format_usd,
    micros_to_cpm,
    per_impression_to_cpm,
)


class TestConversions:
    def test_cpm_to_per_impression(self):
        assert cpm_to_per_impression(2.5) == pytest.approx(0.0025)

    def test_per_impression_roundtrip(self):
        assert per_impression_to_cpm(cpm_to_per_impression(1.23)) == pytest.approx(1.23)

    def test_micros_known_value(self):
        assert cpm_to_micros(0.95) == 950_000
        assert micros_to_cpm(950_000) == pytest.approx(0.95)

    @given(st.floats(min_value=0.0001, max_value=1000, allow_nan=False))
    def test_micros_roundtrip_within_half_micro(self, cpm):
        assert micros_to_cpm(cpm_to_micros(cpm)) == pytest.approx(cpm, abs=1e-6)

    def test_negative_cpm_rejected(self):
        with pytest.raises(ValueError):
            cpm_to_micros(-1.0)
        with pytest.raises(ValueError):
            micros_to_cpm(-1)


class TestFormatting:
    def test_format_cpm(self):
        assert format_cpm(0.4712) == "0.47 CPM"

    def test_format_usd_thousands(self):
        assert format_usd(1234.5) == "$1,234.50"
