"""Tests for the argument-validation helpers."""

import pytest

from repro.util.validation import (
    require,
    require_in_unit_interval,
    require_non_empty,
    require_non_negative,
    require_one_of,
    require_positive,
)


def test_require_passes_and_fails():
    require(True, "fine")
    with pytest.raises(ValueError, match="broken"):
        require(False, "broken")


def test_require_positive():
    assert require_positive(2.5, "x") == 2.5
    with pytest.raises(ValueError):
        require_positive(0, "x")
    with pytest.raises(ValueError):
        require_positive(-1, "x")


def test_require_non_negative():
    assert require_non_negative(0, "x") == 0
    with pytest.raises(ValueError):
        require_non_negative(-0.1, "x")


def test_require_in_unit_interval():
    assert require_in_unit_interval(0.0, "x") == 0.0
    assert require_in_unit_interval(1.0, "x") == 1.0
    with pytest.raises(ValueError):
        require_in_unit_interval(1.01, "x")


def test_require_one_of():
    assert require_one_of("a", ["a", "b"], "x") == "a"
    with pytest.raises(ValueError):
        require_one_of("c", ["a", "b"], "x")


def test_require_non_empty():
    assert require_non_empty([1], "x") == [1]
    with pytest.raises(ValueError):
        require_non_empty([], "x")
