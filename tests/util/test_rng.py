"""Tests for the seeded random-stream registry."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import DEFAULT_SEED, RngRegistry, derive_seed, stream


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_differs_by_name(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_differs_by_root(self):
        assert derive_seed(42, "a") != derive_seed(43, "a")

    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=30))
    def test_always_in_uint64_range(self, seed, name):
        value = derive_seed(seed, name)
        assert 0 <= value < 2**64


class TestStream:
    def test_same_name_same_draws(self):
        a = stream("x", 1).random(5)
        b = stream("x", 1).random(5)
        assert np.allclose(a, b)

    def test_different_names_diverge(self):
        a = stream("x", 1).random(5)
        b = stream("y", 1).random(5)
        assert not np.allclose(a, b)


class TestRngRegistry:
    def test_caches_streams(self):
        rngs = RngRegistry(seed=7)
        assert rngs.get("auction") is rngs.get("auction")

    def test_distinct_names_distinct_streams(self):
        rngs = RngRegistry(seed=7)
        assert rngs.get("a") is not rngs.get("b")

    def test_reset_restarts_draws(self):
        rngs = RngRegistry(seed=7)
        first = rngs.get("s").random()
        rngs.reset()
        assert rngs.get("s").random() == first

    def test_spawn_is_isolated(self):
        parent = RngRegistry(seed=7)
        child = parent.spawn("sub")
        assert child.seed != parent.seed
        assert child.get("s").random() != parent.get("s").random()

    def test_default_seed_constant(self):
        assert RngRegistry().seed == DEFAULT_SEED
