"""Real-socket integration tests for the PME serving subsystem.

Every test starts a :class:`repro.serve.PmeServer` on an ephemeral
127.0.0.1 port and talks to it through the loadgen's stdlib client, so
client and server framing are exercised against each other end to end
(the CLI smoke test additionally covers urllib interop).
"""

import asyncio
import json

import numpy as np
import pytest

from repro.core.campaigns import run_campaign_a1
from repro.core.contributions import ContributionServer
from repro.core.estimator import Estimator
from repro.core.pme import PriceModelingEngine
from repro.core.price_model import EncryptedPriceModel
from repro.serve import PmeServer
from repro.serve.loadgen import Connection, request_once, run_load
from repro.trace.simulate import build_market, small_config
from repro.util.rng import RngRegistry, derive_seed

TIME_CORRECTION = 1.21


def synthetic_rows(n: int, seed: int = 5) -> tuple[list[dict], list[float]]:
    rng = np.random.default_rng(seed)
    vocab = {
        "context": ["app", "web"],
        "device_type": ["smartphone", "tablet"],
        "city": ["Madrid", "Paris", "Milan"],
        "slot_size": ["320x50", "300x250", "728x90"],
        "publisher_iab": ["IAB3", "IAB9", "IAB12"],
        "adx": ["AdX-1", "AdX-2"],
    }
    rows = []
    for _ in range(n):
        row = {k: v[int(rng.integers(0, len(v)))] for k, v in vocab.items()}
        row["time_of_day"] = int(rng.integers(0, 6))
        row["day_of_week"] = int(rng.integers(0, 7))
        rows.append(row)
    prices = np.exp(rng.normal(0.0, 1.0, size=n)).tolist()
    return rows, prices


@pytest.fixture(scope="module")
def package():
    """A small packaged model carrying a non-trivial time correction."""
    rows, prices = synthetic_rows(300)
    model = EncryptedPriceModel.train(
        rows, prices, n_estimators=12, max_depth=8, seed=3
    )
    pkg = model.to_package()
    pkg["time_correction"] = TIME_CORRECTION
    return pkg


@pytest.fixture(scope="module")
def feature_rows(package):
    rows, _ = synthetic_rows(120, seed=11)
    return rows


@pytest.fixture(scope="module")
def pme_with_campaign():
    """A PME holding real campaign ground truth (retrain enabled)."""
    config = small_config()
    market = build_market(config, RngRegistry(config.seed))
    campaign = run_campaign_a1(market, seed=23, auctions_per_setup=5)
    pme = PriceModelingEngine(seed=23)
    pme.state.campaign_a1 = campaign
    rows = campaign.feature_rows()
    pme.state.selected_features = [k for k in rows[0] if k != "publisher"]
    pme.state.model = EncryptedPriceModel.train(
        rows,
        list(campaign.prices()),
        feature_names=pme.state.selected_features,
        n_estimators=15,
        max_depth=10,
        seed=derive_seed(23, "model"),
    )
    pme.state.time_correction = TIME_CORRECTION
    return pme


def serve(coro_factory, **server_kwargs):
    """Start a server, run the scenario coroutine against it, stop."""

    async def main():
        server = PmeServer(**server_kwargs)
        await server.start(port=0)
        try:
            return await coro_factory(server)
        finally:
            await server.stop()

    return asyncio.run(main())


def estimate_body(features: dict) -> bytes:
    return json.dumps({"features": features}).encode("utf-8")


class TestModelDistribution:
    def test_model_fetch_and_etag_304(self, package):
        async def scenario(server):
            first = await request_once(
                "127.0.0.1", server.port, "GET", "/model"
            )
            assert first.status == 200
            etag = first.headers["etag"]
            assert etag.startswith('"') and etag.endswith('"')
            assert first.headers["x-model-version"] == "1"
            served = json.loads(first.body.decode())
            assert served["kind"] == "yav_price_model"
            assert served["time_correction"] == TIME_CORRECTION

            again = await request_once(
                "127.0.0.1", server.port, "GET", "/model",
                headers={"If-None-Match": etag},
            )
            assert again.status == 304
            assert again.body == b""
            assert again.headers["etag"] == etag

            stale = await request_once(
                "127.0.0.1", server.port, "GET", "/model",
                headers={"If-None-Match": '"deadbeef"'},
            )
            assert stale.status == 200
            return True

        assert serve(scenario, package=package)

    def test_served_package_round_trips_into_client_model(self, package):
        async def scenario(server):
            response = await request_once(
                "127.0.0.1", server.port, "GET", "/model"
            )
            model = EncryptedPriceModel.from_package(
                json.loads(response.body.decode())
            )
            assert model.time_correction == TIME_CORRECTION
            return True

        assert serve(scenario, package=package)


@pytest.mark.tier1
class TestEstimation:
    def test_concurrent_estimates_bit_identical_to_in_process(
        self, package, feature_rows
    ):
        """>= 64 concurrent requests == direct estimate_one, bit for bit.

        The reference model is loaded from the same package the server
        holds, so the comparison covers the whole chain: package round
        trip (time correction included), micro-batched vectorised
        scoring, JSON float round trip.
        """
        reference = Estimator.from_package(package)
        expected = [reference.estimate_one(row) for row in feature_rows[:80]]
        assert any(e != pytest.approx(1.0) for e in expected)

        async def scenario(server):
            responses = await asyncio.gather(
                *(
                    request_once(
                        "127.0.0.1", server.port, "POST", "/estimate",
                        body=estimate_body(row),
                    )
                    for row in feature_rows[:80]
                )
            )
            assert all(r.status == 200 for r in responses)
            got = [r.json()["estimated_cpm"] for r in responses]
            # Bit-identical: JSON serialises the shortest round-trip
            # repr, so equality here is exact float equality.
            assert got == expected

            metrics = (
                await request_once("127.0.0.1", server.port, "GET", "/metrics")
            ).json()
            histogram = metrics["estimates"]["batch_histogram"]
            assert sum(int(k) * v for k, v in histogram.items()) == 80
            assert max(int(k) for k in histogram) > 1, (
                "concurrent requests never coalesced into a batch"
            )
            return True

        assert serve(
            scenario, package=package, max_batch=32, max_delay_ms=5.0
        )

    def test_time_correction_applied_on_estimates(self, package, feature_rows):
        """The served estimate is the raw class price x the coefficient."""
        raw = dict(package)
        raw["time_correction"] = 1.0
        uncorrected = Estimator.from_package(raw)

        async def scenario(server):
            row = feature_rows[0]
            response = await request_once(
                "127.0.0.1", server.port, "POST", "/estimate",
                body=estimate_body(row),
            )
            served = response.json()["estimated_cpm"]
            assert served == pytest.approx(
                uncorrected.estimate_one(row) * TIME_CORRECTION
            )
            return True

        assert serve(scenario, package=package)

    def test_batching_off_still_correct(self, package, feature_rows):
        reference = Estimator.from_package(package)

        async def scenario(server):
            responses = await asyncio.gather(
                *(
                    request_once(
                        "127.0.0.1", server.port, "POST", "/estimate",
                        body=estimate_body(row),
                    )
                    for row in feature_rows[:16]
                )
            )
            got = [r.json()["estimated_cpm"] for r in responses]
            assert got == [
                reference.estimate_one(row) for row in feature_rows[:16]
            ]
            metrics = (
                await request_once("127.0.0.1", server.port, "GET", "/metrics")
            ).json()
            assert set(metrics["estimates"]["batch_histogram"]) == {"1"}
            return True

        assert serve(scenario, package=package, max_batch=1)


class TestRobustness:
    def test_malformed_and_unknown_requests(self, package):
        async def scenario(server):
            bad_json = await request_once(
                "127.0.0.1", server.port, "POST", "/estimate", body=b"{nope"
            )
            assert bad_json.status == 400

            not_dict = await request_once(
                "127.0.0.1", server.port, "POST", "/estimate",
                body=json.dumps({"features": [1, 2]}).encode(),
            )
            assert not_dict.status == 400

            missing = await request_once(
                "127.0.0.1", server.port, "GET", "/nope"
            )
            assert missing.status == 404

            wrong_method = await request_once(
                "127.0.0.1", server.port, "GET", "/estimate"
            )
            assert wrong_method.status == 405
            assert wrong_method.headers["allow"] == "POST"
            return True

        assert serve(scenario, package=package)

    def test_garbage_request_line_closes_with_400(self, package):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"THIS IS NOT HTTP\r\n\r\n")
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            assert b"400" in head.split(b"\r\n", 1)[0]
            assert b"Connection: close" in head
            writer.close()
            await writer.wait_closed()
            return True

        assert serve(scenario, package=package)

    def test_oversized_body_rejected_413(self, package):
        async def scenario(server):
            huge = b"x" * 5000
            response = await request_once(
                "127.0.0.1", server.port, "POST", "/estimate", body=huge
            )
            assert response.status == 413
            return True

        assert serve(scenario, package=package, max_body_bytes=4096)

    def test_unknown_categories_still_estimate(self, package):
        """Unseen category values encode to -1, never 500."""

        async def scenario(server):
            response = await request_once(
                "127.0.0.1", server.port, "POST", "/estimate",
                body=estimate_body(
                    {"adx": "NeverSeen", "city": "Atlantis"}
                ),
            )
            assert response.status == 200
            assert response.json()["estimated_cpm"] > 0
            return True

        assert serve(scenario, package=package)

    def test_keep_alive_connection_reuse(self, package, feature_rows):
        async def scenario(server):
            conn = Connection("127.0.0.1", server.port)
            try:
                for row in feature_rows[:5]:
                    response = await conn.request(
                        "POST", "/estimate", body=estimate_body(row)
                    )
                    assert response.status == 200
                health = await conn.request("GET", "/healthz")
                assert health.status == 200
            finally:
                await conn.close()
            return True

        assert serve(scenario, package=package)


class TestObservability:
    def test_healthz_and_metrics_shape(self, package, feature_rows):
        async def scenario(server):
            health = (
                await request_once("127.0.0.1", server.port, "GET", "/healthz")
            ).json()
            assert health["status"] == "ok"
            assert health["model_version"] == 1

            await request_once(
                "127.0.0.1", server.port, "POST", "/estimate",
                body=estimate_body(feature_rows[0]),
            )
            metrics = (
                await request_once("127.0.0.1", server.port, "GET", "/metrics")
            ).json()
            assert metrics["requests"]["/estimate"] == 1
            assert metrics["responses"]["2xx"] >= 2
            est = metrics["estimates"]
            assert est["total"] == 1
            assert est["latency_samples"] == 1
            assert set(est["latency_seconds"]) == {"p50", "p90", "p99"}
            assert metrics["model"]["version"] == 1
            assert metrics["model"]["age_seconds"] >= 0
            assert metrics["contributions"]["accepted"] == 0
            assert metrics["retrain"]["enabled"] is False
            return True

        assert serve(scenario, package=package)

    def test_metrics_obs_section_carries_registry_and_trace(
        self, package, feature_rows
    ):
        """The /metrics ``obs`` section exposes the registry snapshot
        and the last micro-batch flush trace end to end: queue-wait,
        batch-flush, and the estimator's internal phase spans."""

        async def scenario(server):
            await asyncio.gather(
                *(
                    request_once(
                        "127.0.0.1", server.port, "POST", "/estimate",
                        body=estimate_body(row),
                    )
                    for row in feature_rows[:8]
                )
            )
            metrics = (
                await request_once("127.0.0.1", server.port, "GET", "/metrics")
            ).json()
            section = metrics["obs"]
            reg = section["metrics"]
            # the in-flight GET /metrics already counted itself
            assert reg["serve.requests"]["series"]["route=/estimate"] == 8
            assert reg["serve.estimates"]["total"] == 8
            assert reg["serve.estimate.latency_seconds"]["count"] == 8
            assert reg["serve.batch.queue_wait_seconds"]["count"] == 8
            assert reg["serve.batch.flush_seconds"]["count"] >= 1

            trace = section["last_estimate_trace"]
            assert trace["name"] == "serve.estimate_batch"
            names = []

            def walk(node):
                names.append(node["name"])
                for child in node["children"]:
                    walk(child)

            walk(trace)
            assert "serve.queue_wait" in names
            assert "serve.batch_flush" in names
            # The estimator facade's phase split shows inside the flush.
            assert "estimator.estimate" in names
            assert "forest.inference" in names
            assert "estimator.time_correction" in names
            return True

        assert serve(scenario, package=package)

    def test_counter_exactness_under_80_way_concurrency(
        self, package, feature_rows
    ):
        """Registry counters must be exact when 80 concurrent requests
        race the event loop (the serve-level twin of the threaded
        registry test)."""

        async def scenario(server):
            rows = [feature_rows[i % len(feature_rows)] for i in range(80)]
            responses = await asyncio.gather(
                *(
                    request_once(
                        "127.0.0.1", server.port, "POST", "/estimate",
                        body=estimate_body(row),
                    )
                    for row in rows
                )
            )
            assert all(r.status == 200 for r in responses)
            metrics = (
                await request_once("127.0.0.1", server.port, "GET", "/metrics")
            ).json()
            reg = metrics["obs"]["metrics"]
            assert reg["serve.requests"]["series"]["route=/estimate"] == 80
            assert reg["serve.estimates"]["total"] == 80
            assert reg["serve.estimate.latency_seconds"]["count"] == 80
            assert metrics["estimates"]["total"] == 80
            assert (
                sum(
                    int(size) * int(n)
                    for size, n in metrics["estimates"][
                        "batch_histogram"
                    ].items()
                )
                == 80
            )
            return True

        assert serve(scenario, package=package)

    def test_loadgen_end_to_end(self, package):
        async def scenario(server):
            result = await run_load(
                "127.0.0.1", server.port, total=120, concurrency=12
            )
            assert result.errors == 0
            summary = result.summary()
            assert summary["rows_per_sec"] > 0
            assert summary["latency_p99_ms"] >= summary["latency_p50_ms"]
            return True

        assert serve(scenario, package=package)


def contribution_record(rng, adx="MoPub", iab="IAB12") -> dict:
    return {
        "adx": adx,
        "dsp": "Criteo-DSP",
        "slot_size": "300x250",
        "publisher_iab": iab,
        "hour_of_day": int(rng.integers(0, 24)),
        "day_of_week": int(rng.integers(0, 7)),
        "price_cpm": float(np.round(np.exp(rng.normal(0, 0.5)), 4)),
    }


class TestContributionIngestion:
    def test_accept_reject_accounting(self, package):
        async def scenario(server):
            rng = np.random.default_rng(0)
            records = [contribution_record(rng) for _ in range(5)]
            records.append({"user_id": "u1", "price_cpm": 1.0})   # forbidden
            records.append(contribution_record(rng) | {"price_cpm": -3.0})
            response = await request_once(
                "127.0.0.1", server.port, "POST", "/contribute",
                body=json.dumps(
                    {"contributor_token": 7, "records": records}
                ).encode(),
            )
            payload = response.json()
            assert response.status == 200
            assert payload["accepted"] == 5
            assert payload["rejected"] == 2
            assert payload["stats"]["accepted"] == 5
            assert payload["stats"]["rejected"] == 2
            assert payload["errors"]
            return True

        assert serve(scenario, package=package)

    def test_bad_token_rejected(self, package):
        async def scenario(server):
            response = await request_once(
                "127.0.0.1", server.port, "POST", "/contribute",
                body=json.dumps(
                    {"contributor_token": "alice", "records": []}
                ).encode(),
            )
            assert response.status == 400
            return True

        assert serve(scenario, package=package)


class TestHotReload:
    def test_contributions_trigger_retrain_and_swap_under_load(
        self, pme_with_campaign, feature_rows
    ):
        """The full loop: contribute past the floor -> retrain off-loop ->
        atomic swap; in-flight estimates never fail and the model
        version/ETag move."""
        pme = pme_with_campaign

        async def scenario(server):
            old = await request_once("127.0.0.1", server.port, "GET", "/model")
            old_etag = old.headers["etag"]
            failures = []
            stop = asyncio.Event()

            async def hammer():
                conn = Connection("127.0.0.1", server.port)
                try:
                    while not stop.is_set():
                        response = await conn.request(
                            "POST", "/estimate",
                            body=estimate_body(feature_rows[0]),
                        )
                        if response.status != 200:
                            failures.append(response.status)
                        await asyncio.sleep(0)
                finally:
                    await conn.close()

            hammers = [asyncio.get_running_loop().create_task(hammer())
                       for _ in range(4)]

            # Push the (MoPub, IAB12) group past k_anonymity=2 with
            # distinct tokens, well beyond retrain_min_new_rows=10.
            rng = np.random.default_rng(1)
            for token in (101, 202, 303):
                records = [contribution_record(rng) for _ in range(8)]
                response = await request_once(
                    "127.0.0.1", server.port, "POST", "/contribute",
                    body=json.dumps(
                        {"contributor_token": token, "records": records}
                    ).encode(),
                )
                assert response.status == 200

            async def wait_for_version(version, timeout=60.0):
                deadline = asyncio.get_running_loop().time() + timeout
                while asyncio.get_running_loop().time() < deadline:
                    metrics = (
                        await request_once(
                            "127.0.0.1", server.port, "GET", "/metrics"
                        )
                    ).json()
                    if metrics["model"]["version"] >= version:
                        return metrics
                    await asyncio.sleep(0.05)
                raise AssertionError(f"model never reached v{version}")

            metrics = await wait_for_version(2)
            assert metrics["retrains"] >= 1
            assert metrics["model"]["swaps"] >= 1

            stop.set()
            await asyncio.gather(*hammers)
            assert failures == [], (
                f"estimates failed during hot reload: {failures}"
            )

            new = await request_once("127.0.0.1", server.port, "GET", "/model")
            assert new.headers["etag"] != old_etag
            assert int(new.headers["x-model-version"]) == 2
            # Old clients polling with the stale ETag get the new body.
            refreshed = await request_once(
                "127.0.0.1", server.port, "GET", "/model",
                headers={"If-None-Match": old_etag},
            )
            assert refreshed.status == 200

            # The swapped-in model estimates with the retrained forest
            # and still applies the time correction.
            client_model = Estimator.from_package(
                json.loads(new.body.decode())
            )
            assert client_model.time_correction == TIME_CORRECTION
            direct = client_model.estimate_one(feature_rows[0])
            served = (
                await request_once(
                    "127.0.0.1", server.port, "POST", "/estimate",
                    body=estimate_body(feature_rows[0]),
                )
            ).json()
            assert served["estimated_cpm"] == direct
            assert served["model_version"] == 2
            return True

        assert serve(
            scenario,
            pme=pme,
            contributions=ContributionServer(k_anonymity=2),
            retrain_min_new_rows=10,
            max_batch=8,
            max_delay_ms=1.0,
        )

    def test_serve_only_server_never_retrains(self, package):
        async def scenario(server):
            rng = np.random.default_rng(2)
            for token in (1, 2, 3, 4):
                await request_once(
                    "127.0.0.1", server.port, "POST", "/contribute",
                    body=json.dumps(
                        {
                            "contributor_token": token,
                            "records": [
                                contribution_record(rng) for _ in range(10)
                            ],
                        }
                    ).encode(),
                )
            metrics = (
                await request_once("127.0.0.1", server.port, "GET", "/metrics")
            ).json()
            assert metrics["contributions"]["releasable"] >= 20
            assert metrics["retrains"] == 0
            assert metrics["model"]["version"] == 1
            return True

        assert serve(
            scenario,
            package=package,
            contributions=ContributionServer(k_anonymity=2),
            retrain_min_new_rows=5,
        )
