"""Unit tests for the HTTP/1.1 framing layer (no sockets needed)."""

import asyncio

import pytest

from repro.serve.http import (
    HttpError,
    read_request,
    render_response,
)


def parse(raw: bytes, **limits):
    """Feed raw bytes through a StreamReader and parse one request."""

    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **limits)

    return asyncio.run(run())


class TestRequestParsing:
    def test_simple_get(self):
        req = parse(b"GET /model?v=2 HTTP/1.1\r\nHost: x\r\n\r\n")
        assert req.method == "GET"
        assert req.path == "/model"
        assert req.query == {"v": "2"}
        assert req.headers["host"] == "x"
        assert req.body == b""
        assert req.keep_alive

    def test_post_with_body(self):
        req = parse(
            b"POST /estimate HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd"
        )
        assert req.body == b"abcd"

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_keep_alive_negotiation(self):
        assert parse(b"GET / HTTP/1.1\r\n\r\n").keep_alive
        assert not parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive
        assert not parse(b"GET / HTTP/1.0\r\n\r\n").keep_alive
        assert parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").keep_alive

    def test_header_keys_lowercased(self):
        req = parse(b"GET / HTTP/1.1\r\nIf-None-Match: \"abc\"\r\n\r\n")
        assert req.header("If-None-Match") == '"abc"'

    @pytest.mark.parametrize(
        "raw",
        [
            b"GARBAGE\r\n\r\n",                       # no method/target/version
            b"GET /x HTTP/2.0\r\n\r\n",               # unsupported version
            b"get /x HTTP/1.1\r\n\r\n",               # lowercase method
            b"GET x HTTP/1.1\r\n\r\n",                # target not absolute
            b"GET / HTTP/1.1\r\nbad header\r\n\r\n",  # no colon
            b"GET / HTTP/1.1\r\nContent-Length: z\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
        ],
    )
    def test_malformed_rejected_with_400(self, raw):
        with pytest.raises(HttpError) as err:
            parse(raw)
        assert err.value.status == 400

    def test_truncated_body_rejected(self):
        with pytest.raises(HttpError) as err:
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
        assert err.value.status == 400

    def test_oversized_header_block_431(self):
        raw = b"GET / HTTP/1.1\r\nX-Pad: " + b"a" * 9000 + b"\r\n\r\n"
        with pytest.raises(HttpError) as err:
            parse(raw, max_header_bytes=4096)
        assert err.value.status == 431

    def test_oversized_body_413(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 100000\r\n\r\n"
        with pytest.raises(HttpError) as err:
            parse(raw, max_body_bytes=1000)
        assert err.value.status == 413

    def test_chunked_not_implemented(self):
        raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        with pytest.raises(HttpError) as err:
            parse(raw)
        assert err.value.status == 501


class TestResponseRendering:
    def test_basic_shape(self):
        raw = render_response(200, b'{"a":1}')
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 7" in head
        assert b"Content-Type: application/json" in head
        assert body == b'{"a":1}'

    def test_connection_header_tracks_keep_alive(self):
        assert b"Connection: keep-alive" in render_response(200, keep_alive=True)
        assert b"Connection: close" in render_response(400, keep_alive=False)

    def test_extra_headers_emitted(self):
        raw = render_response(304, headers={"ETag": '"xyz"'})
        assert b'ETag: "xyz"' in raw
        assert b"Content-Length: 0" in raw
