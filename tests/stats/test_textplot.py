"""Tests for the text chart renderer."""

import numpy as np
import pytest

from repro.stats.textplot import cdf_plot, hbar, percentile_box


class TestHbar:
    def test_longest_bar_is_max(self):
        lines = hbar({"a": 1.0, "b": 4.0}, width=20)
        assert len(lines) == 2
        assert lines[1].count("█") == 20
        assert lines[0].count("█") == 5

    def test_empty(self):
        assert hbar({}) == []

    def test_zero_values_no_crash(self):
        lines = hbar({"a": 0.0})
        assert "0.000" in lines[0]

    def test_accepts_sequence(self):
        lines = hbar([("x", 2.0), ("y", 1.0)])
        assert lines[0].startswith("x")


class TestCdfPlot:
    def test_monotone_markers(self):
        rng = np.random.default_rng(0)
        lines = cdf_plot({"s": rng.lognormal(0, 1, 500)}, width=30, height=8)
        # 8 canvas rows + axis + legend
        assert len(lines) == 10
        assert "legend: a=s" in lines[-1]

    def test_two_series_distinct_markers(self):
        rng = np.random.default_rng(1)
        lines = cdf_plot(
            {"low": rng.lognormal(0, 0.3, 300), "high": rng.lognormal(1.0, 0.3, 300)},
            width=40,
        )
        joined = "\n".join(lines)
        assert "a=" in joined and "b=" in joined

    def test_empty_series(self):
        assert cdf_plot({}) == ["(no data)"]

    def test_shifted_series_plot_right(self):
        """The higher-priced series' marker appears to the right."""
        rng = np.random.default_rng(2)
        low = rng.lognormal(0, 0.2, 400)
        high = low * 10
        lines = cdf_plot({"low": low, "high": high}, width=40, height=6)
        # On the 50% row, marker a (low) must appear before marker b.
        mid_row = lines[3]
        assert "a" in mid_row and "b" in mid_row
        assert mid_row.index("a") < mid_row.index("b")


class TestPercentileBox:
    def test_median_inside_span(self):
        rng = np.random.default_rng(3)
        lines = percentile_box({"g": rng.lognormal(0, 0.5, 300)}, width=30)
        body = lines[0]
        assert "|" in body
        assert body.index("[") < body.index("|") < body.index("]")

    def test_groups_rendered(self):
        rng = np.random.default_rng(4)
        groups = {"a": rng.lognormal(0, 0.4, 100), "b": rng.lognormal(1, 0.4, 100)}
        lines = percentile_box(groups)
        assert lines[0].startswith("a")
        assert lines[1].startswith("b")
        assert "p50=" in lines[0]

    def test_empty(self):
        assert percentile_box({}) == ["(no data)"]
