"""Tests for descriptive statistics (summaries, CDFs)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.descriptive import (
    Cdf,
    fraction_below,
    fraction_between,
    geometric_mean,
    summarize,
    summarize_groups,
)

positive_samples = st.lists(
    st.floats(min_value=0.01, max_value=1000, allow_nan=False), min_size=2, max_size=200
)


class TestSummarize:
    def test_known_values(self):
        s = summarize(range(1, 101))
        assert s.count == 100
        assert s.p50 == pytest.approx(50.5)
        assert s.mean == pytest.approx(50.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_single_value(self):
        s = summarize([3.0])
        assert s.p5 == s.p95 == 3.0
        assert s.std == 0.0

    @given(positive_samples)
    def test_percentiles_ordered(self, values):
        s = summarize(values)
        assert s.p5 <= s.p10 <= s.p50 <= s.p90 <= s.p95
        assert s.spread == pytest.approx(s.p95 - s.p5)

    @given(positive_samples)
    def test_percentiles_within_range(self, values):
        s = summarize(values)
        assert min(values) <= s.p50 <= max(values)

    def test_summarize_groups_skips_empty(self):
        out = summarize_groups({"a": [1.0, 2.0], "b": []})
        assert set(out) == {"a"}


class TestCdf:
    def test_evaluate_at_extremes(self):
        cdf = Cdf.from_sample([1, 2, 3, 4])
        assert cdf.evaluate(0.5) == 0.0
        assert cdf.evaluate(4) == 1.0
        assert cdf.evaluate(2) == pytest.approx(0.5)

    def test_quantile_inverse(self):
        cdf = Cdf.from_sample(range(1, 11))
        assert cdf.quantile(0.5) == 5
        assert cdf.quantile(1.0) == 10
        assert cdf.quantile(0.0) == 1

    def test_bad_quantile_raises(self):
        cdf = Cdf.from_sample([1, 2])
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    @given(positive_samples)
    def test_cdf_monotone(self, values):
        cdf = Cdf.from_sample(values)
        points = sorted(values)
        evaluated = [cdf.evaluate(p) for p in points]
        assert all(a <= b for a, b in zip(evaluated, evaluated[1:]))

    @given(positive_samples, st.floats(min_value=0.01, max_value=0.99))
    def test_quantile_cdf_consistency(self, values, p):
        cdf = Cdf.from_sample(values)
        assert cdf.evaluate(cdf.quantile(p)) >= p

    def test_at_levels(self):
        cdf = Cdf.from_sample([1, 2, 3, 4])
        assert cdf.at_levels([2, 4]) == [(2.0, 0.5), (4.0, 1.0)]


class TestFractions:
    def test_fraction_below(self):
        assert fraction_below([1, 2, 3, 4], 3) == pytest.approx(0.5)

    def test_fraction_between(self):
        assert fraction_between([1, 2, 3, 4], 2, 4) == pytest.approx(0.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            fraction_below([], 1)


class TestGeometricMean:
    def test_known(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
