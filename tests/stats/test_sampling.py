"""Tests for the section-5.2 sample-size arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.sampling import (
    CampaignSizing,
    margin_of_error,
    required_samples,
    z_score,
)


class TestZScore:
    def test_classic_values(self):
        assert z_score(0.95) == pytest.approx(1.96, abs=0.005)
        assert z_score(0.99) == pytest.approx(2.576, abs=0.005)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            z_score(1.5)


class TestMarginOfError:
    def test_paper_setup_margin(self):
        """144 setups over the MoPub campaigns (std=2.15) give ~0.35 CPM."""
        margin = margin_of_error(std=2.15, n=144, confidence=0.95)
        assert margin == pytest.approx(0.35, abs=0.005)

    def test_shrinks_with_n(self):
        assert margin_of_error(2.15, 400) < margin_of_error(2.15, 100)

    @given(st.floats(0.1, 10), st.integers(2, 10_000))
    def test_positive(self, std, n):
        assert margin_of_error(std, n) > 0


class TestRequiredSamples:
    def test_paper_impressions_per_campaign(self):
        """Within-campaign error of 0.1 CPM needs ~185 impressions.

        The paper derives 185 from the largest MoPub campaign's price
        spread; a std of ~0.693 CPM reproduces that number.
        """
        assert required_samples(std=0.693, margin=0.1) == 185

    def test_inverse_of_margin(self):
        n = required_samples(std=2.0, margin=0.3)
        assert margin_of_error(2.0, n) <= 0.3
        assert margin_of_error(2.0, n - 1) > 0.3

    @given(st.floats(0.1, 5), st.floats(0.01, 1))
    def test_monotone_in_margin(self, std, margin):
        assert required_samples(std, margin) >= required_samples(std, margin * 2)


class TestCampaignSizing:
    def test_design_matches_paper(self):
        sizing = CampaignSizing.design(
            campaign_mean=1.84,
            campaign_std=2.15,
            within_campaign_std=0.693,
        )
        assert sizing.n_setups == 144
        assert sizing.setup_margin == pytest.approx(0.35, abs=0.01)
        assert sizing.impressions_per_campaign == 185
        assert sizing.total_impressions == 144 * 185
