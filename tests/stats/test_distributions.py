"""Tests for lognormal fitting and median ratios."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.distributions import LogNormal, median_ratio


class TestLogNormal:
    def test_median_and_mean(self):
        dist = LogNormal(mu=0.0, sigma=1.0)
        assert dist.median == pytest.approx(1.0)
        assert dist.mean == pytest.approx(np.exp(0.5))

    def test_fit_recovers_parameters(self):
        rng = np.random.default_rng(3)
        sample = rng.lognormal(mean=0.7, sigma=0.4, size=20_000)
        fitted = LogNormal.fit(sample)
        assert fitted.mu == pytest.approx(0.7, abs=0.02)
        assert fitted.sigma == pytest.approx(0.4, abs=0.02)

    def test_fit_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            LogNormal.fit([1.0, -2.0])

    def test_fit_needs_two_points(self):
        with pytest.raises(ValueError):
            LogNormal.fit([1.0])

    def test_scaled_shifts_median(self):
        dist = LogNormal(mu=0.0, sigma=0.5)
        assert dist.scaled(1.7).median == pytest.approx(1.7 * dist.median)

    def test_scaled_preserves_sigma(self):
        dist = LogNormal(mu=0.2, sigma=0.5)
        assert dist.scaled(3.0).sigma == dist.sigma

    def test_sampling_matches_median(self):
        dist = LogNormal(mu=np.log(2.0), sigma=0.3)
        rng = np.random.default_rng(4)
        sample = dist.sample(rng, size=30_000)
        assert np.median(sample) == pytest.approx(2.0, rel=0.02)

    def test_variance_positive(self):
        assert LogNormal(0.0, 0.7).variance > 0


class TestMedianRatio:
    def test_known_ratio(self):
        assert median_ratio([2, 4, 6], [1, 2, 3]) == pytest.approx(2.0)

    def test_paper_direction(self):
        """Encrypted ~1.7x cleartext: ratio(enc, clr) > 1."""
        rng = np.random.default_rng(5)
        clr = rng.lognormal(0.0, 0.4, 5000)
        enc = rng.lognormal(np.log(1.7), 0.4, 5000)
        assert median_ratio(enc, clr) == pytest.approx(1.7, rel=0.05)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            median_ratio([], [1.0])

    def test_zero_denominator_raises(self):
        with pytest.raises(ValueError):
            median_ratio([1.0], [0.0])
