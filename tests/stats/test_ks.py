"""Tests for the two-sample KS test (cross-checked against scipy)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.stats.ks import ks_two_sample


class TestKsStatistic:
    def test_identical_samples_statistic_zero(self):
        result = ks_two_sample([1, 2, 3], [1, 2, 3])
        assert result.statistic == 0.0
        assert result.pvalue == pytest.approx(1.0)

    def test_disjoint_samples_statistic_one(self):
        result = ks_two_sample([1, 2, 3], [10, 11, 12])
        assert result.statistic == 1.0

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError):
            ks_two_sample([], [1.0])

    def test_detects_shifted_distributions(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 1, 500)
        b = rng.normal(0.6, 1, 500)
        result = ks_two_sample(a, b)
        assert result.significant(0.001)

    def test_same_distribution_usually_not_significant(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0, 1, 400)
        b = rng.normal(0, 1, 400)
        assert not ks_two_sample(a, b).significant(0.001)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(-50, 50), min_size=10, max_size=80),
        st.lists(st.floats(-50, 50), min_size=10, max_size=80),
    )
    def test_statistic_matches_scipy(self, a, b):
        ours = ks_two_sample(a, b)
        theirs = scipy_stats.ks_2samp(a, b, method="asymp")
        assert ours.statistic == pytest.approx(theirs.statistic, abs=1e-12)

    def test_pvalue_close_to_scipy_for_large_samples(self):
        rng = np.random.default_rng(2)
        a = rng.exponential(1.0, 300)
        b = rng.exponential(1.3, 300)
        ours = ks_two_sample(a, b)
        theirs = scipy_stats.ks_2samp(a, b, method="asymp")
        assert ours.pvalue == pytest.approx(theirs.pvalue, rel=0.2, abs=1e-4)
