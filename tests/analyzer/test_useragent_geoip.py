"""Tests for UA parsing and reverse IP geocoding."""

import pytest

from repro.analyzer.geoip import GeoIpResolver
from repro.analyzer.useragent import parse_user_agent
from repro.trace.devices import DeviceProfile, sample_device
from repro.trace.geography import CITIES, assign_ip
from repro.util.rng import stream


class TestUserAgentParsing:
    def test_android_app(self):
        ua = "Dalvik/2.1.0 (Linux; U; Android 5.1.1; SM-G920F Build/LRX21T)"
        parsed = parse_user_agent(ua)
        assert parsed.os == "Android"
        assert parsed.is_app
        assert parsed.device_type == "smartphone"
        assert parsed.context == "app"

    def test_android_tablet_model(self):
        ua = "Dalvik/2.1.0 (Linux; U; Android 4.4.4; SM-T530 Build/KOT49H)"
        assert parse_user_agent(ua).device_type == "tablet"

    def test_ios_app(self):
        ua = "MobileApp/3.2 (iPhone7,2; iOS 9.0.2) CFNetwork/711.3.18 Darwin/15.0.0"
        parsed = parse_user_agent(ua)
        assert parsed.os == "iOS"
        assert parsed.is_app
        assert parsed.device_type == "smartphone"

    def test_ipad_app(self):
        ua = "MobileApp/3.2 (iPad4,1; iOS 8.4) CFNetwork/711.3.18 Darwin/14.0.0"
        assert parse_user_agent(ua).device_type == "tablet"

    def test_android_browser(self):
        ua = (
            "Mozilla/5.0 (Linux; Android 6.0; Nexus 5) AppleWebKit/537.36 "
            "(KHTML, like Gecko) Chrome/46.0.2490.76 Mobile Safari/537.36"
        )
        parsed = parse_user_agent(ua)
        assert parsed.os == "Android"
        assert not parsed.is_app
        assert parsed.context == "web"

    def test_iphone_safari(self):
        ua = (
            "Mozilla/5.0 (iPhone; CPU OS 8_4 like Mac OS X) AppleWebKit/600.1.4 "
            "(KHTML, like Gecko) Version/8.0 Mobile/12B411 Safari/600.1.4"
        )
        parsed = parse_user_agent(ua)
        assert parsed.os == "iOS"
        assert parsed.device_type == "smartphone"
        assert not parsed.is_app

    def test_windows_phone(self):
        ua = "Mozilla/5.0 (Windows Phone 8.1; Android 4.2.1; Microsoft; Lumia 640 LTE)"
        parsed = parse_user_agent(ua)
        assert parsed.os == "Windows Mobile"
        assert parsed.device_type == "smartphone"

    def test_unknown_ua_degrades_gracefully(self):
        parsed = parse_user_agent("curl/7.64.0")
        assert parsed.os == "Other"
        assert parsed.device_type == "unknown"
        assert not parsed.is_app

    def test_empty_ua(self):
        assert parse_user_agent("").os == "Other"

    def test_roundtrip_against_device_catalog(self):
        """Every UA our devices emit must parse back to the truth."""
        rng = stream("ua-roundtrip")
        for _ in range(60):
            device = sample_device(rng)
            for is_app in (False, True):
                if device.os == "Other":
                    continue
                parsed = parse_user_agent(device.user_agent(is_app))
                assert parsed.os == device.os
                if device.os in ("Android", "iOS"):
                    assert parsed.is_app == is_app
                    assert parsed.device_type == device.device_type


class TestGeoIpResolver:
    def test_resolves_all_known_cities(self):
        resolver = GeoIpResolver()
        rng = stream("geo")
        for city in CITIES:
            lookup = resolver.lookup(assign_ip(city, rng))
            assert lookup.resolved
            assert lookup.city == city.name
            assert lookup.country == "ES"

    def test_unknown_network(self):
        lookup = GeoIpResolver().lookup("8.8.8.8")
        assert not lookup.resolved
        assert lookup.city is None

    def test_malformed_ips(self):
        resolver = GeoIpResolver()
        for bad in ("", "85.10.1", "85.10.1.2.3", "85.abc.1.2", "85.999.1.2"):
            assert not resolver.lookup(bad).resolved

    def test_custom_table(self):
        resolver = GeoIpResolver(table={"10.1": ("Testville", "XX")})
        assert resolver.lookup("10.1.2.3").city == "Testville"
        assert not resolver.lookup("85.10.1.1").resolved

    def test_known_networks_sorted(self):
        networks = GeoIpResolver().known_networks()
        assert networks == sorted(networks)
        assert len(networks) == len(CITIES)
