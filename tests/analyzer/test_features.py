"""Tests for the Table-4 feature extractor."""

import pytest

from repro.analyzer.blacklist import default_blacklist
from repro.analyzer.detector import detect_notifications
from repro.analyzer.features import (
    CORE_FEATURES,
    CORE_FEATURES_WITH_PUBLISHER,
    FeatureExtractor,
)
from repro.analyzer.interests import PublisherDirectory
from repro.rtb.nurl import WinNotification, build_nurl
from repro.trace.weblog import HttpRequest
from repro.util.timeutil import epoch


def content_row(user="u1", domain="news.example.es", ts=None, ip="85.10.5.5"):
    return HttpRequest(
        timestamp=ts or epoch(2015, 3, 10, 9),
        user_id=user,
        url=f"https://{domain}/page/1",
        domain=domain,
        user_agent=(
            "Mozilla/5.0 (Linux; Android 5.1.1; SM-G920F) AppleWebKit/537.36 "
            "(KHTML, like Gecko) Chrome/46.0.2490.76 Mobile Safari/537.36"
        ),
        kind="content",
        bytes_transferred=40_000,
        duration_ms=300.0,
        client_ip=ip,
    )


def nurl_row(user="u1", price=0.8, campaign="cmp-1", ts=None):
    notification = WinNotification(
        adx="MoPub",
        dsp="Criteo-DSP",
        charge_price_cpm=price,
        encrypted_price=None,
        impression_id="i1",
        auction_id="a1",
        ad_domain="brand00.example.com",
        slot_size="300x250",
        publisher="news.example.es",
        campaign_id=campaign,
    )
    return HttpRequest(
        timestamp=ts or epoch(2015, 3, 10, 9, 30),
        user_id=user,
        url=build_nurl(notification),
        domain="cpp.imp.mpx.mopub.com",
        user_agent=content_row(user).user_agent,
        kind="nurl",
        bytes_transferred=600,
        duration_ms=80.0,
        client_ip="85.10.5.5",
    )


@pytest.fixture()
def extractor_setup():
    directory = PublisherDirectory()
    directory.register("news.example.es", "IAB12")
    rows = [
        content_row(),
        content_row(domain="news.example.es", ts=epoch(2015, 3, 11, 20)),
        nurl_row(),
        nurl_row(campaign="cmp-1", ts=epoch(2015, 3, 12, 9)),
        nurl_row(campaign="cmp-2", ts=epoch(2015, 3, 13, 9)),
        HttpRequest(
            timestamp=epoch(2015, 3, 10, 9, 31),
            user_id="u1",
            url="https://sync.mopub.com/match?partner=DBM&partner_uid=xyz",
            domain="sync.mopub.com",
            user_agent=content_row().user_agent,
            kind="sync",
            bytes_transferred=200,
            duration_ms=50.0,
            client_ip="85.10.5.5",
        ),
    ]
    blacklist = default_blacklist()
    detections = list(detect_notifications(rows, blacklist))
    extractor = FeatureExtractor(rows, detections, blacklist, directory)
    return extractor, detections


class TestAggregates:
    def test_user_http_stats(self, extractor_setup):
        extractor, _ = extractor_setup
        user = extractor.users["u1"]
        assert user.n_requests == 6
        assert user.total_bytes > 80_000
        assert user.avg_bytes_per_request == pytest.approx(user.total_bytes / 6)

    def test_sync_counted(self, extractor_setup):
        extractor, _ = extractor_setup
        assert extractor.users["u1"].n_syncs == 1

    def test_city_from_ip(self, extractor_setup):
        extractor, _ = extractor_setup
        assert extractor.users["u1"].cities == {"Madrid"}

    def test_interests_from_content(self, extractor_setup):
        extractor, _ = extractor_setup
        assert extractor.users["u1"].interests.dominant == "IAB12"

    def test_advertiser_stats(self, extractor_setup):
        extractor, _ = extractor_setup
        adv = extractor.advertisers["brand00.example.com"]
        assert adv.n_requests == 3
        assert adv.avg_requests_per_user == 3.0

    def test_campaign_popularity(self, extractor_setup):
        extractor, _ = extractor_setup
        assert extractor.campaign_counts["cmp-1"] == 2
        assert extractor.campaign_counts["cmp-2"] == 1


class TestVectors:
    def test_core_vector_keys_and_values(self, extractor_setup):
        extractor, detections = extractor_setup
        vector = extractor.core_vector(detections[0])
        assert set(vector) == set(CORE_FEATURES)
        assert vector["adx"] == "MoPub"
        assert vector["city"] == "Madrid"
        assert vector["slot_size"] == "300x250"
        assert vector["publisher_iab"] == "IAB12"
        assert vector["context"] == "web"
        assert vector["time_of_day"] == 2      # 09:30 -> bucket 2

    def test_full_vector_superset_of_core(self, extractor_setup):
        extractor, detections = extractor_setup
        full = extractor.full_vector(detections[0])
        core = extractor.core_vector(detections[0])
        for key, value in core.items():
            assert full[key] == value
        assert full["campaign_popularity"] == 2
        assert full["user_n_syncs"] == 1
        assert full["dsp"] == "Criteo-DSP"

    def test_full_vector_matches_declared_names(self, extractor_setup):
        extractor, detections = extractor_setup
        full = extractor.full_vector(detections[0])
        assert set(full) == set(extractor.feature_names_full())

    def test_interest_expansion_weights(self, extractor_setup):
        extractor, detections = extractor_setup
        full = extractor.full_vector(detections[0])
        assert full["interest_IAB12"] == pytest.approx(1.0)
        assert full["interest_IAB15"] == 0.0

    def test_hour_and_dow_indicators(self, extractor_setup):
        extractor, detections = extractor_setup
        full = extractor.full_vector(detections[0])
        assert full["hour_09"] == 1
        assert sum(full[f"hour_{h:02d}"] for h in range(24)) == 1
        assert sum(full[f"dow_{d}"] for d in range(7)) == 1

    def test_publisher_feature_set_is_extension(self):
        assert set(CORE_FEATURES) < set(CORE_FEATURES_WITH_PUBLISHER)
        assert "publisher" in CORE_FEATURES_WITH_PUBLISHER
