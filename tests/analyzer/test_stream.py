"""Tests for the streaming analyzer (online semantics)."""

import pytest

from repro.analyzer.interests import PublisherDirectory
from repro.analyzer.pipeline import WeblogAnalyzer
from repro.analyzer.stream import StreamingAnalyzer
from repro.trace.simulate import simulate_dataset, small_config
from repro.trace.weblog import HttpRequest


@pytest.fixture(scope="module")
def dataset():
    return simulate_dataset(small_config(seed=42))


@pytest.fixture(scope="module")
def directory(dataset):
    return PublisherDirectory.from_universe(dataset.universe)


@pytest.fixture(scope="module")
def streamed(dataset, directory):
    analyzer = StreamingAnalyzer(directory)
    observations = list(analyzer.process_many(dataset.rows))
    return analyzer, observations


class TestStreamingEquivalence:
    def test_same_observation_count_as_batch(self, dataset, directory, streamed):
        _, observations = streamed
        batch = WeblogAnalyzer(directory).analyze(dataset.rows)
        assert len(observations) == len(batch.observations)

    def test_same_prices_as_batch(self, dataset, directory, streamed):
        _, observations = streamed
        batch = WeblogAnalyzer(directory).analyze(dataset.rows)
        stream_prices = sorted(
            o.price_cpm for o in observations if o.price_cpm is not None
        )
        batch_prices = sorted(
            o.price_cpm for o in batch.observations if o.price_cpm is not None
        )
        assert stream_prices == pytest.approx(batch_prices)

    def test_traffic_counts_match_batch(self, dataset, directory, streamed):
        analyzer, _ = streamed
        batch = WeblogAnalyzer(directory).analyze(dataset.rows)
        assert analyzer.traffic_counts == batch.traffic_counts

    def test_snapshot_supports_aggregations(self, streamed):
        analyzer, observations = streamed
        result = analyzer.snapshot_result()
        assert len(result.cleartext()) + len(result.encrypted()) == len(observations)
        shares = result.entity_rtb_shares()
        assert max(shares, key=shares.get) == "MoPub"


class TestStreamingSnapshotContract:
    def test_snapshot_extractor_is_explicit_none(self, streamed):
        analyzer, _ = streamed
        result = analyzer.snapshot_result()
        assert result.extractor is None

    def test_snapshot_feature_access_raises_clearly(self, streamed):
        """Feature access on a streaming snapshot must fail with a
        descriptive error, not an AttributeError on None."""
        analyzer, _ = streamed
        result = analyzer.snapshot_result()
        with pytest.raises(RuntimeError, match="streaming snapshot"):
            result.features()

    def test_n_url_params_matches_batch_detector(self, dataset, directory, streamed):
        """The hoisted count_url_params helper must agree with the
        DetectedNotification property the batch path uses."""
        from repro.analyzer.pipeline import WeblogAnalyzer

        _, observations = streamed
        batch = WeblogAnalyzer(directory).analyze(dataset.rows)
        assert sorted(o.n_url_params for o in observations) == sorted(
            o.n_url_params for o in batch.observations
        )

    def test_count_url_params_free_function(self):
        from repro.analyzer.detector import count_url_params

        assert count_url_params("http://x.test/p?a=1&b=&c=3") == 3
        assert count_url_params("http://x.test/p") == 0


class TestGeoCache:
    def test_repeated_ips_resolve_once(self, directory):
        """Non-advertising rows from the same client IP must not pay
        geo resolution cost on every request."""
        from repro.analyzer.geoip import GeoIpResolver

        class CountingResolver(GeoIpResolver):
            def __init__(self):
                super().__init__()
                self.calls = 0

            def lookup(self, ip):
                self.calls += 1
                return super().lookup(ip)

        resolver = CountingResolver()
        analyzer = StreamingAnalyzer(directory, geoip=resolver)
        row = HttpRequest(
            timestamp=1_420_070_400.0, user_id="u1",
            url="http://portal.example.es/", domain="portal.example.es",
            user_agent="Mozilla/5.0 (Linux; Android 5.0)", kind="content",
            bytes_transferred=1000, duration_ms=10.0, client_ip="85.1.0.1",
        )
        for _ in range(50):
            analyzer.process(row)
        assert resolver.calls == 1


class TestOnlineSemantics:
    def test_observation_emitted_immediately(self, dataset, directory):
        analyzer = StreamingAnalyzer(directory)
        emitted = None
        consumed = 0
        for row in dataset.rows:
            consumed += 1
            emitted = analyzer.process(row)
            if emitted is not None:
                break
        assert emitted is not None
        # The first nURL produced an observation before the rest of the
        # trace was seen.
        assert consumed < len(dataset.rows)

    def test_user_state_accumulates_monotonically(self, dataset, directory):
        analyzer = StreamingAnalyzer(directory)
        user = dataset.rows[0].user_id
        counts = []
        for row in dataset.rows[:3000]:
            analyzer.process(row)
            counts.append(analyzer.user_state(user).n_requests)
        assert counts == sorted(counts)

    def test_memory_bounded_by_users_and_prices(self, dataset, directory, streamed):
        analyzer, observations = streamed
        assert analyzer.memory_cardinality <= len(dataset.users) + len(observations)
        assert analyzer.rows_seen == len(dataset.rows)

    def test_interests_available_online(self, dataset, directory, streamed):
        analyzer, _ = streamed
        with_interests = [
            s for s in analyzer.users.values() if s.dominant_interest is not None
        ]
        assert len(with_interests) > 0.8 * len(analyzer.users)
