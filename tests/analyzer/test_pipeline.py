"""Integration tests: analyzer pipeline over a simulated weblog.

These validate the core observer-side guarantee of the reproduction:
everything the analyzer reports is derived from HTTP rows alone, yet it
must agree with the simulator's private ground truth.
"""

import numpy as np
import pytest

from repro.analyzer.interests import PublisherDirectory, infer_interests
from repro.analyzer.pipeline import WeblogAnalyzer
from repro.trace.simulate import simulate_dataset, small_config


@pytest.fixture(scope="module")
def dataset():
    return simulate_dataset(small_config())


@pytest.fixture(scope="module")
def analysis(dataset):
    analyzer = WeblogAnalyzer(PublisherDirectory.from_universe(dataset.universe))
    return analyzer.analyze(dataset.rows)


class TestDetectionCompleteness:
    def test_every_impression_detected(self, dataset, analysis):
        assert len(analysis.observations) == dataset.n_impressions

    def test_encrypted_flags_match_truth(self, dataset, analysis):
        truth = sorted(
            (i.record.request.timestamp, i.is_encrypted) for i in dataset.impressions
        )
        observed = sorted((o.timestamp - 0.5, o.is_encrypted) for o in analysis.observations)
        assert [t[1] for t in truth] == [o[1] for o in observed]

    def test_cleartext_prices_match_truth(self, dataset, analysis):
        truth = {
            i.record.notification.impression_id: i.charge_price_cpm
            for i in dataset.impressions
            if not i.is_encrypted
        }
        checked = 0
        for det in analysis.notifications:
            imp_id = det.parsed.params.get("imp_id")
            if imp_id in truth and det.parsed.cleartext_price_cpm is not None:
                assert det.parsed.cleartext_price_cpm == pytest.approx(
                    truth[imp_id], abs=1e-4
                )
                checked += 1
        assert checked == len(truth)


class TestMetadataRecovery:
    def test_city_matches_user_home(self, dataset, analysis):
        users = {u.user_id: u for u in dataset.users}
        for obs in analysis.observations[:300]:
            assert obs.city == users[obs.user_id].city.name

    def test_os_matches_user_device(self, dataset, analysis):
        users = {u.user_id: u for u in dataset.users}
        for obs in analysis.observations[:300]:
            expected = users[obs.user_id].device.os
            if expected in ("Android", "iOS", "Windows Mobile"):
                assert obs.os == expected

    def test_context_matches_truth(self, dataset, analysis):
        truth = {
            i.record.notification.impression_id: i.record.request.context
            for i in dataset.impressions
        }
        for det, obs in zip(analysis.notifications, analysis.observations):
            imp_id = det.parsed.params.get("imp_id")
            user = dataset.user_by_id(obs.user_id)
            if user.device.os in ("Android", "iOS"):
                assert obs.context == truth[imp_id]

    def test_slot_size_recovered(self, analysis):
        known = [o for o in analysis.observations if o.slot_size]
        assert len(known) == len(analysis.observations)

    def test_publisher_iab_resolved(self, analysis):
        unresolved = [o for o in analysis.observations if o.publisher_iab == "unknown"]
        assert len(unresolved) < 0.01 * len(analysis.observations)


class TestAggregations:
    def test_entity_shares_sum_to_one(self, analysis):
        shares = analysis.entity_rtb_shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert max(shares, key=shares.get) == "MoPub"

    def test_cleartext_share_concentrated_in_big_entities(self, analysis):
        """Figure 3: MoPub contributes even more of the cleartext prices
        than its RTB share."""
        rtb = analysis.entity_rtb_shares()
        clr = analysis.entity_cleartext_shares()
        assert clr["MoPub"] > rtb["MoPub"]

    def test_monthly_pair_encryption_rises(self, analysis):
        monthly = analysis.monthly_pair_encryption()
        assert set(monthly) == set(range(1, 13))
        early = monthly[1][0] / sum(monthly[1])
        late = monthly[12][0] / sum(monthly[12])
        assert late > early

    def test_prices_by_context_app_dearer(self, analysis):
        groups = analysis.prices_by("context")
        assert np.mean(groups["app"]) > 1.5 * np.mean(groups["web"])

    def test_per_user_totals_positive(self, analysis):
        totals = analysis.per_user_cleartext_totals()
        assert totals
        assert all(v > 0 for v in totals.values())

    def test_traffic_counts_cover_rows(self, dataset, analysis):
        assert sum(analysis.traffic_counts.values()) == dataset.n_rows


class TestAggregationRegressions:
    """Regression coverage for crashes on degenerate inputs."""

    @staticmethod
    def _result(observations):
        from collections import Counter

        from repro.analyzer.pipeline import AnalysisResult

        return AnalysisResult(
            observations=observations, traffic_counts=Counter(), extractor=None
        )

    @staticmethod
    def _obs(user_id="u1", price=1.0, encrypted=False):
        from repro.analyzer.pipeline import PriceObservation

        return PriceObservation(
            timestamp=1_420_070_400.0, user_id=user_id, adx="MoPub",
            dsp="dsp1", is_encrypted=encrypted, price_cpm=price,
            encrypted_token="tok" if encrypted else None, slot_size="320x50",
            publisher="pub.example", publisher_iab="IAB3", city="Madrid",
            os="Android", device_type="smartphone", context="app",
            campaign_id="c1", n_url_params=7,
        )

    def test_per_user_totals_skip_missing_prices(self):
        """A cleartext observation whose price failed to parse
        (price_cpm=None) must be skipped, not TypeError the sum."""
        result = self._result(
            [
                self._obs(price=2.0),
                self._obs(price=None),       # unparseable cleartext price
                self._obs(price=3.5),
                self._obs(price=None, encrypted=True),
            ]
        )
        assert result.per_user_cleartext_totals() == {"u1": 5.5}

    def test_per_user_totals_all_missing_prices(self):
        # Filter semantics match cleartext_prices(): a user with only
        # unparseable cleartext prices contributes no entry at all.
        result = self._result([self._obs(price=None)])
        assert result.per_user_cleartext_totals() == {}

    def test_empty_result_rtb_shares(self):
        """entity_rtb_shares on an empty analysis must return {} like
        its sibling, not ZeroDivisionError."""
        result = self._result([])
        assert result.entity_rtb_shares() == {}

    def test_empty_result_cleartext_shares(self):
        result = self._result([])
        assert result.entity_cleartext_shares() == {}

    def test_empty_result_other_aggregations(self):
        result = self._result([])
        assert result.monthly_pair_encryption() == {}
        assert result.monthly_os_counts() == {}
        assert result.per_user_cleartext_totals() == {}

    def test_features_guard_on_missing_extractor(self):
        result = self._result([])
        with pytest.raises(RuntimeError, match="streaming snapshot"):
            result.features()

    def test_features_returns_extractor_when_present(self, analysis):
        assert analysis.features() is analysis.extractor


class TestInterestInference:
    def test_inferred_close_to_generative(self, dataset, analysis):
        """Interest profiles recovered from browsing should usually rank
        the user's true dominant category at/near the top."""
        directory = PublisherDirectory.from_universe(dataset.universe)
        users = {u.user_id: u for u in dataset.users}
        hits = 0
        total = 0
        for user_id, agg in analysis.extractor.users.items():
            truth = users[user_id].interests.dominant
            inferred_top3 = agg.interests.top(3)
            if agg.n_requests < 30 or truth is None:
                continue
            total += 1
            if truth in inferred_top3:
                hits += 1
        assert total > 10
        assert hits / total > 0.6
