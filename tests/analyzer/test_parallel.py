"""Tests for the sharded parallel analyzer (result equivalence).

The contract under test: for any weblog, ``analyze_parallel`` must
produce the same observations (in the same order), traffic histogram,
notifications, and per-user aggregates as the sequential single-pass
``WeblogAnalyzer.analyze``.  The determinism gate is marked ``tier1``
so parallel-merge regressions fail fast.
"""

from dataclasses import fields

import pytest

from repro.analyzer.features import FeatureExtractor
from repro.analyzer.blacklist import default_blacklist
from repro.analyzer.geoip import GeoIpResolver
from repro.analyzer.interests import PublisherDirectory
from repro.analyzer.parallel import (
    ShardPartial,
    analyze_parallel,
    merge_partials,
    shard_of,
)
from repro.analyzer.pipeline import WeblogAnalyzer
from repro.trace.simulate import SimulationConfig, simulate_dataset


@pytest.fixture(scope="module")
def dataset():
    return simulate_dataset(
        SimulationConfig(
            n_users=40, target_auctions=600, n_web_publishers=30,
            n_app_publishers=15, n_advertisers=8, seed=11,
        )
    )


@pytest.fixture(scope="module")
def directory(dataset):
    return PublisherDirectory.from_universe(dataset.universe)


@pytest.fixture(scope="module")
def sequential(dataset, directory):
    return WeblogAnalyzer(directory).analyze(dataset.rows)


@pytest.fixture(scope="module")
def parallel4(dataset, directory):
    # Small chunks force multiple chunks per shard, exercising the
    # in-order partial merge.
    return analyze_parallel(dataset.rows, directory, workers=4, chunk_size=200)


def _assert_user_aggregates_equal(a, b):
    for f in fields(a):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if isinstance(va, float):
            # Chunked merging may re-associate float sums (~1 ulp).
            assert va == pytest.approx(vb, rel=1e-9), f.name
        else:
            assert va == vb, f.name


class TestShardOf:
    def test_stable_across_calls(self):
        assert shard_of("u00001", 4) == shard_of("u00001", 4)

    def test_in_range_and_spread(self):
        shards = {shard_of(f"u{i:05d}", 4) for i in range(200)}
        assert shards == {0, 1, 2, 3}

    def test_not_process_salted(self):
        # crc32 is deterministic; a salted hash() would flap between
        # interpreters and break cross-process sharding.
        assert shard_of("u00042", 8) == 1


class TestParallelEquivalence:
    @pytest.mark.tier1
    def test_observations_identical_2_workers(self, dataset, directory, sequential):
        """Determinism gate: sequential vs 2-worker runs over the seed
        simulator produce identical observation lists."""
        par = analyze_parallel(dataset.rows, directory, workers=2, chunk_size=300)
        assert sorted(
            par.observations, key=lambda o: (o.timestamp, o.user_id)
        ) == sorted(
            sequential.observations, key=lambda o: (o.timestamp, o.user_id)
        )
        # Stronger than the sorted check: emission order is preserved.
        assert par.observations == sequential.observations

    def test_observations_identical_4_workers(self, sequential, parallel4):
        assert parallel4.observations == sequential.observations

    def test_traffic_counts_identical(self, sequential, parallel4):
        assert parallel4.traffic_counts == sequential.traffic_counts

    def test_notifications_identical(self, sequential, parallel4):
        assert [d.parsed for d in parallel4.notifications] == [
            d.parsed for d in sequential.notifications
        ]
        assert [d.row for d in parallel4.notifications] == [
            d.row for d in sequential.notifications
        ]

    def test_per_user_totals_identical(self, sequential, parallel4):
        assert (
            parallel4.per_user_cleartext_totals()
            == sequential.per_user_cleartext_totals()
        )

    def test_user_aggregates_match(self, sequential, parallel4):
        assert set(parallel4.extractor.users) == set(sequential.extractor.users)
        for user_id, seq_agg in sequential.extractor.users.items():
            _assert_user_aggregates_equal(seq_agg, parallel4.extractor.users[user_id])

    def test_advertiser_and_campaign_aggregates_match(self, sequential, parallel4):
        seq_x, par_x = sequential.extractor, parallel4.extractor
        assert set(par_x.advertisers) == set(seq_x.advertisers)
        for adv, seq_agg in seq_x.advertisers.items():
            par_agg = par_x.advertisers[adv]
            assert par_agg.n_requests == seq_agg.n_requests
            assert par_agg.users == seq_agg.users
        assert par_x.campaign_counts == seq_x.campaign_counts

    def test_workers_one_is_sequential_path(self, dataset, directory, sequential):
        par = analyze_parallel(dataset.rows, directory, workers=1)
        assert par.observations == sequential.observations
        assert par.traffic_counts == sequential.traffic_counts

    def test_accepts_row_iterator(self, dataset, directory, sequential):
        par = analyze_parallel(
            iter(dataset.rows), directory, workers=2, chunk_size=500
        )
        assert par.observations == sequential.observations

    def test_analyze_workers_kwarg_threads_through(
        self, dataset, directory, sequential
    ):
        par = WeblogAnalyzer(directory).analyze(
            dataset.rows, workers=2, chunk_size=400
        )
        assert par.observations == sequential.observations

    def test_rejects_bad_chunk_size(self, dataset, directory):
        with pytest.raises(ValueError):
            analyze_parallel(dataset.rows, directory, workers=2, chunk_size=0)


class TestMergePartials:
    def test_empty_inputs_yield_empty_result(self, directory):
        blacklist = default_blacklist()
        geoip = GeoIpResolver()
        result = merge_partials((), blacklist, directory, geoip)
        assert result.observations == []
        assert result.traffic_counts == {}
        assert result.entity_rtb_shares() == {}

    def test_partials_merge_in_chunk_order(self, directory):
        """Out-of-order delivery must not scramble per-shard state."""
        from collections import Counter

        blacklist = default_blacklist()
        geoip = GeoIpResolver()
        first = ShardPartial(
            shard=0, seq=0, traffic_counts=Counter({"rest": 2}),
            notifications=[], observations=[],
            extractor=FeatureExtractor.incremental(blacklist, directory, geoip),
        )
        second = ShardPartial(
            shard=0, seq=1, traffic_counts=Counter({"rest": 1}),
            notifications=[], observations=[],
            extractor=FeatureExtractor.incremental(blacklist, directory, geoip),
        )
        merged = merge_partials((second, first), blacklist, directory, geoip)
        assert merged.traffic_counts == Counter({"rest": 3})
