"""Tests for domain classification and nURL detection."""

import pytest

from repro.analyzer.blacklist import (
    GROUP_ADVERTISING,
    GROUP_ANALYTICS,
    GROUP_REST,
    GROUP_SOCIAL,
    DomainBlacklist,
    default_blacklist,
)
from repro.analyzer.detector import (
    classify_rows,
    detect_notifications,
    is_sync_beacon,
    is_web_beacon,
)
from repro.rtb.nurl import FORMATS, WinNotification, build_nurl
from repro.trace.weblog import HttpRequest


def make_row(url: str, domain: str, kind: str = "content") -> HttpRequest:
    return HttpRequest(
        timestamp=1.0,
        user_id="u1",
        url=url,
        domain=domain,
        user_agent="Mozilla/5.0",
        kind=kind,
        bytes_transferred=100,
        duration_ms=10.0,
        client_ip="85.10.1.1",
    )


class TestBlacklist:
    def test_every_exchange_host_is_advertising(self):
        blacklist = default_blacklist()
        for fmt in FORMATS.values():
            assert blacklist.classify(fmt.host) == GROUP_ADVERTISING

    def test_subdomain_matching(self):
        blacklist = DomainBlacklist(advertising={"doubleclick.net"})
        assert blacklist.classify("ad.doubleclick.net") == GROUP_ADVERTISING
        assert blacklist.classify("deep.sub.doubleclick.net") == GROUP_ADVERTISING

    def test_unlisted_is_rest(self):
        assert default_blacklist().classify("news.example.es") == GROUP_REST

    def test_analytics_and_social_groups(self):
        blacklist = default_blacklist()
        assert blacklist.classify("google-analytics.com") == GROUP_ANALYTICS
        assert blacklist.classify("facebook.com") == GROUP_SOCIAL

    def test_case_insensitive(self):
        blacklist = default_blacklist()
        assert blacklist.classify("FACEBOOK.COM") == GROUP_SOCIAL

    def test_merge_unions_entries(self):
        a = DomainBlacklist(advertising={"a.com"})
        b = DomainBlacklist(advertising={"b.com"}, analytics={"c.com"})
        merged = a.merge(b)
        assert merged.classify("a.com") == GROUP_ADVERTISING
        assert merged.classify("b.com") == GROUP_ADVERTISING
        assert merged.classify("c.com") == GROUP_ANALYTICS

    def test_len_counts_entries(self):
        assert len(DomainBlacklist(advertising={"a.com", "b.com"})) == 2

    def test_advertising_takes_priority(self):
        blacklist = DomainBlacklist(
            advertising={"dual.com"}, analytics={"dual.com"}
        )
        assert blacklist.classify("dual.com") == GROUP_ADVERTISING


class TestDetector:
    def _nurl_row(self, encrypted=False):
        from repro.rtb.pricecrypto import PriceKeys, encrypt_price

        token = encrypt_price(1.0, PriceKeys.derive("t"), bytes(16))
        notification = WinNotification(
            adx="MoPub",
            dsp="Criteo-DSP",
            charge_price_cpm=None if encrypted else 0.5,
            encrypted_price=token if encrypted else None,
            impression_id="i1",
            auction_id="a1",
            slot_size="300x250",
            publisher="news.example.es",
            campaign_id="c1",
        )
        url = build_nurl(notification)
        return make_row(url, "cpp.imp.mpx.mopub.com", kind="nurl")

    def test_detects_cleartext_nurl(self):
        rows = [self._nurl_row(), make_row("https://news.example.es/p", "news.example.es")]
        found = list(detect_notifications(rows, default_blacklist()))
        assert len(found) == 1
        assert found[0].parsed.cleartext_price_cpm == pytest.approx(0.5, abs=1e-4)

    def test_detects_encrypted_nurl(self):
        found = list(detect_notifications([self._nurl_row(encrypted=True)], default_blacklist()))
        assert len(found) == 1
        assert found[0].parsed.is_encrypted

    def test_skips_non_advertising_rows(self):
        row = make_row("https://news.example.es/?charge_price=1.0", "news.example.es")
        assert list(detect_notifications([row], default_blacklist())) == []

    def test_skips_ad_rows_without_price(self):
        row = make_row("https://cpp.imp.mpx.mopub.com/pixel?x=1", "cpp.imp.mpx.mopub.com")
        assert list(detect_notifications([row], default_blacklist())) == []

    def test_n_url_params(self):
        det = list(detect_notifications([self._nurl_row()], default_blacklist()))[0]
        assert det.n_url_params >= 5

    def test_classify_rows_histogram(self):
        rows = [
            make_row("https://news.example.es/p", "news.example.es"),
            make_row("https://google-analytics.com/collect?v=1", "google-analytics.com"),
            self._nurl_row(),
        ]
        counts = classify_rows(rows, default_blacklist())
        assert counts[GROUP_REST] == 1
        assert counts[GROUP_ANALYTICS] == 1
        assert counts[GROUP_ADVERTISING] == 1


class TestBeaconHeuristics:
    def test_sync_beacon_by_param(self):
        row = make_row(
            "https://sync.mopub.com/match?partner=DBM&partner_uid=abc",
            "sync.mopub.com",
        )
        assert is_sync_beacon(row)

    def test_web_beacon_by_path(self):
        row = make_row("https://stats.trackerhub.io/collect?v=1", "stats.trackerhub.io")
        assert is_web_beacon(row)

    def test_content_is_neither(self):
        row = make_row("https://news.example.es/page/1", "news.example.es")
        assert not is_sync_beacon(row)
        assert not is_web_beacon(row)
