"""Tests for the metrics registry: counters, gauges, log-bin histograms.

The concurrency gate matters most: serve bumps counters from the event
loop *and* a retrain executor thread, so increments must never be lost
-- the 80-way exactness test here mirrors the serve-level one at the
registry layer.
"""

import json
import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_log_bounds,
)


class TestCounter:
    def test_unlabeled_counting(self):
        c = Counter("hits")
        c.inc()
        c.inc(2.5)
        assert c.total() == 3.5
        assert c.value() == 3.5

    def test_labeled_series_are_independent(self):
        c = Counter("requests")
        c.inc(route="/estimate")
        c.inc(route="/estimate")
        c.inc(route="/model")
        assert c.value(route="/estimate") == 2
        assert c.value(route="/model") == 1
        assert c.total() == 3
        assert c.labeled("route") == {"/estimate": 2.0, "/model": 1.0}

    def test_label_order_does_not_matter(self):
        c = Counter("x")
        c.inc(a=1, b=2)
        c.inc(b=2, a=1)
        assert c.value(b=2, a=1) == 2

    def test_to_dict_is_json_serialisable(self):
        c = Counter("x")
        c.inc(kind="a")
        payload = json.loads(json.dumps(c.to_dict()))
        assert payload["type"] == "counter"
        assert payload["total"] == 1


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("inflight")
        g.set(3)
        g.set(7)
        assert g.value() == 7
        assert g.to_dict() == {"type": "gauge", "value": 7.0}


class TestHistogram:
    def test_exact_count_sum_min_max(self):
        h = Histogram("lat")
        for v in (0.001, 0.002, 0.004, 1.5):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(0.001 + 0.002 + 0.004 + 1.5)
        assert h.min == 0.001
        assert h.max == 1.5
        assert h.mean == pytest.approx(h.sum / 4)

    def test_quantiles_are_bin_bounded_and_clamped(self):
        h = Histogram("lat")
        for _ in range(100):
            h.observe(0.010)           # all in one factor-2 bin
        q = h.quantile(0.5)
        # The bin upper bound containing 0.010 with factor-2 bins from
        # 1e-6 is ~0.0164; clamping to observed max gives exactly 0.010.
        assert q == pytest.approx(0.010)
        assert h.quantile(0.0) == pytest.approx(0.010)
        assert h.quantile(1.0) == pytest.approx(0.010)

    def test_quantile_orders_across_bins(self):
        h = Histogram("lat")
        for _ in range(90):
            h.observe(0.001)
        for _ in range(10):
            h.observe(10.0)
        assert h.quantile(0.5) < h.quantile(0.99)
        assert h.quantile(0.99) == pytest.approx(10.0)

    def test_empty_histogram_quantile_is_zero(self):
        h = Histogram("lat")
        assert h.quantile(0.9) == 0.0
        assert h.mean == 0.0

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat").quantile(1.5)

    def test_default_bounds_span_microseconds_to_kiloseconds(self):
        bounds = default_log_bounds()
        assert bounds[0] == pytest.approx(1e-6)
        assert bounds[-1] >= 1024.0
        ratios = [b / a for a, b in zip(bounds, bounds[1:])]
        assert all(r == pytest.approx(2.0) for r in ratios)

    def test_custom_bounds_must_ascend(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(1.0, 1.0, 2.0))

    def test_to_dict_reports_percentiles_and_bins(self):
        h = Histogram("lat")
        h.observe(0.5)
        payload = json.loads(json.dumps(h.to_dict()))
        assert payload["count"] == 1
        assert set(payload) >= {"p50", "p90", "p99", "bins"}
        assert sum(payload["bins"].values()) == 1


class TestRegistry:
    def test_same_name_returns_same_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("a")

    def test_snapshot_covers_all_metrics(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(2)
        reg.histogram("h").observe(0.1)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert set(snap) == {"c", "g", "h"}
        assert reg.names() == ["c", "g", "h"]

    def test_reset_drops_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot() == {}


class TestConcurrency:
    """Increments must be exact under heavy thread interleaving."""

    def test_80_way_counter_exactness(self):
        reg = MetricsRegistry()
        counter = reg.counter("serve.requests")
        histogram = reg.histogram("serve.latency")
        per_thread = 250
        n_threads = 80
        barrier = threading.Barrier(n_threads)

        def worker(tid: int):
            barrier.wait()
            for i in range(per_thread):
                counter.inc(route="/estimate" if i % 2 else "/model")
                histogram.observe(0.001 * (tid + 1))

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.total() == n_threads * per_thread
        assert counter.labeled("route")["/estimate"] == n_threads * (
            per_thread // 2
        )
        assert histogram.count == n_threads * per_thread

    def test_concurrent_creation_yields_one_instance(self):
        reg = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(16)

        def worker():
            barrier.wait()
            seen.append(reg.counter("shared"))

        threads = [threading.Thread(target=worker) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(c) for c in seen}) == 1
