"""Tests for the tracing half of the observability spine.

Covers the contract the instrumented pipeline relies on: spans nest via
context vars, disabled tracing is a shared no-op, finished spans
round-trip through JSON, worker sub-trees graft deterministically, and
the parallel analyzer's stitched trace is identical (modulo timing)
across runs.
"""

import json

import pytest

from repro import obs
from repro.obs.trace import NOOP_SPAN


class TestSpanBasics:
    def test_disabled_tracing_returns_shared_noop(self):
        assert obs.active_trace() is None
        s = obs.span("anything", rows=3)
        assert s is NOOP_SPAN
        with s as inner:
            inner.set(ignored=True)   # must not raise
        assert obs.span("other") is NOOP_SPAN

    def test_event_and_graft_are_noops_when_disabled(self):
        obs.event("nothing", duration=1.0)
        grafted = obs.graft([{
            "name": "w", "span_id": "x-1", "parent_id": None,
            "start": 0.0, "duration": 0.1, "attrs": {},
        }])
        assert grafted == 0

    def test_spans_nest_and_record_on_exit(self):
        with obs.start_trace("root", scale=0.5) as t:
            with obs.span("outer", a=1):
                with obs.span("inner"):
                    pass
            with obs.span("sibling") as s:
                s.set(extra="yes")
        tree = t.tree()
        assert tree["name"] == "root"
        assert tree["attrs"] == {"scale": 0.5}
        assert [c["name"] for c in tree["children"]] == ["outer", "sibling"]
        outer = tree["children"][0]
        assert [c["name"] for c in outer["children"]] == ["inner"]
        assert tree["children"][1]["attrs"] == {"extra": "yes"}

    def test_exceptions_close_spans_and_stamp_error(self):
        with pytest.raises(RuntimeError):
            with obs.start_trace("root") as t:
                with obs.span("will_fail"):
                    raise RuntimeError("boom")
        failed = next(r for r in t.records if r.name == "will_fail")
        assert failed.attrs["error"] == "RuntimeError"
        # The trace collector was uninstalled despite the exception.
        assert obs.active_trace() is None

    def test_event_records_premeasured_child(self):
        with obs.start_trace("root") as t:
            with obs.span("parent"):
                obs.event("queue_wait", duration=0.25, wait_for="flush")
        tree = t.tree()
        parent = tree["children"][0]
        assert parent["children"][0]["name"] == "queue_wait"
        assert parent["children"][0]["duration"] == 0.25
        assert parent["children"][0]["attrs"] == {"wait_for": "flush"}

    def test_records_round_trip_through_json(self):
        with obs.start_trace("root") as t:
            with obs.span("child", n=2):
                pass
        shipped = json.loads(json.dumps(t.to_dicts()))
        rebuilt = obs.build_tree(shipped)
        assert rebuilt["name"] == "root"
        assert rebuilt["children"][0]["name"] == "child"
        assert rebuilt["children"][0]["attrs"] == {"n": 2}


class TestGraft:
    def _worker_records(self, tag: str) -> list[dict]:
        """Simulate a pool worker capturing its own chunk trace."""
        with obs.start_trace("analyzer.shard", shard=tag) as worker:
            with obs.span("analyzer.scan"):
                pass
        return worker.to_dicts()

    def test_grafted_roots_reparent_under_current_span(self):
        shipped = self._worker_records("s0")
        with obs.start_trace("coordinator") as t:
            with obs.span("analyzer.merge"):
                assert obs.graft(shipped) == len(shipped)
        tree = t.tree()
        merge = tree["children"][0]
        assert [c["name"] for c in merge["children"]] == ["analyzer.shard"]
        shard = merge["children"][0]
        assert [c["name"] for c in shard["children"]] == ["analyzer.scan"]

    def test_graft_preserves_sibling_order(self):
        batches = [self._worker_records(f"s{i}") for i in range(3)]
        with obs.start_trace("coordinator") as t:
            with obs.span("analyzer.merge"):
                for shipped in batches:
                    obs.graft(shipped)
        merge = t.tree()["children"][0]
        shards = [c for c in merge["children"] if c["name"] == "analyzer.shard"]
        assert [s["attrs"]["shard"] for s in shards] == ["s0", "s1", "s2"]

    def test_multiple_roots_wrap_under_synthetic_node(self):
        records = []
        for tag in ("a", "b"):
            with obs.start_trace("piece", tag=tag) as t:
                pass
            records.extend(t.to_dicts())
        tree = obs.build_tree(records)
        assert tree["name"] == "<trace>"
        assert [c["attrs"]["tag"] for c in tree["children"]] == ["a", "b"]


def _shape(node: dict) -> tuple:
    """Timing-free structural fingerprint of a trace tree."""
    stable_attrs = {
        k: v for k, v in sorted(node["attrs"].items()) if k != "cpu_s"
    }
    return (
        node["name"],
        tuple(sorted(stable_attrs.items())),
        tuple(_shape(c) for c in node["children"]),
    )


class TestParallelStitching:
    """The tentpole acceptance: workers>1 produces one stitched,
    deterministic trace with per-shard sub-trees."""

    @pytest.fixture(scope="class")
    def weblog(self):
        from repro.trace.simulate import SimulationConfig, simulate_dataset

        return simulate_dataset(
            SimulationConfig(
                n_users=30, target_auctions=400, n_web_publishers=20,
                n_app_publishers=10, n_advertisers=6, seed=19,
            )
        )

    def _traced_analysis(self, dataset, workers: int):
        from repro.analyzer.interests import PublisherDirectory
        from repro.analyzer.parallel import analyze_parallel

        directory = PublisherDirectory.from_universe(dataset.universe)
        with obs.start_trace("analyze", workers=workers) as t:
            result = analyze_parallel(
                dataset.rows, directory, workers=workers, chunk_size=400
            )
        return result, t

    def test_worker_spans_are_stitched_into_one_tree(self, weblog):
        result, t = self._traced_analysis(weblog, workers=2)
        tree = t.tree()
        names = set()

        def walk(node):
            names.add(node["name"])
            for child in node["children"]:
                walk(child)

        walk(tree)
        assert "analyzer.analyze" in names
        assert "analyzer.merge" in names
        assert "analyzer.shard" in names     # shipped from pool workers
        # Every shard sub-tree carries its own scan/observation spans.
        shards = [
            r for r in t.records if r.name == "analyzer.shard"
        ]
        assert shards, "no worker spans shipped"
        shard_ids = {r.span_id for r in shards}
        child_names = {
            r.name for r in t.records if r.parent_id in shard_ids
        }
        assert child_names == {"analyzer.scan", "analyzer.observations"}
        assert result.observations  # the run actually did work

    def test_stitched_trace_shape_is_deterministic(self, weblog):
        result_a, trace_a = self._traced_analysis(weblog, workers=2)
        result_b, trace_b = self._traced_analysis(weblog, workers=2)
        assert _shape(trace_a.tree()) == _shape(trace_b.tree())
        assert [o.price_cpm for o in result_a.observations] == [
            o.price_cpm for o in result_b.observations
        ]

    def test_untraced_parallel_run_ships_no_spans(self, weblog):
        from repro.analyzer.interests import PublisherDirectory
        from repro.analyzer.parallel import analyze_parallel

        directory = PublisherDirectory.from_universe(weblog.universe)
        assert obs.active_trace() is None
        result = analyze_parallel(
            weblog.rows, directory, workers=2, chunk_size=400
        )
        assert result.observations


class TestStage:
    def test_stage_is_noop_when_fully_disabled(self):
        assert not obs.profiling_enabled()
        assert obs.stage("anything") is NOOP_SPAN

    def test_stage_stamps_cpu_seconds_into_span(self):
        with obs.start_trace("root") as t:
            with obs.stage("work", rows=10) as st:
                st.set(extra=1)
        record = next(r for r in t.records if r.name == "work")
        assert record.attrs["rows"] == 10
        assert record.attrs["extra"] == 1
        assert record.attrs["cpu_s"] >= 0.0

    def test_profiling_records_metrics_without_a_trace(self):
        from repro.obs.metrics import MetricsRegistry
        import repro.obs.metrics as metrics_mod

        fresh = MetricsRegistry()
        old = metrics_mod._DEFAULT
        metrics_mod._DEFAULT = fresh
        try:
            obs.enable_profiling(True)
            with obs.stage("probe.stage"):
                pass
        finally:
            obs.enable_profiling(False)
            metrics_mod._DEFAULT = old
        snap = fresh.snapshot()
        assert snap["profile.probe.stage.calls"]["total"] == 1
        assert snap["profile.probe.stage.wall_seconds"]["count"] == 1
        assert snap["profile.probe.stage.cpu_seconds"]["count"] == 1
