"""Tests for the desktop-style encryption policy variant."""

import pytest

from repro.rtb.entities import MARKET_SHARES
from repro.trace.simulate import PREMIUM_DSPS, STANDARD_DSPS, build_desktop_policy
from repro.util.rng import stream
from repro.util.timeutil import epoch


class TestDesktopPolicy:
    def test_encrypted_share_near_sixty_eight_percent(self):
        policy = build_desktop_policy(stream("desk"))
        fraction = policy.encrypted_fraction(epoch(2015, 6, 1))
        assert 0.55 < fraction < 0.80

    def test_covers_every_pair(self):
        policy = build_desktop_policy(stream("desk2"))
        expected = len(MARKET_SHARES) * (len(STANDARD_DSPS) + len(PREMIUM_DSPS))
        assert len(policy.pairs()) == expected

    def test_adoption_precedes_observation_year(self):
        policy = build_desktop_policy(stream("desk3"))
        start_2015 = epoch(2015, 1, 1)
        for (adx, dsp), adoption in policy.adoption.items():
            if adoption is not None:
                assert adoption < start_2015

    def test_deterministic_per_stream(self):
        a = build_desktop_policy(stream("desk4"))
        b = build_desktop_policy(stream("desk4"))
        assert a.adoption == b.adoption
