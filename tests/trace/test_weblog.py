"""Tests for weblog record structures and the dataset container."""

import pytest

from repro.rtb.exchange import PairEncryptionPolicy
from repro.trace.publishers import build_universe
from repro.trace.weblog import (
    KIND_CONTENT,
    KIND_NURL,
    HttpRequest,
    UserTrafficStats,
    Weblog,
)
from repro.util.rng import stream
from repro.util.timeutil import Period


def make_row(ts=1.0, user="u1", kind=KIND_CONTENT):
    return HttpRequest(
        timestamp=ts,
        user_id=user,
        url="https://site.example/x",
        domain="site.example",
        user_agent="UA",
        kind=kind,
        bytes_transferred=100,
        duration_ms=10.0,
        client_ip="85.10.1.1",
    )


@pytest.fixture()
def weblog():
    universe = build_universe(stream("wl"), n_web=10, n_app=5, n_advertisers=3)
    return Weblog(
        period=Period.for_year(2015),
        users=[],
        universe=universe,
        policy=PairEncryptionPolicy(),
    )


class TestUserTrafficStats:
    def test_accumulates(self):
        stats = UserTrafficStats()
        stats.record(make_row())
        stats.record(make_row(ts=2.0))
        assert stats.requests == 2
        assert stats.bytes_transferred == 200
        assert stats.duration_ms == 20.0


class TestWeblog:
    def test_add_row_updates_stats(self, weblog):
        weblog.add_row(make_row(user="a"))
        weblog.add_row(make_row(user="a", ts=2.0))
        weblog.add_row(make_row(user="b"))
        assert weblog.n_rows == 3
        assert weblog.stats["a"].requests == 2
        assert weblog.stats["b"].requests == 1

    def test_finalize_sorts_rows(self, weblog):
        weblog.add_row(make_row(ts=5.0))
        weblog.add_row(make_row(ts=1.0))
        weblog.finalize()
        assert [r.timestamp for r in weblog.rows] == [1.0, 5.0]

    def test_nurl_rows_filter(self, weblog):
        weblog.add_row(make_row(kind=KIND_NURL))
        weblog.add_row(make_row())
        assert len(list(weblog.nurl_rows())) == 1

    def test_user_by_id_missing_raises(self, weblog):
        with pytest.raises(KeyError):
            weblog.user_by_id("ghost")

    def test_summary_on_empty(self, weblog):
        summary = weblog.summary()
        assert summary["impressions"] == 0
        assert summary["encrypted_fraction"] == 0.0

    def test_rows_are_immutable(self):
        row = make_row()
        with pytest.raises(AttributeError):
            row.timestamp = 99.0
