"""Tests for user-population synthesis and browsing models."""

import numpy as np
import pytest

from repro.rtb.iab import DATASET_CATEGORIES
from repro.trace.browsing import (
    HOURLY_WEIGHTS,
    PublisherChooser,
    sample_event_times,
)
from repro.trace.population import (
    activity_weights,
    build_population,
    sample_interests,
)
from repro.trace.publishers import build_universe
from repro.util.rng import stream
from repro.util.timeutil import Period, hour_of, is_weekend


class TestPopulation:
    def test_population_size_and_ids_unique(self):
        users = build_population(stream("pop"), 50)
        assert len(users) == 50
        assert len({u.user_id for u in users}) == 50

    def test_activity_heavy_tailed(self):
        users = build_population(stream("pop2"), 2000)
        acts = np.array([u.activity for u in users])
        assert acts.max() / np.median(acts) > 10

    def test_activity_weights_normalised(self):
        users = build_population(stream("pop3"), 100)
        weights = activity_weights(users)
        assert weights.sum() == pytest.approx(1.0)

    def test_city_distribution_follows_population(self):
        users = build_population(stream("pop4"), 3000)
        madrid = sum(1 for u in users if u.city.name == "Madrid")
        assert madrid / len(users) > 0.3  # Madrid ~41% of the roster population

    def test_app_fraction_bounded(self):
        users = build_population(stream("pop5"), 200)
        assert all(0.05 <= u.app_fraction <= 0.95 for u in users)

    def test_zero_users_rejected(self):
        with pytest.raises(ValueError):
            build_population(stream("pop6"), 0)


class TestInterests:
    def test_profiles_are_sparse_and_normalised(self):
        rng = stream("ints")
        for _ in range(20):
            profile = sample_interests(rng)
            assert profile.weights
            total = sum(w for _, w in profile.weights)
            assert total == pytest.approx(1.0)
            assert all(c in DATASET_CATEGORIES for c, _ in profile.weights)

    def test_dominant_is_highest_weight(self):
        rng = stream("ints2")
        profile = sample_interests(rng)
        weights = dict(profile.weights)
        assert weights[profile.dominant] == max(weights.values())


class TestEventTimes:
    PERIOD = Period.for_year(2015)

    def test_times_inside_period(self):
        ts = sample_event_times(stream("t1"), self.PERIOD, 500)
        assert ts.min() >= self.PERIOD.start
        assert ts.max() < self.PERIOD.end

    def test_zero_events(self):
        assert sample_event_times(stream("t2"), self.PERIOD, 0).size == 0

    def test_diurnal_shape(self):
        """Night hours must be much quieter than evening peak."""
        ts = sample_event_times(stream("t3"), self.PERIOD, 20_000)
        hours = np.array([hour_of(t) for t in ts])
        night = np.mean((hours >= 2) & (hours < 5))
        evening = np.mean((hours >= 19) & (hours < 22))
        assert evening > 3 * night

    def test_weekday_share_close_to_five_sevenths(self):
        ts = sample_event_times(stream("t4"), self.PERIOD, 10_000)
        weekday = np.mean([not is_weekend(t) for t in ts])
        assert weekday == pytest.approx(5 / 7, abs=0.05)

    def test_hourly_weights_cover_24_hours(self):
        assert len(HOURLY_WEIGHTS) == 24


class TestPublisherChooser:
    def test_interest_loyalty_bias(self):
        universe = build_universe(stream("u1"), n_web=100, n_app=40)
        chooser = PublisherChooser(universe)
        users = build_population(stream("u2"), 30)
        rng = stream("u3")
        for user in users[:10]:
            dominant = user.interests.dominant
            picks = [chooser.choose(rng, user, is_app=False) for _ in range(200)]
            share = np.mean([p.iab_category == dominant for p in picks])
            dominant_weight = user.interests.weight(dominant)
            # The chooser should visit the dominant category far more
            # often than its global publisher share (~its interest
            # weight times the loyalty factor).
            if dominant_weight > 0.5:
                assert share > 0.25

    def test_app_choice_returns_apps(self):
        universe = build_universe(stream("u4"), n_web=50, n_app=20)
        chooser = PublisherChooser(universe)
        users = build_population(stream("u5"), 5)
        rng = stream("u6")
        for _ in range(50):
            assert chooser.choose(rng, users[0], is_app=True).is_app
