"""Tests for the publisher universe and slot-popularity drift."""

import numpy as np
import pytest

from repro.rtb.iab import DATASET_CATEGORIES
from repro.trace.publishers import (
    build_universe,
    sample_slot_size,
    slot_weights_for,
)
from repro.util.rng import stream
from repro.util.timeutil import epoch


class TestUniverse:
    def test_counts(self):
        universe = build_universe(stream("u"), n_web=100, n_app=40, n_advertisers=10)
        assert len(universe.web_publishers) == 100
        assert len(universe.app_publishers) == 40
        assert len(universe.advertisers) == 10

    def test_domains_unique(self):
        universe = build_universe(stream("u2"), n_web=150, n_app=60)
        domains = [p.domain for p in universe.publishers]
        assert len(domains) == len(set(domains))

    def test_categories_from_dataset_roster(self):
        universe = build_universe(stream("u3"), n_web=200, n_app=50)
        for pub in universe.publishers:
            assert pub.iab_category in DATASET_CATEGORIES

    def test_by_category_filter(self):
        universe = build_universe(stream("u4"), n_web=200, n_app=80)
        news_web = universe.by_category("IAB12", is_app=False)
        assert news_web
        assert all(p.iab_category == "IAB12" and not p.is_app for p in news_web)

    def test_popularity_zipf_like(self):
        universe = build_universe(stream("u5"), n_web=100, n_app=10)
        pops = [p.popularity for p in universe.web_publishers]
        assert pops[0] / pops[-1] > 50  # heavy head


class TestSlotDrift:
    def test_january_banner_dominates(self):
        labels, weights = slot_weights_for(epoch(2015, 1, 15), "smartphone")
        by_label = dict(zip(labels, weights))
        assert by_label["320x50"] > by_label["300x250"]

    def test_december_mpu_dominates(self):
        """Figure 12: 300x250 overtakes 320x50 during 2015."""
        labels, weights = slot_weights_for(epoch(2015, 12, 15), "smartphone")
        by_label = dict(zip(labels, weights))
        assert by_label["300x250"] > by_label["320x50"]

    def test_crossover_around_may(self):
        for month, banner_leads in [(2, True), (10, False)]:
            labels, weights = slot_weights_for(epoch(2015, month, 15), "smartphone")
            by_label = dict(zip(labels, weights))
            assert (by_label["320x50"] > by_label["300x250"]) == banner_leads

    def test_weights_normalised(self):
        for device in ("smartphone", "tablet"):
            _, weights = slot_weights_for(epoch(2015, 7, 1), device)
            assert weights.sum() == pytest.approx(1.0)

    def test_tablet_catalog_distinct(self):
        labels, _ = slot_weights_for(epoch(2015, 7, 1), "tablet")
        assert "768x1024" in labels
        assert "320x50" not in labels

    def test_sample_slot_size_valid(self):
        rng = stream("slots")
        for _ in range(50):
            slot = sample_slot_size(rng, epoch(2015, 6, 1), "smartphone")
            assert slot.width > 0 and slot.height > 0

    def test_2016_extends_trend(self):
        labels, weights = slot_weights_for(epoch(2016, 5, 15), "smartphone")
        by_label = dict(zip(labels, weights))
        assert by_label["300x250"] > 2 * by_label["320x50"]
