"""Tests for the ground-truth price process calibration."""

import numpy as np
import pytest

from repro.rtb.adslots import AdSlotSize
from repro.rtb.openrtb import BidRequest, Device, Geo, Impression, UserInfo
from repro.trace.pricing import (
    APP_MULTIPLIER,
    IAB_MULTIPLIERS,
    OS_MULTIPLIERS,
    SLOT_MULTIPLIERS,
    GroundTruthPriceModel,
    months_since_2015,
)
from repro.util.timeutil import epoch


def make_request(auction_id="a1", city="Madrid", is_app=False, os="Android",
                 slot="320x50", iab="IAB12", adx="MoPub", hour=10, year=2015,
                 month=6, publisher="pub.example.es", device_type="smartphone"):
    return BidRequest(
        auction_id=auction_id,
        timestamp=epoch(year, month, 15, hour),
        imp=Impression(impression_id="i", slot_size=AdSlotSize.parse(slot)),
        publisher=publisher,
        publisher_iab=iab,
        device=Device(os=os, device_type=device_type),
        geo=Geo(country="ES", city=city),
        user=UserInfo(exchange_uid="u"),
        is_app=is_app,
        adx=adx,
    )


MODEL = GroundTruthPriceModel()


class TestCalibrationShapes:
    def test_app_premium(self):
        web = MODEL.deterministic_value(make_request(is_app=False))
        app = MODEL.deterministic_value(make_request(is_app=True))
        assert app / web == pytest.approx(APP_MULTIPLIER)

    def test_ios_premium(self):
        android = MODEL.deterministic_value(make_request(os="Android"))
        ios = MODEL.deterministic_value(make_request(os="iOS"))
        assert ios > android

    def test_iab3_dearest_iab15_cheapest(self):
        assert max(IAB_MULTIPLIERS, key=IAB_MULTIPLIERS.get) == "IAB3"
        values = {k: v for k, v in IAB_MULTIPLIERS.items() if k.startswith("IAB1")}
        assert IAB_MULTIPLIERS["IAB15"] < IAB_MULTIPLIERS["IAB12"]

    def test_mpu_beats_larger_slots(self):
        """Figure 13: price does not grow with slot area."""
        assert SLOT_MULTIPLIERS["300x250"] > SLOT_MULTIPLIERS["300x600"]
        assert SLOT_MULTIPLIERS["300x250"] > SLOT_MULTIPLIERS["728x90"]
        assert SLOT_MULTIPLIERS["300x600"] > SLOT_MULTIPLIERS["160x600"]

    def test_morning_premium(self):
        night = MODEL.deterministic_value(make_request(hour=2))
        morning = MODEL.deterministic_value(make_request(hour=10))
        assert morning > night

    def test_big_city_discount(self):
        madrid = MODEL.deterministic_value(make_request(city="Madrid"))
        torello = MODEL.deterministic_value(make_request(city="Torello"))
        assert madrid < torello

    def test_year_drift_up(self):
        v2015 = MODEL.deterministic_value(make_request(year=2015, month=6))
        v2016 = MODEL.deterministic_value(make_request(auction_id="a1", year=2016, month=6))
        assert v2016 > v2015 * 1.1

    def test_months_since_2015(self):
        assert months_since_2015(epoch(2015, 1, 15)) == 0
        assert months_since_2015(epoch(2015, 12, 15)) == 11
        assert months_since_2015(epoch(2016, 5, 15)) == 16


class TestShock:
    def test_shock_deterministic_per_auction(self):
        a = MODEL.value_cpm(make_request(auction_id="x"))
        b = MODEL.value_cpm(make_request(auction_id="x"))
        assert a == b

    def test_shock_varies_across_auctions(self):
        values = {MODEL.value_cpm(make_request(auction_id=f"a{i}")) for i in range(50)}
        assert len(values) == 50

    def test_shock_median_close_to_deterministic(self):
        requests = [make_request(auction_id=f"s{i}") for i in range(3000)]
        values = np.array([MODEL.value_cpm(r) for r in requests])
        det = MODEL.deterministic_value(requests[0])
        assert np.median(values) == pytest.approx(det, rel=0.05)

    def test_weekday_sigma_wider(self):
        monday = make_request(auction_id="m")            # 2015-06-15 is a Monday
        assert MODEL.shock_sigma(monday) > MODEL.sigma_base

    def test_publisher_idiosyncrasy_stable(self):
        a = MODEL.deterministic_value(make_request(publisher="alpha.example"))
        b = MODEL.deterministic_value(make_request(publisher="alpha.example"))
        c = MODEL.deterministic_value(make_request(publisher="beta.example"))
        assert a == b
        assert a != c

    def test_callable_protocol(self):
        assert MODEL(make_request()) == MODEL.value_cpm(make_request())
