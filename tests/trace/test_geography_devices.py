"""Tests for the geography and device catalogs."""

import numpy as np
import pytest

from repro.trace.devices import (
    DEVICE_TYPE_SHARES,
    OS_SHARES,
    DeviceProfile,
    sample_device,
    sample_os,
)
from repro.trace.geography import (
    CAMPAIGN_CITIES,
    CITIES,
    CITIES_BY_SIZE,
    City,
    assign_ip,
    city_by_name,
    city_for_ip,
    population_weights,
)


class TestCities:
    def test_paper_city_roster(self):
        names = {c.name for c in CITIES}
        assert {"Madrid", "Barcelona", "Seville", "Valencia", "Malaga",
                "Zaragoza", "Torello"} <= names
        assert len(CITIES) == 10

    def test_sorted_by_size(self):
        assert CITIES_BY_SIZE[0] == "Madrid"
        assert CITIES_BY_SIZE[1] == "Barcelona"

    def test_campaign_cities_are_the_big_four(self):
        assert set(CAMPAIGN_CITIES) == {"Madrid", "Barcelona", "Valencia", "Seville"}

    def test_big_cities_lower_median_multiplier(self):
        """Figure 5: large cities have lower median prices."""
        madrid = city_by_name("Madrid")
        torello = city_by_name("Torello")
        assert madrid.price_multiplier < torello.price_multiplier

    def test_big_cities_higher_volatility(self):
        """Figure 5: large cities fluctuate more."""
        madrid = city_by_name("Madrid")
        torello = city_by_name("Torello")
        assert madrid.price_volatility > torello.price_volatility

    def test_population_weights_normalised(self):
        weights = population_weights()
        assert weights.sum() == pytest.approx(1.0)
        assert weights[0] == max(weights)  # Madrid dominates

    def test_unknown_city_raises(self):
        with pytest.raises(KeyError):
            city_by_name("Atlantis")

    def test_bad_city_construction(self):
        with pytest.raises(ValueError):
            City("X", 0, 1.0, 0.1, 10)
        with pytest.raises(ValueError):
            City("X", 100, 1.0, 0.1, 300)


class TestIpGeocoding:
    def test_assign_and_reverse(self):
        rng = np.random.default_rng(0)
        for city in CITIES:
            ip = assign_ip(city, rng)
            assert city_for_ip(ip) == city

    def test_unknown_block_returns_none(self):
        assert city_for_ip("8.8.8.8") is None
        assert city_for_ip("85.250.1.1") is None

    def test_garbage_returns_none(self):
        assert city_for_ip("") is None
        assert city_for_ip("85.x.1.1") is None


class TestDevices:
    def test_os_shares_sum_to_one(self):
        assert sum(OS_SHARES.values()) == pytest.approx(1.0)
        assert sum(DEVICE_TYPE_SHARES.values()) == pytest.approx(1.0)

    def test_android_roughly_twice_ios(self):
        """Figure 8's premise: ~2x more Android devices."""
        assert 1.8 < OS_SHARES["Android"] / OS_SHARES["iOS"] < 2.3

    def test_sample_os_distribution(self):
        rng = np.random.default_rng(1)
        draws = [sample_os(rng) for _ in range(4000)]
        android = draws.count("Android") / len(draws)
        assert android == pytest.approx(OS_SHARES["Android"], abs=0.03)

    def test_sample_device_pinned_os(self):
        rng = np.random.default_rng(2)
        device = sample_device(rng, os_name="iOS")
        assert device.os == "iOS"

    def test_windows_devices_are_phones(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            device = sample_device(rng, os_name="Windows Mobile")
            assert device.device_type == "smartphone"


class TestUserAgents:
    def test_android_app_ua_carries_dalvik(self):
        device = DeviceProfile("Android", "smartphone", "SM-G920F", "5.1.1")
        assert "Dalvik" in device.user_agent(is_app=True)
        assert "Dalvik" not in device.user_agent(is_app=False)

    def test_ios_app_ua_carries_cfnetwork_and_model(self):
        device = DeviceProfile("iOS", "tablet", "iPad4,1", "9.0.2")
        ua = device.user_agent(is_app=True)
        assert "CFNetwork" in ua
        assert "iPad" in ua

    def test_ios_web_ua_device_token(self):
        phone = DeviceProfile("iOS", "smartphone", "iPhone7,2", "8.4")
        tablet = DeviceProfile("iOS", "tablet", "iPad4,1", "8.4")
        assert "iPhone" in phone.user_agent(is_app=False)
        assert "iPad" in tablet.user_agent(is_app=False)

    def test_windows_ua(self):
        device = DeviceProfile("Windows Mobile", "smartphone", "Lumia 640", "8.1")
        assert "Windows Phone" in device.user_agent(is_app=False)
