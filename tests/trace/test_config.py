"""Tests for simulation configuration scaling and caching."""

import pytest

from repro.trace.simulate import (
    SimulationConfig,
    cached_dataset,
    default_config,
    small_config,
)


class TestConfigScaling:
    def test_default_is_paper_scale(self):
        config = default_config()
        assert config.n_users == 1594
        assert config.period.days == 365

    def test_scaled_preserves_other_knobs(self):
        config = default_config().scaled(0.1)
        assert config.n_users == 159
        assert config.target_auctions == 12_000
        assert config.seed == default_config().seed
        assert config.period == default_config().period

    def test_scaled_floors(self):
        config = default_config().scaled(1e-9)
        assert config.n_users >= 10
        assert config.target_auctions >= 100

    def test_small_config_is_fast_scale(self):
        config = small_config()
        assert config.n_users <= 100
        assert config.target_auctions <= 5_000

    def test_config_hashable_for_caching(self):
        a = small_config(seed=1)
        b = small_config(seed=1)
        assert hash(a) == hash(b)
        assert a == b


class TestCachedDataset:
    def test_same_config_same_object(self):
        config = SimulationConfig(
            n_users=12, target_auctions=120, n_web_publishers=15,
            n_app_publishers=8, n_advertisers=4, seed=77,
        )
        first = cached_dataset(config)
        second = cached_dataset(config)
        assert first is second

    def test_different_config_different_object(self):
        base = dict(
            n_users=12, target_auctions=120, n_web_publishers=15,
            n_app_publishers=8, n_advertisers=4,
        )
        a = cached_dataset(SimulationConfig(seed=78, **base))
        b = cached_dataset(SimulationConfig(seed=79, **base))
        assert a is not b
