"""Tests for the end-to-end dataset simulation."""

import numpy as np
import pytest

from repro.rtb.entities import ENCRYPTING_ADXS, MARKET_SHARES
from repro.trace.simulate import (
    PREMIUM_DSPS,
    STANDARD_DSPS,
    build_market,
    simulate_dataset,
    small_config,
)
from repro.trace.weblog import KIND_NURL
from repro.util.rng import RngRegistry
from repro.util.timeutil import epoch


@pytest.fixture(scope="module")
def dataset():
    return simulate_dataset(small_config())


class TestMarketConstruction:
    def test_all_exchanges_present(self):
        market = build_market(small_config(), RngRegistry(1))
        assert set(market.exchanges) == set(MARKET_SHARES)

    def test_dsp_roster(self):
        market = build_market(small_config(), RngRegistry(1))
        names = {d.name for d in market.dsps}
        assert names == set(STANDARD_DSPS) | set(PREMIUM_DSPS)

    def test_premium_dsps_restricted_to_encrypting_adxs(self):
        market = build_market(small_config(), RngRegistry(1))
        for dsp in market.dsps:
            if dsp.name in PREMIUM_DSPS:
                for campaign in dsp.campaigns:
                    assert campaign.targeting.adxs == frozenset(ENCRYPTING_ADXS)

    def test_policy_nonencrypting_pairs_cleartext_forever(self):
        market = build_market(small_config(), RngRegistry(1))
        late = epoch(2030, 1, 1)
        for (adx, dsp), adoption in market.policy.adoption.items():
            if adx not in ENCRYPTING_ADXS:
                assert adoption is None
                assert not market.policy.is_encrypted(adx, dsp, late)

    def test_policy_premium_pairs_encrypted_by_2016(self):
        market = build_market(small_config(), RngRegistry(1))
        ts = epoch(2016, 1, 1)
        for adx in ENCRYPTING_ADXS:
            for dsp in PREMIUM_DSPS:
                assert market.policy.is_encrypted(adx, dsp, ts)


class TestSimulatedDataset:
    def test_impression_volume_near_target(self, dataset):
        config = small_config()
        assert dataset.n_impressions > 0.9 * config.target_auctions

    def test_rows_sorted_by_time(self, dataset):
        times = [r.timestamp for r in dataset.rows]
        assert times == sorted(times)

    def test_rows_inside_period(self, dataset):
        assert all(
            dataset.period.start <= r.timestamp < dataset.period.end + 1
            for r in dataset.rows
        )

    def test_every_impression_has_a_nurl_row(self, dataset):
        nurl_rows = sum(1 for r in dataset.rows if r.kind == KIND_NURL)
        assert nurl_rows == dataset.n_impressions

    def test_encrypted_fraction_near_quarter(self, dataset):
        """Section 2.4: ~26% of mobile RTB ads carry encrypted prices."""
        summary = dataset.summary()
        assert 0.15 < summary["encrypted_fraction"] < 0.35

    def test_encrypted_only_from_encrypting_adxs(self, dataset):
        for imp in dataset.impressions:
            if imp.is_encrypted:
                assert imp.record.notification.adx in ENCRYPTING_ADXS

    def test_encrypted_prices_higher(self, dataset):
        prices = np.array([i.charge_price_cpm for i in dataset.impressions])
        enc = np.array([i.is_encrypted for i in dataset.impressions])
        ratio = np.median(prices[enc]) / np.median(prices[~enc])
        assert 1.3 < ratio < 2.2

    def test_mopub_roughly_a_third_of_volume(self, dataset):
        mopub = sum(
            1 for i in dataset.impressions if i.record.notification.adx == "MoPub"
        )
        assert mopub / dataset.n_impressions == pytest.approx(0.3355, abs=0.06)

    def test_deterministic_given_seed(self):
        a = simulate_dataset(small_config(seed=99))
        b = simulate_dataset(small_config(seed=99))
        assert a.n_rows == b.n_rows
        assert a.rows[0] == b.rows[0]
        assert [i.charge_price_cpm for i in a.impressions[:20]] == [
            i.charge_price_cpm for i in b.impressions[:20]
        ]

    def test_different_seeds_differ(self):
        a = simulate_dataset(small_config(seed=1))
        b = simulate_dataset(small_config(seed=2))
        assert [i.charge_price_cpm for i in a.impressions[:20]] != [
            i.charge_price_cpm for i in b.impressions[:20]
        ]

    def test_summary_fields(self, dataset):
        summary = dataset.summary()
        assert summary["users"] == small_config().n_users
        assert summary["period_days"] == 365.0
        assert summary["iab_categories"] <= 18

    def test_user_stats_accumulated(self, dataset):
        assert dataset.stats
        total = sum(s.requests for s in dataset.stats.values())
        assert total == dataset.n_rows
