"""Command-line interface.

Six subcommands mirror the deployment's moving parts:

* ``simulate`` -- generate a dataset-D weblog (and its publisher
  directory) to disk;
* ``analyze`` -- run the Weblog Ads Analyzer over a weblog file and
  write the price observations;
* ``pipeline`` -- run everything (simulate, analyze, probe campaigns,
  train) and write the model package plus a summary;
* ``estimate`` -- price impression contexts with a saved model (a
  single JSON object, or an array / ``--features-file`` for vectorised
  batch scoring through the flattened forest);
* ``serve`` -- run the PME as a long-running asyncio HTTP service
  (micro-batched ``/estimate``, ``/model`` distribution with ETags,
  ``/contribute`` ingestion; ``--bootstrap`` additionally trains an
  in-process PME so contributions can trigger retrain + hot reload);
* ``obs`` -- inspect the observability dump the traced commands
  (``pipeline``, ``analyze``) write: the stitched span tree plus the
  metrics table (``repro obs dump``).

Parallelism/IO knobs are spelled ``--workers`` / ``--chunk-size``
everywhere (and ``workers=`` / ``chunk_size=`` in the API; legacy
spellings like ``n_jobs``/``chunksize`` raise a TypeError naming the
replacement).

Examples::

    python -m repro.cli simulate --scale 0.05 --out weblog.csv.gz \
        --directory directory.csv
    python -m repro.cli analyze --weblog weblog.csv.gz \
        --directory directory.csv --out observations.csv \
        --workers 4 --chunk-size 50000
    python -m repro.cli pipeline --scale 0.05 --model model.json.gz \
        --workers 4
    python -m repro.cli obs dump
    python -m repro.cli estimate --model model.json.gz \
        --features '{"context": "app", "publisher_iab": "IAB3", ...}'
    python -m repro.cli serve --model model.json.gz --port 8080 \
        --max-batch 32 --max-delay-ms 2
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter

from repro.io import (
    load_model_package,
    read_directory_csv,
    save_model_package,
    write_directory_csv,
    write_observations_csv,
    write_weblog_csv,
)
from repro.util.rng import DEFAULT_SEED


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.analyzer.interests import PublisherDirectory
    from repro.trace.simulate import default_config, simulate_dataset

    config = default_config()
    if args.scale < 0.999:
        config = config.scaled(args.scale)
    if args.seed is not None:
        from dataclasses import replace

        config = replace(config, seed=args.seed)
    print(
        f"simulating {config.n_users} users / ~{config.target_auctions:,} auctions...",
        file=sys.stderr,
    )
    dataset = simulate_dataset(config)
    rows = write_weblog_csv(dataset.rows, args.out)
    print(f"wrote {rows:,} weblog rows to {args.out}")
    if args.directory:
        directory = PublisherDirectory.from_universe(dataset.universe)
        entries = write_directory_csv(directory, args.directory)
        print(f"wrote {entries:,} directory entries to {args.directory}")
    summary = dataset.summary()
    print(json.dumps(summary, indent=2))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.analyzer.pipeline import WeblogAnalyzer
    from repro.io import iter_weblog_csv

    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.chunk_size < 1:
        print("error: --chunk-size must be >= 1", file=sys.stderr)
        return 2
    directory = read_directory_csv(args.directory)
    # Stream straight off disk: the single-pass analyzer (and the
    # sharded parallel path behind --workers) never materialise the log.
    rows = iter_weblog_csv(args.weblog)
    with obs.start_trace("analyze", workers=args.workers) as trace:
        analysis = WeblogAnalyzer(directory).analyze(
            rows, workers=args.workers, chunk_size=args.chunk_size
        )
    dump_path = obs.save_dump(args.obs_out, trace=trace)
    print(f"observability dump written to {dump_path}", file=sys.stderr)
    n_rows = sum(analysis.traffic_counts.values())
    count = write_observations_csv(analysis.observations, args.out)
    print(f"analyzed {n_rows:,} rows -> {count:,} price observations ({args.out})")
    encrypted = len(analysis.encrypted())
    print(
        json.dumps(
            {
                "observations": count,
                "encrypted": encrypted,
                "cleartext": count - encrypted,
                "traffic_groups": dict(Counter(analysis.traffic_counts)),
                "top_exchanges": dict(
                    list(analysis.entity_rtb_shares().items())[:5]
                ),
            },
            indent=2,
        )
    )
    return 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    from repro import obs, quickstart_pipeline
    from repro.core.cost import CostDistribution

    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.chunk_size is not None and args.chunk_size < 1:
        print("error: --chunk-size must be >= 1", file=sys.stderr)
        return 2
    with obs.start_trace(
        "pipeline", scale=args.scale, workers=args.workers,
        splitter=args.splitter,
    ) as trace:
        result = quickstart_pipeline(
            seed=args.seed or DEFAULT_SEED, scale=args.scale,
            workers=args.workers, chunk_size=args.chunk_size,
            splitter=args.splitter,
        )
    dump_path = obs.save_dump(args.obs_out, trace=trace)
    print(f"observability dump written to {dump_path}", file=sys.stderr)
    pme = result["pme"]
    package = pme.package_model()
    save_model_package(package, args.model)
    print(f"model package written to {args.model}")

    dist = CostDistribution.from_costs(result["costs"])
    print(
        json.dumps(
            {
                "users": len(result["costs"]),
                "median_total_cpm": round(dist.median_total(), 2),
                "below_100_cpm": round(dist.fraction_below(100), 3),
                "time_correction": round(pme.state.time_correction, 3),
                "a1_impressions": len(pme.state.campaign_a1.impressions),
                "a2_impressions": len(pme.state.campaign_a2.impressions),
            },
            indent=2,
        )
    )
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    from repro.core.estimator import Estimator

    if args.chunk_size is not None and args.chunk_size < 1:
        print("error: --chunk-size must be >= 1", file=sys.stderr)
        return 2
    package = load_model_package(args.model)
    estimator = Estimator.from_package(package)
    if args.features_file:
        try:
            text = open(args.features_file, "r", encoding="utf-8").read()
            features = json.loads(text)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read --features-file: {exc}", file=sys.stderr)
            return 2
    else:
        try:
            features = json.loads(args.features)
        except json.JSONDecodeError as exc:
            print(f"error: --features is not valid JSON: {exc}", file=sys.stderr)
            return 2
    if isinstance(features, dict):
        estimate = estimator.estimate_one(features)
        print(json.dumps({"estimated_cpm": round(estimate, 4)}))
        return 0
    if isinstance(features, list):
        if not all(isinstance(row, dict) for row in features):
            print("error: a JSON array of features must contain objects",
                  file=sys.stderr)
            return 2
        # Batch scoring: one encode + one vectorised pass through the
        # flattened forest, not a per-row loop.  --chunk-size bounds
        # rows per pass (memory control); results are identical.
        result = estimator.estimate(features, chunk_size=args.chunk_size)
        print(
            json.dumps(
                {
                    "estimated_cpm": [round(float(v), 4) for v in result.prices],
                    "count": len(features),
                }
            )
        )
        return 0
    print("error: --features must be a JSON object or array of objects",
          file=sys.stderr)
    return 2


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.core.contributions import ContributionServer
    from repro.serve import PmeServer

    if args.max_batch < 1:
        print("error: --max-batch must be >= 1", file=sys.stderr)
        return 2
    if args.max_delay_ms < 0:
        print("error: --max-delay-ms must be >= 0", file=sys.stderr)
        return 2
    if bool(args.model) == bool(args.bootstrap):
        print("error: pass exactly one of --model / --bootstrap",
              file=sys.stderr)
        return 2

    pme = None
    if args.model:
        package = load_model_package(args.model)
        source = args.model
    else:
        # Bootstrap a full PME in-process (simulate + analyze + probe +
        # train) so the serve loop can retrain on contributions.
        from repro import quickstart_pipeline

        print(
            f"bootstrapping PME at scale {args.bootstrap} "
            "(simulate + analyze + campaigns + train)...",
            file=sys.stderr,
        )
        result = quickstart_pipeline(
            seed=args.seed or DEFAULT_SEED, scale=args.bootstrap,
            workers=args.workers, splitter=args.splitter,
        )
        pme = result["pme"]
        package = pme.package_model()
        source = f"bootstrap(scale={args.bootstrap})"

    server = PmeServer(
        package,
        pme=pme,
        contributions=ContributionServer(k_anonymity=args.k_anonymity),
        max_batch=args.max_batch,
        max_delay_ms=args.max_delay_ms,
        retrain_min_new_rows=args.retrain_min_new_rows,
        workers=args.workers,
        splitter=args.splitter,
    )
    retrain = "enabled" if server.retrain_enabled else "disabled"
    print(
        f"serving {source} (model version "
        f"{server.store.current.version}, retrain {retrain}) "
        f"on http://{args.host}:{args.port} -- "
        f"max_batch={args.max_batch}, max_delay_ms={args.max_delay_ms}",
        file=sys.stderr,
    )
    try:
        server.run(host=args.host, port=args.port)
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro import obs

    if args.obs_command == "dump":
        try:
            payload = obs.load_dump(args.path)
        except FileNotFoundError:
            target = args.path or obs.default_dump_path()
            print(
                f"error: no observability dump at {target} -- run "
                "'repro pipeline' or 'repro analyze' first, or pass --path",
                file=sys.stderr,
            )
            return 2
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(payload, indent=2))
        else:
            print(obs.render_dump(payload))
        return 0
    print(f"error: unknown obs command {args.obs_command!r}", file=sys.stderr)
    return 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RTB price-transparency toolkit (IMC'17 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="generate a dataset-D weblog")
    p_sim.add_argument("--scale", type=float, default=0.05,
                       help="fraction of paper scale (default 0.05)")
    p_sim.add_argument("--seed", type=int, default=None)
    p_sim.add_argument("--out", required=True, help="weblog CSV(.gz) path")
    p_sim.add_argument("--directory", default=None,
                       help="also write the publisher directory CSV here")
    p_sim.set_defaults(func=_cmd_simulate)

    p_an = sub.add_parser("analyze", help="run the analyzer over a weblog")
    p_an.add_argument("--weblog", required=True)
    p_an.add_argument("--directory", required=True)
    p_an.add_argument("--out", required=True, help="observations CSV path")
    p_an.add_argument("--workers", type=int, default=1,
                      help="analysis processes; >1 shards rows by user "
                           "hash across a multiprocessing pool (default 1)")
    p_an.add_argument("--chunk-size", type=int, default=50_000,
                      help="rows dispatched to a worker per task; bounds "
                           "coordinator memory (default 50000)")
    p_an.add_argument("--obs-out", default=None,
                      help="observability dump path (default "
                           "$REPRO_OBS_PATH or .repro_obs/last_run.json)")
    p_an.set_defaults(func=_cmd_analyze)

    p_pipe = sub.add_parser("pipeline", help="simulate + analyze + train")
    p_pipe.add_argument("--scale", type=float, default=0.05)
    p_pipe.add_argument("--seed", type=int, default=None)
    p_pipe.add_argument("--model", required=True, help="model JSON(.gz) path")
    p_pipe.add_argument("--workers", type=int, default=1,
                        help="processes for the analyzer scan and forest "
                             "training; bit-identical to --workers 1 "
                             "(default 1)")
    p_pipe.add_argument("--chunk-size", type=int, default=None,
                        help="rows dispatched per analyzer task when "
                             "--workers > 1 (default 50000)")
    p_pipe.add_argument("--splitter", choices=("exact", "hist"),
                        default="exact",
                        help="forest split-search engine: 'exact' scans "
                             "every threshold; 'hist' pre-bins features "
                             "into <=256 bins (faster at scale, "
                             "statistically equivalent quality)")
    p_pipe.add_argument("--obs-out", default=None,
                        help="observability dump path (default "
                             "$REPRO_OBS_PATH or .repro_obs/last_run.json)")
    p_pipe.set_defaults(func=_cmd_pipeline)

    p_est = sub.add_parser("estimate",
                           help="estimate encrypted prices with a saved model")
    p_est.add_argument("--model", required=True)
    group = p_est.add_mutually_exclusive_group(required=True)
    group.add_argument("--features",
                       help="JSON object of S features, or a JSON array of "
                            "such objects for vectorised batch scoring")
    group.add_argument("--features-file",
                       help="path to a JSON file holding one feature object "
                            "or an array of them (batch scoring)")
    p_est.add_argument("--chunk-size", type=int, default=None,
                       help="rows encoded + scored per pass in batch mode "
                            "(memory bound; results identical)")
    p_est.set_defaults(func=_cmd_estimate)

    p_obs = sub.add_parser(
        "obs", help="inspect the observability dump of the last traced run"
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_dump = obs_sub.add_parser(
        "dump", help="render the span tree + metrics of the last run"
    )
    p_dump.add_argument("--path", default=None,
                        help="dump file (default $REPRO_OBS_PATH or "
                             ".repro_obs/last_run.json)")
    p_dump.add_argument("--json", action="store_true",
                        help="print the raw JSON payload instead of the "
                             "rendered tree")
    p_dump.set_defaults(func=_cmd_obs)

    p_srv = sub.add_parser(
        "serve", help="run the PME as a long-running HTTP service"
    )
    p_srv.add_argument("--model", default=None,
                       help="serve a saved model package (JSON/.gz); "
                            "contributions are collected but retraining "
                            "is disabled (no campaign ground truth)")
    p_srv.add_argument("--bootstrap", type=float, default=None,
                       metavar="SCALE",
                       help="bootstrap an in-process PME at this pipeline "
                            "scale instead of --model; enables retrain + "
                            "hot reload on contributions")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=8080)
    p_srv.add_argument("--seed", type=int, default=None)
    p_srv.add_argument("--max-batch", type=int, default=32,
                       help="estimate micro-batch flush size (1 disables "
                            "batching; default 32)")
    p_srv.add_argument("--max-delay-ms", type=float, default=2.0,
                       help="max time the oldest queued estimate waits "
                            "before a partial batch flushes (default 2)")
    p_srv.add_argument("--k-anonymity", type=int, default=3,
                       help="distinct contributors required before an "
                            "(ADX, IAB) group's records are releasable")
    p_srv.add_argument("--retrain-min-new-rows", type=int, default=50,
                       help="new releasable rows that trigger a retrain "
                            "and hot reload (default 50)")
    p_srv.add_argument("--workers", type=int, default=1,
                       help="forest-training processes during bootstrap "
                            "and retrain (default 1)")
    p_srv.add_argument("--splitter", choices=("exact", "hist"),
                       default="exact",
                       help="forest split-search engine for bootstrap "
                            "training and contribution retrains "
                            "(default exact)")
    p_srv.set_defaults(func=_cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
