"""Sample-size arithmetic for probe ad-campaign design (paper section 5.2).

The paper sizes its probing campaigns with the classical margin-of-error
formula, ignoring the finite-population correction (a conservative
choice):

    d = z_{alpha/2} * std / sqrt(n)

Analysing the 280 MoPub campaigns found in dataset ``D`` (mean 1.84 CPM,
std 2.15 CPM) they conclude that 144 setups approximate the population
mean to within 0.35 CPM at 95% confidence, and that 185 impressions per
campaign bound the within-campaign error at 0.1 CPM.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.stats import norm

from repro.util.validation import require_in_unit_interval, require_positive


def z_score(confidence: float) -> float:
    """Two-sided normal critical value for a confidence level.

    >>> round(z_score(0.95), 2)
    1.96
    """
    require_in_unit_interval(confidence, "confidence")
    alpha = 1.0 - confidence
    return float(norm.ppf(1.0 - alpha / 2.0))


def margin_of_error(std: float, n: int, confidence: float = 0.95) -> float:
    """Expected error ``d`` on the mean for ``n`` samples (paper formula)."""
    require_positive(std, "std")
    require_positive(n, "n")
    return z_score(confidence) * std / math.sqrt(n)


def required_samples(std: float, margin: float, confidence: float = 0.95) -> int:
    """Smallest ``n`` whose margin of error is at most ``margin``."""
    require_positive(std, "std")
    require_positive(margin, "margin")
    z = z_score(confidence)
    return int(math.ceil((z * std / margin) ** 2))


@dataclass(frozen=True)
class CampaignSizing:
    """A resolved campaign-design decision (paper section 5.2).

    ``n_setups`` experimental setups give a ``setup_margin`` CPM error on
    the across-campaign mean; ``impressions_per_campaign`` impressions
    give a ``impression_margin`` CPM error on each within-campaign mean.
    """

    campaign_mean: float
    campaign_std: float
    n_setups: int
    setup_margin: float
    within_campaign_std: float
    impressions_per_campaign: int
    impression_margin: float
    confidence: float = 0.95

    @classmethod
    def design(
        cls,
        campaign_mean: float,
        campaign_std: float,
        within_campaign_std: float,
        n_setups: int = 144,
        impression_margin: float = 0.1,
        confidence: float = 0.95,
    ) -> "CampaignSizing":
        """Size a probing campaign following the paper's procedure."""
        return cls(
            campaign_mean=campaign_mean,
            campaign_std=campaign_std,
            n_setups=n_setups,
            setup_margin=margin_of_error(campaign_std, n_setups, confidence),
            within_campaign_std=within_campaign_std,
            impressions_per_campaign=required_samples(
                within_campaign_std, impression_margin, confidence
            ),
            impression_margin=impression_margin,
            confidence=confidence,
        )

    @property
    def total_impressions(self) -> int:
        """Minimum impressions the full campaign grid must buy."""
        return self.n_setups * self.impressions_per_campaign
