"""Plain-text chart rendering for figures.

The paper's evaluation is figures; a terminal-first reproduction needs
to *show* them, not only assert on them.  This module renders the two
chart families the paper uses into fixed-width text: CDF families with
log-scaled x axes (Figures 11, 16, 17) and bar/box summaries (Figures
5-10, 12-15).  Benches embed these renderings in their regenerated
outputs so a reader can eyeball the shapes next to the paper.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

import numpy as np

_BLOCKS = " ▏▎▍▌▋▊▉█"


def hbar(
    labels_values: Mapping[str, float] | Sequence[tuple[str, float]],
    width: int = 40,
    fmt: str = "{:.3f}",
) -> list[str]:
    """Horizontal bar chart lines for labelled values (>= 0)."""
    items = list(labels_values.items()) if isinstance(labels_values, Mapping) else list(labels_values)
    if not items:
        return []
    peak = max(value for _, value in items)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(str(label)) for label, _ in items)
    lines = []
    for label, value in items:
        filled = value / peak * width
        whole = int(filled)
        remainder = filled - whole
        bar = "█" * whole
        if remainder > 0 and whole < width:
            bar += _BLOCKS[int(remainder * (len(_BLOCKS) - 1))]
        lines.append(f"{str(label):<{label_width}} |{bar:<{width}}| " + fmt.format(value))
    return lines


def _log_grid(lo: float, hi: float, width: int) -> np.ndarray:
    lo = max(lo, 1e-9)
    hi = max(hi, lo * 1.0001)
    return np.logspace(math.log10(lo), math.log10(hi), width)


def cdf_plot(
    series: Mapping[str, Iterable[float]],
    width: int = 60,
    height: int = 12,
    log_x: bool = True,
) -> list[str]:
    """ASCII CDF family plot (one letter per series), log x by default.

    Mirrors the paper's CDF figures: x is the value (CPM), y the
    cumulative fraction; each series draws with its own marker and the
    legend maps markers to names.
    """
    prepared = {
        name: np.sort(np.asarray(list(values), dtype=float))
        for name, values in series.items()
        if len(list(values)) > 0
    }
    prepared = {k: v for k, v in prepared.items() if v.size > 0}
    if not prepared:
        return ["(no data)"]

    lo = min(v[0] for v in prepared.values())
    hi = max(v[-1] for v in prepared.values())
    if log_x:
        grid = _log_grid(lo, hi, width)
    else:
        grid = np.linspace(lo, hi, width)

    markers = "abcdefghij"
    canvas = [[" "] * width for _ in range(height)]
    for idx, (name, values) in enumerate(prepared.items()):
        marker = markers[idx % len(markers)]
        fractions = np.searchsorted(values, grid, side="right") / values.size
        for x, fraction in enumerate(fractions):
            y = height - 1 - min(height - 1, int(fraction * (height - 1) + 0.5))
            if canvas[y][x] == " ":
                canvas[y][x] = marker

    lines = []
    for row_index, row in enumerate(canvas):
        fraction = 1.0 - row_index / (height - 1)
        lines.append(f"{fraction:>4.0%} |" + "".join(row) + "|")
    if log_x:
        lines.append(
            "     " + f"{grid[0]:<10.3g}{'log x':^{max(0, width - 20)}}{grid[-1]:>10.3g}"
        )
    else:
        lines.append("     " + f"{grid[0]:<10.3g}{grid[-1]:>{max(0, width - 10)}.3g}")
    legend = ", ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(prepared)
    )
    lines.append("     legend: " + legend)
    return lines


def percentile_box(
    groups: Mapping[str, Sequence[float]],
    width: int = 50,
    log_x: bool = True,
) -> list[str]:
    """Text box-plot rows (p5..p95 span, p50 marker) per group.

    The paper's per-city / per-OS / per-slot figures are percentile
    boxes; this renders the same geometry with ``-`` spans and ``|``
    medians on a shared (optionally log) axis.
    """
    summaries = {}
    for name, values in groups.items():
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            continue
        summaries[name] = np.percentile(arr, [5, 50, 95])
    if not summaries:
        return ["(no data)"]

    lo = min(s[0] for s in summaries.values())
    hi = max(s[2] for s in summaries.values())
    grid = _log_grid(lo, hi, width) if log_x else np.linspace(lo, hi, width)

    def position(value: float) -> int:
        return int(np.clip(np.searchsorted(grid, value), 0, width - 1))

    label_width = max(len(str(name)) for name in summaries)
    lines = []
    for name, (p5, p50, p95) in summaries.items():
        row = [" "] * width
        a, m, b = position(p5), position(p50), position(p95)
        for x in range(a, b + 1):
            row[x] = "-"
        row[m] = "|"
        lines.append(
            f"{str(name):<{label_width}} [" + "".join(row) + f"] p50={p50:.3g}"
        )
    axis = f"{grid[0]:<10.3g}{'log x' if log_x else '':^{max(0, width - 20)}}{grid[-1]:>10.3g}"
    lines.append(" " * (label_width + 2) + axis)
    return lines
