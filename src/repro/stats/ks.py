"""Two-sample Kolmogorov-Smirnov test.

The paper (footnote 5) confirms that the time-of-day and day-of-week
price distributions, though visually similar, are statistically
different using non-parametric two-sample KS tests at p < 0.0002 and
p < 0.002.  We implement the two-sample KS statistic and its asymptotic
p-value directly (scipy is available, but the statistic is small enough
to own, and owning it lets the test suite property-check it against
scipy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np


@dataclass(frozen=True)
class KsResult:
    """Outcome of a two-sample KS test."""

    statistic: float
    pvalue: float
    n1: int
    n2: int

    def significant(self, alpha: float = 0.05) -> bool:
        """True when the null (same distribution) is rejected at ``alpha``."""
        return self.pvalue < alpha


def _kolmogorov_sf(x: float, terms: int = 101) -> float:
    """Survival function of the Kolmogorov distribution.

    ``Q(x) = 2 * sum_{k=1..inf} (-1)^(k-1) exp(-2 k^2 x^2)``.
    """
    if x <= 0:
        return 1.0
    total = 0.0
    for k in range(1, terms):
        term = math.exp(-2.0 * k * k * x * x)
        total += term if k % 2 == 1 else -term
        if term < 1e-16:
            break
    return float(min(max(2.0 * total, 0.0), 1.0))


def ks_two_sample(sample1: Iterable[float], sample2: Iterable[float]) -> KsResult:
    """Two-sample KS test with asymptotic p-value.

    The statistic is the supremum distance between the two empirical
    CDFs; the p-value uses the classical asymptotic Kolmogorov
    distribution with effective sample size ``n1*n2/(n1+n2)``.
    """
    a = np.sort(np.asarray(list(sample1), dtype=float))
    b = np.sort(np.asarray(list(sample2), dtype=float))
    n1, n2 = a.size, b.size
    if n1 == 0 or n2 == 0:
        raise ValueError("both samples must be non-empty")

    # Evaluate both ECDFs on the pooled support.
    pooled = np.concatenate([a, b])
    cdf1 = np.searchsorted(a, pooled, side="right") / n1
    cdf2 = np.searchsorted(b, pooled, side="right") / n2
    statistic = float(np.max(np.abs(cdf1 - cdf2)))

    effective_n = n1 * n2 / (n1 + n2)
    scaled = (math.sqrt(effective_n) + 0.12 + 0.11 / math.sqrt(effective_n)) * statistic
    pvalue = _kolmogorov_sf(scaled)
    return KsResult(statistic=statistic, pvalue=pvalue, n1=n1, n2=n2)
