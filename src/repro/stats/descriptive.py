"""Descriptive statistics used throughout the evaluation.

The paper reports price distributions as percentile boxes (5th, 10th,
50th, 90th, 95th -- Figures 5, 6, 7, 10, 13) and CDFs (Figures 11, 16,
17).  These helpers compute those summaries from raw price arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

#: Percentile levels used by the paper's box-style figures.
PAPER_PERCENTILES = (5, 10, 50, 90, 95)


@dataclass(frozen=True)
class PercentileSummary:
    """Five-number percentile summary of one sample (paper box plots)."""

    count: int
    p5: float
    p10: float
    p50: float
    p90: float
    p95: float
    mean: float
    std: float

    @property
    def median(self) -> float:
        """Alias for the 50th percentile."""
        return self.p50

    @property
    def spread(self) -> float:
        """The p95-p5 range: the paper's notion of price "fluctuation"."""
        return self.p95 - self.p5

    def as_dict(self) -> dict[str, float]:
        """Plain-dict form, convenient for tabular printing."""
        return {
            "count": self.count,
            "p5": self.p5,
            "p10": self.p10,
            "p50": self.p50,
            "p90": self.p90,
            "p95": self.p95,
            "mean": self.mean,
            "std": self.std,
        }


def summarize(values: Iterable[float]) -> PercentileSummary:
    """Compute the paper's percentile summary over a sample.

    Raises :class:`ValueError` on an empty sample -- an empty price group
    signals an upstream filtering bug and should never be silently
    summarised as NaNs.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sample")
    p5, p10, p50, p90, p95 = np.percentile(arr, PAPER_PERCENTILES)
    return PercentileSummary(
        count=int(arr.size),
        p5=float(p5),
        p10=float(p10),
        p50=float(p50),
        p90=float(p90),
        p95=float(p95),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
    )


def summarize_groups(groups: Mapping[str, Sequence[float]]) -> dict[str, PercentileSummary]:
    """Percentile summary per named group, skipping empty groups."""
    return {name: summarize(vals) for name, vals in groups.items() if len(vals) > 0}


@dataclass(frozen=True)
class Cdf:
    """Empirical CDF of a sample.

    ``xs`` are the sorted sample values and ``ps`` the cumulative
    probabilities ``i/n`` so that ``ps[i]`` is the fraction of the sample
    less than or equal to ``xs[i]``.
    """

    xs: np.ndarray
    ps: np.ndarray

    @classmethod
    def from_sample(cls, values: Iterable[float]) -> "Cdf":
        arr = np.sort(np.asarray(list(values), dtype=float))
        if arr.size == 0:
            raise ValueError("cannot build a CDF from an empty sample")
        ps = np.arange(1, arr.size + 1, dtype=float) / arr.size
        return cls(xs=arr, ps=ps)

    def evaluate(self, x: float) -> float:
        """Fraction of the sample <= ``x``."""
        return float(np.searchsorted(self.xs, x, side="right")) / self.xs.size

    def quantile(self, p: float) -> float:
        """Smallest sample value whose CDF is >= ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"quantile level must be in [0,1], got {p}")
        if p == 0.0:
            return float(self.xs[0])
        idx = int(np.ceil(p * self.xs.size)) - 1
        return float(self.xs[idx])

    def at_levels(self, xs: Sequence[float]) -> list[tuple[float, float]]:
        """Convenience: ``[(x, F(x)) for x in xs]`` for table printing."""
        return [(float(x), self.evaluate(float(x))) for x in xs]

    def __len__(self) -> int:
        return int(self.xs.size)


def fraction_below(values: Iterable[float], threshold: float) -> float:
    """Fraction of sample values strictly below ``threshold``."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("empty sample")
    return float(np.mean(arr < threshold))


def fraction_between(values: Iterable[float], low: float, high: float) -> float:
    """Fraction of sample values in the half-open interval ``[low, high)``."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("empty sample")
    return float(np.mean((arr >= low) & (arr < high)))


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; all values must be positive."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("empty sample")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))
