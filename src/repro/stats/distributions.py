"""Price-distribution modelling helpers.

RTB charge prices are heavy-tailed and strictly positive; both the
measurement literature and our own traces are well described by
lognormal mixtures.  This module provides lognormal fitting and
sampling used by the trace generator's ground-truth price process and
by the analysis code that compares distributions (e.g. the 2015->2016
time shift in section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.util.validation import require_positive


@dataclass(frozen=True)
class LogNormal:
    """Lognormal distribution parameterised by the underlying normal.

    ``mu`` and ``sigma`` are the mean/std of ``log(X)``.
    """

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        require_positive(self.sigma, "sigma")

    @property
    def median(self) -> float:
        """Median of the lognormal: ``exp(mu)``."""
        return float(np.exp(self.mu))

    @property
    def mean(self) -> float:
        """Mean of the lognormal: ``exp(mu + sigma^2/2)``."""
        return float(np.exp(self.mu + self.sigma**2 / 2.0))

    @property
    def variance(self) -> float:
        """Variance of the lognormal."""
        s2 = self.sigma**2
        return float((np.exp(s2) - 1.0) * np.exp(2.0 * self.mu + s2))

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw samples."""
        return rng.lognormal(self.mu, self.sigma, size=size)

    def scaled(self, factor: float) -> "LogNormal":
        """Distribution of ``factor * X`` -- shifts ``mu`` by ``log(factor)``.

        Used to express multiplicative price premia (encryption premium,
        year-over-year drift) without changing distribution shape.
        """
        require_positive(factor, "factor")
        return LogNormal(self.mu + float(np.log(factor)), self.sigma)

    @classmethod
    def fit(cls, values: Iterable[float]) -> "LogNormal":
        """Maximum-likelihood fit to positive observations."""
        arr = np.asarray(list(values), dtype=float)
        if arr.size < 2:
            raise ValueError("need at least two observations to fit")
        if np.any(arr <= 0):
            raise ValueError("lognormal fit requires positive observations")
        logs = np.log(arr)
        sigma = float(logs.std(ddof=1))
        if sigma == 0.0:
            # Degenerate sample; use a tiny spread so the object stays usable.
            sigma = 1e-9
        return cls(mu=float(logs.mean()), sigma=sigma)


def median_ratio(sample_a: Iterable[float], sample_b: Iterable[float]) -> float:
    """Ratio of medians ``median(a) / median(b)``.

    The paper's headline "encrypted prices are ~1.7x higher" statement is
    a median ratio between the A1 (encrypted) and A2 (cleartext) campaign
    price samples; the same statistic derives the time-correction
    coefficient in section 6.2.
    """
    a = np.asarray(list(sample_a), dtype=float)
    b = np.asarray(list(sample_b), dtype=float)
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    mb = float(np.median(b))
    if mb == 0.0:
        raise ValueError("denominator sample has zero median")
    return float(np.median(a)) / mb
