"""Statistics substrate: summaries, CDFs, KS tests, sampling design."""

from repro.stats.descriptive import (
    PAPER_PERCENTILES,
    Cdf,
    PercentileSummary,
    fraction_below,
    fraction_between,
    geometric_mean,
    summarize,
    summarize_groups,
)
from repro.stats.distributions import LogNormal, median_ratio
from repro.stats.ks import KsResult, ks_two_sample
from repro.stats.textplot import cdf_plot, hbar, percentile_box
from repro.stats.sampling import (
    CampaignSizing,
    margin_of_error,
    required_samples,
    z_score,
)

__all__ = [
    "PAPER_PERCENTILES",
    "PercentileSummary",
    "Cdf",
    "summarize",
    "summarize_groups",
    "fraction_below",
    "fraction_between",
    "geometric_mean",
    "LogNormal",
    "median_ratio",
    "KsResult",
    "ks_two_sample",
    "CampaignSizing",
    "margin_of_error",
    "required_samples",
    "z_score",
    "cdf_plot",
    "hbar",
    "percentile_box",
]
