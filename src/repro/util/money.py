"""CPM price arithmetic.

RTB charge prices are quoted in CPM (cost per mille: US dollars per 1000
impressions), following the paper's convention that all observed prices
are USD.  This module centralises the CPM <-> per-impression conversions
and micro-dollar integer encoding used on the wire by real exchanges
(e.g. DoubleClick encodes prices in micros of the account currency).
"""

from __future__ import annotations

MICROS_PER_UNIT = 1_000_000
IMPRESSIONS_PER_MILLE = 1_000


def cpm_to_per_impression(cpm: float) -> float:
    """Dollars paid for a single impression at a given CPM."""
    return cpm / IMPRESSIONS_PER_MILLE


def per_impression_to_cpm(dollars: float) -> float:
    """CPM equivalent of a per-impression dollar price."""
    return dollars * IMPRESSIONS_PER_MILLE


def cpm_to_micros(cpm: float) -> int:
    """Integer micro-dollar encoding of a CPM price (wire format).

    Real exchanges transmit prices as integer micros to avoid floating
    point on the wire; we round half-up to the nearest micro.
    """
    if cpm < 0:
        raise ValueError(f"negative CPM {cpm!r}")
    return int(round(cpm * MICROS_PER_UNIT))


def micros_to_cpm(micros: int) -> float:
    """Inverse of :func:`cpm_to_micros`."""
    if micros < 0:
        raise ValueError(f"negative micros {micros!r}")
    return micros / MICROS_PER_UNIT


def format_cpm(cpm: float) -> str:
    """Human-readable CPM string, e.g. ``'0.47 CPM'``."""
    return f"{cpm:.2f} CPM"


def format_usd(dollars: float) -> str:
    """Human-readable dollar string, e.g. ``'$6.85'``."""
    return f"${dollars:,.2f}"
