"""Small argument-validation helpers shared across the package."""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence, TypeVar

T = TypeVar("T")

#: The one blessed spelling for each parallelism/IO knob, and every
#: legacy alias rejected in its favour.  One table so the error message
#: is identical no matter which layer (analyzer, forest, PME, CLI,
#: estimator) the stale kwarg reaches.
LEGACY_KWARG_ALIASES: dict[str, str] = {
    "n_jobs": "workers",
    "n_workers": "workers",
    "num_workers": "workers",
    "processes": "workers",
    "max_workers": "workers",
    "retrain_workers": "workers",
    "chunksize": "chunk_size",
    "chunk": "chunk_size",
    "batch_rows": "chunk_size",
}


def reject_legacy_kwargs(owner: str, kwargs: Mapping[str, Any]) -> None:
    """Fail fast on old parallelism/IO kwarg spellings.

    Every layer takes ``workers=`` and ``chunk_size=`` -- exactly those
    names.  Anything in ``kwargs`` is unrecognised; if it's a known
    legacy alias (``n_jobs``, ``chunksize``, ...), the TypeError names
    the current spelling so the fix is copy-pasteable.
    """
    for name in kwargs:
        canonical = LEGACY_KWARG_ALIASES.get(name)
        if canonical is not None:
            raise TypeError(
                f"{owner} does not accept {name!r}; "
                f"use the {canonical!r} keyword instead"
            )
    if kwargs:
        unexpected = sorted(kwargs)
        raise TypeError(
            f"{owner} got unexpected keyword argument(s): "
            f"{', '.join(map(repr, unexpected))}"
        )


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` when ``condition`` is false."""
    if not condition:
        raise ValueError(message)


def require_positive(value: float, name: str) -> float:
    """Validate that a numeric argument is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Validate that a numeric argument is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def require_in_unit_interval(value: float, name: str) -> float:
    """Validate that a numeric argument lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def require_one_of(value: T, options: Iterable[T], name: str) -> T:
    """Validate membership in a fixed option set."""
    options = tuple(options)
    if value not in options:
        raise ValueError(f"{name} must be one of {options!r}, got {value!r}")
    return value


def require_non_empty(seq: Sequence[T], name: str) -> Sequence[T]:
    """Validate that a sequence has at least one element."""
    if len(seq) == 0:
        raise ValueError(f"{name} must not be empty")
    return seq
