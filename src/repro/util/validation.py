"""Small argument-validation helpers shared across the package."""

from __future__ import annotations

from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` when ``condition`` is false."""
    if not condition:
        raise ValueError(message)


def require_positive(value: float, name: str) -> float:
    """Validate that a numeric argument is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Validate that a numeric argument is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def require_in_unit_interval(value: float, name: str) -> float:
    """Validate that a numeric argument lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def require_one_of(value: T, options: Iterable[T], name: str) -> T:
    """Validate membership in a fixed option set."""
    options = tuple(options)
    if value not in options:
        raise ValueError(f"{name} must be one of {options!r}, got {value!r}")
    return value


def require_non_empty(seq: Sequence[T], name: str) -> Sequence[T]:
    """Validate that a sequence has at least one element."""
    if len(seq) == 0:
        raise ValueError(f"{name} must not be empty")
    return seq
