"""Shared process-parallelism helpers.

Every pool-parallel subsystem (forest training, the sharded weblog
analyzer, the serve retrain executor) spells its worker knob the same
way -- ``workers=None`` means "all cores", ``workers=N`` means exactly
``N`` -- and used to re-implement the resolution logic locally.  This
module is the one validated implementation.
"""

from __future__ import annotations

import multiprocessing as mp
import os

__all__ = ["pool_context", "resolve_workers"]


def resolve_workers(workers: int | None, n_tasks: int | None = None) -> int:
    """Effective worker-process count for a pool-parallel stage.

    ``None`` resolves to the machine's CPU count (at least 1); an
    integer must be ``>= 1`` -- zero or negative counts raise
    ``ValueError`` instead of being silently clamped.  ``n_tasks``
    optionally caps the result at the number of available tasks so a
    pool never spawns more processes than it has work for.
    """
    if workers is None:
        count = os.cpu_count() or 1
    else:
        count = int(workers)
        if count < 1:
            raise ValueError(f"workers must be >= 1 (or None for all cores), got {workers}")
    if n_tasks is not None:
        count = min(count, max(1, int(n_tasks)))
    return count


def pool_context() -> mp.context.BaseContext:
    """Multiprocessing context for training/analysis pools.

    Prefer ``fork`` (cheap process start, shares big read-only inputs
    -- the training matrix, the analyzer lookup tables, a forest's
    :class:`~repro.ml.histsplit.BinnedDataset` -- via copy-on-write
    pages instead of pickling); fall back to ``spawn`` elsewhere.
    """
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")
