"""Simulation calendar utilities.

The reproduction replays the paper's timeline: dataset ``D`` spans the
calendar year 2015; probe campaign A1 runs in May 2016 and A2 in June
2016.  All simulated events are stamped with Unix epoch seconds; the
helpers here convert between epoch seconds and the calendar fields the
feature extractor needs (month, day-of-week, time-of-day bucket).

Times are treated as local time of the observed population (the paper's
users are in one country), so no timezone conversion is applied.
"""

from __future__ import annotations

import calendar
import datetime as dt
from dataclasses import dataclass

SECONDS_PER_DAY = 86_400
SECONDS_PER_HOUR = 3_600

#: Six four-hour buckets used by the paper's Figure 6.
TIME_OF_DAY_BUCKETS = (
    "00:00-03:00",
    "04:00-07:00",
    "08:00-11:00",
    "12:00-15:00",
    "16:00-19:00",
    "20:00-23:00",
)

DAY_NAMES = (
    "Monday",
    "Tuesday",
    "Wednesday",
    "Thursday",
    "Friday",
    "Saturday",
    "Sunday",
)


def epoch(year: int, month: int, day: int, hour: int = 0, minute: int = 0,
          second: int = 0) -> float:
    """Unix timestamp for a calendar instant (UTC-naive, as local time)."""
    moment = dt.datetime(year, month, day, hour, minute, second,
                         tzinfo=dt.timezone.utc)
    return moment.timestamp()


def from_epoch(ts: float) -> dt.datetime:
    """Inverse of :func:`epoch`."""
    return dt.datetime.fromtimestamp(ts, tz=dt.timezone.utc)


def month_of(ts: float) -> int:
    """Calendar month (1-12) of a timestamp."""
    return from_epoch(ts).month


def year_of(ts: float) -> int:
    """Calendar year of a timestamp."""
    return from_epoch(ts).year


def hour_of(ts: float) -> int:
    """Hour of day (0-23) of a timestamp."""
    return from_epoch(ts).hour


def day_of_week(ts: float) -> int:
    """Day of week of a timestamp: Monday=0 ... Sunday=6."""
    return from_epoch(ts).weekday()


def day_name(ts: float) -> str:
    """English day-of-week name of a timestamp."""
    return DAY_NAMES[day_of_week(ts)]


def is_weekend(ts: float) -> bool:
    """True when the timestamp falls on Saturday or Sunday."""
    return day_of_week(ts) >= 5


def time_of_day_bucket(ts: float) -> str:
    """Four-hour bucket label used in the paper's Figure 6."""
    return TIME_OF_DAY_BUCKETS[hour_of(ts) // 4]


def days_in_month(year: int, month: int) -> int:
    """Number of days in a calendar month."""
    return calendar.monthrange(year, month)[1]


@dataclass(frozen=True)
class Period:
    """A half-open time interval ``[start, end)`` in epoch seconds."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"Period end {self.end} precedes start {self.start}")

    @classmethod
    def for_year(cls, year: int) -> "Period":
        """The whole calendar year."""
        return cls(epoch(year, 1, 1), epoch(year + 1, 1, 1))

    @classmethod
    def for_month(cls, year: int, month: int) -> "Period":
        """One calendar month."""
        if month == 12:
            return cls(epoch(year, 12, 1), epoch(year + 1, 1, 1))
        return cls(epoch(year, month, 1), epoch(year, month + 1, 1))

    @classmethod
    def for_months(cls, year: int, first: int, last: int) -> "Period":
        """Consecutive months ``first..last`` (inclusive) of one year."""
        if not 1 <= first <= last <= 12:
            raise ValueError(f"bad month range {first}..{last}")
        return cls(cls.for_month(year, first).start, cls.for_month(year, last).end)

    @property
    def duration(self) -> float:
        """Length of the period in seconds."""
        return self.end - self.start

    @property
    def days(self) -> float:
        """Length of the period in days."""
        return self.duration / SECONDS_PER_DAY

    def contains(self, ts: float) -> bool:
        """True when ``ts`` falls inside the half-open interval."""
        return self.start <= ts < self.end

    def clamp(self, ts: float) -> float:
        """Clip a timestamp into the interval (end-exclusive by epsilon)."""
        return min(max(ts, self.start), self.end - 1e-6)


#: The paper's observation windows.
DATASET_YEAR = 2015
DATASET_PERIOD = Period.for_year(DATASET_YEAR)
CAMPAIGN_A1_PERIOD = Period(epoch(2016, 5, 9), epoch(2016, 5, 22))   # 13 days
CAMPAIGN_A2_PERIOD = Period(epoch(2016, 6, 13), epoch(2016, 6, 21))  # 8 days
