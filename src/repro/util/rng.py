"""Deterministic random-number streams.

Every stochastic component of the reproduction draws from a named stream
derived from a single experiment seed.  Deriving streams by *name* (rather
than by call order) means adding a new consumer never perturbs the draws
seen by existing consumers, which keeps benchmark outputs stable as the
code base evolves.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Seed used throughout the benchmarks and examples.  Chosen once; any
#: value works, determinism is what matters.
DEFAULT_SEED = 20151231


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed from ``root_seed`` and a stream ``name``.

    Uses SHA-256 over the root seed and the name so that distinct names
    give statistically independent child seeds.
    """
    payload = f"{root_seed}:{name}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


def stream(name: str, root_seed: int = DEFAULT_SEED) -> np.random.Generator:
    """Return a fresh :class:`numpy.random.Generator` for stream ``name``."""
    return np.random.default_rng(derive_seed(root_seed, name))


class RngRegistry:
    """A registry of named random streams sharing one root seed.

    The registry hands out one generator per name and caches it, so two
    components asking for the same stream share state (useful when a
    simulation is split across modules but conceptually one process).

    >>> rngs = RngRegistry(seed=7)
    >>> a = rngs.get("auction")
    >>> a is rngs.get("auction")
    True
    >>> rngs.get("auction") is rngs.get("browsing")
    False
    """

    def __init__(self, seed: int = DEFAULT_SEED):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for stream ``name``."""
        if name not in self._streams:
            self._streams[name] = stream(name, self.seed)
        return self._streams[name]

    def spawn(self, name: str) -> "RngRegistry":
        """Return a child registry whose root seed is derived from ``name``.

        Lets a subsystem own an isolated namespace of streams.
        """
        return RngRegistry(derive_seed(self.seed, name))

    def reset(self) -> None:
        """Drop all cached streams so draws restart from the beginning."""
        self._streams.clear()
