"""The ground-truth price process of the simulated ad market.

This is the reproduction's stand-in for "what advertisers actually pay"
in the live ecosystem: a feature-multiplicative valuation of each
impression,

    value = base * city * time-of-day * day-of-week * OS * device
                 * context(app/web) * slot-size * IAB * ADX * drift(t)
                 * impression shock

consumed by the DSP bid engines.  Every multiplier table is calibrated
to the paper's section-4 measurements (apps 2.6x web, iOS > Android,
IAB3 dear / IAB15 cheap, MPU dearest slot, big cities lower median and
wider spread, morning prices higher, 2015->2016 upward drift).  Charge
prices then *emerge* from second-price competition among noisy bidders,
so the learned structure the PME recovers is causal rather than painted
onto the data.

The impression-level shock is derived by hashing the auction id, which
keeps the valuation deterministic per auction (all DSPs share the same
common-value component) while remaining random across auctions.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field

from repro.rtb.openrtb import BidRequest
from repro.trace.geography import city_by_name
from repro.util.timeutil import day_of_week, hour_of, month_of, year_of

#: Pre-competition valuation anchor.  Calibrated so that *cleared*
#: second-price charge prices land at the paper's section-4.4 averages
#: (mobile web ~0.273 CPM, apps ~0.712 CPM = 2.6x): competition among
#: ~8 noisy bidders plus the >1 average of the categorical multipliers
#: lifts cleared prices ~1.65x above this anchor.
BASE_CPM = 0.165
APP_MULTIPLIER = 2.6

#: Six four-hour buckets; mornings-to-noon carry higher prices (Fig 6).
TIME_OF_DAY_MULTIPLIERS = (0.92, 1.00, 1.28, 1.15, 1.00, 0.94)

#: Monday..Sunday median multipliers: attention effects are mild in the
#: median (Fig 7) -- Mondays and Sundays slightly up.
DAY_OF_WEEK_MULTIPLIERS = (1.08, 1.00, 1.00, 1.00, 1.02, 0.97, 1.04)

#: Weekday tails run hotter than weekends (Fig 7: higher max prices).
#: Two channels: a small extra shock sigma, and -- the dominant one --
#: business-targeted categories (B2B, finance, real estate) paying a
#: premium during working days, which lifts the pooled upper
#: percentiles exactly where the paper sees them.
WEEKDAY_EXTRA_SIGMA = 0.04
WEEKDAY_BUSINESS_BOOST = 1.35
BUSINESS_CATEGORIES = ("IAB3", "IAB13", "IAB21")

OS_MULTIPLIERS: dict[str, float] = {
    "Android": 1.00,
    "iOS": 1.38,            # Fig 10: iOS draws higher median prices
    "Windows Mobile": 0.80,
    "Other": 0.70,
}

DEVICE_TYPE_MULTIPLIERS: dict[str, float] = {
    "smartphone": 1.00,
    "tablet": 1.10,
}

#: IAB tier-1 price multipliers (Fig 11: IAB3 Business dearest, IAB15
#: Science cheapest; the rest graded between).
IAB_MULTIPLIERS: dict[str, float] = {
    "IAB1": 1.00, "IAB2": 2.00, "IAB3": 6.00, "IAB4": 1.20, "IAB5": 0.70,
    "IAB6": 0.90, "IAB7": 1.30, "IAB8": 1.00, "IAB9": 0.90, "IAB10": 0.95,
    "IAB11": 0.80, "IAB12": 0.85, "IAB13": 3.00, "IAB14": 0.75, "IAB15": 0.30,
    "IAB16": 0.80, "IAB17": 1.20, "IAB18": 1.40, "IAB19": 1.50, "IAB20": 1.80,
    "IAB21": 1.60, "IAB22": 1.60, "IAB23": 0.60, "IAB24": 0.50, "IAB25": 0.50,
    "IAB26": 0.40,
}

#: Slot-size multipliers (Fig 13: price does NOT grow with area -- the
#: 300x250 MPU is dearest, the 300x600 Monster MPU second).
SLOT_MULTIPLIERS: dict[str, float] = {
    "300x250": 1.72, "300x600": 1.43, "728x90": 1.00, "160x600": 0.95,
    "120x600": 0.90, "468x60": 0.85, "320x50": 0.78, "300x50": 0.70,
    "336x280": 1.10, "280x250": 0.95, "200x200": 0.80, "316x150": 0.75,
    "800x130": 0.85, "400x300": 0.90, "320x480": 1.05, "480x320": 1.00,
    "350x600": 1.00, "768x1024": 1.15, "1024x768": 1.10,
}

#: Mild per-exchange level differences.
ADX_MULTIPLIERS: dict[str, float] = {
    "MoPub": 1.00, "Adnxs": 1.05, "DoubleClick": 1.10, "OpenX": 0.95,
    "Rubicon": 1.00, "PulsePoint": 0.90, "Turn": 0.95, "MediaMath": 1.00,
    "Smaato": 0.85, "Inneractive": 0.80, "Criteo": 1.05, "AdColony": 0.90,
    "Millennial": 0.85, "Nexage": 0.80, "Amobee": 0.85, "StrikeAd": 0.75,
    "Airpush": 0.70,
}

#: Market-wide price drift per month elapsed since January 2015 --
#: produces the 2015->2016 shift the paper corrects for in section 6.2.
MONTHLY_DRIFT = 0.018


def months_since_2015(ts: float) -> int:
    """Whole months elapsed since January 2015."""
    return (year_of(ts) - 2015) * 12 + (month_of(ts) - 1)


def _hash_unit(token: str) -> float:
    """Deterministic uniform(0,1) from a string token."""
    digest = hashlib.sha256(token.encode()).digest()
    return (int.from_bytes(digest[:8], "big") + 0.5) / 2**64


def _unit_to_normal(u: float) -> float:
    """Inverse-CDF transform via the Acklam/Moro rational approximation.

    Accurate to ~1e-9 over (0,1); avoids a scipy call in the hot path.
    """
    # Beasley-Springer-Moro algorithm.
    a = (2.50662823884, -18.61500062529, 41.39119773534, -25.44106049637)
    b = (-8.47351093090, 23.08336743743, -21.06224101826, 3.13082909833)
    c = (0.3374754822726147, 0.9761690190917186, 0.1607979714918209,
         0.0276438810333863, 0.0038405729373609, 0.0003951896511919,
         0.0000321767881768, 0.0000002888167364, 0.0000003960315187)
    y = u - 0.5
    if abs(y) < 0.42:
        r = y * y
        num = y * (((a[3] * r + a[2]) * r + a[1]) * r + a[0])
        den = (((b[3] * r + b[2]) * r + b[1]) * r + b[0]) * r + 1.0
        return num / den
    r = u if y <= 0 else 1.0 - u
    s = math.log(-math.log(r))
    x = c[0]
    for i in range(1, 9):
        x += c[i] * s**i
    return -x if y < 0 else x


@dataclass(frozen=True)
class GroundTruthPriceModel:
    """The market's common valuation of impressions.

    ``sigma_base`` is the impression-level lognormal shock; per-city
    volatility and the weekday tail widening add to it.  Instances are
    callables compatible with :data:`repro.rtb.bidding.ValueModel`.
    """

    base_cpm: float = BASE_CPM
    sigma_base: float = 0.03
    #: Per-publisher idiosyncratic price level (hash-derived, stable per
    #: domain).  This is why the *exact publisher* feature genuinely
    #: carries extra signal -- and why a model trained on the campaign's
    #: publisher subset overfits the weblog's wider universe (paper
    #: section 5.4).
    sigma_publisher: float = 0.10
    drift_per_month: float = MONTHLY_DRIFT
    iab_multipliers: dict[str, float] = field(
        default_factory=lambda: dict(IAB_MULTIPLIERS)
    )

    def deterministic_value(self, request: BidRequest) -> float:
        """The multiplier product, before the impression shock."""
        ts = request.timestamp
        value = self.base_cpm
        if request.geo.city:
            city = city_by_name(request.geo.city)
            value *= city.price_multiplier
        value *= TIME_OF_DAY_MULTIPLIERS[hour_of(ts) // 4]
        value *= DAY_OF_WEEK_MULTIPLIERS[day_of_week(ts)]
        value *= OS_MULTIPLIERS.get(request.device.os, 0.7)
        value *= DEVICE_TYPE_MULTIPLIERS.get(request.device.device_type, 1.0)
        if request.is_app:
            value *= APP_MULTIPLIER
        value *= SLOT_MULTIPLIERS.get(request.imp.slot_size.label, 0.8)
        value *= self.iab_multipliers.get(request.publisher_iab, 0.8)
        if day_of_week(ts) < 5 and request.publisher_iab in BUSINESS_CATEGORIES:
            value *= WEEKDAY_BUSINESS_BOOST
        value *= ADX_MULTIPLIERS.get(request.adx, 0.9)
        value *= 1.0 + self.drift_per_month * months_since_2015(ts)
        if self.sigma_publisher > 0 and request.publisher:
            z = _unit_to_normal(_hash_unit(f"pub:{request.publisher}"))
            value *= math.exp(self.sigma_publisher * z)
        return value

    def shock_sigma(self, request: BidRequest) -> float:
        """Total lognormal sigma of the impression shock."""
        sigma = self.sigma_base
        if request.geo.city:
            sigma += city_by_name(request.geo.city).price_volatility
        if day_of_week(request.timestamp) < 5:
            sigma += WEEKDAY_EXTRA_SIGMA
        return sigma

    def value_cpm(self, request: BidRequest) -> float:
        """Common value of the impression, shock included.

        The shock hashes the auction id so every bidder prices the same
        common-value component -- second-price competition then adds the
        bidder-private spread on top.
        """
        z = _unit_to_normal(_hash_unit(f"shock:{request.auction_id}"))
        return self.deterministic_value(request) * math.exp(
            self.shock_sigma(request) * z
        )

    def __call__(self, request: BidRequest) -> float:
        return self.value_cpm(request)


#: The paper-calibrated default model.
PAPER_CALIBRATION = GroundTruthPriceModel()

#: Aggressiveness of DSPs that hide their prices: the paper measures
#: encrypted charge prices at ~1.7x cleartext medians (section 6.1),
#: attributing it to aggressive retargeting / high-value audiences.
#: (set slightly above 1.7 because second-price clearing against
#: standard bidders, and late-adopting standard pairs, dilute the
#: realised encrypted/cleartext median ratio back toward ~1.7).
ENCRYPTED_PREMIUM = 1.9
