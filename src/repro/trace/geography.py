"""Geography of the simulated population: Spanish cities and IP blocks.

The paper's users all live in one country (Spain -- the probe campaigns
target Madrid/Barcelona/Valencia/Seville) and Figure 5 reports price
distributions for ten cities sorted by size.  We model exactly those
cities, with populations from the 2015 census rounded to the thousand,
and give each city a synthetic IPv4 block so reverse IP geocoding (the
paper's MaxMind step) can be reproduced with a bundled registry.

Figure 5's finding -- larger cities have *lower median* charge prices
but *wider spread* -- is encoded as per-city price multipliers and
volatility factors consumed by :mod:`repro.trace.pricing`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class City:
    """One city of the simulated country."""

    name: str
    population: int
    #: Multiplier on the median charge price (large cities < 1).
    price_multiplier: float
    #: Extra lognormal sigma for price volatility (large cities higher).
    price_volatility: float
    #: Second octet of the city's synthetic ``85.X.0.0/16`` IP block.
    ip_block: int

    def __post_init__(self) -> None:
        if self.population <= 0:
            raise ValueError(f"bad population for {self.name}")
        if not 0 <= self.ip_block <= 255:
            raise ValueError(f"bad ip block {self.ip_block}")


#: The paper's Figure-5 cities, sorted by size (descending).  Price
#: multipliers fall and volatility rises with city size, matching the
#: figure's shape; small towns get tighter, slightly higher medians.
CITIES: tuple[City, ...] = (
    City("Madrid", 3_142_000, price_multiplier=0.88, price_volatility=0.025, ip_block=10),
    City("Barcelona", 1_605_000, price_multiplier=0.90, price_volatility=0.045, ip_block=11),
    City("Valencia", 786_000, price_multiplier=0.94, price_volatility=0.022, ip_block=13),
    City("Seville", 693_000, price_multiplier=0.96, price_volatility=0.0255, ip_block=12),
    City("Zaragoza", 664_000, price_multiplier=0.97, price_volatility=0.025, ip_block=15),
    City("Malaga", 569_000, price_multiplier=0.98, price_volatility=0.025, ip_block=14),
    City("Dos Hermanas", 131_000, price_multiplier=1.05, price_volatility=0.022, ip_block=18),
    City("Villaviciosa de Odon", 27_000, price_multiplier=1.10, price_volatility=0.025, ip_block=16),
    City("Priego de Cordoba", 23_000, price_multiplier=1.12, price_volatility=0.025, ip_block=17),
    City("Torello", 14_000, price_multiplier=1.15, price_volatility=0.022, ip_block=19),
)

#: Figure 5's x-axis order (by city size, descending).
CITIES_BY_SIZE: tuple[str, ...] = tuple(
    c.name for c in sorted(CITIES, key=lambda c: -c.population)
)

#: The four big cities the probe campaigns target (Table 5).
CAMPAIGN_CITIES: tuple[str, ...] = ("Madrid", "Barcelona", "Valencia", "Seville")

COUNTRY = "ES"

_BY_NAME: dict[str, City] = {c.name: c for c in CITIES}
_BY_BLOCK: dict[int, City] = {c.ip_block: c for c in CITIES}


def city_by_name(name: str) -> City:
    """Look a city up by name; raises KeyError when unknown."""
    return _BY_NAME[name]


def all_city_names() -> list[str]:
    return [c.name for c in CITIES]


def population_weights() -> np.ndarray:
    """Normalised population weights in CITIES order (user sampling)."""
    pops = np.array([c.population for c in CITIES], dtype=float)
    return pops / pops.sum()


def assign_ip(city: City, rng: np.random.Generator) -> str:
    """A synthetic IPv4 address inside the city's /16 block."""
    return f"85.{city.ip_block}.{rng.integers(0, 256)}.{rng.integers(1, 255)}"


def city_for_ip(ip: str) -> City | None:
    """Reverse geocode a synthetic IP to its city (the GeoIP registry).

    Returns ``None`` for addresses outside the known blocks, mirroring
    MaxMind lookups that miss.
    """
    parts = ip.split(".")
    if len(parts) != 4 or parts[0] != "85":
        return None
    try:
        block = int(parts[1])
    except ValueError:
        return None
    return _BY_BLOCK.get(block)
