"""Device and user-agent catalog for the simulated mobile population.

The analyzer recovers device type, OS and app-vs-browser context from
the ``User-Agent`` header (paper section 4.3), so the trace generator
must emit realistic UA strings for every (OS, device, context)
combination.  App traffic carries runtime fingerprints (Dalvik on
Android, CFNetwork/Darwin on iOS) while browser traffic carries
Chrome/Safari mobile tokens -- the exact signals the paper's UA parser
keys on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Mobile OS market composition.  Android devices are roughly twice the
#: iOS ones, which yields the paper's Figure-8 finding (Android appears
#: in ~2x more RTB auctions) while Figure 9 (per-OS normalised share)
#: stays roughly equal.
OS_SHARES: dict[str, float] = {
    "Android": 0.60,
    "iOS": 0.29,
    "Windows Mobile": 0.07,
    "Other": 0.04,
}

#: Device-class composition within each OS.
DEVICE_TYPE_SHARES: dict[str, float] = {
    "smartphone": 0.82,
    "tablet": 0.18,
}

ANDROID_PHONE_MODELS = ("SM-G920F", "SM-A500FU", "HUAWEI P8", "LG-D855",
                        "Nexus 5", "Moto G")
ANDROID_TABLET_MODELS = ("SM-T530", "Nexus 7", "GT-P5210")
IOS_PHONE_MODELS = ("iPhone6,2", "iPhone7,2", "iPhone8,1", "iPhone5,3")
IOS_TABLET_MODELS = ("iPad4,1", "iPad5,3", "iPad2,5")


@dataclass(frozen=True)
class DeviceProfile:
    """A concrete device a simulated user carries all year."""

    os: str
    device_type: str          # "smartphone" | "tablet"
    model: str
    os_version: str

    def user_agent(self, is_app: bool) -> str:
        """UA string this device sends for app or mobile-web traffic."""
        if self.os == "Android":
            if is_app:
                return (
                    f"Dalvik/2.1.0 (Linux; U; Android {self.os_version}; "
                    f"{self.model} Build/LRX21T)"
                )
            return (
                f"Mozilla/5.0 (Linux; Android {self.os_version}; {self.model}) "
                f"AppleWebKit/537.36 (KHTML, like Gecko) "
                f"Chrome/46.0.2490.76 Mobile Safari/537.36"
            )
        if self.os == "iOS":
            darwin = "14.0.0" if self.os_version.startswith("8") else "15.0.0"
            if is_app:
                # Many iOS apps embed the device model alongside the
                # CFNetwork/Darwin runtime fingerprint.
                return (
                    f"MobileApp/3.2 ({self.model}; iOS {self.os_version}) "
                    f"CFNetwork/711.3.18 Darwin/{darwin}"
                )
            device_token = "iPad" if self.device_type == "tablet" else "iPhone"
            return (
                f"Mozilla/5.0 ({device_token}; CPU OS "
                f"{self.os_version.replace('.', '_')} like Mac OS X) "
                f"AppleWebKit/600.1.4 (KHTML, like Gecko) Version/8.0 "
                f"Mobile/12B411 Safari/600.1.4"
            )
        if self.os == "Windows Mobile":
            return (
                f"Mozilla/5.0 (Windows Phone {self.os_version}; Android 4.2.1; "
                f"Microsoft; Lumia 640 LTE) AppleWebKit/537.36 (KHTML, like "
                f"Gecko) Chrome/42.0.2311.90 Mobile Safari/537.36 Edge/12.10166"
            )
        return f"Mozilla/5.0 (Mobile; rv:38.0) Gecko/38.0 Firefox/38.0 OtherOS/{self.os_version}"


def sample_os(rng: np.random.Generator) -> str:
    """Draw an OS according to market shares."""
    names = list(OS_SHARES)
    weights = np.array([OS_SHARES[n] for n in names])
    return names[int(rng.choice(len(names), p=weights / weights.sum()))]


def sample_device(rng: np.random.Generator, os_name: str | None = None) -> DeviceProfile:
    """Draw a full device profile (optionally pinning the OS)."""
    if os_name is None:
        os_name = sample_os(rng)
    device_type = (
        "smartphone"
        if rng.random() < DEVICE_TYPE_SHARES["smartphone"]
        else "tablet"
    )
    if os_name == "Android":
        models = ANDROID_TABLET_MODELS if device_type == "tablet" else ANDROID_PHONE_MODELS
        model = str(rng.choice(models))
        version = str(rng.choice(["4.4.4", "5.0.2", "5.1.1", "6.0"]))
    elif os_name == "iOS":
        models = IOS_TABLET_MODELS if device_type == "tablet" else IOS_PHONE_MODELS
        model = str(rng.choice(models))
        version = str(rng.choice(["8.1.3", "8.4", "9.0.2", "9.2"]))
    elif os_name == "Windows Mobile":
        model = "Lumia 640"
        version = str(rng.choice(["8.1", "10.0"]))
        device_type = "smartphone"
    else:
        model = "GenericMobile"
        version = "1.0"
    return DeviceProfile(
        os=os_name, device_type=device_type, model=model, os_version=version
    )
