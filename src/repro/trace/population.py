"""Synthesis of the mobile-user population.

Dataset D covers 1,594 volunteering mobile users from one country
(paper Table 3).  Each synthetic user carries, for the whole year: a
home city (population-weighted), a device (OS/class per market shares),
a stable IP inside the city's block, an IAB interest profile (sparse
Dirichlet, so most users have a few dominant interests), an app-vs-web
propensity, and a heavy-tailed activity level.

The lognormal activity distribution is what produces the paper's
Figure-17 shape -- a ~25 CPM median annual cost with a ~2% tail of
users costing 1000-10000 CPM: annual cost is roughly (impressions
received) x (average CPM), and impressions scale with activity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rtb.iab import DATASET_CATEGORIES, InterestProfile
from repro.trace.devices import DeviceProfile, sample_device
from repro.trace.geography import CITIES, City, assign_ip, population_weights

#: Activity is a lognormal body plus a Pareto tail of heavy users.
#: The paper's Figure 17 pins both ends: the median user costs ~25 CPM
#: while ~2% of users cost 1000-10000 CPM -- a spread no single
#: lognormal produces (its median would collapse).  A ~2.5% power-law
#: segment of always-on users reproduces the extreme tail without
#: moving the median.
ACTIVITY_SIGMA = 1.2
HEAVY_USER_FRACTION = 0.025
HEAVY_USER_PARETO_ALPHA = 1.5
HEAVY_USER_SCALE = 10.0

#: Mean fraction of a user's ad-eligible browsing happening inside
#: native apps (vs the mobile web).  Apps dominate mobile ad spend
#: (paper section 4.4).
APP_FRACTION_MEAN = 0.58


@dataclass(frozen=True)
class UserProfile:
    """One simulated mobile user, stable across the year."""

    user_id: str
    city: City
    device: DeviceProfile
    ip: str
    interests: InterestProfile
    #: Relative browsing intensity; 1.0 is the median user.
    activity: float
    #: Probability an ad-eligible pageview happens in an app.
    app_fraction: float

    def __post_init__(self) -> None:
        if self.activity <= 0:
            raise ValueError("activity must be positive")
        if not 0.0 <= self.app_fraction <= 1.0:
            raise ValueError("app_fraction must be in [0,1]")


def sample_interests(rng: np.random.Generator, concentration: float = 0.25
                     ) -> InterestProfile:
    """Sparse Dirichlet interest profile over the dataset's categories.

    Low concentration makes profiles peaky: a typical user has 2-4
    dominant interests, as interest inference from real browsing shows.
    """
    weights = rng.dirichlet(np.full(len(DATASET_CATEGORIES), concentration))
    counts = {
        code: float(w) for code, w in zip(DATASET_CATEGORIES, weights) if w > 0.01
    }
    if not counts:  # pathological draw; fall back to the largest component
        best = int(np.argmax(weights))
        counts = {DATASET_CATEGORIES[best]: 1.0}
    return InterestProfile.from_counts(counts)


def build_population(rng: np.random.Generator, n_users: int) -> list[UserProfile]:
    """Generate ``n_users`` stable user profiles."""
    if n_users < 1:
        raise ValueError("n_users must be >= 1")
    city_weights = population_weights()
    users = []
    for i in range(n_users):
        city = CITIES[int(rng.choice(len(CITIES), p=city_weights))]
        device = sample_device(rng)
        activity = float(rng.lognormal(mean=0.0, sigma=ACTIVITY_SIGMA))
        if rng.random() < HEAVY_USER_FRACTION:
            activity *= HEAVY_USER_SCALE * (1.0 + rng.pareto(HEAVY_USER_PARETO_ALPHA))
        app_fraction = float(np.clip(rng.beta(4.0, 3.0), 0.05, 0.95))
        users.append(
            UserProfile(
                user_id=f"u{i:05d}",
                city=city,
                device=device,
                ip=assign_ip(city, rng),
                interests=sample_interests(rng),
                activity=activity,
                app_fraction=app_fraction,
            )
        )
    return users


def activity_weights(users: list[UserProfile]) -> np.ndarray:
    """Normalised per-user activity weights (auction volume allocation)."""
    acts = np.array([u.activity for u in users], dtype=float)
    return acts / acts.sum()
