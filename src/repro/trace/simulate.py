"""End-to-end simulation of dataset D (and campaign-period traffic).

Builds the market (exchanges, DSPs, encryption policy), synthesises the
user population, and replays a period of browsing: every ad-eligible
pageview triggers an RTB auction whose win notification lands in the
weblog exactly as the paper's proxy observed it -- cleartext price for
some ADX-DSP pairs, 28-byte encrypted blob for others.

Market composition encodes the paper's measurements:

* auction volume per exchange follows Figure 3's RTB shares;
* the four ADXs the paper probes for encrypted prices (DoubleClick,
  Rubicon, OpenX, PulsePoint) host "premium" DSPs bidding ~1.75x, so
  encrypted charge prices emerge higher (section 6.1's 1.7x finding);
* per-pair encryption adoption dates are staggered so the encrypted
  pair fraction rises through 2015 (Figure 2) and roughly a quarter of
  mobile impressions end up encrypted (section 2.4's ~26%).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, replace

import numpy as np

from repro.rtb.bidding import Dsp, FeatureBidEngine
from repro.rtb.campaign import Campaign, TargetingSpec
from repro.rtb.cookiesync import CookieSyncRegistry
from repro.rtb.entities import ENCRYPTING_ADXS, MARKET_SHARES, Dmp
from repro.rtb.exchange import AdExchange, PairEncryptionPolicy
from repro.rtb.openrtb import BidRequest, Device, Geo, Impression, UserInfo
from repro.trace.browsing import PublisherChooser, sample_event_times
from repro.trace.population import UserProfile, activity_weights, build_population
from repro.trace.pricing import ENCRYPTED_PREMIUM, GroundTruthPriceModel
from repro.trace.publishers import MarketUniverse, build_universe, sample_slot_size
from repro.trace.weblog import (
    KIND_ANALYTICS,
    KIND_CONTENT,
    KIND_NURL,
    KIND_SYNC,
    GroundTruthImpression,
    HttpRequest,
    Weblog,
)
from repro.util.rng import DEFAULT_SEED, RngRegistry
from repro.util.timeutil import Period, epoch
from repro.rtb.cookiesync import synced_uid

#: DSPs that bid at market value and receive cleartext notifications.
STANDARD_DSPS: tuple[str, ...] = (
    "Criteo-DSP", "MediaMath-DSP", "AppNexus-DSP", "Adform", "DataXu",
)

#: DSPs that bid aggressively (retargeting-style) and buy only through
#: the encrypting exchanges, demanding price confidentiality.
PREMIUM_DSPS: tuple[str, ...] = ("DBM", "Turn-DSP", "InviteMedia")


@dataclass(frozen=True)
class SimulationConfig:
    """Scale and seed knobs for one simulated dataset."""

    #: Paper scale: 1,594 users.  The auction target is set so the
    #: *median user's* annual cost lands at the paper's ~25 CPM given
    #: our per-impression price anchors; it exceeds the paper's 78,560
    #: impressions because our activity distribution routes a larger
    #: share of volume to the heavy-user tail (see EXPERIMENTS.md).
    n_users: int = 1594
    target_auctions: int = 120_000
    period: Period = Period.for_year(2015)
    seed: int = DEFAULT_SEED
    n_web_publishers: int = 420
    n_app_publishers: int = 180
    n_advertisers: int = 80
    #: Extra (non-auctioned) content pageviews per auctioned one.
    content_rows_per_auction: float = 2.0
    #: Probability a won impression triggers a cookie-sync attempt.
    sync_probability: float = 0.25
    #: Probability a pageview fires an analytics beacon.
    analytics_probability: float = 0.25
    floor_cpm: float = 0.01

    def scaled(self, factor: float) -> "SimulationConfig":
        """A proportionally smaller/larger configuration."""
        return replace(
            self,
            n_users=max(10, int(self.n_users * factor)),
            target_auctions=max(100, int(self.target_auctions * factor)),
        )


def default_config() -> SimulationConfig:
    """Paper-scale dataset D configuration (1,594 users, ~78k impressions)."""
    return SimulationConfig()


def small_config(seed: int = DEFAULT_SEED) -> SimulationConfig:
    """A fast configuration for tests (~2k auctions)."""
    return SimulationConfig(
        n_users=80,
        target_auctions=2_000,
        n_web_publishers=60,
        n_app_publishers=30,
        n_advertisers=20,
        seed=seed,
    )


@dataclass
class MarketState:
    """The fixed market of one simulation run."""

    universe: MarketUniverse
    exchanges: dict[str, AdExchange]
    dsps: list[Dsp]
    policy: PairEncryptionPolicy
    value_model: GroundTruthPriceModel
    dmp: Dmp
    sync_registry: CookieSyncRegistry


def _build_campaigns(
    dsp_name: str,
    universe: MarketUniverse,
    rng: np.random.Generator,
    adxs: frozenset[str] | None,
    n_targeted: int = 7,
) -> list[Campaign]:
    """A DSP's campaign book: one catch-all plus IAB-targeted campaigns."""
    campaigns = [
        Campaign(
            campaign_id=f"{dsp_name}-all",
            advertiser="HouseAds",
            targeting=TargetingSpec(adxs=adxs),
            max_bid_cpm=60.0,
        )
    ]
    advertisers = list(universe.advertisers)
    for k in range(n_targeted):
        advertiser = advertisers[int(rng.integers(0, len(advertisers)))]
        campaigns.append(
            Campaign(
                campaign_id=f"{dsp_name}-c{k:02d}",
                advertiser=advertiser.name,
                targeting=TargetingSpec(
                    adxs=adxs,
                    iab_categories=frozenset({advertiser.iab_category}),
                ),
                max_bid_cpm=80.0,
            )
        )
    return campaigns


def _build_policy(rng: np.random.Generator) -> PairEncryptionPolicy:
    """Per-pair encryption adoption dates.

    Premium pairs adopted early (2014 to mid-2015); standard DSPs'
    pairs with encrypting exchanges adopt gradually from 2015 onwards
    (some after the observation year, keeping the trend alive); pairs
    with non-encrypting exchanges never adopt.
    """
    policy = PairEncryptionPolicy()
    all_dsps = STANDARD_DSPS + PREMIUM_DSPS
    for adx in MARKET_SHARES:
        for dsp in all_dsps:
            if adx not in ENCRYPTING_ADXS:
                policy.set_adoption(adx, dsp, None)
            elif dsp in PREMIUM_DSPS:
                adoption = rng.uniform(epoch(2014, 1, 1), epoch(2015, 7, 1))
                policy.set_adoption(adx, dsp, float(adoption))
            else:
                adoption = rng.uniform(epoch(2015, 2, 1), epoch(2017, 1, 1))
                policy.set_adoption(adx, dsp, float(adoption))
    return policy


def build_desktop_policy(rng: np.random.Generator) -> PairEncryptionPolicy:
    """Encryption adoption as observed on *desktop* RTB.

    The paper (section 2.4) contrasts mobile's ~26% encrypted share
    with the ~68% reported for desktop, where DoubleClick, Rubicon and
    OpenX championed encryption early.  This policy models that mature
    state: most pairs involving any major exchange encrypted well
    before 2015.  Useful for what-if runs of the mobile pipeline under
    desktop-like conditions (the paper's warning: "if these two [big]
    companies flipped their strategy ... it would dramatically impact
    the RTB-ecosystem's transparency").
    """
    policy = PairEncryptionPolicy()
    all_dsps = STANDARD_DSPS + PREMIUM_DSPS
    for adx in MARKET_SHARES:
        for dsp in all_dsps:
            if rng.random() < 0.68:
                policy.set_adoption(adx, dsp, epoch(2013, 1, 1))
            else:
                policy.set_adoption(adx, dsp, None)
    return policy


def build_market(config: SimulationConfig, rngs: RngRegistry | None = None) -> MarketState:
    """Construct the exchanges, DSPs and policy for one simulation."""
    rngs = rngs or RngRegistry(config.seed)
    universe = build_universe(
        rngs.get("universe"),
        n_web=config.n_web_publishers,
        n_app=config.n_app_publishers,
        n_advertisers=config.n_advertisers,
    )
    value_model = GroundTruthPriceModel()

    exchanges = {
        name: AdExchange(name, rngs.get(f"adx:{name}"), floor_cpm=config.floor_cpm)
        for name in MARKET_SHARES
    }

    dsps: list[Dsp] = []
    for name in STANDARD_DSPS:
        engine = FeatureBidEngine(
            value_model=value_model, noise_sigma=0.07, participation=0.9
        )
        dsps.append(
            Dsp(
                name,
                engine,
                rngs.get(f"dsp:{name}"),
                campaigns=_build_campaigns(name, universe, rngs.get(f"cmp:{name}"), None),
            )
        )
    for name in PREMIUM_DSPS:
        engine = FeatureBidEngine(
            value_model=value_model,
            noise_sigma=0.07,
            aggressiveness=ENCRYPTED_PREMIUM,
            participation=0.9,
        )
        dsps.append(
            Dsp(
                name,
                engine,
                rngs.get(f"dsp:{name}"),
                campaigns=_build_campaigns(
                    name,
                    universe,
                    rngs.get(f"cmp:{name}"),
                    adxs=frozenset(ENCRYPTING_ADXS),
                    n_targeted=3,
                ),
            )
        )

    return MarketState(
        universe=universe,
        exchanges=exchanges,
        dsps=dsps,
        policy=_build_policy(rngs.get("policy")),
        value_model=value_model,
        dmp=Dmp(),
        sync_registry=CookieSyncRegistry(),
    )


_CONTENT_BYTES_MEAN_LOG = np.log(40_000)
_ANALYTICS_DOMAINS = ("metrics.example-analytics.com", "stats.trackerhub.io")


def _content_row(
    ts: float,
    user: UserProfile,
    publisher,
    is_app: bool,
    rng: np.random.Generator,
) -> HttpRequest:
    path = f"/page/{int(rng.integers(1, 500))}" if not is_app else "/api/v2/content"
    return HttpRequest(
        timestamp=ts,
        user_id=user.user_id,
        url=f"https://{publisher.domain}{path}",
        domain=publisher.domain,
        user_agent=user.device.user_agent(is_app),
        kind=KIND_CONTENT,
        bytes_transferred=int(rng.lognormal(_CONTENT_BYTES_MEAN_LOG, 0.8)),
        duration_ms=float(rng.lognormal(np.log(350), 0.6)),
        client_ip=user.ip,
    )


def simulate_period(
    market: MarketState,
    users: list[UserProfile],
    period: Period,
    n_auctions: int,
    rngs: RngRegistry,
    weblog: Weblog,
    extra_dsps: list[Dsp] | None = None,
    config: SimulationConfig | None = None,
) -> None:
    """Replay one period of browsing into ``weblog``.

    ``extra_dsps`` lets probe-campaign DSPs join the market for the
    period (the mechanism behind the paper's A1/A2 campaigns).
    """
    config = config or SimulationConfig()
    rng = rngs.get(f"period:{period.start:.0f}")
    chooser = PublisherChooser(market.universe)
    dsps = market.dsps + list(extra_dsps or [])

    adx_names = list(MARKET_SHARES)
    adx_probs = np.array([MARKET_SHARES[n] for n in adx_names])
    adx_probs = adx_probs / adx_probs.sum()

    weights = activity_weights(users)
    per_user = rng.multinomial(n_auctions, weights)

    auction_seq = 0
    for user, n_events in zip(users, per_user):
        if n_events == 0:
            continue
        times = sample_event_times(rng, period, int(n_events))
        times.sort()
        market.dmp.ingest(
            user.user_id,
            interests=user.interests,
            city=user.city.name,
            device_os=user.device.os,
        )
        for ts in times:
            ts = float(ts)
            is_app = bool(rng.random() < user.app_fraction)
            publisher = chooser.choose(rng, user, is_app)
            slot = sample_slot_size(rng, ts, user.device.device_type)
            adx_name = adx_names[int(rng.choice(len(adx_names), p=adx_probs))]
            exchange = market.exchanges[adx_name]

            auction_seq += 1
            auction_id = f"a-{period.start:.0f}-{auction_seq:08d}"
            request = BidRequest(
                auction_id=auction_id,
                timestamp=ts,
                imp=Impression(
                    impression_id=f"{auction_id}-i0",
                    slot_size=slot,
                    bidfloor_cpm=config.floor_cpm,
                ),
                publisher=publisher.domain,
                publisher_iab=publisher.iab_category,
                device=Device(
                    os=user.device.os,
                    device_type=user.device.device_type,
                    user_agent=user.device.user_agent(is_app),
                    ip=user.ip,
                ),
                geo=Geo(country="ES", city=user.city.name),
                user=UserInfo(
                    exchange_uid=synced_uid(adx_name, user.user_id),
                    buyer_uids=market.sync_registry.known_destinations(
                        user.user_id, adx_name
                    ),
                ),
                is_app=is_app,
                adx=adx_name,
            )

            # The pageview itself.
            weblog.add_row(_content_row(ts, user, publisher, is_app, rng))
            if rng.random() < config.analytics_probability:
                dom = _ANALYTICS_DOMAINS[int(rng.integers(0, len(_ANALYTICS_DOMAINS)))]
                weblog.add_row(
                    HttpRequest(
                        timestamp=ts + 0.2,
                        user_id=user.user_id,
                        url=f"https://{dom}/collect?v=1&uid={user.user_id}",
                        domain=dom,
                        user_agent=user.device.user_agent(is_app),
                        kind=KIND_ANALYTICS,
                        bytes_transferred=int(rng.integers(200, 900)),
                        duration_ms=float(rng.lognormal(np.log(60), 0.5)),
                        client_ip=user.ip,
                    )
                )

            record = exchange.run_auction(request, dsps, market.policy)
            if record is None:
                continue

            weblog.add_row(
                HttpRequest(
                    timestamp=ts + 0.5,
                    user_id=user.user_id,
                    url=record.nurl,
                    domain=record.nurl.split("/", 3)[2],
                    user_agent=user.device.user_agent(is_app),
                    kind=KIND_NURL,
                    bytes_transferred=int(rng.integers(300, 1200)),
                    duration_ms=float(rng.lognormal(np.log(80), 0.5)),
                    client_ip=user.ip,
                )
            )
            weblog.add_impression(GroundTruthImpression(user.user_id, record))

            if rng.random() < config.sync_probability:
                dsp_name = record.notification.dsp
                _, was_new = market.sync_registry.sync(
                    user.user_id, adx_name, dsp_name
                )
                if was_new:
                    weblog.add_row(
                        HttpRequest(
                            timestamp=ts + 0.7,
                            user_id=user.user_id,
                            url=market.sync_registry.beacon_url(
                                user.user_id, adx_name, dsp_name
                            ),
                            domain=f"sync.{adx_name.lower()}.com",
                            user_agent=user.device.user_agent(is_app),
                            kind=KIND_SYNC,
                            bytes_transferred=int(rng.integers(100, 400)),
                            duration_ms=float(rng.lognormal(np.log(50), 0.5)),
                            client_ip=user.ip,
                        )
                    )

        # Non-auctioned browsing: shapes interest inference and the
        # per-user HTTP statistics of Table 4.
        n_extra = int(round(n_events * config.content_rows_per_auction))
        if n_extra > 0:
            extra_times = sample_event_times(rng, period, n_extra)
            for ts in extra_times:
                is_app = bool(rng.random() < user.app_fraction)
                publisher = chooser.choose(rng, user, is_app)
                weblog.add_row(
                    _content_row(float(ts), user, publisher, is_app, rng)
                )


def simulate_dataset(config: SimulationConfig | None = None) -> Weblog:
    """Produce a full dataset D under ``config`` (paper scale by default)."""
    config = config or default_config()
    rngs = RngRegistry(config.seed)
    market = build_market(config, rngs)
    users = build_population(rngs.get("population"), config.n_users)
    weblog = Weblog(
        period=config.period,
        users=users,
        universe=market.universe,
        policy=market.policy,
    )
    simulate_period(
        market,
        users,
        config.period,
        config.target_auctions,
        rngs,
        weblog,
        config=config,
    )
    weblog.finalize()
    return weblog


@functools.lru_cache(maxsize=4)
def cached_dataset(config: SimulationConfig | None = None) -> Weblog:
    """Memoised :func:`simulate_dataset` (benchmarks share one D)."""
    return simulate_dataset(config)
