"""The publisher and advertiser universe of the simulated market.

Publishers (mobile websites and apps) are generated deterministically
from a seed: Zipf-distributed popularity, IAB categories drawn from the
18 categories observed in dataset D, and per-device ad-slot inventories
whose popularity drifts through 2015 exactly as the paper's Figure 12
shows (the 300x250 "MPU" overtakes the 320x50 banner around May).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rtb.adslots import AdSlotSize
from repro.rtb.entities import Advertiser, Publisher
from repro.rtb.iab import DATASET_CATEGORIES
from repro.util.timeutil import month_of, year_of

#: Relative frequency of each IAB category among publishers (news and
#: entertainment dominate mobile browsing; science is a long-tail
#: category -- which also starves it of high-value auctions).
IAB_PUBLISHER_WEIGHTS: dict[str, float] = {
    "IAB1": 0.14, "IAB2": 0.05, "IAB3": 0.05, "IAB5": 0.04, "IAB7": 0.06,
    "IAB8": 0.05, "IAB9": 0.07, "IAB10": 0.04, "IAB12": 0.17, "IAB13": 0.04,
    "IAB14": 0.05, "IAB15": 0.02, "IAB17": 0.08, "IAB18": 0.04, "IAB19": 0.06,
    "IAB20": 0.04, "IAB22": 0.05, "IAB25": 0.05,
}

#: Smartphone slot base weights at January 2015 and monthly linear drift
#: (per month), calibrated so 300x250 overtakes 320x50 around May 2015
#: (Figure 12) and MPU+leaderboard accumulate most revenue (Figure 14).
_PHONE_SLOT_DRIFT: dict[str, tuple[float, float]] = {
    "320x50": (0.340, -0.022),
    "300x250": (0.205, +0.024),
    "300x50": (0.080, -0.004),
    "728x90": (0.090, +0.001),
    "468x60": (0.055, -0.002),
    "336x280": (0.040, +0.001),
    "280x250": (0.030, 0.0),
    "200x200": (0.025, 0.0),
    "316x150": (0.020, 0.0),
    "120x600": (0.022, 0.0),
    "160x600": (0.020, 0.0),
    "300x600": (0.018, +0.001),
    "320x480": (0.018, 0.0),
    "480x320": (0.012, 0.0),
    "400x300": (0.010, 0.0),
    "800x130": (0.008, 0.0),
    "350x600": (0.007, 0.0),
}

_TABLET_SLOT_WEIGHTS: dict[str, float] = {
    "728x90": 0.30,
    "300x250": 0.28,
    "468x60": 0.10,
    "160x600": 0.08,
    "300x600": 0.07,
    "768x1024": 0.06,
    "1024x768": 0.05,
    "336x280": 0.06,
}


def slot_weights_for(ts: float, device_type: str) -> tuple[list[str], np.ndarray]:
    """Slot labels and sampling weights at a point in time.

    The drift is indexed by months elapsed since January 2015, so the
    2016 probe campaigns see the late-2015 mix continued.
    """
    if device_type == "tablet":
        labels = list(_TABLET_SLOT_WEIGHTS)
        weights = np.array([_TABLET_SLOT_WEIGHTS[lbl] for lbl in labels])
    else:
        months_since = (year_of(ts) - 2015) * 12 + (month_of(ts) - 1)
        labels = list(_PHONE_SLOT_DRIFT)
        weights = np.array(
            [max(0.001, base + drift * months_since)
             for base, drift in _PHONE_SLOT_DRIFT.values()]
        )
    return labels, weights / weights.sum()


def sample_slot_size(rng: np.random.Generator, ts: float,
                     device_type: str) -> AdSlotSize:
    """Draw the auctioned slot size for one impression."""
    labels, weights = slot_weights_for(ts, device_type)
    label = labels[int(rng.choice(len(labels), p=weights))]
    return AdSlotSize.parse(label)


@dataclass(frozen=True)
class MarketUniverse:
    """The fixed cast of one simulation: publishers and advertisers."""

    web_publishers: tuple[Publisher, ...]
    app_publishers: tuple[Publisher, ...]
    advertisers: tuple[Advertiser, ...]

    @property
    def publishers(self) -> tuple[Publisher, ...]:
        return self.web_publishers + self.app_publishers

    def by_category(self, iab: str, is_app: bool | None = None) -> list[Publisher]:
        """Publishers in one IAB category, optionally filtered by kind."""
        pubs = self.publishers if is_app is None else (
            self.app_publishers if is_app else self.web_publishers
        )
        return [p for p in pubs if p.iab_category == iab]


_WEB_WORDS = ("noticias", "diario", "portal", "revista", "blog", "guia", "foro",
              "tienda", "canal", "web")
_APP_WORDS = ("app", "go", "play", "now", "pro", "lite", "plus", "mobi")

#: Default universe sizes; the paper's D sees ~5.6k RTB publishers per
#: month, but a few hundred distinct publishers per category suffice to
#: exercise every code path at laptop scale.
DEFAULT_N_WEB = 420
DEFAULT_N_APP = 180
DEFAULT_N_ADVERTISERS = 80


def _zipf_popularities(n: int, exponent: float = 1.05) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=float)
    return ranks**-exponent


def build_universe(
    rng: np.random.Generator,
    n_web: int = DEFAULT_N_WEB,
    n_app: int = DEFAULT_N_APP,
    n_advertisers: int = DEFAULT_N_ADVERTISERS,
) -> MarketUniverse:
    """Deterministically generate the market's publishers/advertisers."""
    iab_codes = list(IAB_PUBLISHER_WEIGHTS)
    iab_weights = np.array([IAB_PUBLISHER_WEIGHTS[c] for c in iab_codes])
    iab_weights = iab_weights / iab_weights.sum()

    def make_publishers(count: int, is_app: bool) -> tuple[Publisher, ...]:
        pops = _zipf_popularities(count)
        pubs = []
        words = _APP_WORDS if is_app else _WEB_WORDS
        for i in range(count):
            iab = iab_codes[int(rng.choice(len(iab_codes), p=iab_weights))]
            word = words[int(rng.integers(0, len(words)))]
            if is_app:
                domain = f"app{i:03d}.{word}.example"
                name = f"{word.title()}App{i:03d}"
            else:
                domain = f"{word}{i:03d}.example.es"
                name = f"{word.title()}{i:03d}"
            sizes = (AdSlotSize.parse("300x250"), AdSlotSize.parse("320x50"))
            pubs.append(
                Publisher(
                    domain=domain,
                    name=name,
                    iab_category=iab,
                    is_app=is_app,
                    slot_sizes=sizes,
                    ssp="MainSSP",
                    popularity=float(pops[i]),
                )
            )
        return tuple(pubs)

    categories = list(DATASET_CATEGORIES)
    advertisers = tuple(
        Advertiser(
            name=f"Brand{i:02d}",
            domain=f"brand{i:02d}.example.com",
            iab_category=categories[i % len(categories)],
        )
        for i in range(n_advertisers)
    )

    return MarketUniverse(
        web_publishers=make_publishers(n_web, is_app=False),
        app_publishers=make_publishers(n_app, is_app=True),
        advertisers=advertisers,
    )
