"""Temporal and content-choice models of mobile browsing.

Event times follow a diurnal x weekly x seasonal profile: mobile usage
dips overnight, peaks in the morning commute and the evening couch
hours, weekdays carry more daytime traffic, and months vary mildly.
Publisher choice mixes the user's interest profile with global
popularity, so interest inference from the visited publishers (paper
section 4.3) recovers profiles close to the generative ones.
"""

from __future__ import annotations

import numpy as np

from repro.rtb.entities import Publisher
from repro.trace.population import UserProfile
from repro.trace.publishers import MarketUniverse
from repro.util.timeutil import SECONDS_PER_DAY, Period

#: Relative browsing intensity per hour of day (0..23).
HOURLY_WEIGHTS = np.array(
    [
        0.25, 0.15, 0.10, 0.08, 0.08, 0.12,   # 00-05: night trough
        0.35, 0.70, 1.00, 1.10, 1.05, 1.00,   # 06-11: morning ramp/peak
        0.95, 0.90, 0.85, 0.90, 0.95, 1.00,   # 12-17: daytime plateau
        1.05, 1.15, 1.30, 1.35, 1.10, 0.60,   # 18-23: evening peak
    ]
)

#: Relative intensity per day of week (Mon..Sun).
DOW_WEIGHTS = np.array([1.05, 1.0, 1.0, 1.0, 1.05, 0.95, 0.90])

#: Mild seasonality across months (Jan..Dec); August dips (holidays).
MONTH_WEIGHTS = np.array(
    [0.95, 0.97, 1.0, 1.0, 1.02, 1.03, 1.0, 0.90, 1.02, 1.05, 1.08, 1.10]
)

#: Fraction of a user's pageviews drawn from their interest categories
#: (the rest follow global popularity).
INTEREST_LOYALTY = 0.7


def _day_weights(period: Period) -> np.ndarray:
    """Unnormalised sampling weight for every day in the period."""
    n_days = int(np.ceil(period.days))
    days = np.arange(n_days)
    ts0 = period.start
    weights = np.empty(n_days)
    for d in days:
        ts = ts0 + d * SECONDS_PER_DAY
        moment = np.datetime64(int(ts), "s")
        dow = (int(ts // SECONDS_PER_DAY) + 3) % 7  # 1970-01-01 was a Thursday
        month = int(str(moment.astype("datetime64[M]"))[5:7])
        weights[d] = DOW_WEIGHTS[dow] * MONTH_WEIGHTS[month - 1]
    return weights


def sample_event_times(
    rng: np.random.Generator, period: Period, n_events: int
) -> np.ndarray:
    """Draw ``n_events`` timestamps following the browsing profile.

    Sampling factorises as day (weekly x monthly weights) then
    second-of-day (hourly weights), which is fast and keeps the three
    marginals the analyzer measures (Figures 6-9) in the right shape.
    """
    if n_events <= 0:
        return np.empty(0)
    day_w = _day_weights(period)
    day_p = day_w / day_w.sum()
    days = rng.choice(len(day_w), size=n_events, p=day_p)

    hour_p = HOURLY_WEIGHTS / HOURLY_WEIGHTS.sum()
    hours = rng.choice(24, size=n_events, p=hour_p)
    seconds = rng.uniform(0, 3600, size=n_events)

    ts = period.start + days * SECONDS_PER_DAY + hours * 3600 + seconds
    return np.minimum(ts, period.end - 1.0)


class PublisherChooser:
    """Chooses which publisher a user visits, given interests and kind.

    Precomputes per-(category, kind) publisher lists and popularity
    distributions once, then draws in O(1) per pageview.
    """

    def __init__(self, universe: MarketUniverse):
        self._by_key: dict[tuple[str, bool], tuple[list[Publisher], np.ndarray]] = {}
        self._all: dict[bool, tuple[list[Publisher], np.ndarray]] = {}
        for is_app in (False, True):
            pubs = list(universe.app_publishers if is_app else universe.web_publishers)
            pops = np.array([p.popularity for p in pubs])
            self._all[is_app] = (pubs, pops / pops.sum())
            categories = {p.iab_category for p in pubs}
            for cat in categories:
                group = [p for p in pubs if p.iab_category == cat]
                weights = np.array([p.popularity for p in group])
                self._by_key[(cat, is_app)] = (group, weights / weights.sum())

    def choose(
        self,
        rng: np.random.Generator,
        user: UserProfile,
        is_app: bool,
    ) -> Publisher:
        """Draw the next publisher this user visits."""
        if user.interests.weights and rng.random() < INTEREST_LOYALTY:
            codes = [c for c, _ in user.interests.weights]
            probs = np.array([w for _, w in user.interests.weights])
            code = codes[int(rng.choice(len(codes), p=probs / probs.sum()))]
            entry = self._by_key.get((code, is_app))
            if entry is not None:
                pubs, weights = entry
                return pubs[int(rng.choice(len(pubs), p=weights))]
        pubs, weights = self._all[is_app]
        return pubs[int(rng.choice(len(pubs), p=weights))]
