"""Weblog record structures: what the paper's proxy actually collected.

Dataset D is an HTTP weblog: one row per outgoing HTTP request, with
timestamp, user, URL, user agent, transfer size and duration (paper
section 4).  The analyzer consumes *only* these rows.  The simulator
additionally keeps ground-truth impression records (with the true
charge price even when the wire is encrypted) so the evaluation can
score estimates -- exactly the information asymmetry of the real study,
where ground truth came from the authors' own campaign reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.rtb.exchange import AuctionRecord, PairEncryptionPolicy
from repro.trace.population import UserProfile
from repro.trace.publishers import MarketUniverse
from repro.util.timeutil import Period

#: Weblog row kinds, mirroring the 5-group Disconnect classification the
#: analyzer applies (advertising / analytics / social / 3rd-party / rest)
#: plus the ad-internal distinctions the simulator knows.
KIND_CONTENT = "content"
KIND_NURL = "nurl"
KIND_AD_REQUEST = "ad_request"
KIND_SYNC = "sync"
KIND_ANALYTICS = "analytics"
KIND_SOCIAL = "social"
KIND_THIRD_PARTY = "third_party"


@dataclass(frozen=True, slots=True)
class HttpRequest:
    """One HTTP request observed at the proxy."""

    timestamp: float
    user_id: str
    url: str
    domain: str
    user_agent: str
    kind: str
    bytes_transferred: int
    duration_ms: float
    client_ip: str = ""


@dataclass(frozen=True, slots=True)
class GroundTruthImpression:
    """Simulator-private truth for one delivered RTB impression."""

    user_id: str
    record: AuctionRecord

    @property
    def charge_price_cpm(self) -> float:
        return self.record.true_charge_price_cpm

    @property
    def is_encrypted(self) -> bool:
        return self.record.is_encrypted


@dataclass
class UserTrafficStats:
    """Per-user aggregate HTTP statistics (Table-4 user features)."""

    requests: int = 0
    bytes_transferred: int = 0
    duration_ms: float = 0.0

    def record(self, row: HttpRequest) -> None:
        self.requests += 1
        self.bytes_transferred += row.bytes_transferred
        self.duration_ms += row.duration_ms


@dataclass
class Weblog:
    """A full simulated dataset: HTTP rows + simulator-private truth."""

    period: Period
    users: list[UserProfile]
    universe: MarketUniverse
    policy: PairEncryptionPolicy
    rows: list[HttpRequest] = field(default_factory=list)
    impressions: list[GroundTruthImpression] = field(default_factory=list)
    stats: dict[str, UserTrafficStats] = field(default_factory=dict)

    def add_row(self, row: HttpRequest) -> None:
        self.rows.append(row)
        self.stats.setdefault(row.user_id, UserTrafficStats()).record(row)

    def add_impression(self, impression: GroundTruthImpression) -> None:
        self.impressions.append(impression)

    def finalize(self) -> None:
        """Sort rows by time (the proxy log is chronological)."""
        self.rows.sort(key=lambda r: r.timestamp)
        self.impressions.sort(key=lambda i: i.record.request.timestamp)

    # -- convenience views ---------------------------------------------------

    def nurl_rows(self) -> Iterator[HttpRequest]:
        """Rows carrying win notifications."""
        return (r for r in self.rows if r.kind == KIND_NURL)

    def user_by_id(self, user_id: str) -> UserProfile:
        for user in self.users:
            if user.user_id == user_id:
                return user
        raise KeyError(user_id)

    @property
    def n_users(self) -> int:
        return len(self.users)

    @property
    def n_rows(self) -> int:
        return len(self.rows)

    @property
    def n_impressions(self) -> int:
        return len(self.impressions)

    def summary(self) -> dict[str, float]:
        """Table-3 style dataset summary."""
        publishers = {
            i.record.request.publisher for i in self.impressions
        }
        iabs = {i.record.request.publisher_iab for i in self.impressions}
        encrypted = sum(1 for i in self.impressions if i.is_encrypted)
        return {
            "users": self.n_users,
            "http_requests": self.n_rows,
            "impressions": self.n_impressions,
            "rtb_publishers": len(publishers),
            "iab_categories": len(iabs),
            "encrypted_impressions": encrypted,
            "encrypted_fraction": (
                encrypted / self.n_impressions if self.n_impressions else 0.0
            ),
            "period_days": self.period.days,
        }
