"""File persistence: weblogs, observations, directories, model packages.

A deployment of this methodology moves four artefacts between
components: raw weblog rows (proxy -> analyzer), a publisher->IAB
directory (categorisation service -> analyzer), price observations
(analyzer -> research), and the model package (PME -> clients).  This
module gives each a simple on-disk format: gzip CSV for the tabular
ones, JSON for the model package.
"""

from __future__ import annotations

import csv
import gzip
import json
from pathlib import Path
from typing import Iterable

from repro.analyzer.interests import PublisherDirectory
from repro.analyzer.pipeline import PriceObservation
from repro.trace.weblog import HttpRequest

_WEBLOG_FIELDS = (
    "timestamp", "user_id", "url", "domain", "user_agent", "kind",
    "bytes_transferred", "duration_ms", "client_ip",
)

_OBSERVATION_FIELDS = (
    "timestamp", "user_id", "adx", "dsp", "is_encrypted", "price_cpm",
    "encrypted_token", "slot_size", "publisher", "publisher_iab", "city",
    "os", "device_type", "context", "campaign_id", "n_url_params",
)


def _open_text(path: str | Path, mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8", newline="")
    return open(path, mode, encoding="utf-8", newline="")


def write_weblog_csv(rows: Iterable[HttpRequest], path: str | Path) -> int:
    """Write weblog rows to (optionally gzipped) CSV; returns row count."""
    count = 0
    with _open_text(path, "w") as handle:
        writer = csv.writer(handle)
        writer.writerow(_WEBLOG_FIELDS)
        for row in rows:
            writer.writerow(
                [
                    repr(row.timestamp), row.user_id, row.url, row.domain,
                    row.user_agent, row.kind, row.bytes_transferred,
                    repr(row.duration_ms), row.client_ip,
                ]
            )
            count += 1
    return count


def _weblog_row_from_record(record: dict[str, str]) -> HttpRequest:
    return HttpRequest(
        timestamp=float(record["timestamp"]),
        user_id=record["user_id"],
        url=record["url"],
        domain=record["domain"],
        user_agent=record["user_agent"],
        kind=record["kind"],
        bytes_transferred=int(record["bytes_transferred"]),
        duration_ms=float(record["duration_ms"]),
        client_ip=record["client_ip"],
    )


def iter_weblog_csv(path: str | Path):
    """Stream weblog rows written by :func:`write_weblog_csv`.

    A generator: one CSV record is in memory at a time, so arbitrarily
    large (gzipped) weblogs can feed the single-pass and sharded
    analyzers without ever being materialised.  Yields
    :class:`HttpRequest` rows in file order.
    """
    with _open_text(path, "r") as handle:
        reader = csv.DictReader(handle)
        missing = set(_WEBLOG_FIELDS) - set(reader.fieldnames or ())
        if missing:
            raise ValueError(f"weblog CSV missing columns: {sorted(missing)}")
        for record in reader:
            yield _weblog_row_from_record(record)


def read_weblog_chunks(
    path: str | Path, chunk_size: int = 50_000
):
    """Stream weblog rows in bounded ``chunk_size`` batches.

    The chunked form of :func:`iter_weblog_csv` for consumers that want
    amortised per-batch dispatch (e.g. feeding a worker pool) while
    still never holding more than one chunk.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    chunk: list[HttpRequest] = []
    for row in iter_weblog_csv(path):
        chunk.append(row)
        if len(chunk) >= chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def read_weblog_csv(path: str | Path) -> list[HttpRequest]:
    """Read weblog rows written by :func:`write_weblog_csv`.

    Materialises the whole file; prefer :func:`iter_weblog_csv` /
    :func:`read_weblog_chunks` on large logs.
    """
    return list(iter_weblog_csv(path))


def write_observations_csv(
    observations: Iterable[PriceObservation], path: str | Path
) -> int:
    """Write analyzer price observations to CSV; returns row count."""
    count = 0
    with _open_text(path, "w") as handle:
        writer = csv.writer(handle)
        writer.writerow(_OBSERVATION_FIELDS)
        for obs in observations:
            writer.writerow(
                [
                    repr(obs.timestamp), obs.user_id, obs.adx, obs.dsp,
                    int(obs.is_encrypted),
                    "" if obs.price_cpm is None else repr(obs.price_cpm),
                    obs.encrypted_token or "", obs.slot_size or "",
                    obs.publisher, obs.publisher_iab, obs.city, obs.os,
                    obs.device_type, obs.context, obs.campaign_id,
                    obs.n_url_params,
                ]
            )
            count += 1
    return count


def read_observations_csv(path: str | Path) -> list[PriceObservation]:
    """Read observations written by :func:`write_observations_csv`."""
    observations = []
    with _open_text(path, "r") as handle:
        reader = csv.DictReader(handle)
        missing = set(_OBSERVATION_FIELDS) - set(reader.fieldnames or ())
        if missing:
            raise ValueError(f"observations CSV missing columns: {sorted(missing)}")
        for record in reader:
            observations.append(
                PriceObservation(
                    timestamp=float(record["timestamp"]),
                    user_id=record["user_id"],
                    adx=record["adx"],
                    dsp=record["dsp"],
                    is_encrypted=bool(int(record["is_encrypted"])),
                    price_cpm=float(record["price_cpm"]) if record["price_cpm"] else None,
                    encrypted_token=record["encrypted_token"] or None,
                    slot_size=record["slot_size"] or None,
                    publisher=record["publisher"],
                    publisher_iab=record["publisher_iab"],
                    city=record["city"],
                    os=record["os"],
                    device_type=record["device_type"],
                    context=record["context"],
                    campaign_id=record["campaign_id"],
                    n_url_params=int(record["n_url_params"]),
                )
            )
    return observations


def write_directory_csv(directory: PublisherDirectory, path: str | Path) -> int:
    """Write a publisher->IAB directory to CSV; returns entry count."""
    entries = directory.items()
    with _open_text(path, "w") as handle:
        writer = csv.writer(handle)
        writer.writerow(("domain", "iab_category"))
        writer.writerows(entries)
    return len(entries)


def read_directory_csv(path: str | Path) -> PublisherDirectory:
    """Read a directory written by :func:`write_directory_csv`."""
    directory = PublisherDirectory()
    with _open_text(path, "r") as handle:
        reader = csv.DictReader(handle)
        for record in reader:
            directory.register(record["domain"], record["iab_category"])
    return directory


def save_model_package(package: dict, path: str | Path) -> None:
    """Write a PME model package as JSON (gzipped when path ends .gz)."""
    text = json.dumps(package)
    path = Path(path)
    if path.suffix == ".gz":
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write(text)
    else:
        path.write_text(text, encoding="utf-8")


def load_model_package(path: str | Path) -> dict:
    """Read a model package written by :func:`save_model_package`."""
    path = Path(path)
    if path.suffix == ".gz":
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            payload = json.load(handle)
    else:
        payload = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or payload.get("kind") != "yav_price_model":
        raise ValueError(f"{path} is not a YourAdValue model package")
    return payload
