"""repro: reproduction of "If you are not paying for it, you are the
product: How much do advertisers pay to reach you?" (IMC 2017).

A complete, self-contained implementation of the paper's system plus
every substrate it depends on:

* :mod:`repro.rtb` -- the RTB ecosystem (exchanges, DSPs, second-price
  auctions, nURLs, 28-byte price encryption, cookie sync);
* :mod:`repro.trace` -- a generative mobile weblog standing in for the
  paper's proprietary year-long trace of 1,594 users;
* :mod:`repro.analyzer` -- the Weblog Ads Analyzer (blacklist
  classification, nURL detection, feature extraction);
* :mod:`repro.ml` -- from-scratch Random Forests, CV, metrics;
* :mod:`repro.stats` -- summaries, KS tests, sample-size design;
* :mod:`repro.core` -- the Price Modeling Engine, the encrypted-price
  model, per-user cost computation, and the YourAdValue client.

Quickstart::

    from repro import quickstart_pipeline
    result = quickstart_pipeline()
    print(result["summary"].headline())
"""

from repro.core import (
    EncryptedPriceModel,
    Estimator,
    PriceModelingEngine,
    YourAdValue,
    compute_user_costs,
)
from repro.analyzer import PublisherDirectory, WeblogAnalyzer
from repro.trace import SimulationConfig, simulate_dataset, small_config

__version__ = "1.0.0"

__all__ = [
    "PriceModelingEngine",
    "EncryptedPriceModel",
    "Estimator",
    "YourAdValue",
    "compute_user_costs",
    "WeblogAnalyzer",
    "PublisherDirectory",
    "SimulationConfig",
    "simulate_dataset",
    "small_config",
    "quickstart_pipeline",
    "__version__",
]


def quickstart_pipeline(
    seed: int = 7, scale: float = 0.03, workers: int | None = 1,
    chunk_size: int | None = None, splitter: str = "exact",
) -> dict:
    """Run the whole methodology end-to-end at a small scale.

    Simulates a scaled dataset D, analyses it, runs scaled probe
    campaigns, trains the price model, computes per-user costs, and
    replays one user's traffic through a YourAdValue client.  Returns a
    dict with the main artefacts; see ``examples/quickstart.py`` for a
    narrated version.  ``workers`` parallelises both the analyzer scan
    (sharded by user) and the forest training step; any value is
    bit-identical to ``workers=1``.  ``chunk_size`` bounds the rows per
    analyzer task.  ``splitter`` picks the forest split engine --
    ``"exact"`` (default) or the pre-binned ``"hist"`` histogram engine
    (faster at scale, statistically equivalent; see DESIGN.md §8).  Run
    under ``with repro.obs.start_trace(...):`` to
    capture the per-stage span tree.
    """
    from repro import obs
    from repro.trace import build_market, default_config
    from repro.util.rng import RngRegistry

    config = default_config().scaled(scale)
    with obs.stage("quickstart.simulate", scale=scale):
        dataset = simulate_dataset(config)
    directory = PublisherDirectory.from_universe(dataset.universe)
    analyzer = WeblogAnalyzer(directory)
    analysis = analyzer.analyze(
        dataset.rows, workers=workers, chunk_size=chunk_size
    )

    pme = PriceModelingEngine(seed=seed)
    pme.bootstrap(analysis, use_paper_features=True)
    market = build_market(config, RngRegistry(config.seed))
    pme.run_probe_campaigns(market, auctions_per_setup=max(10, int(185 * scale)))
    model = pme.train_model(evaluate=False, workers=workers, splitter=splitter)
    from repro.core.pme import mopub_cleartext_prices

    pme.compute_time_correction(mopub_cleartext_prices(analysis))
    # Score costs with the *packaged* model -- the exact artefact
    # clients download -- so the backend cost table and the YourAdValue
    # ledger agree bit-for-bit: both apply the packaged time-correction
    # coefficient to encrypted estimates (cleartext sums are corrected
    # inside compute_user_costs as before).
    package = pme.package_model()
    estimator = Estimator.from_package(package)
    with obs.stage("quickstart.user_costs", users=config.n_users):
        costs = compute_user_costs(analysis, estimator, pme.state.time_correction)

    client = YourAdValue(package, directory)
    heaviest = max(costs.values(), key=lambda c: c.total_cpm).user_id
    client.observe_many(r for r in dataset.rows if r.user_id == heaviest)

    return {
        "dataset": dataset,
        "analysis": analysis,
        "pme": pme,
        "model": model,
        "estimator": estimator,
        "costs": costs,
        "client": client,
        "summary": client.summary(),
    }
