"""The unified estimation facade: one entry point for price estimates.

Historically the code base grew four parallel inference entry points on
:class:`repro.core.price_model.EncryptedPriceModel` -- ``estimate``,
``estimate_one``, ``predict_proba`` and ``explain_one`` -- each encoding
rows, walking the forest and applying the section-6.2 time correction
with slightly different plumbing.  :class:`Estimator` collapses them
into a single facade:

* :meth:`Estimator.estimate` takes a batch of feature rows and returns
  an :class:`EstimateResult` carrying **everything the legacy methods
  produced in one pass**: per-row CPM estimates, predicted classes, the
  full class-probability matrix, the time-correction coefficient, and
  the observability spans recorded while computing them.
* :meth:`Estimator.explain` produces the user-facing "why this price?"
  payload that used to live in ``explain_one``.

Bit-identity contract: the legacy path computed ``binner.estimate(
argmax(predict_proba(x))) * time_correction``; the facade computes the
same probability matrix once and derives classes and prices from it,
so ``EstimateResult.prices`` is bit-identical to the deprecated
``estimate`` / ``estimate_one`` results (a tier-1 test holds both paths
to equality).  The legacy methods survive as thin delegating shims that
raise :class:`DeprecationWarning`.

Observability: every call runs under a local ``estimator.estimate``
trace with ``estimator.encode`` / ``forest.inference`` /
``estimator.time_correction`` child spans.  When an outer trace is
active (a serve micro-batch flush, ``repro pipeline``), the local spans
nest directly under the caller's current span, so a request trace shows
the estimator's internal phase split without any extra wiring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Mapping, Sequence

import numpy as np

from repro import obs
from repro.core.price_model import EncryptedPriceModel
from repro.util.validation import reject_legacy_kwargs, require_positive

__all__ = ["EstimateResult", "Estimator"]


@dataclass(frozen=True)
class EstimateResult:
    """One batch estimation: prices, classes, probabilities, spans.

    ``prices`` is the time-corrected CPM estimate per row (the legacy
    ``estimate`` return value); ``classes`` the predicted price class
    per row; ``proba`` the ``(n_rows, n_classes)`` forest probability
    matrix; ``time_correction`` the multiplicative drift coefficient
    already applied to ``prices``; ``spans`` the finished span records
    (flat dicts, JSON-serialisable) of the internal phases.
    """

    prices: np.ndarray
    classes: np.ndarray
    proba: np.ndarray
    time_correction: float
    spans: tuple[dict, ...] = field(default=())

    def __len__(self) -> int:
        return int(self.prices.shape[0])

    def price_of(self, index: int) -> float:
        """The scalar CPM estimate for one row (legacy ``estimate_one``)."""
        return float(self.prices[index])

    def to_dict(self) -> dict:
        """JSON-friendly form (serve responses, CLI output)."""
        return {
            "prices": [float(p) for p in self.prices],
            "classes": [int(c) for c in self.classes],
            "proba": [[float(p) for p in row] for row in self.proba],
            "time_correction": float(self.time_correction),
        }


class Estimator:
    """Facade over a fitted :class:`EncryptedPriceModel`.

    Wraps (does not copy) the model: hot-reloading a new package means
    building a new ``Estimator`` around the new model, which is what
    :func:`repro.serve.store.build_snapshot` does.
    """

    __slots__ = ("model",)

    def __init__(self, model: EncryptedPriceModel):
        if not isinstance(model, EncryptedPriceModel):
            raise TypeError(
                f"Estimator wraps an EncryptedPriceModel, got {type(model).__name__}"
            )
        self.model = model

    @classmethod
    def from_package(cls, payload: dict) -> "Estimator":
        """Build the facade straight from a YourAdValue model package."""
        return cls(EncryptedPriceModel.from_package(payload))

    # -- convenience passthroughs ------------------------------------------

    @property
    def feature_names(self) -> list[str]:
        return self.model.feature_names

    @property
    def time_correction(self) -> float:
        return self.model.time_correction

    def to_package(self, version: int = 1) -> dict:
        return self.model.to_package(version=version)

    # -- estimation --------------------------------------------------------

    def estimate(
        self,
        rows: Sequence[Mapping[str, Hashable]],
        *,
        chunk_size: int | None = None,
        **legacy: Any,
    ) -> EstimateResult:
        """Estimate CPMs for a batch of feature rows.

        ``chunk_size`` optionally bounds how many rows are encoded and
        routed through the forest per pass (memory control for very
        large batches); results are bit-identical for any chunking
        because encoding and inference are row-independent.
        """
        reject_legacy_kwargs("Estimator.estimate", legacy)
        if chunk_size is not None:
            require_positive(chunk_size, "chunk_size")
        rows = list(rows)
        model = self.model
        with obs.stage(
            "estimator.estimate", rows=len(rows), model_features=len(model.feature_names)
        ) as st:
            collector = obs.active_trace()
            mark = len(collector.records) if collector is not None else 0
            proba_parts: list[np.ndarray] = []
            step = chunk_size if chunk_size is not None else max(1, len(rows))
            for lo in range(0, len(rows), step):
                chunk = rows[lo : lo + step]
                with obs.span("estimator.encode", rows=len(chunk)):
                    x = model.encoder.transform(chunk)
                with obs.span("forest.inference", rows=len(chunk)):
                    proba_parts.append(model.forest.predict_proba(x))
            if proba_parts:
                proba = (
                    proba_parts[0]
                    if len(proba_parts) == 1
                    else np.concatenate(proba_parts, axis=0)
                )
            else:
                proba = np.zeros((0, model.binner.n_classes), dtype=float)
            with obs.span("estimator.time_correction", tc=model.time_correction):
                classes = (
                    np.argmax(proba, axis=1)
                    if proba.shape[0]
                    else np.zeros(0, dtype=int)
                )
                prices = model.binner.estimate(classes) * model.time_correction
            st.set(mean_cpm=float(prices.mean()) if len(prices) else 0.0)
            spans: tuple[dict, ...] = ()
            if collector is not None:
                spans = tuple(r.to_dict() for r in collector.records[mark:])
        return EstimateResult(
            prices=prices,
            classes=classes,
            proba=proba,
            time_correction=model.time_correction,
            spans=spans,
        )

    def estimate_one(self, row: Mapping[str, Hashable]) -> float:
        """Scalar convenience: the CPM estimate for one feature row."""
        return self.estimate([row]).price_of(0)

    def explain(self, row: Mapping[str, Hashable]) -> dict:
        """The user-facing "why this price?" payload for one row.

        Same shape the deprecated ``EncryptedPriceModel.explain_one``
        returned: predicted class, representative CPM (time-corrected),
        class probabilities, top feature importances, and the decision
        path of the first member tree.
        """
        model = self.model
        with obs.stage("estimator.explain"):
            x = model.encoder.transform([row])
            probs = model.forest.predict_proba(x)[0]
            cls = int(np.argmax(probs))
            path = [
                {
                    "feature": model.feature_names[feature],
                    "threshold": threshold,
                    "went_left": went_left,
                    "value": row.get(model.feature_names[feature]),
                }
                for feature, threshold, went_left in model.forest.trees_[
                    0
                ].decision_path(x[0])
            ]
            importances = model.forest.feature_importances_
            top = []
            if importances is not None:
                order = np.argsort(importances)[::-1][:5]
                top = [
                    {
                        "feature": model.feature_names[i],
                        "importance": float(importances[i]),
                    }
                    for i in order
                ]
        return {
            "predicted_class": cls,
            "estimated_cpm": float(
                model.binner.representative(cls) * model.time_correction
            ),
            "class_probabilities": [float(p) for p in probs],
            "top_features": top,
            "decision_path": path,
        }
