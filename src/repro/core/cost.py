"""Per-user advertiser cost: V_u = C_u + E_u (paper sections 3.1, 6.2).

Given an analyzer pass over a weblog and a trained price model, compute
for every user the cleartext sum C_u, the estimated encrypted sum E_u,
the optional time-corrected cleartext sum, and the total V_u -- the
quantities behind Figures 17, 18 and 19.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.analyzer.pipeline import AnalysisResult, PriceObservation
from repro.core.estimator import Estimator
from repro.core.price_model import EncryptedPriceModel


def _as_estimator(model: EncryptedPriceModel | Estimator) -> Estimator:
    """Accept either the raw model or the facade; estimate via the facade."""
    return model if isinstance(model, Estimator) else Estimator(model)


@dataclass(frozen=True)
class UserCost:
    """One user's advertiser cost over the observation period.

    All sums are in CPM units (divide by 1000 for dollars), following
    the paper's presentation.
    """

    user_id: str
    cleartext_cpm: float
    cleartext_corrected_cpm: float
    encrypted_estimated_cpm: float
    n_cleartext: int
    n_encrypted: int

    @property
    def total_cpm(self) -> float:
        """V_u: time-corrected cleartext plus estimated encrypted."""
        return self.cleartext_corrected_cpm + self.encrypted_estimated_cpm

    @property
    def total_uncorrected_cpm(self) -> float:
        return self.cleartext_cpm + self.encrypted_estimated_cpm

    @property
    def n_impressions(self) -> int:
        return self.n_cleartext + self.n_encrypted

    @property
    def avg_cleartext_cpm(self) -> float:
        return self.cleartext_cpm / self.n_cleartext if self.n_cleartext else 0.0

    @property
    def avg_encrypted_cpm(self) -> float:
        return (
            self.encrypted_estimated_cpm / self.n_encrypted
            if self.n_encrypted
            else 0.0
        )

    @property
    def encrypted_uplift(self) -> float:
        """E_u as a fraction of C_u (the paper's ~55% average add-on)."""
        if self.cleartext_corrected_cpm <= 0:
            return float("inf") if self.encrypted_estimated_cpm > 0 else 0.0
        return self.encrypted_estimated_cpm / self.cleartext_corrected_cpm


def observation_features(obs: PriceObservation) -> dict:
    """The S-feature dict of one observation (model input)."""
    from repro.util.timeutil import day_of_week, hour_of

    return {
        "context": obs.context,
        "device_type": obs.device_type,
        "city": obs.city,
        "time_of_day": hour_of(obs.timestamp) // 4,
        "day_of_week": day_of_week(obs.timestamp),
        "slot_size": obs.slot_size or "unknown",
        "publisher_iab": obs.publisher_iab,
        "adx": obs.adx,
        "os": obs.os,
        "publisher": obs.publisher,
    }


def compute_user_costs(
    analysis: AnalysisResult,
    model: EncryptedPriceModel | Estimator,
    time_correction: float = 1.0,
) -> dict[str, UserCost]:
    """Tally every user's C_u and estimate their E_u.

    Encrypted estimates are batched through the estimation facade for
    speed; the time-correction coefficient scales cleartext sums from
    the weblog's year to campaign time (paper section 6.2).
    """
    if time_correction <= 0:
        raise ValueError("time_correction must be positive")

    cleartext_sum: dict[str, float] = defaultdict(float)
    cleartext_n: dict[str, int] = defaultdict(int)
    encrypted_sum: dict[str, float] = defaultdict(float)
    encrypted_n: dict[str, int] = defaultdict(int)

    encrypted_obs = analysis.encrypted()
    if encrypted_obs:
        rows = [observation_features(o) for o in encrypted_obs]
        estimates = _as_estimator(model).estimate(rows).prices
        for obs, estimate in zip(encrypted_obs, estimates):
            encrypted_sum[obs.user_id] += float(estimate)
            encrypted_n[obs.user_id] += 1

    for obs in analysis.cleartext():
        cleartext_sum[obs.user_id] += obs.price_cpm
        cleartext_n[obs.user_id] += 1

    user_ids = set(cleartext_sum) | set(encrypted_sum)
    return {
        uid: UserCost(
            user_id=uid,
            cleartext_cpm=cleartext_sum[uid],
            cleartext_corrected_cpm=cleartext_sum[uid] * time_correction,
            encrypted_estimated_cpm=encrypted_sum[uid],
            n_cleartext=cleartext_n[uid],
            n_encrypted=encrypted_n[uid],
        )
        for uid in sorted(user_ids)
    }


@dataclass(frozen=True)
class CostDistribution:
    """Population-level summary of user costs (Figure 17's CDFs)."""

    cleartext: np.ndarray
    cleartext_corrected: np.ndarray
    encrypted: np.ndarray
    total: np.ndarray

    @classmethod
    def from_costs(cls, costs: dict[str, UserCost]) -> "CostDistribution":
        values = list(costs.values())
        return cls(
            cleartext=np.array([c.cleartext_cpm for c in values]),
            cleartext_corrected=np.array(
                [c.cleartext_corrected_cpm for c in values]
            ),
            encrypted=np.array([c.encrypted_estimated_cpm for c in values]),
            total=np.array([c.total_cpm for c in values]),
        )

    def median_total(self) -> float:
        return float(np.median(self.total))

    def fraction_below(self, threshold_cpm: float) -> float:
        return float(np.mean(self.total < threshold_cpm))

    def fraction_in(self, low: float, high: float) -> float:
        return float(np.mean((self.total >= low) & (self.total < high)))

    def average_encrypted_uplift(self) -> float:
        """Mean E_u / corrected-C_u across users with both kinds."""
        mask = (self.cleartext_corrected > 0) & (self.encrypted > 0)
        if not mask.any():
            return 0.0
        return float(
            np.mean(self.encrypted[mask] / self.cleartext_corrected[mask])
        )


@dataclass(frozen=True)
class ExchangeRevenue:
    """One exchange's estimated RTB revenue over the observation window.

    The paper's discussion (section 8) proposes exactly this use:
    "tax auditors could estimate ad-companies' revenues, and detect
    discrepancies from their tax declarations in an independent and
    transparent way".  Sums are CPM units (divide by 1000 for dollars).
    """

    adx: str
    cleartext_cpm: float
    encrypted_estimated_cpm: float
    n_cleartext: int
    n_encrypted: int

    @property
    def total_cpm(self) -> float:
        return self.cleartext_cpm + self.encrypted_estimated_cpm

    @property
    def total_usd(self) -> float:
        return self.total_cpm / 1000.0


def exchange_revenue_estimates(
    analysis: AnalysisResult,
    model: EncryptedPriceModel | Estimator,
) -> dict[str, ExchangeRevenue]:
    """Estimate every exchange's revenue from observed notifications.

    Cleartext prices sum directly; encrypted ones are estimated through
    the model -- giving an external auditor a per-company revenue figure
    nobody had to disclose.
    """
    clr_sum: dict[str, float] = defaultdict(float)
    clr_n: dict[str, int] = defaultdict(int)
    enc_sum: dict[str, float] = defaultdict(float)
    enc_n: dict[str, int] = defaultdict(int)

    for obs in analysis.cleartext():
        clr_sum[obs.adx] += obs.price_cpm
        clr_n[obs.adx] += 1

    encrypted_obs = analysis.encrypted()
    if encrypted_obs:
        rows = [observation_features(o) for o in encrypted_obs]
        estimates = _as_estimator(model).estimate(rows).prices
        for obs, estimate in zip(encrypted_obs, estimates):
            enc_sum[obs.adx] += float(estimate)
            enc_n[obs.adx] += 1

    return {
        adx: ExchangeRevenue(
            adx=adx,
            cleartext_cpm=clr_sum[adx],
            encrypted_estimated_cpm=enc_sum[adx],
            n_cleartext=clr_n[adx],
            n_encrypted=enc_n[adx],
        )
        for adx in sorted(set(clr_sum) | set(enc_sum))
    }


def estimation_accuracy(
    analysis: AnalysisResult,
    model: EncryptedPriceModel | Estimator,
    true_prices_by_token: dict[str, float],
) -> dict[str, float]:
    """Score encrypted estimates against simulator ground truth.

    ``true_prices_by_token`` maps encrypted tokens to the true charge
    price (available in the reproduction because we own the simulator;
    the paper had this only for its own campaign traffic).  Returns the
    class-level accuracy and price-level errors.
    """
    encrypted_obs = [
        o for o in analysis.encrypted() if o.encrypted_token in true_prices_by_token
    ]
    if not encrypted_obs:
        raise ValueError("no encrypted observations with known ground truth")
    rows = [observation_features(o) for o in encrypted_obs]
    estimator = _as_estimator(model)
    result = estimator.estimate(rows)
    estimates = result.prices
    truths = np.array(
        [true_prices_by_token[o.encrypted_token] for o in encrypted_obs]
    )
    true_classes = estimator.model.binner.assign(truths)
    pred_classes = result.classes
    abs_log_err = np.abs(np.log(estimates) - np.log(truths))
    return {
        "n": len(encrypted_obs),
        "class_accuracy": float(np.mean(true_classes == pred_classes)),
        "median_abs_log_error": float(np.median(abs_log_err)),
        "total_true_cpm": float(truths.sum()),
        "total_estimated_cpm": float(estimates.sum()),
        "total_ratio": float(estimates.sum() / truths.sum()),
    }
