"""Probe ad-campaigns: ground truth for encrypted prices (section 5.2/5.3).

The paper buys real impressions through a DSP to learn what encrypted
charge prices look like: campaign A1 sweeps 144 experimental setups
(Table 5) across the four price-encrypting exchanges; campaign A2
re-runs the same setups on MoPub (cleartext) to anchor the cleartext
distribution at campaign time and derive the 2015->2016 time shift.

Our executor joins a probe DSP to the simulated market for the
campaign window.  Because auctions clear at the *second* price, bidding
aggressively ("as low or high as needed to get the minimum of
impressions delivered", as the paper instructed its DSP) wins volume
without distorting the charge prices observed -- the probe pays the
competing market's price, which is exactly the quantity being sampled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from repro.rtb.adslots import CAMPAIGN_PHONE_SIZES, CAMPAIGN_TABLET_SIZES
from repro.rtb.bidding import Dsp, FeatureBidEngine
from repro.rtb.campaign import CAMPAIGN_DAYPARTS, Campaign, TargetingSpec
from repro.rtb.entities import ENCRYPTING_ADXS
from repro.rtb.openrtb import BidRequest
from repro.trace.geography import CAMPAIGN_CITIES
from repro.trace.simulate import MarketState
from repro.util.rng import RngRegistry, derive_seed
from repro.util.timeutil import (
    CAMPAIGN_A1_PERIOD,
    CAMPAIGN_A2_PERIOD,
    Period,
    day_of_week,
    epoch,
    hour_of,
)

PROBE_DSP_NAME = "ProbeDSP"
PROBE_ADVERTISER = "DataTransparencyNGO"

#: Bid cap the paper gave its DSP to protect the budget.  Set above the
#: effective market range: a tight cap would make the probe lose exactly
#: the high-value auctions and truncate the sampled price distribution.
PROBE_MAX_BID_CPM = 60.0

#: Probe bids above market value to win volume; second-price clearing
#: keeps the paid prices unbiased by our own bid level.
PROBE_AGGRESSIVENESS = 2.2


@dataclass(frozen=True)
class ProbeSetup:
    """One Table-5 experimental setup."""

    setup_id: str
    city: str
    context: str          # "app" | "web"
    daypart: str
    day_type: str         # "weekday" | "weekend"
    device_type: str
    os: str
    slot_size: str
    adx: str

    def targeting(self) -> TargetingSpec:
        return TargetingSpec(
            cities=frozenset({self.city}),
            contexts=frozenset({self.context}),
            dayparts=frozenset({self.daypart}),
            day_types=frozenset({self.day_type}),
            device_types=frozenset({self.device_type}),
            oses=frozenset({self.os}),
            slot_sizes=frozenset({self.slot_size}),
            adxs=frozenset({self.adx}),
        )


def build_probe_setups(adxs: tuple[str, ...]) -> list[ProbeSetup]:
    """The paper's 144 experimental setups (Table 5).

    The full grid of cities x interaction x daypart x day-type x
    ad-format is 4 x 2 x 3 x 2 x 3 = 144; device class follows the
    format (tablet formats imply tablets), and OS / target exchange
    rotate deterministically through the grid so every combination is
    represented without exploding the budget.
    """
    setups: list[ProbeSetup] = []
    index = 0
    for city in CAMPAIGN_CITIES:
        for context in ("app", "web"):
            for daypart in CAMPAIGN_DAYPARTS:
                for day_type in ("weekday", "weekend"):
                    for fmt_idx in range(3):
                        tablet = index % 4 == 3
                        slot = (
                            CAMPAIGN_TABLET_SIZES[fmt_idx]
                            if tablet
                            else CAMPAIGN_PHONE_SIZES[fmt_idx]
                        )
                        setups.append(
                            ProbeSetup(
                                setup_id=f"setup-{index:03d}",
                                city=city,
                                context=context,
                                daypart=daypart,
                                day_type=day_type,
                                device_type="tablet" if tablet else "smartphone",
                                os="iOS" if index % 2 else "Android",
                                slot_size=slot,
                                adx=adxs[index % len(adxs)],
                            )
                        )
                        index += 1
    return setups


@dataclass(frozen=True)
class ProbeImpression:
    """One impression the probe campaign won (a performance-report row)."""

    setup_id: str
    charge_price_cpm: float
    request: BidRequest
    encrypted_channel: bool

    def feature_row(self) -> dict[str, Hashable]:
        """The S-feature dict for model training.

        These come from the DSP's own performance report (we know our
        targeting and the delivered context), so they are ground truth
        by construction -- matching how the paper trains on campaign
        reports rather than on observer-side parses.
        """
        req = self.request
        return {
            "context": req.context,
            "device_type": req.device.device_type,
            "city": req.geo.city,
            "time_of_day": hour_of(req.timestamp) // 4,
            "day_of_week": day_of_week(req.timestamp),
            "slot_size": req.imp.slot_size.label,
            "publisher_iab": req.publisher_iab,
            "adx": req.adx,
            "os": req.device.os,
            "publisher": req.publisher,
        }


class RecordingDsp(Dsp):
    """A DSP that logs every win as a performance-report row."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.reports: list[tuple[str, float, BidRequest | None]] = []

    def notify_win(
        self,
        campaign_id: str,
        charge_price_cpm: float,
        request: BidRequest | None = None,
    ) -> None:
        super().notify_win(campaign_id, charge_price_cpm, request=request)
        self.reports.append((campaign_id, charge_price_cpm, request))


@dataclass
class CampaignResult:
    """Everything one probe campaign produced."""

    name: str
    period: Period
    adxs: tuple[str, ...]
    setups: list[ProbeSetup]
    impressions: list[ProbeImpression] = field(default_factory=list)

    def prices(self) -> np.ndarray:
        return np.array([imp.charge_price_cpm for imp in self.impressions])

    def feature_rows(self) -> list[dict[str, Hashable]]:
        return [imp.feature_row() for imp in self.impressions]

    def prices_by_iab(self) -> dict[str, list[float]]:
        """Charge prices grouped by publisher IAB (Figure 15)."""
        groups: dict[str, list[float]] = {}
        for imp in self.impressions:
            groups.setdefault(imp.request.publisher_iab, []).append(
                imp.charge_price_cpm
            )
        return groups

    def impressions_per_setup(self) -> dict[str, int]:
        counts: dict[str, int] = {s.setup_id: 0 for s in self.setups}
        for imp in self.impressions:
            counts[imp.setup_id] = counts.get(imp.setup_id, 0) + 1
        return counts

    def publishers_reached(self) -> int:
        return len({imp.request.publisher for imp in self.impressions})

    def summary(self) -> dict[str, float]:
        """Table-3 style campaign summary."""
        prices = self.prices()
        return {
            "impressions": len(self.impressions),
            "publishers": self.publishers_reached(),
            "iab_categories": len(self.prices_by_iab()),
            "period_days": self.period.days,
            "median_cpm": float(np.median(prices)) if prices.size else 0.0,
            "mean_cpm": float(prices.mean()) if prices.size else 0.0,
        }


def _sample_setup_timestamp(
    setup: ProbeSetup, period: Period, rng: np.random.Generator
) -> float:
    """A timestamp inside the period matching the setup's daypart and
    day type, hour-weighted by the browsing diurnal profile."""
    from repro.trace.browsing import HOURLY_WEIGHTS
    from repro.util.timeutil import SECONDS_PER_DAY, is_weekend

    n_days = max(1, int(period.days))
    day_offsets = [
        d
        for d in range(n_days)
        if (
            is_weekend(period.start + d * SECONDS_PER_DAY)
            == (setup.day_type == "weekend")
        )
    ]
    if not day_offsets:  # period too short for the requested day type
        day_offsets = list(range(n_days))
    day = day_offsets[int(rng.integers(0, len(day_offsets)))]

    if setup.daypart == "12am-9am":
        hours = list(range(0, 9))
    elif setup.daypart == "9am-6pm":
        hours = list(range(9, 18))
    else:
        hours = list(range(18, 24))
    weights = np.array([HOURLY_WEIGHTS[h] for h in hours])
    hour = hours[int(rng.choice(len(hours), p=weights / weights.sum()))]
    ts = (
        period.start
        + day * SECONDS_PER_DAY
        + hour * 3600
        + float(rng.uniform(0, 3600))
    )
    return min(ts, period.end - 1.0)


def _audience_member(
    setup: ProbeSetup, index: int, rng: np.random.Generator
):
    """A synthetic audience user matching the setup's city/device/OS.

    The campaign reaches far beyond the 1,594 weblog volunteers; the
    exchange routes us *matching* users, which is what this models.
    """
    from repro.trace.devices import DeviceProfile
    from repro.trace.geography import assign_ip, city_by_name
    from repro.trace.population import UserProfile, sample_interests

    city = city_by_name(setup.city)
    if setup.os == "Android":
        model = "SM-T530" if setup.device_type == "tablet" else "SM-G920F"
        version = "5.1.1"
    else:
        model = "iPad4,1" if setup.device_type == "tablet" else "iPhone7,2"
        version = "9.0.2"
    device = DeviceProfile(
        os=setup.os,
        device_type=setup.device_type,
        model=model,
        os_version=version,
    )
    return UserProfile(
        user_id=f"aud-{setup.setup_id}-{index:05d}",
        city=city,
        device=device,
        ip=assign_ip(city, rng),
        interests=sample_interests(rng),
        activity=1.0,
        app_fraction=1.0 if setup.context == "app" else 0.0,
    )


def run_probe_campaign(
    market: MarketState,
    name: str,
    period: Period,
    adxs: tuple[str, ...],
    auctions_per_setup: int,
    encrypted_channel: bool,
    seed: int,
) -> CampaignResult:
    """Execute one probe campaign against the simulated market.

    For each Table-5 setup the exchange routes ``auctions_per_setup``
    matching auction opportunities to the probe DSP (real DSP buying
    works this way: you do not wait for random traffic, the ADX serves
    you the inventory your targeting asks for).  Every auction is still
    contested by the full resident DSP population, so the charge price
    the probe pays is the competing market's second price -- the
    quantity the campaign exists to sample.

    ``encrypted_channel`` pins the probe's notification channel with the
    target exchanges (A1's exchanges encrypt, A2's MoPub is cleartext);
    ground-truth prices come from the DSP performance reports either
    way.
    """
    from repro.rtb.openrtb import BidRequest, Device, Geo, Impression, UserInfo
    from repro.rtb.adslots import AdSlotSize
    from repro.rtb.cookiesync import synced_uid
    from repro.trace.browsing import PublisherChooser
    rngs = RngRegistry(derive_seed(seed, f"campaign:{name}"))
    rng = rngs.get("traffic")
    setups = build_probe_setups(adxs)
    campaigns = {
        s.setup_id: Campaign(
            campaign_id=f"{name}-{s.setup_id}",
            advertiser=PROBE_ADVERTISER,
            targeting=s.targeting(),
            max_bid_cpm=PROBE_MAX_BID_CPM,
        )
        for s in setups
    }
    probe = RecordingDsp(
        PROBE_DSP_NAME,
        FeatureBidEngine(
            value_model=market.value_model,
            noise_sigma=0.20,
            aggressiveness=PROBE_AGGRESSIVENESS,
        ),
        rngs.get("probe-dsp"),
        campaigns=list(campaigns.values()),
    )
    for adx in market.exchanges:
        market.policy.set_adoption(
            adx,
            PROBE_DSP_NAME,
            epoch(2014, 1, 1) if (encrypted_channel and adx in adxs) else None,
        )

    chooser = PublisherChooser(market.universe)
    dsps = market.dsps + [probe]
    auction_seq = 0
    for setup in setups:
        exchange = market.exchanges[setup.adx]
        for k in range(auctions_per_setup):
            user = _audience_member(setup, k, rng)
            ts = _sample_setup_timestamp(setup, period, rng)
            is_app = setup.context == "app"
            publisher = chooser.choose(rng, user, is_app)
            auction_seq += 1
            auction_id = f"{name}-{auction_seq:08d}"
            request = BidRequest(
                auction_id=auction_id,
                timestamp=ts,
                imp=Impression(
                    impression_id=f"{auction_id}-i0",
                    slot_size=AdSlotSize.parse(setup.slot_size),
                ),
                publisher=publisher.domain,
                publisher_iab=publisher.iab_category,
                device=Device(
                    os=user.device.os,
                    device_type=user.device.device_type,
                    user_agent=user.device.user_agent(is_app),
                    ip=user.ip,
                ),
                geo=Geo(country="ES", city=user.city.name),
                user=UserInfo(exchange_uid=synced_uid(setup.adx, user.user_id)),
                is_app=is_app,
                adx=setup.adx,
            )
            exchange.run_auction(request, dsps, market.policy)

    campaign_to_setup = {f"{name}-{s.setup_id}": s.setup_id for s in setups}
    impressions = [
        ProbeImpression(
            setup_id=campaign_to_setup[campaign_id],
            charge_price_cpm=price,
            request=request,
            encrypted_channel=encrypted_channel,
        )
        for campaign_id, price, request in probe.reports
        if request is not None and campaign_id in campaign_to_setup
    ]
    return CampaignResult(
        name=name,
        period=period,
        adxs=adxs,
        setups=setups,
        impressions=impressions,
    )


#: Paper-guided per-setup impression target (section 5.2: >=185
#: impressions bound the within-campaign error at 0.1 CPM).
DEFAULT_AUCTIONS_PER_SETUP = 185


def run_campaign_a1(
    market: MarketState,
    seed: int,
    auctions_per_setup: int = DEFAULT_AUCTIONS_PER_SETUP,
) -> CampaignResult:
    """Campaign A1: the four encrypting exchanges, May 2016 (13 days)."""
    return run_probe_campaign(
        market,
        name="A1",
        period=CAMPAIGN_A1_PERIOD,
        adxs=tuple(ENCRYPTING_ADXS),
        auctions_per_setup=auctions_per_setup,
        encrypted_channel=True,
        seed=seed,
    )


def run_campaign_a2(
    market: MarketState,
    seed: int,
    auctions_per_setup: int = DEFAULT_AUCTIONS_PER_SETUP,
) -> CampaignResult:
    """Campaign A2: same setups, MoPub only (cleartext), June 2016."""
    return run_probe_campaign(
        market,
        name="A2",
        period=CAMPAIGN_A2_PERIOD,
        adxs=("MoPub",),
        auctions_per_setup=auctions_per_setup,
        encrypted_channel=False,
        seed=seed,
    )
