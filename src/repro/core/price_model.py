"""The encrypted-price estimation model (paper section 5.4).

A Random Forest classifier over 4 log-price classes, trained on probe
campaign ground truth, estimating each encrypted notification's price
as the representative (median) CPM of the predicted class.  The paper
first tried regression and found the high price variability defeats it;
``regression_baseline`` reproduces that negative result.

``ModelPackage`` is the JSON artefact the PME ships to YourAdValue
clients: selected features, category vocabulary, the tree ensemble and
class representatives -- everything needed to estimate prices client-
side with no training code.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.core.binning import PriceBinner, fit_price_binner
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.metrics import (
    r2_score,
    root_mean_squared_error,
)
from repro.ml.model_selection import CrossValidationResult, cross_validate_classifier
from repro.ml.preprocessing import FrameEncoder
from repro.ml.serialize import forest_from_dict, forest_to_dict
from repro.util.rng import derive_seed

#: The paper's published figures for the selected model (section 5.4),
#: used by tests/benches as reproduction targets.
PAPER_TP_RATE = 0.829
PAPER_FP_RATE = 0.068
PAPER_PRECISION = 0.835
PAPER_RECALL = 0.829
PAPER_AUCROC = 0.964


@dataclass
class EncryptedPriceModel:
    """A fitted price estimator: features -> estimated CPM.

    ``time_correction`` is the PME's section-6.2 drift coefficient: a
    multiplicative correction applied to every CPM estimate.  A model
    trained in-process carries the neutral ``1.0``; a model loaded from
    a PME package (:meth:`from_package`) carries whatever coefficient
    the PME stamped into the package, so packaged-then-loaded models
    produce time-corrected estimates everywhere -- the YourAdValue
    ledger, the serve ``/estimate`` path, batch scoring.
    """

    feature_names: list[str]
    encoder: FrameEncoder
    binner: PriceBinner
    forest: RandomForestClassifier
    time_correction: float = 1.0

    @classmethod
    def train(
        cls,
        feature_rows: Sequence[Mapping[str, Hashable]],
        prices: Sequence[float],
        feature_names: Sequence[str] | None = None,
        n_classes: int = 4,
        n_estimators: int = 60,
        max_depth: int = 18,
        seed: int = 0,
        workers: int | None = 1,
        splitter: str = "exact",
    ) -> "EncryptedPriceModel":
        """Fit the binner, encoder and forest on campaign ground truth.

        ``workers`` parallelises forest training across a process pool
        (one member tree per task); any value is bit-identical to
        ``workers=1`` -- see :class:`repro.ml.forest.RandomForestClassifier`.
        ``splitter`` picks the split-search engine: ``"exact"`` (the
        default, sorted-scan over every candidate threshold) or
        ``"hist"`` (pre-binned histogram engine -- much faster on the
        paper-scale weblog matrices, statistically equivalent quality).
        """
        if len(feature_rows) != len(prices):
            raise ValueError("feature_rows and prices lengths differ")
        if len(feature_rows) < 10:
            raise ValueError("need at least 10 training impressions")
        names = (
            list(feature_names)
            if feature_names is not None
            else sorted({k for row in feature_rows for k in row})
        )
        binner = fit_price_binner(list(prices), n_classes=n_classes)
        y = binner.assign(list(prices))
        encoder = FrameEncoder(names)
        x = encoder.fit_transform(list(feature_rows))
        forest = RandomForestClassifier(
            n_estimators=n_estimators,
            max_depth=max_depth,
            min_samples_leaf=2,
            oob_score=True,
            seed=derive_seed(seed, "price-forest"),
            workers=workers,
            splitter=splitter,
        )
        forest.fit(x, y)
        return cls(feature_names=names, encoder=encoder, binner=binner, forest=forest)

    # -- inference ---------------------------------------------------------
    #
    # The batch/scalar estimation entry points below are DEPRECATED
    # delegating shims: :class:`repro.core.estimator.Estimator` is the
    # one estimation facade (``estimate(rows) -> EstimateResult`` with
    # prices, classes, probabilities and per-phase spans in one pass).
    # The shims stay bit-identical to the facade -- a tier-1 test holds
    # both paths to equality -- but warn so callers migrate.

    def _estimator(self):
        from repro.core.estimator import Estimator

        return Estimator(self)

    def predict_class(self, rows: Sequence[Mapping[str, Hashable]]) -> np.ndarray:
        x = self.encoder.transform(list(rows))
        return self.forest.predict(x)

    def predict_proba(self, rows: Sequence[Mapping[str, Hashable]]) -> np.ndarray:
        """Deprecated: use ``Estimator(model).estimate(rows).proba``."""
        warnings.warn(
            "EncryptedPriceModel.predict_proba is deprecated; use "
            "repro.core.estimator.Estimator(model).estimate(rows).proba",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._estimator().estimate(rows).proba

    def estimate(self, rows: Sequence[Mapping[str, Hashable]]) -> np.ndarray:
        """Deprecated: use ``Estimator(model).estimate(rows).prices``.

        Kept as a bit-identical shim over the facade; the facade encodes
        rows once and routes them through the forest's flattened member
        trees in one vectorised pass, then applies ``time_correction``.
        """
        warnings.warn(
            "EncryptedPriceModel.estimate is deprecated; use "
            "repro.core.estimator.Estimator(model).estimate(rows).prices",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._estimator().estimate(rows).prices

    def estimate_one(self, row: Mapping[str, Hashable]) -> float:
        """Deprecated: use ``Estimator(model).estimate_one(row)``."""
        warnings.warn(
            "EncryptedPriceModel.estimate_one is deprecated; use "
            "repro.core.estimator.Estimator(model).estimate_one(row)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._estimator().estimate_one(row)

    def explain_one(self, row: Mapping[str, Hashable]) -> dict:
        """Deprecated: use ``Estimator(model).explain(row)``.

        Same payload shape (predicted class, representative CPM, class
        probabilities, top feature importances, first-tree decision
        path); the logic now lives on the facade.
        """
        warnings.warn(
            "EncryptedPriceModel.explain_one is deprecated; use "
            "repro.core.estimator.Estimator(model).explain(row)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._estimator().explain(row)

    # -- evaluation --------------------------------------------------------

    def cross_validate(
        self,
        feature_rows: Sequence[Mapping[str, Hashable]],
        prices: Sequence[float],
        n_folds: int = 10,
        n_runs: int = 10,
        seed: int = 0,
        workers: int | None = 1,
        splitter: str | None = None,
    ) -> CrossValidationResult:
        """The paper's 10-fold x 10-run CV protocol on the same data.

        ``splitter=None`` inherits the fitted forest's engine so CV
        scores measure the same training mode the model actually used.
        """
        y = self.binner.assign(list(prices))
        x = self.encoder.transform(list(feature_rows))
        forest_params = dict(
            n_estimators=self.forest.n_estimators,
            max_depth=self.forest.max_depth,
            min_samples_leaf=self.forest.min_samples_leaf,
            seed=derive_seed(seed, "cv-forest"),
            workers=workers,
            splitter=self.forest.splitter if splitter is None else splitter,
        )
        return cross_validate_classifier(
            lambda: RandomForestClassifier(**forest_params),
            x,
            y,
            n_folds=n_folds,
            n_runs=n_runs,
            seed=seed,
        )

    # -- serialisation -----------------------------------------------------

    def to_package(self, version: int = 1) -> dict:
        """The JSON model package shipped to YourAdValue clients."""
        return {
            "kind": "yav_price_model",
            "version": version,
            "feature_names": list(self.feature_names),
            "time_correction": float(self.time_correction),
            "encoder": self.encoder.to_dict(),
            "binner": self.binner.to_dict(),
            "forest": forest_to_dict(self.forest),
        }

    @classmethod
    def from_package(cls, payload: dict) -> "EncryptedPriceModel":
        """Rebuild the estimator from a package, coefficient included.

        The PME stamps ``time_correction`` into every package
        (:meth:`repro.core.pme.PriceModelingEngine.package_model`); it
        must survive the round trip or every client-side estimate is
        silently un-corrected (the pre-PR-3 bug).  Packages written
        before the field existed default to the neutral 1.0.
        """
        if payload.get("kind") != "yav_price_model":
            raise ValueError("not a YourAdValue model package")
        correction = float(payload.get("time_correction", 1.0))
        if not correction > 0:
            raise ValueError(f"time_correction must be positive, got {correction!r}")
        return cls(
            feature_names=list(payload["feature_names"]),
            encoder=FrameEncoder.from_dict(payload["encoder"]),
            binner=PriceBinner.from_dict(payload["binner"]),
            forest=forest_from_dict(payload["forest"]),
            time_correction=correction,
        )


@dataclass(frozen=True)
class RegressionBaselineResult:
    """Held-out errors of the rejected regression approach."""

    rmse_cpm: float
    r2: float
    relative_rmse: float    # RMSE / mean price


def regression_baseline(
    feature_rows: Sequence[Mapping[str, Hashable]],
    prices: Sequence[float],
    test_fraction: float = 0.3,
    seed: int = 0,
) -> RegressionBaselineResult:
    """Reproduce the paper's negative result: regression on raw prices.

    Trains a random-forest regressor on raw CPM targets and reports
    held-out RMSE/R^2 -- the "low performance (high error)" that pushed
    the paper to classification.
    """
    from repro.ml.model_selection import train_test_split

    names = sorted({k for row in feature_rows for k in row})
    encoder = FrameEncoder(names)
    x = encoder.fit_transform(list(feature_rows))
    y = np.asarray(list(prices), dtype=float)
    train, test = train_test_split(len(y), test_fraction, seed=seed)
    model = RandomForestRegressor(
        n_estimators=25, max_depth=12, seed=derive_seed(seed, "regression")
    )
    model.fit(x[train], y[train])
    pred = model.predict(x[test])
    rmse = root_mean_squared_error(y[test], pred)
    return RegressionBaselineResult(
        rmse_cpm=rmse,
        r2=r2_score(y[test], pred),
        relative_rmse=rmse / float(y[test].mean()),
    )
