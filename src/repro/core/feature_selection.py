"""Dimensionality reduction of auction features (paper section 5.1).

Reduces the ~hundreds-dimensional feature vector F to the compact set S
that probe ad-campaigns can afford to sweep.  Following the paper:

1. log-transform cleartext prices and cluster them into 4 classes
   (:mod:`repro.core.binning`);
2. drop constant features and extreme-variance (noise) features;
3. group the surviving features into the paper's semantic families
   (time, http, ad, DSP, publisher interests, user http stats, user
   interests, user locations, device);
4. train Random Forests with the price class as target: a full-feature
   baseline, then per-group models; rank features by importance;
5. greedily assemble a cross-group subset whose cross-validated
   precision/recall stays within tolerance of the baseline (the paper
   reports < 2% precision and < 6% recall loss).

The exact publisher identity is excluded from candidates by default --
the paper found it inflates accuracy to ~95% through overfitting and
rejected it (section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.core.binning import fit_price_binner
from repro.ml.forest import RandomForestClassifier
from repro.ml.model_selection import cross_validate_classifier
from repro.ml.preprocessing import FrameEncoder, VarianceFilter
from repro.util.rng import derive_seed

#: Semantic feature families (paper section 5.1's groups A-H, plus the
#: device family that the selected set S draws device type from).
GROUP_TIME = "time"
GROUP_HTTP = "http"
GROUP_AD = "ad"
GROUP_DSP = "dsp"
GROUP_PUBLISHER = "publisher_interests"
GROUP_USER_HTTP = "user_http_stats"
GROUP_USER_INTERESTS = "user_interests"
GROUP_USER_LOCATION = "user_locations"
GROUP_DEVICE = "device"

_EXACT_GROUPS: dict[str, str] = {
    "time_of_day": GROUP_TIME,
    "day_of_week": GROUP_TIME,
    "month": GROUP_TIME,
    "hour": GROUP_TIME,
    "is_weekend": GROUP_TIME,
    "n_url_params": GROUP_HTTP,
    "slot_size": GROUP_AD,
    "adx": GROUP_AD,
    "campaign_popularity": GROUP_AD,
    "adv_n_requests": GROUP_AD,
    "adv_total_bytes": GROUP_AD,
    "adv_avg_reqs_per_user": GROUP_AD,
    "adv_avg_duration": GROUP_AD,
    "dsp": GROUP_DSP,
    "publisher_iab": GROUP_PUBLISHER,
    "publisher": GROUP_PUBLISHER,
    "user_n_requests": GROUP_USER_HTTP,
    "user_total_bytes": GROUP_USER_HTTP,
    "user_avg_bytes_per_req": GROUP_USER_HTTP,
    "user_total_duration_ms": GROUP_USER_HTTP,
    "user_avg_duration_per_req": GROUP_USER_HTTP,
    "user_n_syncs": GROUP_USER_HTTP,
    "user_n_beacons": GROUP_USER_HTTP,
    "user_n_publishers": GROUP_USER_HTTP,
    "user_dominant_interest": GROUP_USER_INTERESTS,
    "city": GROUP_USER_LOCATION,
    "user_n_locations": GROUP_USER_LOCATION,
    "context": GROUP_DEVICE,
    "device_type": GROUP_DEVICE,
    "os": GROUP_DEVICE,
}


def group_of(feature_name: str) -> str:
    """Semantic family of one feature name."""
    if feature_name in _EXACT_GROUPS:
        return _EXACT_GROUPS[feature_name]
    if feature_name.startswith("interest_"):
        return GROUP_USER_INTERESTS
    if feature_name.startswith(("hour_", "dow_")):
        return GROUP_TIME
    return GROUP_HTTP


@dataclass
class SelectionReport:
    """Outcome of one dimensionality-reduction run."""

    selected_features: list[str]
    baseline_accuracy: float
    selected_accuracy: float
    baseline_precision: float
    selected_precision: float
    baseline_recall: float
    selected_recall: float
    group_scores: dict[str, float]
    importances: dict[str, float]
    n_features_input: int
    n_features_after_filters: int
    dropped_constant_or_noise: list[str] = field(default_factory=list)

    @property
    def precision_loss(self) -> float:
        return self.baseline_precision - self.selected_precision

    @property
    def recall_loss(self) -> float:
        return self.baseline_recall - self.selected_recall


class DimensionalityReducer:
    """The PME's feature-selection stage."""

    def __init__(
        self,
        n_classes: int = 4,
        n_folds: int = 3,
        n_estimators: int = 25,
        max_depth: int = 12,
        max_rows: int = 8_000,
        tolerance_accuracy: float = 0.02,
        allow_publisher: bool = False,
        seed: int = 0,
    ):
        self.n_classes = n_classes
        self.n_folds = n_folds
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.max_rows = max_rows
        self.tolerance_accuracy = tolerance_accuracy
        self.allow_publisher = allow_publisher
        self.seed = seed

    def _forest_factory(self, salt: str):
        seed = derive_seed(self.seed, salt)

        def factory() -> RandomForestClassifier:
            return RandomForestClassifier(
                n_estimators=self.n_estimators,
                max_depth=self.max_depth,
                min_samples_leaf=5,
                seed=seed,
            )

        return factory

    def _cv_scores(self, x: np.ndarray, y: np.ndarray, salt: str) -> tuple[float, float, float]:
        result = cross_validate_classifier(
            self._forest_factory(salt), x, y,
            n_folds=self.n_folds, seed=derive_seed(self.seed, f"cv:{salt}"),
        )
        return result.accuracy, result.precision, result.recall

    def fit(
        self,
        feature_rows: Sequence[Mapping[str, Hashable]],
        prices: Sequence[float],
    ) -> SelectionReport:
        """Run the full selection pipeline.

        ``feature_rows`` are the analyzer's full vectors for cleartext
        notifications; ``prices`` the matching cleartext CPM prices.
        """
        if len(feature_rows) != len(prices):
            raise ValueError("feature_rows and prices lengths differ")
        if len(feature_rows) < 50:
            raise ValueError("need at least 50 cleartext observations")

        rng = np.random.default_rng(derive_seed(self.seed, "subsample"))
        if len(feature_rows) > self.max_rows:
            picks = rng.choice(len(feature_rows), size=self.max_rows, replace=False)
            feature_rows = [feature_rows[i] for i in picks]
            prices = [prices[i] for i in picks]

        binner = fit_price_binner(list(prices), n_classes=self.n_classes)
        y = binner.assign(list(prices))

        names = sorted({k for row in feature_rows for k in row})
        if not self.allow_publisher:
            names = [n for n in names if n != "publisher"]
        encoder = FrameEncoder(names)
        x = encoder.fit_transform(list(feature_rows))

        # Constant / extreme-variance filtering.
        var_filter = VarianceFilter()
        var_filter.fit(x)
        kept_names = var_filter.kept_names(names)
        dropped = [n for n in names if n not in set(kept_names)]
        x = var_filter.transform(x)

        baseline_acc, baseline_prec, baseline_rec = self._cv_scores(x, y, "baseline")

        # Importance ranking from one full-feature forest.
        full_forest = self._forest_factory("importance")()
        full_forest.fit(x, y)
        assert full_forest.feature_importances_ is not None
        importances = dict(zip(kept_names, full_forest.feature_importances_))

        # Per-group predictive power.
        group_scores: dict[str, float] = {}
        groups: dict[str, list[int]] = {}
        for j, name in enumerate(kept_names):
            groups.setdefault(group_of(name), []).append(j)
        for group, cols in sorted(groups.items()):
            acc, _, _ = self._cv_scores(x[:, cols], y, f"group:{group}")
            group_scores[group] = acc

        # Greedy cross-group assembly: best feature of each group first,
        # ordered by importance, until accuracy is within tolerance.
        representatives: list[tuple[float, str, int]] = []
        for group, cols in groups.items():
            best = max(cols, key=lambda j: importances[kept_names[j]])
            representatives.append((importances[kept_names[best]], kept_names[best], best))
        representatives.sort(reverse=True)

        remaining = sorted(
            (
                (importances[kept_names[j]], kept_names[j], j)
                for cols in groups.values()
                for j in cols
                if kept_names[j] not in {name for _, name, _ in representatives}
            ),
            reverse=True,
        )
        candidates = representatives + remaining

        selected_cols: list[int] = []
        selected_acc = selected_prec = selected_rec = 0.0
        for _, _, col in candidates:
            selected_cols.append(col)
            if len(selected_cols) < 3:
                continue
            selected_acc, selected_prec, selected_rec = self._cv_scores(
                x[:, selected_cols], y, f"greedy:{len(selected_cols)}"
            )
            if selected_acc >= baseline_acc - self.tolerance_accuracy:
                break

        selected = [kept_names[j] for j in selected_cols]
        return SelectionReport(
            selected_features=selected,
            baseline_accuracy=baseline_acc,
            selected_accuracy=selected_acc,
            baseline_precision=baseline_prec,
            selected_precision=selected_prec,
            baseline_recall=baseline_rec,
            selected_recall=selected_rec,
            group_scores=group_scores,
            importances=importances,
            n_features_input=len(names),
            n_features_after_filters=len(kept_names),
            dropped_constant_or_noise=dropped,
        )
