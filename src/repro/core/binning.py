"""Price clustering into classes (paper section 5.1 / 5.4).

The paper normalises charge prices with a log transform, then clusters
them into 4 classes "using an unsupervised equidistance model that
finds the optimal splits between given prices using a method of
leave-one-out estimate of the entropy of values in each class".

We implement that as 1-D Lloyd iteration in log space initialised from
equidistant (equal-width) cuts -- the "equidistance model" refined to
optimal splits -- and expose a leave-one-out entropy score so the
4-vs-k class ablation can rank binnings the way the paper did.  Each
class carries a representative CPM (the in-class median), which is how
a predicted class converts back into an estimated encrypted price.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class PriceBinner:
    """A fitted log-space price binning.

    ``cuts`` are the (n_classes - 1) log-price boundaries;
    ``representatives`` are the per-class median CPM prices.
    """

    cuts: tuple[float, ...]
    representatives: tuple[float, ...]
    counts: tuple[int, ...]

    @property
    def n_classes(self) -> int:
        return len(self.representatives)

    def assign(self, prices: Iterable[float]) -> np.ndarray:
        """Class index (0..n_classes-1) for each price."""
        arr = np.asarray(list(prices), dtype=float)
        if np.any(arr <= 0):
            raise ValueError("prices must be positive")
        return np.searchsorted(np.asarray(self.cuts), np.log(arr), side="right")

    def assign_one(self, price: float) -> int:
        return int(self.assign([price])[0])

    def representative(self, cls: int) -> float:
        """Median CPM of the class -- the price estimate for that class."""
        return self.representatives[cls]

    def estimate(self, classes: Iterable[int]) -> np.ndarray:
        """Vectorised class -> representative CPM mapping."""
        reps = np.asarray(self.representatives)
        return reps[np.asarray(list(classes), dtype=int)]

    def balance(self) -> float:
        """Smallest class share (1/n_classes would be perfectly balanced)."""
        total = sum(self.counts)
        return min(self.counts) / total if total else 0.0

    def to_dict(self) -> dict:
        """JSON-compatible form (shipped inside the client model)."""
        return {
            "cuts": list(self.cuts),
            "representatives": list(self.representatives),
            "counts": list(self.counts),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PriceBinner":
        return cls(
            cuts=tuple(float(c) for c in payload["cuts"]),
            representatives=tuple(float(r) for r in payload["representatives"]),
            counts=tuple(int(c) for c in payload["counts"]),
        )


def fit_price_binner(
    prices: Sequence[float],
    n_classes: int = 4,
    max_iterations: int = 100,
) -> PriceBinner:
    """Fit the paper's 4-class price clustering.

    Equal-width initial cuts over the log-price range, then Lloyd
    iterations: assign points to the nearest centroid, recompute
    centroids, cuts at midpoints.  Empty classes are re-seeded from the
    widest class so all ``n_classes`` survive.
    """
    arr = np.asarray(list(prices), dtype=float)
    if arr.size < n_classes:
        raise ValueError(
            f"need at least {n_classes} prices to form {n_classes} classes"
        )
    if np.any(arr <= 0):
        raise ValueError("prices must be positive")
    logs = np.sort(np.log(arr))

    lo, hi = logs[0], logs[-1]
    if hi - lo < 1e-12:
        raise ValueError("prices are all identical; cannot form classes")
    centroids = lo + (np.arange(n_classes) + 0.5) * (hi - lo) / n_classes

    for _ in range(max_iterations):
        cuts = (centroids[:-1] + centroids[1:]) / 2.0
        labels = np.searchsorted(cuts, logs, side="right")
        new_centroids = centroids.copy()
        for k in range(n_classes):
            members = logs[labels == k]
            if members.size:
                new_centroids[k] = members.mean()
            else:
                # Re-seed an empty class inside the widest populated one.
                widest = int(np.argmax(np.bincount(labels, minlength=n_classes)))
                seed = logs[labels == widest]
                new_centroids[k] = float(np.median(seed))
        new_centroids.sort()
        if np.allclose(new_centroids, centroids, atol=1e-10):
            centroids = new_centroids
            break
        centroids = new_centroids

    cuts = (centroids[:-1] + centroids[1:]) / 2.0
    labels = np.searchsorted(cuts, logs, side="right")
    representatives = []
    counts = []
    for k in range(n_classes):
        members = logs[labels == k]
        counts.append(int(members.size))
        if members.size:
            representatives.append(float(np.exp(np.median(members))))
        else:
            representatives.append(float(np.exp(centroids[k])))
    return PriceBinner(
        cuts=tuple(float(c) for c in cuts),
        representatives=tuple(representatives),
        counts=tuple(counts),
    )


def loo_entropy(prices: Sequence[float], binner: PriceBinner) -> float:
    """Leave-one-out estimate of the class-assignment entropy (nats).

    For each price, the probability of its class is estimated from all
    *other* prices; the score is the mean negative log-probability.
    Lower is better: it rewards binnings whose classes are stable under
    removing any single observation (the paper's selection criterion).
    """
    arr = np.asarray(list(prices), dtype=float)
    labels = binner.assign(arr)
    n = arr.size
    if n < 2:
        raise ValueError("need at least two prices")
    counts = np.bincount(labels, minlength=binner.n_classes).astype(float)
    total = 0.0
    for lbl in labels:
        p = (counts[lbl] - 1.0) / (n - 1.0)
        total += -math.log(max(p, 1e-12))
    return total / n
