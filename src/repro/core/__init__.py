"""The paper's primary contribution: the price-transparency methodology.

Price Modeling Engine (bootstrap -> probe campaigns -> model ->
package), the encrypted-price classifier, per-user cost computation
(V_u = C_u + E_u), the YourAdValue client, the anonymous contribution
channel, and the ARPU market validation.
"""

from repro.core.binning import PriceBinner, fit_price_binner, loo_entropy
from repro.core.campaigns import (
    PROBE_AGGRESSIVENESS,
    PROBE_DSP_NAME,
    PROBE_MAX_BID_CPM,
    CampaignResult,
    ProbeImpression,
    ProbeSetup,
    RecordingDsp,
    build_probe_setups,
    run_campaign_a1,
    run_campaign_a2,
    run_probe_campaign,
)
from repro.core.contributions import (
    ALLOWED_FIELDS,
    FORBIDDEN_FIELDS,
    ContributionError,
    ContributionServer,
)
from repro.core.costmodels import (
    DEFAULT_CPC_SHARE,
    DEFAULT_CTR,
    CostBounds,
    CostModelAssumptions,
    cost_bounds,
)
from repro.core.cost import (
    CostDistribution,
    ExchangeRevenue,
    UserCost,
    compute_user_costs,
    estimation_accuracy,
    exchange_revenue_estimates,
    observation_features,
)
from repro.core.estimator import EstimateResult, Estimator
from repro.core.feature_selection import (
    DimensionalityReducer,
    SelectionReport,
    group_of,
)
from repro.core.pme import (
    PAPER_FEATURE_SET,
    PmeState,
    PriceModelingEngine,
    mopub_cleartext_prices,
)
from repro.core.price_model import (
    PAPER_AUCROC,
    PAPER_FP_RATE,
    PAPER_PRECISION,
    PAPER_RECALL,
    PAPER_TP_RATE,
    EncryptedPriceModel,
    RegressionBaselineResult,
    regression_baseline,
)
from repro.core.validation import (
    REPORTED_ARPU,
    ArpuValidation,
    MarketFactors,
    extrapolate_user_value_usd,
    validate_arpu,
)
from repro.core.reporting import (
    render_regulator_report,
    render_transparency_report,
)
from repro.core.youradvalue import LedgerEntry, ToolbarSummary, YourAdValue

__all__ = [
    "PriceBinner",
    "fit_price_binner",
    "loo_entropy",
    "ProbeSetup",
    "ProbeImpression",
    "CampaignResult",
    "RecordingDsp",
    "build_probe_setups",
    "run_probe_campaign",
    "run_campaign_a1",
    "run_campaign_a2",
    "PROBE_DSP_NAME",
    "PROBE_MAX_BID_CPM",
    "PROBE_AGGRESSIVENESS",
    "DimensionalityReducer",
    "SelectionReport",
    "group_of",
    "PriceModelingEngine",
    "PmeState",
    "PAPER_FEATURE_SET",
    "mopub_cleartext_prices",
    "EncryptedPriceModel",
    "Estimator",
    "EstimateResult",
    "regression_baseline",
    "RegressionBaselineResult",
    "PAPER_TP_RATE",
    "PAPER_FP_RATE",
    "PAPER_PRECISION",
    "PAPER_RECALL",
    "PAPER_AUCROC",
    "UserCost",
    "CostDistribution",
    "compute_user_costs",
    "observation_features",
    "estimation_accuracy",
    "ExchangeRevenue",
    "exchange_revenue_estimates",
    "YourAdValue",
    "LedgerEntry",
    "ToolbarSummary",
    "ContributionServer",
    "ContributionError",
    "ALLOWED_FIELDS",
    "FORBIDDEN_FIELDS",
    "CostModelAssumptions",
    "CostBounds",
    "cost_bounds",
    "DEFAULT_CTR",
    "DEFAULT_CPC_SHARE",
    "render_transparency_report",
    "render_regulator_report",
    "MarketFactors",
    "ArpuValidation",
    "validate_arpu",
    "extrapolate_user_value_usd",
    "REPORTED_ARPU",
]
