"""Cost-model sensitivity: how conservative is the CPM assumption?

The paper's stated limitation (section 8): passive measurement cannot
tell which buying model priced each slot -- Cost-Per-Impression (CPM,
paid on render) or Cost-Per-Click (CPC, paid only when clicked) -- so
it books every charge price as CPM, "computing the maximum cost
advertisers pay for a user".

This module quantifies that bound.  Given assumptions about the market
mix of cost models and click behaviour, it converts the CPM-assumption
cost V_u into an interval [lower, upper]:

* **upper** -- every price was CPM (the paper's number);
* **expected** -- a ``cpc_share`` of impressions were actually CPC, so
  only clicked ones were paid (advertiser CPC prices are quoted per
  click; the nURL's price interpreted per-impression overstates those
  by 1/CTR);
* **lower** -- the degenerate all-CPC case.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require_in_unit_interval


#: Industry-typical mobile display click-through rate, ~0.5%.
DEFAULT_CTR = 0.005

#: Share of mobile programmatic inventory sold per-click rather than
#: per-impression (performance campaigns).
DEFAULT_CPC_SHARE = 0.25


@dataclass(frozen=True)
class CostModelAssumptions:
    """The market-mix assumptions of the sensitivity analysis."""

    cpc_share: float = DEFAULT_CPC_SHARE
    click_through_rate: float = DEFAULT_CTR

    def __post_init__(self) -> None:
        require_in_unit_interval(self.cpc_share, "cpc_share")
        require_in_unit_interval(self.click_through_rate, "click_through_rate")

    @property
    def expected_multiplier(self) -> float:
        """Expected actual-cost / CPM-assumption-cost ratio.

        CPM inventory is paid in full; CPC inventory is paid only on
        the clicked fraction of impressions.
        """
        return (1.0 - self.cpc_share) + self.cpc_share * self.click_through_rate

    @property
    def lower_multiplier(self) -> float:
        """The all-CPC worst case."""
        return self.click_through_rate


@dataclass(frozen=True)
class CostBounds:
    """The resolved interval for one CPM-assumption cost figure."""

    cpm_assumption: float     # the paper's V_u (upper bound)
    expected: float
    lower: float

    @property
    def upper(self) -> float:
        return self.cpm_assumption

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper


def cost_bounds(
    cpm_assumption_cost: float,
    assumptions: CostModelAssumptions | None = None,
) -> CostBounds:
    """Bound a CPM-assumption cost (in any unit) under the model mix."""
    if cpm_assumption_cost < 0:
        raise ValueError("cost must be non-negative")
    assumptions = assumptions or CostModelAssumptions()
    return CostBounds(
        cpm_assumption=cpm_assumption_cost,
        expected=cpm_assumption_cost * assumptions.expected_multiplier,
        lower=cpm_assumption_cost * assumptions.lower_multiplier,
    )
