"""Human-readable transparency reports.

Renders the YourAdValue client's ledger (or a back-end
:class:`~repro.core.cost.UserCost`) into the kind of report the paper's
discussion section motivates: what each slice of a user's personal
data context was worth to advertisers, with the CPM-assumption caveat
made explicit.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.core.costmodels import CostModelAssumptions, cost_bounds
from repro.core.youradvalue import LedgerEntry
from repro.util.money import format_cpm, format_usd


def _group_totals(entries: Iterable[LedgerEntry], key) -> list[tuple[str, float, int]]:
    totals: dict[str, float] = defaultdict(float)
    counts: dict[str, int] = defaultdict(int)
    for entry in entries:
        label = key(entry)
        totals[label] += entry.amount_cpm
        counts[label] += 1
    ranked = sorted(totals.items(), key=lambda kv: -kv[1])
    return [(label, total, counts[label]) for label, total in ranked]


def render_transparency_report(
    entries: list[LedgerEntry],
    assumptions: CostModelAssumptions | None = None,
    top_k: int = 5,
) -> str:
    """A plain-text transparency report over a client ledger."""
    if not entries:
        return "No RTB charge prices observed yet."

    cleartext = [e for e in entries if not e.encrypted]
    encrypted = [e for e in entries if e.encrypted]
    total_cpm = sum(e.amount_cpm for e in entries)
    bounds = cost_bounds(total_cpm, assumptions)

    lines = ["=== YourAdValue transparency report ==="]
    lines.append(
        f"ads observed: {len(entries)} "
        f"({len(cleartext)} cleartext, {len(encrypted)} encrypted/estimated)"
    )
    lines.append(
        f"total advertiser spend (CPM assumption): {format_cpm(total_cpm)} "
        f"= {format_usd(total_cpm / 1000.0)}"
    )
    lines.append(
        f"cost-model sensitivity: expected {format_usd(bounds.expected / 1000.0)}, "
        f"interval [{format_usd(bounds.lower / 1000.0)}, "
        f"{format_usd(bounds.upper / 1000.0)}]"
    )

    lines.append("")
    lines.append("what your context was worth (top exchanges):")
    for label, amount, count in _group_totals(entries, lambda e: e.adx)[:top_k]:
        lines.append(f"  {label:<14} {format_cpm(amount):>12}  ({count} ads)")

    lines.append("")
    lines.append("by content category:")
    for label, amount, count in _group_totals(
        entries, lambda e: e.publisher_iab
    )[:top_k]:
        lines.append(f"  {label:<14} {format_cpm(amount):>12}  ({count} ads)")

    lines.append("")
    lines.append("by ad format:")
    for label, amount, count in _group_totals(
        entries, lambda e: e.slot_size or "unknown"
    )[:top_k]:
        lines.append(f"  {label:<14} {format_cpm(amount):>12}  ({count} ads)")

    if encrypted:
        estimated = sum(e.amount_cpm for e in encrypted)
        lines.append("")
        lines.append(
            f"note: {format_cpm(estimated)} of the total is estimated from "
            "encrypted notifications using the PME's model."
        )
    return "\n".join(lines)


def render_regulator_report(exchange_revenues, top_k: int = 10) -> str:
    """The section-8 regulator/tax-auditor view.

    Takes the output of
    :func:`repro.core.cost.exchange_revenue_estimates` and renders the
    independent per-company revenue estimate the paper proposes
    auditors could compare against tax declarations.
    """
    if not exchange_revenues:
        return "No exchange revenue observed."
    ranked = sorted(exchange_revenues.values(), key=lambda r: -r.total_cpm)
    total = sum(r.total_cpm for r in ranked)
    lines = ["=== independent exchange revenue estimate (auditor view) ==="]
    lines.append(
        f"{'exchange':<14} {'cleartext':>11} {'encrypted*':>11} "
        f"{'total':>11} {'share':>7}"
    )
    for revenue in ranked[:top_k]:
        lines.append(
            f"{revenue.adx:<14} {format_cpm(revenue.cleartext_cpm):>11} "
            f"{format_cpm(revenue.encrypted_estimated_cpm):>11} "
            f"{format_cpm(revenue.total_cpm):>11} "
            f"{revenue.total_cpm / total:>6.1%}"
        )
    lines.append(f"{'TOTAL':<14} {'':>11} {'':>11} {format_cpm(total):>11}")
    lines.append("* estimated with the PME model; cleartext sums are exact.")
    return "\n".join(lines)
