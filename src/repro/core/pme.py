"""The Price Modeling Engine (paper section 3.2).

The PME is the centralised back-end of the methodology.  Its lifecycle:

1. **bootstrap** -- analyse an offline weblog (dataset D) and run
   dimensionality reduction over the cleartext prices to select the
   compact feature set S;
2. **probe** -- execute the A1/A2 probing ad-campaigns to collect
   ground-truth encrypted and cleartext prices under the setups S
   affords;
3. **train** -- fit the encrypted-price classifier on A1's ground
   truth, evaluating it with the paper's 10x10 cross-validation;
4. **package** -- emit the JSON model package YourAdValue clients
   download, including the time-correction coefficient derived from
   A2-vs-D cleartext medians;
5. **retrain** -- fold in anonymous client contributions at any time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.analyzer.pipeline import AnalysisResult
from repro.core.campaigns import (
    CampaignResult,
    run_campaign_a1,
    run_campaign_a2,
)
from repro.core.feature_selection import DimensionalityReducer, SelectionReport
from repro.core.price_model import EncryptedPriceModel
from repro.ml.model_selection import CrossValidationResult
from repro.stats.distributions import median_ratio
from repro.trace.simulate import MarketState
from repro.util.rng import derive_seed
from repro.util.validation import reject_legacy_kwargs

#: The paper's final selected feature set S (section 5.1) -- the PME
#: falls back to it when asked to skip the selection step.
PAPER_FEATURE_SET: tuple[str, ...] = (
    "context",
    "device_type",
    "city",
    "time_of_day",
    "day_of_week",
    "slot_size",
    "publisher_iab",
    "adx",
)


@dataclass
class PmeState:
    """Everything the PME has learned so far."""

    selection: SelectionReport | None = None
    selected_features: list[str] = field(default_factory=list)
    campaign_a1: CampaignResult | None = None
    campaign_a2: CampaignResult | None = None
    model: EncryptedPriceModel | None = None
    evaluation: CrossValidationResult | None = None
    time_correction: float = 1.0


class PriceModelingEngine:
    """The PME back-end service."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self.state = PmeState()

    # -- step 1: bootstrap from an offline weblog ---------------------------

    def bootstrap(
        self,
        analysis: AnalysisResult,
        use_paper_features: bool = False,
        reducer: DimensionalityReducer | None = None,
    ) -> list[str]:
        """Select the feature set S from dataset D's cleartext prices.

        ``use_paper_features=True`` skips the expensive selection and
        adopts the paper's published S (useful for fast pipelines); the
        default actually runs the reduction.
        """
        if use_paper_features:
            self.state.selected_features = list(PAPER_FEATURE_SET)
            return self.state.selected_features

        with obs.stage(
            "pme.bootstrap", observations=len(analysis.observations)
        ) as st:
            rows = []
            prices = []
            for observation, det in zip(
                analysis.observations, analysis.notifications
            ):
                if (
                    observation.is_encrypted
                    or observation.price_cpm is None
                    or observation.price_cpm <= 0
                ):
                    continue
                rows.append(analysis.extractor.full_vector(det))
                prices.append(observation.price_cpm)
            if len(rows) < 50:
                raise ValueError("not enough cleartext observations to bootstrap")
            reducer = reducer or DimensionalityReducer(
                seed=derive_seed(self.seed, "dimred")
            )
            report = reducer.fit(rows, prices)
            self.state.selection = report
            self.state.selected_features = list(report.selected_features)
            st.set(
                cleartext_rows=len(rows),
                selected=len(self.state.selected_features),
            )
        return self.state.selected_features

    # -- step 2: probing ad-campaigns ---------------------------------------

    def run_probe_campaigns(
        self,
        market: MarketState,
        auctions_per_setup: int = 185,
    ) -> tuple[CampaignResult, CampaignResult]:
        """Execute A1 (encrypted ADXs) and A2 (MoPub cleartext).

        185 auctions per setup is the paper's section-5.2 sizing (the
        within-campaign margin-of-error bound).
        """
        with obs.stage(
            "pme.probe_campaigns", auctions_per_setup=auctions_per_setup
        ):
            with obs.span("pme.campaign_a1"):
                a1 = run_campaign_a1(
                    market, seed=self.seed, auctions_per_setup=auctions_per_setup
                )
            with obs.span("pme.campaign_a2"):
                a2 = run_campaign_a2(
                    market, seed=self.seed, auctions_per_setup=auctions_per_setup
                )
        self.state.campaign_a1 = a1
        self.state.campaign_a2 = a2
        return a1, a2

    # -- step 3: model training ---------------------------------------------

    def train_model(
        self,
        campaign: CampaignResult | None = None,
        feature_names: list[str] | None = None,
        n_classes: int = 4,
        evaluate: bool = True,
        cv_folds: int = 10,
        cv_runs: int = 10,
        workers: int | None = 1,
        splitter: str = "exact",
        **legacy,
    ) -> EncryptedPriceModel:
        """Fit the encrypted-price classifier on campaign ground truth.

        ``workers`` parallelises forest training (and the CV refits)
        across a process pool; results are bit-identical to
        ``workers=1``.  ``splitter`` picks the split-search engine
        (``"exact"`` or the pre-binned ``"hist"`` -- see DESIGN.md §8);
        CV inherits the same engine.  Only ``workers=`` is accepted;
        legacy spellings (``n_jobs``, ...) raise a TypeError naming the
        replacement.
        """
        reject_legacy_kwargs("PriceModelingEngine.train_model", legacy)
        campaign = campaign or self.state.campaign_a1
        if campaign is None:
            raise RuntimeError("run the probe campaigns before training")
        names = feature_names or self.state.selected_features or list(PAPER_FEATURE_SET)
        rows = campaign.feature_rows()
        prices = list(campaign.prices())
        with obs.stage(
            "pme.train_model",
            rows=len(rows),
            n_classes=n_classes,
            workers=workers or 0,
            splitter=splitter,
        ):
            model = EncryptedPriceModel.train(
                rows,
                prices,
                feature_names=[n for n in names if n != "publisher"],
                n_classes=n_classes,
                seed=derive_seed(self.seed, "model"),
                workers=workers,
                splitter=splitter,
            )
            self.state.model = model
            if evaluate:
                with obs.span(
                    "pme.cross_validate", folds=cv_folds, runs=cv_runs
                ):
                    self.state.evaluation = model.cross_validate(
                        rows, prices, n_folds=cv_folds, n_runs=cv_runs,
                        seed=derive_seed(self.seed, "eval"),
                        workers=workers,
                    )
        return model

    # -- step 4: time correction & packaging --------------------------------

    def compute_time_correction(self, dataset_mopub_prices: list[float]) -> float:
        """Cleartext price shift between D (2015) and A2 (2016).

        The ratio of A2's median to D's MoPub median, applied as a
        multiplicative correction to 2015 cleartext sums (section 6.2).
        """
        if self.state.campaign_a2 is None:
            raise RuntimeError("run campaign A2 first")
        with obs.span(
            "pme.time_correction", anchor_prices=len(dataset_mopub_prices)
        ):
            a2_prices = self.state.campaign_a2.prices()
            correction = median_ratio(a2_prices, dataset_mopub_prices)
        self.state.time_correction = float(correction)
        return self.state.time_correction

    def package_model(self) -> dict:
        """The artefact YourAdValue downloads.

        The package carries the PME's section-6.2 drift coefficient;
        :meth:`EncryptedPriceModel.from_package` restores it so every
        client-side estimate (YourAdValue ledger entries, the serve
        ``/estimate`` path) comes out time-corrected.
        """
        if self.state.model is None:
            raise RuntimeError("train a model before packaging")
        package = self.state.model.to_package()
        package["time_correction"] = self.state.time_correction
        package["selected_features"] = list(
            self.state.selected_features or PAPER_FEATURE_SET
        )
        return package

    # -- step 5: retraining on contributions --------------------------------

    def retrain_with_contributions(
        self,
        contributed_rows: list[dict],
        contributed_prices: list[float],
        n_classes: int = 4,
        workers: int | None = 1,
        splitter: str = "exact",
        **legacy,
    ) -> EncryptedPriceModel:
        """Fold anonymous client contributions into a fresh model.

        Contributions extend (never replace) the latest campaign ground
        truth, so a burst of low-quality contributions cannot erase the
        calibrated baseline.  Only ``workers=`` is accepted; legacy
        spellings (``n_jobs``, ``retrain_workers``, ...) raise a
        TypeError naming the replacement.
        """
        reject_legacy_kwargs(
            "PriceModelingEngine.retrain_with_contributions", legacy
        )
        if self.state.campaign_a1 is None:
            raise RuntimeError("no campaign ground truth to extend")
        rows = self.state.campaign_a1.feature_rows() + list(contributed_rows)
        prices = list(self.state.campaign_a1.prices()) + list(contributed_prices)
        names = self.state.selected_features or list(PAPER_FEATURE_SET)
        with obs.stage(
            "pme.retrain",
            contributed=len(contributed_rows),
            rows=len(rows),
            workers=workers or 0,
            splitter=splitter,
        ):
            model = EncryptedPriceModel.train(
                rows,
                prices,
                feature_names=[n for n in names if n != "publisher"],
                n_classes=n_classes,
                seed=derive_seed(self.seed, "retrain"),
                workers=workers,
                splitter=splitter,
            )
        self.state.model = model
        return model


def mopub_cleartext_prices(analysis: AnalysisResult) -> list[float]:
    """D's MoPub cleartext prices (the time-correction anchor)."""
    return [
        o.price_cpm
        for o in analysis.cleartext()
        if o.adx == "MoPub" and o.price_cpm is not None
    ]
