"""The anonymous crowd-contribution channel (paper sections 3.2, 3.3).

Participating users can contribute their observed cleartext prices and
auction metadata to the centralised platform, which the PME folds into
retraining.  The server enforces the privacy contract (rejects records
carrying user identifiers or raw URLs) and basic sanity (positive,
plausible prices), and only releases categories once enough distinct
contributors have reported them (a k-anonymity floor against
singling-out attacks).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro import obs

#: Fields a contribution may carry -- anything else is rejected.
ALLOWED_FIELDS = frozenset(
    {
        "adx",
        "dsp",
        "slot_size",
        "publisher_iab",
        "hour_of_day",
        "day_of_week",
        "price_cpm",
    }
)

#: Fields that would identify a user; their presence rejects the record.
FORBIDDEN_FIELDS = frozenset({"user_id", "ip", "url", "cookie", "uid", "email"})

#: Sanity bounds on contributed CPM prices.
MIN_PRICE_CPM = 1e-4
MAX_PRICE_CPM = 1_000.0


class ContributionError(ValueError):
    """A contribution violated the privacy or sanity contract."""


@dataclass
class ContributionServer:
    """Collects anonymous price records from YourAdValue clients.

    ``k_anonymity`` is fixed at construction time: the releasable-row
    count is maintained incrementally on every submit (so ``stats`` is
    O(1) -- it is polled by the serve ``/metrics`` endpoint), and that
    bookkeeping assumes the floor never moves under it.
    """

    k_anonymity: int = 3
    _records: list[dict] = field(default_factory=list)
    _contributors_per_key: dict[tuple, set[int]] = field(default_factory=lambda: defaultdict(set))
    _records_per_key: dict[tuple, int] = field(default_factory=lambda: defaultdict(int))
    _releasable: int = 0
    _accepted: int = 0
    _rejected: int = 0

    def submit(self, record: dict, contributor_token: int) -> bool:
        """Validate and store one record.

        ``contributor_token`` is an opaque per-installation token (the
        server never learns who it is); it only feeds the k-anonymity
        counting.  Returns True when accepted; raises
        :class:`ContributionError` on contract violations.
        """
        present_forbidden = FORBIDDEN_FIELDS & set(record)
        if present_forbidden:
            self._reject("identifying_fields")
            raise ContributionError(
                f"record carries identifying fields: {sorted(present_forbidden)}"
            )
        unknown = set(record) - ALLOWED_FIELDS
        if unknown:
            self._reject("unknown_fields")
            raise ContributionError(f"unknown fields: {sorted(unknown)}")
        price = record.get("price_cpm")
        if not isinstance(price, (int, float)) or not (
            MIN_PRICE_CPM <= price <= MAX_PRICE_CPM
        ):
            self._reject("implausible_price")
            raise ContributionError(f"implausible price {price!r}")

        self._records.append(dict(record))
        key = (record.get("adx"), record.get("publisher_iab"))
        contributors = self._contributors_per_key[key]
        was_released = len(contributors) >= self.k_anonymity
        contributors.add(contributor_token)
        self._records_per_key[key] += 1
        if was_released:
            # Group already public: the new record is releasable at once.
            self._releasable += 1
        elif len(contributors) >= self.k_anonymity:
            # The k-th distinct contributor just arrived: the whole
            # quarantined backlog for this group becomes releasable
            # retroactively, new record included.
            self._releasable += self._records_per_key[key]
        self._accepted += 1
        obs.registry().counter(
            "contributions.accepted", "contribution records accepted"
        ).inc()
        return True

    def _reject(self, reason: str) -> None:
        """Bump the local tally and the labeled registry counter."""
        self._rejected += 1
        obs.registry().counter(
            "contributions.rejected", "contribution records rejected"
        ).inc(reason=reason)

    def submit_batch(self, records: list[dict], contributor_token: int) -> int:
        """Submit many records; returns how many were accepted."""
        accepted = 0
        for record in records:
            try:
                self.submit(record, contributor_token)
                accepted += 1
            except ContributionError:
                continue
        return accepted

    def training_rows(self) -> tuple[list[dict], list[float]]:
        """Released (features, prices) -- only k-anonymous groups.

        Records whose (ADX, IAB) group has fewer than ``k_anonymity``
        distinct contributors stay quarantined until the group fills.
        """
        rows: list[dict] = []
        prices: list[float] = []
        for record in self._records:
            key = (record.get("adx"), record.get("publisher_iab"))
            if len(self._contributors_per_key[key]) < self.k_anonymity:
                continue
            features = {
                "adx": record["adx"],
                "dsp": record.get("dsp", "unknown"),
                "slot_size": record.get("slot_size", "unknown"),
                "publisher_iab": record.get("publisher_iab", "unknown"),
                "time_of_day": int(record.get("hour_of_day", 0)) // 4,
                "day_of_week": int(record.get("day_of_week", 0)),
            }
            rows.append(features)
            prices.append(float(record["price_cpm"]))
        return rows, prices

    @property
    def stats(self) -> dict[str, int]:
        """O(1) snapshot -- no scan, safe to poll per ``/metrics`` hit.

        ``releasable`` is the incrementally-maintained count and always
        equals ``len(self.training_rows()[0])`` (gated in tests).
        """
        return {
            "accepted": self._accepted,
            "rejected": self._rejected,
            "stored": len(self._records),
            "releasable": self._releasable,
        }
