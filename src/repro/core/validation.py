"""Market-level validation of the methodology (paper section 6.3).

The paper sanity-checks its per-user costs by extrapolating the
observed mobile-HTTP ad spend to the user's *whole* digital footprint
and comparing with the ARPU major platforms report.  Five factors scale
the observed 25th-75th percentile annual cost (8-102 CPM = $0.008-0.102)
up to the $0.54-6.85 range, bracketed by Twitter's $7-8 and Facebook's
$14-17 ARPU.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: ARPU figures the paper cites for 2015-2016 (USD per user).
REPORTED_ARPU: dict[str, tuple[float, float]] = {
    "Twitter/MoPub": (7.0, 8.0),
    "Facebook": (14.0, 17.0),
}


@dataclass(frozen=True)
class MarketFactors:
    """The extrapolation factors of section 6.3, with paper defaults."""

    #: (1) the observed 2.65 h/day is ~83% of average mobile usage.
    observed_fraction_of_mobile: float = 0.83
    #: (2) mobile is ~51% of total internet time.
    mobile_fraction_of_internet: float = 0.51
    #: (3) HTTP (observable) is ~40% of traffic.
    http_fraction: float = 0.40
    #: (4) RTB management/intermediary overhead is ~55% of ad spend, so
    #: advertisers pay media-cost / (1 - 0.55).
    rtb_overhead: float = 0.55
    #: (5) RTB is ~20% of total online advertising.
    rtb_fraction_of_advertising: float = 0.20

    def __post_init__(self) -> None:
        for name in (
            "observed_fraction_of_mobile",
            "mobile_fraction_of_internet",
            "http_fraction",
            "rtb_fraction_of_advertising",
        ):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        if not 0.0 <= self.rtb_overhead < 1.0:
            raise ValueError("rtb_overhead must be in [0, 1)")

    @property
    def multiplier(self) -> float:
        """Observed-CPM-dollars -> full-footprint-dollars multiplier."""
        return (
            1.0
            / self.observed_fraction_of_mobile
            / self.mobile_fraction_of_internet
            / self.http_fraction
            / (1.0 - self.rtb_overhead)
            / self.rtb_fraction_of_advertising
        )


def extrapolate_user_value_usd(
    annual_cost_cpm: float, factors: MarketFactors | None = None
) -> float:
    """Full-footprint annual dollar value of a user from observed CPM."""
    if annual_cost_cpm < 0:
        raise ValueError("annual cost must be non-negative")
    factors = factors or MarketFactors()
    return annual_cost_cpm / 1000.0 * factors.multiplier


@dataclass(frozen=True)
class ArpuValidation:
    """Result of the section-6.3 comparison."""

    observed_p25_cpm: float
    observed_p75_cpm: float
    extrapolated_low_usd: float
    extrapolated_high_usd: float
    multiplier: float

    def brackets(self, reported: tuple[float, float]) -> bool:
        """Is the extrapolated range within ~one order of magnitude of a
        reported ARPU band?  (The paper claims order-of-magnitude
        agreement, not equality.)"""
        low, high = reported
        return (
            self.extrapolated_high_usd >= low / 10.0
            and self.extrapolated_low_usd <= high
        )

    def agrees_with_market(self) -> bool:
        return all(self.brackets(band) for band in REPORTED_ARPU.values())


def validate_arpu(
    total_costs_cpm: np.ndarray | list[float],
    factors: MarketFactors | None = None,
) -> ArpuValidation:
    """Run the section-6.3 extrapolation on a user-cost sample."""
    arr = np.asarray(list(total_costs_cpm), dtype=float)
    if arr.size == 0:
        raise ValueError("empty cost sample")
    factors = factors or MarketFactors()
    p25, p75 = np.percentile(arr, [25, 75])
    return ArpuValidation(
        observed_p25_cpm=float(p25),
        observed_p75_cpm=float(p75),
        extrapolated_low_usd=extrapolate_user_value_usd(float(p25), factors),
        extrapolated_high_usd=extrapolate_user_value_usd(float(p75), factors),
        multiplier=factors.multiplier,
    )
