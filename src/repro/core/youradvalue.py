"""YourAdValue: the user-side tool (paper section 3.3).

The client sits on the user's device (the paper ships it as a Chrome
extension), watches the HTTP(S) traffic stream, detects RTB win
notifications, tallies cleartext charge prices directly and estimates
encrypted ones with the decision-tree model downloaded from the PME --
all locally, so no browsing data leaves the device.  Users may opt in
to contribute *anonymised* price records back to the platform.

This implementation consumes :class:`repro.trace.weblog.HttpRequest`
rows (the same objects a packet-level monitor would produce) one at a
time, maintaining a running ledger exactly like the extension's local
storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

from repro.analyzer.blacklist import DomainBlacklist, default_blacklist
from repro.analyzer.geoip import GeoIpResolver
from repro.analyzer.interests import PublisherDirectory
from repro.analyzer.useragent import parse_user_agent
from repro.core.estimator import Estimator
from repro.core.price_model import EncryptedPriceModel
from repro.rtb.nurl import parse_nurl
from repro.trace.weblog import HttpRequest
from repro.util.timeutil import day_of_week, hour_of


@dataclass(frozen=True)
class LedgerEntry:
    """One detected charge price in the client's local storage."""

    timestamp: float
    adx: str
    dsp: str
    encrypted: bool
    amount_cpm: float          # cleartext price, or model estimate
    estimated: bool
    slot_size: str | None
    publisher_iab: str


@dataclass
class ToolbarSummary:
    """What the extension's toolbar popup shows (paper Figure 20)."""

    cleartext_cpm: float
    encrypted_estimated_cpm: float
    n_cleartext: int
    n_encrypted: int

    @property
    def total_cpm(self) -> float:
        return self.cleartext_cpm + self.encrypted_estimated_cpm

    @property
    def total_dollars(self) -> float:
        return self.total_cpm / 1000.0

    def headline(self) -> str:
        """The user-facing one-liner."""
        return (
            f"Advertisers paid ${self.total_dollars:.4f} "
            f"({self.total_cpm:.2f} CPM) to reach you across "
            f"{self.n_cleartext + self.n_encrypted} ads "
            f"({self.n_encrypted} with encrypted prices, estimated)."
        )


class YourAdValue:
    """The client-side monitor.

    ``model_package`` is the JSON dict published by the PME
    (:meth:`repro.core.pme.PriceModelingEngine.package_model`).
    """

    def __init__(
        self,
        model_package: dict,
        directory: PublisherDirectory,
        blacklist: DomainBlacklist | None = None,
        geoip: GeoIpResolver | None = None,
    ):
        self.model = EncryptedPriceModel.from_package(model_package)
        #: The estimation facade every encrypted-price estimate routes
        #: through (the deprecated per-method model entry points warn).
        self.estimator = Estimator(self.model)
        self.model_version = int(model_package.get("version", 1))
        #: The PME's drift coefficient carried by the package; the model
        #: applies it to every encrypted estimate (ledger entries
        #: included), so the toolbar shows campaign-time prices.
        self.time_correction = self.model.time_correction
        self.directory = directory
        self.blacklist = blacklist or default_blacklist()
        self.geoip = geoip or GeoIpResolver()
        self.ledger: list[LedgerEntry] = []
        self._notifications: list[LedgerEntry] = []

    # -- traffic monitoring --------------------------------------------------

    def observe(self, row: HttpRequest) -> LedgerEntry | None:
        """Inspect one HTTP request; tally it when it is a win nURL."""
        if self.blacklist.classify(row.domain) != "advertising":
            return None
        parsed = parse_nurl(row.url)
        if parsed is None:
            return None

        publisher = parsed.params.get("pub_name", "")
        iab = self.directory.category_of(publisher) if publisher else None
        if parsed.is_encrypted:
            features = self._features(row, parsed, iab)
            amount = self.estimator.estimate_one(features)
            entry = LedgerEntry(
                timestamp=row.timestamp,
                adx=parsed.adx,
                dsp=parsed.dsp or "unknown",
                encrypted=True,
                amount_cpm=amount,
                estimated=True,
                slot_size=parsed.slot_size,
                publisher_iab=iab or "unknown",
            )
        else:
            entry = LedgerEntry(
                timestamp=row.timestamp,
                adx=parsed.adx,
                dsp=parsed.dsp or "unknown",
                encrypted=False,
                amount_cpm=float(parsed.cleartext_price_cpm),
                estimated=False,
                slot_size=parsed.slot_size,
                publisher_iab=iab or "unknown",
            )
        self.ledger.append(entry)
        self._notifications.append(entry)
        return entry

    def observe_many(self, rows: Iterable[HttpRequest]) -> int:
        """Process a batch of rows; returns how many prices were found."""
        found = 0
        for row in rows:
            if self.observe(row) is not None:
                found += 1
        return found

    def _features(self, row: HttpRequest, parsed, iab: str | None) -> dict[str, Hashable]:
        ua = parse_user_agent(row.user_agent)
        lookup = self.geoip.lookup(row.client_ip)
        return {
            "context": ua.context,
            "device_type": ua.device_type,
            "city": lookup.city or "unknown",
            "time_of_day": hour_of(row.timestamp) // 4,
            "day_of_week": day_of_week(row.timestamp),
            "slot_size": parsed.slot_size or "unknown",
            "publisher_iab": iab or "unknown",
            "adx": parsed.adx,
            "os": ua.os,
            "publisher": parsed.params.get("pub_name", "unknown"),
        }

    # -- reporting -----------------------------------------------------------

    def summary(self) -> ToolbarSummary:
        """Cumulative totals (the extension's main display)."""
        clr = [e for e in self.ledger if not e.encrypted]
        enc = [e for e in self.ledger if e.encrypted]
        return ToolbarSummary(
            cleartext_cpm=sum(e.amount_cpm for e in clr),
            encrypted_estimated_cpm=sum(e.amount_cpm for e in enc),
            n_cleartext=len(clr),
            n_encrypted=len(enc),
        )

    def drain_notifications(self) -> list[LedgerEntry]:
        """New prices since the last toolbar check (then cleared)."""
        out = self._notifications
        self._notifications = []
        return out

    # -- PME interaction -------------------------------------------------------

    def check_for_update(self, package: dict) -> bool:
        """Install a newer model package; returns True when updated."""
        version = int(package.get("version", 1))
        if version <= self.model_version:
            return False
        self.model = EncryptedPriceModel.from_package(package)
        self.model_version = version
        self.time_correction = self.model.time_correction
        return True

    def contribution_records(self) -> list[dict]:
        """Anonymised cleartext price records for crowd contribution.

        Only auction-level metadata and the price are shared -- no user
        identifier, raw URL, IP or timestamp finer than the hour, which
        is the privacy contract of section 3.2's anonymous channel.
        """
        records = []
        for entry in self.ledger:
            if entry.encrypted:
                continue
            records.append(
                {
                    "adx": entry.adx,
                    "dsp": entry.dsp,
                    "slot_size": entry.slot_size or "unknown",
                    "publisher_iab": entry.publisher_iab,
                    "hour_of_day": hour_of(entry.timestamp),
                    "day_of_week": day_of_week(entry.timestamp),
                    "price_cpm": entry.amount_cpm,
                }
            )
        return records
