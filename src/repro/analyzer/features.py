"""Feature extraction: the paper's Table 4 over a weblog.

For every detected price notification the extractor assembles a feature
vector ``F`` combining three groups:

* geo-temporal -- time of day, day of week, city (reverse IP), number
  of distinct locations seen for the user;
* user -- interest categories, device type/OS, web-beacon and
  cookie-sync counts, publishers visited, HTTP volume statistics;
* ad -- slot size, ADX, DSP, publisher IAB category, campaign
  popularity, advertiser traffic statistics, URL parameter count.

Everything is computed observer-side from the weblog rows; nothing
leaks from the simulator's private state.  ``full_vector`` additionally
expands categorical fields into indicator features, yielding the
~288-dimensional representation the paper's dimensionality-reduction
step starts from.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Hashable, Iterable

from repro.analyzer.blacklist import GROUP_REST, DomainBlacklist
from repro.analyzer.detector import (
    DetectedNotification,
    is_sync_beacon,
    is_web_beacon,
)
from repro.analyzer.geoip import GeoIpResolver
from repro.analyzer.interests import PublisherDirectory
from repro.analyzer.useragent import parse_user_agent
from repro.rtb.iab import DATASET_CATEGORIES, InterestProfile
from repro.trace.weblog import HttpRequest
from repro.util.timeutil import day_of_week, hour_of, is_weekend, month_of

#: The compact feature set S the paper selects in section 5.1.
CORE_FEATURES: tuple[str, ...] = (
    "context",        # app / web
    "device_type",
    "city",
    "time_of_day",    # 4-hour bucket index 0-5
    "day_of_week",    # 0-6
    "slot_size",
    "publisher_iab",
    "adx",
)

#: S plus the exact publisher -- the configuration the paper rejects as
#: overfitting (section 5.4).
CORE_FEATURES_WITH_PUBLISHER: tuple[str, ...] = CORE_FEATURES + ("publisher",)


@dataclass
class UserAggregates:
    """Observer-side per-user statistics (Table 4's user features)."""

    n_requests: int = 0
    total_bytes: int = 0
    total_duration_ms: float = 0.0
    n_syncs: int = 0
    n_beacons: int = 0
    content_domains: set[str] = field(default_factory=set)
    cities: set[str] = field(default_factory=set)
    interests: InterestProfile = field(default_factory=lambda: InterestProfile(()))
    os: str = "Other"
    device_type: str = "unknown"

    @property
    def avg_bytes_per_request(self) -> float:
        return self.total_bytes / self.n_requests if self.n_requests else 0.0

    @property
    def avg_duration_per_request(self) -> float:
        return self.total_duration_ms / self.n_requests if self.n_requests else 0.0

    def merge_from(self, later: "UserAggregates") -> None:
        """Fold a *later* partial (same user, subsequent rows) into this one.

        Counters and sets are order-independent; the ``os`` /
        ``device_type`` fields keep the sequential "last informative row
        wins" semantics, so ``later`` must really come after ``self`` in
        weblog order.
        """
        self.n_requests += later.n_requests
        self.total_bytes += later.total_bytes
        self.total_duration_ms += later.total_duration_ms
        self.n_syncs += later.n_syncs
        self.n_beacons += later.n_beacons
        self.content_domains |= later.content_domains
        self.cities |= later.cities
        if later.os != "Other":
            self.os = later.os
        if later.device_type != "unknown":
            self.device_type = later.device_type


@dataclass
class AdvertiserAggregates:
    """Observer-side per-advertiser statistics (Table 4's ad features)."""

    n_requests: int = 0
    total_bytes: int = 0
    total_duration_ms: float = 0.0
    users: set[str] = field(default_factory=set)

    @property
    def avg_requests_per_user(self) -> float:
        return self.n_requests / len(self.users) if self.users else 0.0

    @property
    def avg_duration(self) -> float:
        return self.total_duration_ms / self.n_requests if self.n_requests else 0.0

    def merge_from(self, other: "AdvertiserAggregates") -> None:
        """Fold another partial for the same advertiser into this one."""
        self.n_requests += other.n_requests
        self.total_bytes += other.total_bytes
        self.total_duration_ms += other.total_duration_ms
        self.users |= other.users


class FeatureExtractor:
    """Precomputes aggregates over a weblog, then vectorises notifications.

    Two construction modes:

    * the classic batch constructor scans ``rows`` and ``notifications``
      eagerly (classifying each row itself), preserving the original
      API;
    * :meth:`incremental` returns an empty extractor that the
      single-pass and sharded analyzers feed row-by-row via
      :meth:`ingest_row` / :meth:`ingest_notification` (the *caller*
      supplies each row's blacklist group, so classification happens
      exactly once per row), then seal with :meth:`finalize_interests`.

    Partial extractors built over disjoint slices of a weblog can be
    recombined with :meth:`merge_from`; merging partials of the same
    shard in weblog order reproduces the sequential state exactly.
    """

    def __init__(
        self,
        rows: Iterable[HttpRequest],
        notifications: Iterable[DetectedNotification],
        blacklist: DomainBlacklist,
        directory: PublisherDirectory,
        geoip: GeoIpResolver | None = None,
    ):
        self.blacklist = blacklist
        self.directory = directory
        self.geoip = geoip or GeoIpResolver()
        self.users: dict[str, UserAggregates] = defaultdict(UserAggregates)
        self.advertisers: dict[str, AdvertiserAggregates] = defaultdict(
            AdvertiserAggregates
        )
        self.campaign_counts: Counter[str] = Counter()
        #: Raw per-user interest-category visit counts.  Kept as counts
        #: (not profiles) so partial extractors merge exactly; turned
        #: into :class:`InterestProfile` by :meth:`finalize_interests`.
        self._interest_counts: dict[str, Counter[str]] = defaultdict(Counter)
        for row in rows:
            self.ingest_row(row, self.blacklist.classify(row.domain))
        for det in notifications:
            self.ingest_notification(det)
        self.finalize_interests()

    @classmethod
    def incremental(
        cls,
        blacklist: DomainBlacklist,
        directory: PublisherDirectory,
        geoip: GeoIpResolver | None = None,
    ) -> "FeatureExtractor":
        """An empty extractor ready for :meth:`ingest_row` feeding."""
        return cls((), (), blacklist, directory, geoip)

    # -- incremental ingestion -----------------------------------------------

    def ingest_row(self, row: HttpRequest, group: str) -> None:
        """Fold one weblog row, pre-classified as ``group``, into the
        per-user aggregates (classification is the caller's job so it is
        paid exactly once per row on the single-pass path)."""
        agg = self.users[row.user_id]
        agg.n_requests += 1
        agg.total_bytes += row.bytes_transferred
        agg.total_duration_ms += row.duration_ms
        if is_sync_beacon(row):
            agg.n_syncs += 1
        elif is_web_beacon(row):
            agg.n_beacons += 1
        lookup = self.geoip.lookup(row.client_ip)
        if lookup.resolved:
            agg.cities.add(lookup.city)
        if group == GROUP_REST:
            agg.content_domains.add(row.domain)
            category = self.directory.category_of(row.domain)
            if category is not None:
                self._interest_counts[row.user_id][category] += 1
        ua = parse_user_agent(row.user_agent)
        if ua.os != "Other":
            agg.os = ua.os
        if ua.device_type != "unknown":
            agg.device_type = ua.device_type

    def ingest_notification(self, det: DetectedNotification) -> None:
        """Fold one detected win notification into advertiser/campaign
        aggregates."""
        advertiser = det.parsed.params.get("ad_domain", "")
        if advertiser:
            agg = self.advertisers[advertiser]
            agg.n_requests += 1
            agg.total_bytes += det.row.bytes_transferred
            agg.total_duration_ms += det.row.duration_ms
            agg.users.add(det.user_id)
        campaign = det.parsed.campaign_id
        if campaign:
            self.campaign_counts[campaign] += 1

    def finalize_interests(self) -> None:
        """Materialise interest profiles from the accumulated counts.

        Idempotent: safe to call again after further ingestion or
        merging (profiles are recomputed from the raw counts).
        """
        for user_id, counts in self._interest_counts.items():
            self.users[user_id].interests = InterestProfile.from_counts(
                dict(counts)
            )

    def merge_from(self, later: "FeatureExtractor") -> None:
        """Fold a *later* partial extractor into this one.

        ``later`` must cover rows that come after this extractor's rows
        in weblog order for any user both have seen (last-wins fields);
        call :meth:`finalize_interests` once merging is complete.
        """
        for user_id, agg in later.users.items():
            if user_id in self.users:
                self.users[user_id].merge_from(agg)
            else:
                self.users[user_id] = agg
        for advertiser, agg in later.advertisers.items():
            if advertiser in self.advertisers:
                self.advertisers[advertiser].merge_from(agg)
            else:
                self.advertisers[advertiser] = agg
        self.campaign_counts.update(later.campaign_counts)
        for user_id, counts in later._interest_counts.items():
            self._interest_counts[user_id].update(counts)

    # -- vectorisation -------------------------------------------------------

    def core_vector(self, det: DetectedNotification) -> dict[str, Hashable]:
        """The compact feature set S for one notification."""
        row = det.row
        ua = parse_user_agent(row.user_agent)
        lookup = self.geoip.lookup(row.client_ip)
        publisher = det.parsed.params.get("pub_name", "")
        iab = self.directory.category_of(publisher) if publisher else None
        return {
            "context": ua.context,
            "device_type": ua.device_type,
            "city": lookup.city or "unknown",
            "time_of_day": hour_of(row.timestamp) // 4,
            "day_of_week": day_of_week(row.timestamp),
            "slot_size": det.parsed.slot_size or "unknown",
            "publisher_iab": iab or "unknown",
            "adx": det.parsed.adx,
        }

    def full_vector(self, det: DetectedNotification) -> dict[str, Hashable]:
        """The extended feature vector F (core + user + ad + expansions)."""
        row = det.row
        ua = parse_user_agent(row.user_agent)
        user = self.users[row.user_id]
        advertiser = det.parsed.params.get("ad_domain", "")
        adv = self.advertisers.get(advertiser, AdvertiserAggregates())
        campaign = det.parsed.campaign_id or ""

        features = self.core_vector(det)
        features.update(
            {
                "dsp": det.parsed.dsp or "unknown",
                "os": ua.os,
                "month": month_of(row.timestamp),
                "hour": hour_of(row.timestamp),
                "is_weekend": int(is_weekend(row.timestamp)),
                "publisher": det.parsed.params.get("pub_name", "unknown"),
                "n_url_params": det.n_url_params,
                "campaign_popularity": self.campaign_counts.get(campaign, 0),
                # User group.
                "user_n_requests": user.n_requests,
                "user_total_bytes": user.total_bytes,
                "user_avg_bytes_per_req": user.avg_bytes_per_request,
                "user_total_duration_ms": user.total_duration_ms,
                "user_avg_duration_per_req": user.avg_duration_per_request,
                "user_n_syncs": user.n_syncs,
                "user_n_beacons": user.n_beacons,
                "user_n_publishers": len(user.content_domains),
                "user_n_locations": len(user.cities),
                "user_dominant_interest": user.interests.dominant or "none",
                # Advertiser group.
                "adv_n_requests": adv.n_requests,
                "adv_total_bytes": adv.total_bytes,
                "adv_avg_reqs_per_user": adv.avg_requests_per_user,
                "adv_avg_duration": adv.avg_duration,
            }
        )
        # Sparse expansions: per-category interest weights and indicator
        # features -- these are what inflate F to hundreds of dimensions.
        for code in DATASET_CATEGORIES:
            features[f"interest_{code}"] = user.interests.weight(code)
        for h in range(24):
            features[f"hour_{h:02d}"] = int(hour_of(row.timestamp) == h)
        for d in range(7):
            features[f"dow_{d}"] = int(day_of_week(row.timestamp) == d)
        return features

    def feature_names_full(self) -> list[str]:
        """Stable column order for the extended vector."""
        names = list(CORE_FEATURES)
        names += [
            "dsp", "os", "month", "hour", "is_weekend", "publisher",
            "n_url_params", "campaign_popularity",
            "user_n_requests", "user_total_bytes", "user_avg_bytes_per_req",
            "user_total_duration_ms", "user_avg_duration_per_req",
            "user_n_syncs", "user_n_beacons", "user_n_publishers",
            "user_n_locations", "user_dominant_interest",
            "adv_n_requests", "adv_total_bytes", "adv_avg_reqs_per_user",
            "adv_avg_duration",
        ]
        names += [f"interest_{code}" for code in DATASET_CATEGORIES]
        names += [f"hour_{h:02d}" for h in range(24)]
        names += [f"dow_{d}" for d in range(7)]
        return names
