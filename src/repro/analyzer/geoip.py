"""Reverse IP geocoding (the analyzer's MaxMind stand-in).

The paper maps each user IP to city level with the MaxMind GeoIP
database (section 4.2).  Our bundled registry serves the same role for
the simulator's synthetic address plan: every city owns an ``85.X/16``
block.  The resolver is deliberately independent of the trace
generator's internals -- it consumes a (network -> city) table exactly
like a GeoIP database does, so it can be re-pointed at other address
plans.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.geography import CITIES


@dataclass(frozen=True)
class GeoLookup:
    """Result of one IP lookup."""

    ip: str
    city: str | None
    country: str | None

    @property
    def resolved(self) -> bool:
        return self.city is not None


class GeoIpResolver:
    """City-level reverse geocoder over /16 network prefixes."""

    def __init__(self, table: dict[str, tuple[str, str]] | None = None):
        """``table`` maps '85.X' prefixes to (city, country)."""
        if table is None:
            table = {f"85.{c.ip_block}": (c.name, "ES") for c in CITIES}
        self._table = dict(table)
        # Per-instance memo: a weblog repeats each client IP thousands
        # of times and lookups are pure over the fixed table, so the
        # octet parse + prefix match is paid once per distinct IP.
        self._memo: dict[str, GeoLookup] = {}

    def lookup(self, ip: str) -> GeoLookup:
        """Resolve an IPv4 string; unknown networks yield an unresolved
        result rather than raising (real GeoIP misses happen)."""
        cached = self._memo.get(ip)
        if cached is not None:
            return cached
        result = self._lookup_uncached(ip)
        self._memo[ip] = result
        return result

    def _lookup_uncached(self, ip: str) -> GeoLookup:
        parts = ip.split(".") if ip else []
        if len(parts) != 4:
            return GeoLookup(ip=ip, city=None, country=None)
        try:
            octets = [int(p) for p in parts]
        except ValueError:
            return GeoLookup(ip=ip, city=None, country=None)
        if not all(0 <= o <= 255 for o in octets):
            return GeoLookup(ip=ip, city=None, country=None)
        entry = self._table.get(f"{octets[0]}.{octets[1]}")
        if entry is None:
            return GeoLookup(ip=ip, city=None, country=None)
        city, country = entry
        return GeoLookup(ip=ip, city=city, country=country)

    def known_networks(self) -> list[str]:
        return sorted(self._table)
