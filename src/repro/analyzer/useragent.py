"""User-Agent parsing.

Recovers, from the UA string alone, everything the paper's analyzer
extracts (section 4.3): the OS family, the device class, and whether
the request came from a native app or a mobile browser -- keying on the
process-VM / kernel fingerprints apps leak (Dalvik/ART on Android,
CFNetwork/Darwin on iOS) versus browser tokens.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache

OS_ANDROID = "Android"
OS_IOS = "iOS"
OS_WINDOWS = "Windows Mobile"
OS_OTHER = "Other"

#: Android model prefixes that indicate tablets in our catalog.
_ANDROID_TABLET_MODELS = ("SM-T", "Nexus 7", "Nexus 10", "GT-P")


@dataclass(frozen=True)
class ParsedUserAgent:
    """The device facts recoverable from one UA string."""

    os: str
    device_type: str          # "smartphone" | "tablet" | "unknown"
    is_app: bool
    raw: str

    @property
    def context(self) -> str:
        """``'app'`` or ``'web'``."""
        return "app" if self.is_app else "web"


@lru_cache(maxsize=8192)
def parse_user_agent(ua: str) -> ParsedUserAgent:
    """Classify one User-Agent string.

    Unknown strings degrade gracefully to (Other, unknown, web) rather
    than raising: a weblog contains plenty of exotic agents.

    Memoised: UA strings repeat per device for months, the parse is
    pure, and the result is frozen -- so the analyzer's per-row parse
    cost collapses to a dict hit on the hot path.
    """
    raw = ua or ""

    # App runtime fingerprints come first: they are unambiguous.
    if "Dalvik" in raw or "ART/" in raw:
        return ParsedUserAgent(
            os=OS_ANDROID,
            device_type=_android_device_type(raw),
            is_app=True,
            raw=raw,
        )
    if "CFNetwork" in raw or "Darwin" in raw:
        return ParsedUserAgent(
            os=OS_IOS,
            device_type=_ios_device_type(raw),
            is_app=True,
            raw=raw,
        )

    # Browser tokens.
    if "Windows Phone" in raw:
        return ParsedUserAgent(
            os=OS_WINDOWS, device_type="smartphone", is_app=False, raw=raw
        )
    if "Android" in raw:
        return ParsedUserAgent(
            os=OS_ANDROID,
            device_type=_android_device_type(raw),
            is_app=False,
            raw=raw,
        )
    if "iPhone" in raw:
        return ParsedUserAgent(
            os=OS_IOS, device_type="smartphone", is_app=False, raw=raw
        )
    if "iPad" in raw:
        return ParsedUserAgent(os=OS_IOS, device_type="tablet", is_app=False, raw=raw)

    return ParsedUserAgent(os=OS_OTHER, device_type="unknown", is_app=False, raw=raw)


def _android_device_type(ua: str) -> str:
    for prefix in _ANDROID_TABLET_MODELS:
        if prefix in ua:
            return "tablet"
    return "smartphone"


_IOS_MODEL = re.compile(r"(iPhone|iPad|iPod)[\d,]*")


def _ios_device_type(ua: str) -> str:
    match = _IOS_MODEL.search(ua)
    if match is None:
        return "unknown"
    return "tablet" if match.group(1) == "iPad" else "smartphone"
