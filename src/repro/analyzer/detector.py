"""RTB notification detection over a classified weblog.

Second-level filtering of the paper's analyzer (section 4.1): among the
rows the blacklist classified as *advertising*, find the win
notifications by pattern-matching the known charge-price macros, and
extract price (cleartext or encrypted token) plus auction metadata --
explicitly filtering out bid prices that co-exist in some nURLs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator
from urllib.parse import parse_qsl, urlparse

from repro.analyzer.blacklist import GROUP_ADVERTISING, DomainBlacklist
from repro.rtb.nurl import ParsedNotification, parse_nurl
from repro.trace.weblog import HttpRequest


def count_url_params(url: str) -> int:
    """Number of query parameters in a URL (a Table-4 ad feature).

    Free function so both the batch pipeline and the streaming analyzer
    can compute it without constructing a throwaway
    :class:`DetectedNotification`.
    """
    return len(parse_qsl(urlparse(url).query, keep_blank_values=True))


@dataclass(frozen=True)
class DetectedNotification:
    """One win notification found in the weblog."""

    row: HttpRequest
    parsed: ParsedNotification

    @property
    def timestamp(self) -> float:
        return self.row.timestamp

    @property
    def user_id(self) -> str:
        return self.row.user_id

    @property
    def n_url_params(self) -> int:
        """Number of query parameters (a Table-4 ad feature)."""
        return count_url_params(self.row.url)


def detect_notifications(
    rows: Iterable[HttpRequest], blacklist: DomainBlacklist
) -> Iterator[DetectedNotification]:
    """Yield every win notification among advertising-classified rows."""
    for row in rows:
        if blacklist.classify(row.domain) != GROUP_ADVERTISING:
            continue
        parsed = parse_nurl(row.url)
        if parsed is None:
            continue
        yield DetectedNotification(row=row, parsed=parsed)


def classify_rows(
    rows: Iterable[HttpRequest], blacklist: DomainBlacklist
) -> Counter[str]:
    """Traffic-group histogram of the weblog (the 5-group first pass)."""
    counts: Counter[str] = Counter()
    for row in rows:
        counts[blacklist.classify(row.domain)] += 1
    return counts


def is_sync_beacon(row: HttpRequest) -> bool:
    """Detect cookie-sync pixels by their URL shape (observer-side)."""
    return "partner_uid=" in row.url or row.domain.startswith("sync.")


def is_web_beacon(row: HttpRequest) -> bool:
    """Detect analytics/web beacons by their URL shape (observer-side)."""
    return "/collect?" in row.url or "/beacon" in row.url
