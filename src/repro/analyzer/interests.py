"""User-interest inference from browsing history.

The paper infers each user's interests by collecting the websites the
user visits and mapping them to content categories via Google AdWords,
then aggregating into weighted IAB profiles (section 4.3).  Our
``PublisherDirectory`` plays the AdWords role: a (domain -> IAB
category) lookup built from the publisher universe (a real deployment
would populate it from a categorisation service).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.rtb.iab import InterestProfile, is_valid_category
from repro.trace.publishers import MarketUniverse
from repro.trace.weblog import HttpRequest


@dataclass
class PublisherDirectory:
    """Domain -> IAB category content directory."""

    _categories: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_universe(cls, universe: MarketUniverse) -> "PublisherDirectory":
        """Build the directory from a market universe's publishers."""
        directory = cls()
        for pub in universe.publishers:
            directory.register(pub.domain, pub.iab_category)
        return directory

    def register(self, domain: str, iab_category: str) -> None:
        if not is_valid_category(iab_category):
            raise ValueError(f"unknown IAB category {iab_category!r}")
        self._categories[domain.lower()] = iab_category

    def category_of(self, domain: str) -> str | None:
        """IAB category for a domain, or None when uncategorised."""
        return self._categories.get(domain.lower())

    def items(self) -> list[tuple[str, str]]:
        """All (domain, category) entries, sorted by domain."""
        return sorted(self._categories.items())

    def __len__(self) -> int:
        return len(self._categories)


def infer_interests(
    content_rows: Iterable[HttpRequest], directory: PublisherDirectory
) -> InterestProfile:
    """Weighted IAB interest profile from a user's content requests.

    The caller supplies rows already classified as content (the
    pipeline uses the blacklist's ``rest`` group, never the simulator's
    private labels); uncategorised domains are skipped, as AdWords
    lookups that miss would be.
    """
    counts: Counter[str] = Counter()
    for row in content_rows:
        category = directory.category_of(row.domain)
        if category is not None:
            counts[category] += 1
    return InterestProfile.from_counts(dict(counts))


def visited_publishers(content_rows: Iterable[HttpRequest]) -> set[str]:
    """Distinct content domains a user visited (a Table-4 feature)."""
    return {row.domain for row in content_rows}
