"""Weblog Ads Analyzer: the paper's observer-side measurement pipeline.

Classifies HTTP traffic with a Disconnect-style blacklist, detects RTB
win notifications by macro pattern matching, extracts charge prices
(cleartext and encrypted), reverse-geocodes client IPs, parses user
agents, infers user interests from browsing history, and assembles the
Table-4 feature vectors.
"""

from repro.analyzer.blacklist import (
    ALL_GROUPS,
    GROUP_ADVERTISING,
    GROUP_ANALYTICS,
    GROUP_REST,
    GROUP_SOCIAL,
    GROUP_THIRD_PARTY,
    DomainBlacklist,
    default_blacklist,
)
from repro.analyzer.detector import (
    DetectedNotification,
    classify_rows,
    count_url_params,
    detect_notifications,
    is_sync_beacon,
    is_web_beacon,
)
from repro.analyzer.features import (
    CORE_FEATURES,
    CORE_FEATURES_WITH_PUBLISHER,
    AdvertiserAggregates,
    FeatureExtractor,
    UserAggregates,
)
from repro.analyzer.geoip import GeoIpResolver, GeoLookup
from repro.analyzer.interests import (
    PublisherDirectory,
    infer_interests,
    visited_publishers,
)
from repro.analyzer.parallel import analyze_parallel, merge_partials, shard_of
from repro.analyzer.pipeline import (
    AnalysisResult,
    PriceObservation,
    WeblogAnalyzer,
    scan_rows_single_pass,
)
from repro.analyzer.useragent import ParsedUserAgent, parse_user_agent

__all__ = [
    "DomainBlacklist",
    "default_blacklist",
    "ALL_GROUPS",
    "GROUP_ADVERTISING",
    "GROUP_ANALYTICS",
    "GROUP_SOCIAL",
    "GROUP_THIRD_PARTY",
    "GROUP_REST",
    "DetectedNotification",
    "detect_notifications",
    "classify_rows",
    "count_url_params",
    "analyze_parallel",
    "merge_partials",
    "shard_of",
    "scan_rows_single_pass",
    "is_sync_beacon",
    "is_web_beacon",
    "FeatureExtractor",
    "UserAggregates",
    "AdvertiserAggregates",
    "CORE_FEATURES",
    "CORE_FEATURES_WITH_PUBLISHER",
    "GeoIpResolver",
    "GeoLookup",
    "PublisherDirectory",
    "infer_interests",
    "visited_publishers",
    "AnalysisResult",
    "PriceObservation",
    "WeblogAnalyzer",
    "ParsedUserAgent",
    "parse_user_agent",
]
