"""The end-to-end Weblog Ads Analyzer (paper section 4.1).

Chains the pieces: blacklist classification -> nURL detection -> price
and metadata extraction -> feature aggregation, producing a list of
:class:`PriceObservation` rows that every figure/table of the
evaluation consumes.  All derivations are observer-side: the analyzer
sees only HTTP rows (URL, UA, client IP, sizes), never the simulator's
ground truth.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field, fields
from typing import Callable, Iterable

from repro import obs

from repro.analyzer.blacklist import (
    GROUP_ADVERTISING,
    DomainBlacklist,
    default_blacklist,
)
from repro.analyzer.detector import DetectedNotification
from repro.analyzer.features import FeatureExtractor
from repro.analyzer.geoip import GeoIpResolver
from repro.analyzer.interests import PublisherDirectory
from repro.analyzer.useragent import parse_user_agent
from repro.rtb.nurl import parse_nurl
from repro.trace.weblog import HttpRequest
from repro.util.timeutil import month_of, year_of
from repro.util.validation import reject_legacy_kwargs


@dataclass(frozen=True)
class PriceObservation:
    """One RTB charge-price observation, fully observer-derived."""

    timestamp: float
    user_id: str
    adx: str
    dsp: str
    is_encrypted: bool
    price_cpm: float | None          # None when encrypted
    encrypted_token: str | None
    slot_size: str | None
    publisher: str
    publisher_iab: str
    city: str
    os: str
    device_type: str
    context: str                     # "app" | "web"
    campaign_id: str
    n_url_params: int

    @property
    def month(self) -> int:
        return month_of(self.timestamp)

    @property
    def year(self) -> int:
        return year_of(self.timestamp)


#: Valid string keys for :meth:`AnalysisResult.prices_by`: the paper's
#: observation attributes (feature-group fields) plus the derived
#: ``month`` / ``year`` properties.
_OBSERVATION_KEYS: frozenset[str] = frozenset(
    f.name for f in fields(PriceObservation)
) | {"month", "year"}


@dataclass
class AnalysisResult:
    """Everything one analyzer pass produces.

    ``extractor`` is ``None`` for results adapted from a streaming
    snapshot (:meth:`repro.analyzer.stream.StreamingAnalyzer.snapshot_result`):
    a real-time deployment computes per-notification features at
    observation time and cannot rebuild them retroactively.  Use
    :meth:`features` for a guarded accessor with a clear error.
    """

    observations: list[PriceObservation]
    traffic_counts: Counter
    extractor: FeatureExtractor | None = None
    notifications: list[DetectedNotification] = field(default_factory=list)

    def features(self) -> FeatureExtractor:
        """The feature extractor, or a clear error for streaming snapshots."""
        if self.extractor is None:
            raise RuntimeError(
                "this AnalysisResult is a streaming snapshot and carries no "
                "FeatureExtractor: per-notification features must be computed "
                "at observation time (see StreamingAnalyzer.user_state), not "
                "retroactively"
            )
        return self.extractor

    # -- basic selections ------------------------------------------------

    def cleartext(self) -> list[PriceObservation]:
        return [o for o in self.observations if not o.is_encrypted]

    def encrypted(self) -> list[PriceObservation]:
        return [o for o in self.observations if o.is_encrypted]

    def cleartext_prices(self) -> list[float]:
        return [o.price_cpm for o in self.cleartext() if o.price_cpm is not None]

    # -- figure-level aggregations ----------------------------------------

    def monthly_pair_encryption(self) -> dict[int, tuple[int, int]]:
        """Per month: (encrypted pairs, cleartext pairs) -- Figure 2.

        A pair is counted encrypted for a month when *any* of its
        notifications that month was encrypted (pairs switch once).
        """
        seen: dict[int, dict[tuple[str, str], bool]] = defaultdict(dict)
        for obs in self.observations:
            pair = (obs.adx, obs.dsp)
            month_pairs = seen[obs.month]
            month_pairs[pair] = month_pairs.get(pair, False) or obs.is_encrypted
        return {
            month: (
                sum(1 for enc in pairs.values() if enc),
                sum(1 for enc in pairs.values() if not enc),
            )
            for month, pairs in seen.items()
        }

    def entity_rtb_shares(self) -> dict[str, float]:
        """Per-ADX share of all RTB notifications -- Figure 3 x-axis."""
        counts = Counter(o.adx for o in self.observations)
        total = sum(counts.values())
        if total == 0:
            return {}
        return {adx: n / total for adx, n in counts.most_common()}

    def entity_cleartext_shares(self) -> dict[str, float]:
        """Per-ADX share of cleartext notifications -- Figure 3 y-axis."""
        counts = Counter(o.adx for o in self.cleartext())
        total = sum(counts.values())
        if total == 0:
            return {}
        return {adx: n / total for adx, n in counts.most_common()}

    def prices_by(self, key: str | Callable[[PriceObservation], object]) -> dict:
        """Group cleartext prices by an observation attribute or callable.

        ``key`` is either a callable mapping a :class:`PriceObservation`
        to a group label, or the *name* of an observation attribute (a
        dataclass field, or the derived ``month`` / ``year``
        properties).  Invalid names used to fall through ``getattr`` and
        crash opaquely (or, with a typo'd callable check, silently
        produce an empty grouping); now they raise :class:`ValueError`
        listing the valid keys.
        """
        if callable(key):
            getter = key
        elif isinstance(key, str):
            if key not in _OBSERVATION_KEYS:
                raise ValueError(
                    f"prices_by key {key!r} is not a PriceObservation "
                    f"attribute; valid keys: {', '.join(sorted(_OBSERVATION_KEYS))}"
                )

            def getter(o: PriceObservation, _name: str = key):
                return getattr(o, _name)
        else:
            raise TypeError(
                "prices_by key must be a string attribute name or a "
                f"callable, got {type(key).__name__}"
            )
        groups: dict = defaultdict(list)
        for observation in self.cleartext():
            groups[getter(observation)].append(observation.price_cpm)
        return dict(groups)

    def monthly_os_counts(self) -> dict[int, Counter]:
        """Per month, notification counts per OS -- Figure 8."""
        out: dict[int, Counter] = defaultdict(Counter)
        for obs in self.observations:
            out[obs.month][obs.os] += 1
        return dict(out)

    def monthly_slot_counts(self) -> dict[int, Counter]:
        """Per month, notification counts per slot size -- Figure 12."""
        out: dict[int, Counter] = defaultdict(Counter)
        for obs in self.observations:
            if obs.slot_size:
                out[obs.month][obs.slot_size] += 1
        return dict(out)

    def per_user_cleartext_totals(self) -> dict[str, float]:
        """Sum of cleartext prices per user (CPM units).

        Cleartext observations whose price failed to parse carry
        ``price_cpm=None``; they are skipped (matching
        :meth:`cleartext_prices`) rather than crashing the sum.
        """
        totals: dict[str, float] = defaultdict(float)
        for obs in self.cleartext():
            if obs.price_cpm is not None:
                totals[obs.user_id] += obs.price_cpm
        return dict(totals)


def scan_rows_single_pass(
    indexed_rows: Iterable[tuple[int, HttpRequest]],
    blacklist: DomainBlacklist,
    extractor: FeatureExtractor,
) -> tuple[Counter, list[tuple[int, DetectedNotification]]]:
    """One classification per row, fanned out to every consumer.

    The shared single-pass core of both the sequential analyzer and the
    sharded parallel workers (:mod:`repro.analyzer.parallel`).  Each row
    is classified exactly once; the resulting group simultaneously
    feeds (a) the 5-group traffic histogram, (b) nURL win-notification
    detection, and (c) the feature extractor's per-user aggregates.

    ``indexed_rows`` carries each row's global weblog position so
    sharded runs can restore the sequential emission order; returns the
    traffic histogram and the indexed detections (the caller finalises
    the extractor once all of a shard's chunks are in).
    """
    traffic_counts: Counter = Counter()
    notifications: list[tuple[int, DetectedNotification]] = []
    for index, row in indexed_rows:
        group = blacklist.classify(row.domain)
        traffic_counts[group] += 1
        extractor.ingest_row(row, group)
        if group == GROUP_ADVERTISING:
            parsed = parse_nurl(row.url)
            if parsed is not None:
                det = DetectedNotification(row=row, parsed=parsed)
                extractor.ingest_notification(det)
                notifications.append((index, det))
    return traffic_counts, notifications


class WeblogAnalyzer:
    """The paper's analyzer: configure once, run over any weblog."""

    def __init__(
        self,
        directory: PublisherDirectory,
        blacklist: DomainBlacklist | None = None,
        geoip: GeoIpResolver | None = None,
    ):
        self.directory = directory
        self.blacklist = blacklist or default_blacklist()
        self.geoip = geoip or GeoIpResolver()

    def analyze(
        self,
        rows: Iterable[HttpRequest],
        *,
        workers: int | None = None,
        chunk_size: int | None = None,
        **legacy,
    ) -> AnalysisResult:
        """Run the full pipeline over weblog rows.

        Single-pass: ``rows`` may be any iterable (including the
        :func:`repro.io.iter_weblog_csv` generator) and is consumed
        exactly once without being materialised; every domain is
        classified exactly once.  With ``workers > 1`` the work is
        sharded by ``user_id`` hash across processes (see
        :func:`repro.analyzer.parallel.analyze_parallel`) and the merged
        result is identical to the sequential one.

        Only ``workers=`` / ``chunk_size=`` are accepted; legacy
        spellings (``n_jobs``, ``chunksize``, ...) raise a TypeError
        naming the replacement.
        """
        reject_legacy_kwargs("WeblogAnalyzer.analyze", legacy)
        if workers is not None and workers > 1:
            from repro.analyzer.parallel import analyze_parallel

            return analyze_parallel(
                rows,
                self.directory,
                blacklist=self.blacklist,
                geoip=self.geoip,
                workers=workers,
                chunk_size=chunk_size or 50_000,
            )
        with obs.stage("analyzer.analyze", workers=1) as st:
            extractor = FeatureExtractor.incremental(
                self.blacklist, self.directory, self.geoip
            )
            with obs.span("analyzer.scan"):
                traffic_counts, indexed = scan_rows_single_pass(
                    enumerate(rows), self.blacklist, extractor
                )
            extractor.finalize_interests()
            with obs.span("analyzer.observations"):
                notifications = [det for _, det in indexed]
                observations = [
                    self._to_observation(det, extractor) for det in notifications
                ]
            st.set(
                rows=int(sum(traffic_counts.values())),
                observations=len(observations),
            )
        return AnalysisResult(
            observations=observations,
            traffic_counts=traffic_counts,
            extractor=extractor,
            notifications=notifications,
        )

    def _to_observation(
        self, det: DetectedNotification, extractor: FeatureExtractor
    ) -> PriceObservation:
        row = det.row
        ua = parse_user_agent(row.user_agent)
        lookup = self.geoip.lookup(row.client_ip)
        publisher = det.parsed.params.get("pub_name", "")
        iab = self.directory.category_of(publisher) if publisher else None
        return PriceObservation(
            timestamp=row.timestamp,
            user_id=row.user_id,
            adx=det.parsed.adx,
            dsp=det.parsed.dsp or "unknown",
            is_encrypted=det.parsed.is_encrypted,
            price_cpm=det.parsed.cleartext_price_cpm,
            encrypted_token=det.parsed.encrypted_token,
            slot_size=det.parsed.slot_size,
            publisher=publisher,
            publisher_iab=iab or "unknown",
            city=lookup.city or "unknown",
            os=ua.os,
            device_type=ua.device_type,
            context=ua.context,
            campaign_id=det.parsed.campaign_id or "",
            n_url_params=det.n_url_params,
        )
