"""The end-to-end Weblog Ads Analyzer (paper section 4.1).

Chains the pieces: blacklist classification -> nURL detection -> price
and metadata extraction -> feature aggregation, producing a list of
:class:`PriceObservation` rows that every figure/table of the
evaluation consumes.  All derivations are observer-side: the analyzer
sees only HTTP rows (URL, UA, client IP, sizes), never the simulator's
ground truth.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Iterable

from repro.analyzer.blacklist import DomainBlacklist, default_blacklist
from repro.analyzer.detector import (
    DetectedNotification,
    classify_rows,
    detect_notifications,
)
from repro.analyzer.features import FeatureExtractor
from repro.analyzer.geoip import GeoIpResolver
from repro.analyzer.interests import PublisherDirectory
from repro.analyzer.useragent import parse_user_agent
from repro.trace.weblog import HttpRequest
from repro.util.timeutil import month_of, year_of


@dataclass(frozen=True)
class PriceObservation:
    """One RTB charge-price observation, fully observer-derived."""

    timestamp: float
    user_id: str
    adx: str
    dsp: str
    is_encrypted: bool
    price_cpm: float | None          # None when encrypted
    encrypted_token: str | None
    slot_size: str | None
    publisher: str
    publisher_iab: str
    city: str
    os: str
    device_type: str
    context: str                     # "app" | "web"
    campaign_id: str
    n_url_params: int

    @property
    def month(self) -> int:
        return month_of(self.timestamp)

    @property
    def year(self) -> int:
        return year_of(self.timestamp)


@dataclass
class AnalysisResult:
    """Everything one analyzer pass produces."""

    observations: list[PriceObservation]
    traffic_counts: Counter
    extractor: FeatureExtractor
    notifications: list[DetectedNotification] = field(default_factory=list)

    # -- basic selections ------------------------------------------------

    def cleartext(self) -> list[PriceObservation]:
        return [o for o in self.observations if not o.is_encrypted]

    def encrypted(self) -> list[PriceObservation]:
        return [o for o in self.observations if o.is_encrypted]

    def cleartext_prices(self) -> list[float]:
        return [o.price_cpm for o in self.cleartext() if o.price_cpm is not None]

    # -- figure-level aggregations ----------------------------------------

    def monthly_pair_encryption(self) -> dict[int, tuple[int, int]]:
        """Per month: (encrypted pairs, cleartext pairs) -- Figure 2.

        A pair is counted encrypted for a month when *any* of its
        notifications that month was encrypted (pairs switch once).
        """
        seen: dict[int, dict[tuple[str, str], bool]] = defaultdict(dict)
        for obs in self.observations:
            pair = (obs.adx, obs.dsp)
            month_pairs = seen[obs.month]
            month_pairs[pair] = month_pairs.get(pair, False) or obs.is_encrypted
        return {
            month: (
                sum(1 for enc in pairs.values() if enc),
                sum(1 for enc in pairs.values() if not enc),
            )
            for month, pairs in seen.items()
        }

    def entity_rtb_shares(self) -> dict[str, float]:
        """Per-ADX share of all RTB notifications -- Figure 3 x-axis."""
        counts = Counter(o.adx for o in self.observations)
        total = sum(counts.values())
        return {adx: n / total for adx, n in counts.most_common()}

    def entity_cleartext_shares(self) -> dict[str, float]:
        """Per-ADX share of cleartext notifications -- Figure 3 y-axis."""
        counts = Counter(o.adx for o in self.cleartext())
        total = sum(counts.values())
        if total == 0:
            return {}
        return {adx: n / total for adx, n in counts.most_common()}

    def prices_by(self, key) -> dict:
        """Group cleartext prices by an observation attribute or callable."""
        groups: dict = defaultdict(list)
        for obs in self.cleartext():
            value = key(obs) if callable(key) else getattr(obs, key)
            groups[value].append(obs.price_cpm)
        return dict(groups)

    def monthly_os_counts(self) -> dict[int, Counter]:
        """Per month, notification counts per OS -- Figure 8."""
        out: dict[int, Counter] = defaultdict(Counter)
        for obs in self.observations:
            out[obs.month][obs.os] += 1
        return dict(out)

    def monthly_slot_counts(self) -> dict[int, Counter]:
        """Per month, notification counts per slot size -- Figure 12."""
        out: dict[int, Counter] = defaultdict(Counter)
        for obs in self.observations:
            if obs.slot_size:
                out[obs.month][obs.slot_size] += 1
        return dict(out)

    def per_user_cleartext_totals(self) -> dict[str, float]:
        """Sum of cleartext prices per user (CPM units)."""
        totals: dict[str, float] = defaultdict(float)
        for obs in self.cleartext():
            totals[obs.user_id] += obs.price_cpm
        return dict(totals)


class WeblogAnalyzer:
    """The paper's analyzer: configure once, run over any weblog."""

    def __init__(
        self,
        directory: PublisherDirectory,
        blacklist: DomainBlacklist | None = None,
        geoip: GeoIpResolver | None = None,
    ):
        self.directory = directory
        self.blacklist = blacklist or default_blacklist()
        self.geoip = geoip or GeoIpResolver()

    def analyze(self, rows: Iterable[HttpRequest]) -> AnalysisResult:
        """Run the full pipeline over weblog rows."""
        rows = list(rows)
        traffic_counts = classify_rows(rows, self.blacklist)
        notifications = list(detect_notifications(rows, self.blacklist))
        extractor = FeatureExtractor(
            rows, notifications, self.blacklist, self.directory, self.geoip
        )
        observations = [
            self._to_observation(det, extractor) for det in notifications
        ]
        return AnalysisResult(
            observations=observations,
            traffic_counts=traffic_counts,
            extractor=extractor,
            notifications=notifications,
        )

    def _to_observation(
        self, det: DetectedNotification, extractor: FeatureExtractor
    ) -> PriceObservation:
        row = det.row
        ua = parse_user_agent(row.user_agent)
        lookup = self.geoip.lookup(row.client_ip)
        publisher = det.parsed.params.get("pub_name", "")
        iab = self.directory.category_of(publisher) if publisher else None
        return PriceObservation(
            timestamp=row.timestamp,
            user_id=row.user_id,
            adx=det.parsed.adx,
            dsp=det.parsed.dsp or "unknown",
            is_encrypted=det.parsed.is_encrypted,
            price_cpm=det.parsed.cleartext_price_cpm,
            encrypted_token=det.parsed.encrypted_token,
            slot_size=det.parsed.slot_size,
            publisher=publisher,
            publisher_iab=iab or "unknown",
            city=lookup.city or "unknown",
            os=ua.os,
            device_type=ua.device_type,
            context=ua.context,
            campaign_id=det.parsed.campaign_id or "",
            n_url_params=det.n_url_params,
        )
