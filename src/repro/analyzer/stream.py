"""Incremental (streaming) weblog analysis.

The batch :class:`~repro.analyzer.pipeline.WeblogAnalyzer` wants the
whole weblog in memory -- fine for research replays, wrong for the
deployment the paper describes, where a proxy (or the YourAdValue
extension itself) sees one request at a time for months.  The
``StreamingAnalyzer`` consumes rows incrementally with bounded memory:

* per-user aggregates are updated in O(1) per row;
* interest profiles are maintained as running per-category counters;
* price observations are emitted as soon as their nURL arrives,
  vectorised against the *aggregates as of that moment* (a real-time
  system cannot peek at the future, unlike the batch analyzer -- this
  is the honest online semantics).

``snapshot_result()`` adapts the accumulated state into the same
:class:`~repro.analyzer.pipeline.AnalysisResult` aggregations the
benchmarks consume, so downstream code is agnostic to how the analysis
was produced.
"""

from __future__ import annotations

import time
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro import obs
from repro.analyzer.blacklist import (
    GROUP_ADVERTISING,
    GROUP_REST,
    DomainBlacklist,
    default_blacklist,
)
from repro.analyzer.detector import count_url_params, is_sync_beacon, is_web_beacon
from repro.analyzer.geoip import GeoIpResolver, GeoLookup
from repro.analyzer.interests import PublisherDirectory
from repro.analyzer.pipeline import PriceObservation
from repro.analyzer.useragent import parse_user_agent
from repro.rtb.nurl import parse_nurl
from repro.trace.weblog import HttpRequest


@dataclass
class StreamingUserState:
    """O(1)-updatable per-user state."""

    n_requests: int = 0
    total_bytes: int = 0
    total_duration_ms: float = 0.0
    n_syncs: int = 0
    n_beacons: int = 0
    interest_counts: Counter = field(default_factory=Counter)
    content_domains: set = field(default_factory=set)
    cities: set = field(default_factory=set)

    @property
    def dominant_interest(self) -> str | None:
        if not self.interest_counts:
            return None
        return self.interest_counts.most_common(1)[0][0]


class StreamingAnalyzer:
    """Bounded-memory, single-pass analyzer."""

    def __init__(
        self,
        directory: PublisherDirectory,
        blacklist: DomainBlacklist | None = None,
        geoip: GeoIpResolver | None = None,
    ):
        self.directory = directory
        self.blacklist = blacklist or default_blacklist()
        self.geoip = geoip or GeoIpResolver()
        self.users: dict[str, StreamingUserState] = defaultdict(StreamingUserState)
        self.traffic_counts: Counter = Counter()
        self.observations: list[PriceObservation] = []
        self.rows_seen = 0
        # Per-IP memo of geoip.lookup: a user's rows repeat the same
        # client IP thousands of times, and non-advertising rows should
        # not pay resolution cost on every request.
        self._geo_cache: dict[str, GeoLookup] = {}

    def _lookup_cached(self, ip: str) -> GeoLookup:
        lookup = self._geo_cache.get(ip)
        if lookup is None:
            lookup = self.geoip.lookup(ip)
            self._geo_cache[ip] = lookup
        return lookup

    def process(self, row: HttpRequest) -> PriceObservation | None:
        """Consume one row; returns the observation when it was a nURL."""
        self.rows_seen += 1
        group = self.blacklist.classify(row.domain)
        self.traffic_counts[group] += 1

        state = self.users[row.user_id]
        state.n_requests += 1
        state.total_bytes += row.bytes_transferred
        state.total_duration_ms += row.duration_ms
        if is_sync_beacon(row):
            state.n_syncs += 1
        elif is_web_beacon(row):
            state.n_beacons += 1
        lookup = self._lookup_cached(row.client_ip)
        if lookup.resolved:
            state.cities.add(lookup.city)
        if group == GROUP_REST:
            state.content_domains.add(row.domain)
            category = self.directory.category_of(row.domain)
            if category is not None:
                state.interest_counts[category] += 1

        if group != GROUP_ADVERTISING:
            return None
        parsed = parse_nurl(row.url)
        if parsed is None:
            return None
        observation = self._to_observation(row, parsed, lookup)
        self.observations.append(observation)
        return observation

    def process_many(self, rows: Iterable[HttpRequest]) -> Iterator[PriceObservation]:
        """Consume a row stream, yielding observations as they appear.

        Instrumentation note: the per-row :meth:`process` is the hot
        path and carries no span of its own, and a generator must not
        hold an *open* span across its yields (the suspended span would
        become the caller's current parent).  Instead the drain is
        timed locally and recorded as one pre-measured
        ``analyzer.stream`` event when the stream is exhausted.
        """
        rows_before = self.rows_seen
        observations_before = len(self.observations)
        start_wall = time.time()
        t0 = time.perf_counter()
        for row in rows:
            observation = self.process(row)
            if observation is not None:
                yield observation
        obs.event(
            "analyzer.stream",
            duration=time.perf_counter() - t0,
            start=start_wall,
            rows=self.rows_seen - rows_before,
            observations=len(self.observations) - observations_before,
        )

    def process_file(self, path) -> Iterator[PriceObservation]:
        """Stream a weblog CSV(.gz) straight off disk with bounded memory.

        Couples the analyzer to :func:`repro.io.iter_weblog_csv`: one
        row in flight at a time, observations yielded as they appear.
        """
        from repro.io import iter_weblog_csv  # local: io imports pipeline

        yield from self.process_many(iter_weblog_csv(path))

    def _to_observation(self, row, parsed, lookup) -> PriceObservation:
        ua = parse_user_agent(row.user_agent)
        publisher = parsed.params.get("pub_name", "")
        iab = self.directory.category_of(publisher) if publisher else None
        return PriceObservation(
            timestamp=row.timestamp,
            user_id=row.user_id,
            adx=parsed.adx,
            dsp=parsed.dsp or "unknown",
            is_encrypted=parsed.is_encrypted,
            price_cpm=parsed.cleartext_price_cpm,
            encrypted_token=parsed.encrypted_token,
            slot_size=parsed.slot_size,
            publisher=publisher,
            publisher_iab=iab or "unknown",
            city=lookup.city or "unknown",
            os=ua.os,
            device_type=ua.device_type,
            context=ua.context,
            campaign_id=parsed.campaign_id or "",
            n_url_params=count_url_params(row.url),
        )

    # -- adapters --------------------------------------------------------

    def snapshot_result(self):
        """An :class:`AnalysisResult`-compatible view of current state.

        The returned object supports the aggregation methods downstream
        code uses (``cleartext``, ``encrypted``, ``entity_rtb_shares``,
        ...).  The feature extractor is not included
        (``extractor=None``, an explicit part of the
        :class:`AnalysisResult` contract): per-notification feature
        vectors in a streaming deployment must be computed at
        observation time (see :meth:`user_state`), not retroactively --
        ``AnalysisResult.features()`` raises a descriptive error.
        """
        from repro.analyzer.pipeline import AnalysisResult

        return AnalysisResult(
            observations=list(self.observations),
            traffic_counts=Counter(self.traffic_counts),
            extractor=None,
            notifications=[],
        )

    def user_state(self, user_id: str) -> StreamingUserState:
        """The current aggregates for one user (feature inputs)."""
        return self.users[user_id]

    @property
    def memory_cardinality(self) -> int:
        """Rough bound on retained state entries (users + observations).

        Demonstrates the bounded-memory property: state grows with the
        number of *users and detected prices*, not with raw traffic.
        """
        return len(self.users) + len(self.observations)
