"""Domain classification blacklist (the analyzer's Disconnect stand-in).

The paper's Weblog Ads Analyzer first classifies every HTTP request
into five groups using the Disconnect adblocker's blacklist:
Advertising, Analytics, Social, 3rd-party content, Rest (section 4.1).
We bundle an equivalent registry: the advertising group is seeded from
the win-notification hosts of every known exchange plus common ad/sync
domain shapes, and the other groups from pattern rules.  Additional
lists can be merged in, mirroring the paper's note that multiple
blacklists (EasyList, Ghostery) can be integrated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rtb.nurl import FORMATS

GROUP_ADVERTISING = "advertising"
GROUP_ANALYTICS = "analytics"
GROUP_SOCIAL = "social"
GROUP_THIRD_PARTY = "third_party"
GROUP_REST = "rest"

ALL_GROUPS = (
    GROUP_ADVERTISING,
    GROUP_ANALYTICS,
    GROUP_SOCIAL,
    GROUP_THIRD_PARTY,
    GROUP_REST,
)


@dataclass
class DomainBlacklist:
    """Suffix-matching domain classifier with five groups.

    ``exact`` entries match a domain or any of its subdomains (the usual
    blacklist semantics: ``doubleclick.net`` also covers
    ``ad.doubleclick.net``).
    """

    advertising: set[str] = field(default_factory=set)
    analytics: set[str] = field(default_factory=set)
    social: set[str] = field(default_factory=set)
    third_party: set[str] = field(default_factory=set)
    #: Per-instance memo of classify(); a weblog repeats the same few
    #: thousand domains millions of times, so the suffix walk is paid
    #: once per distinct domain.  Invalidated on mutation.
    _memo: dict = field(default_factory=dict, repr=False, compare=False)

    def _matches(self, domain: str, entries: set[str]) -> bool:
        if domain in entries:
            return True
        parts = domain.split(".")
        for i in range(1, len(parts) - 1):
            if ".".join(parts[i:]) in entries:
                return True
        return False

    def classify(self, domain: str) -> str:
        """Group label for one domain (``rest`` when unlisted)."""
        group = self._memo.get(domain)
        if group is not None:
            return group
        key = domain
        domain = domain.lower().strip()
        if self._matches(domain, self.advertising):
            group = GROUP_ADVERTISING
        elif self._matches(domain, self.analytics):
            group = GROUP_ANALYTICS
        elif self._matches(domain, self.social):
            group = GROUP_SOCIAL
        elif self._matches(domain, self.third_party):
            group = GROUP_THIRD_PARTY
        else:
            group = GROUP_REST
        self._memo[key] = group
        return group

    def merge(self, other: "DomainBlacklist") -> "DomainBlacklist":
        """Union of two blacklists (integrating a second list)."""
        return DomainBlacklist(
            advertising=self.advertising | other.advertising,
            analytics=self.analytics | other.analytics,
            social=self.social | other.social,
            third_party=self.third_party | other.third_party,
        )

    def add_advertising(self, domain: str) -> None:
        self.advertising.add(domain.lower())
        self._memo.clear()

    def __len__(self) -> int:
        return (
            len(self.advertising)
            + len(self.analytics)
            + len(self.social)
            + len(self.third_party)
        )


def default_blacklist() -> DomainBlacklist:
    """The bundled blacklist covering the simulated ecosystem."""
    advertising = {fmt.host for fmt in FORMATS.values()}
    # Exchange sync endpoints follow sync.<adx>.com in the simulator.
    advertising |= {f"sync.{name.lower()}.com" for name in FORMATS}
    advertising |= {
        "ads.example-ads.com",
        "adserver.example.net",
        "banners.adnetwork.example",
    }
    analytics = {
        "metrics.example-analytics.com",
        "stats.trackerhub.io",
        "google-analytics.com",
        "scorecardresearch.com",
    }
    social = {
        "facebook.com",
        "twitter.com",
        "plus.google.com",
        "linkedin.com",
    }
    third_party = {
        "cdn.jsdelivr.example",
        "fonts.example-static.com",
        "cdn.cloudcache.example",
    }
    return DomainBlacklist(
        advertising=advertising,
        analytics=analytics,
        social=social,
        third_party=third_party,
    )
