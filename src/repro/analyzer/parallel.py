"""Sharded parallel weblog analysis.

The paper's Weblog Ads Analyzer chewed through 373M HTTP requests for
1,594 users (section 4.1); a single sequential pass does not survive
the millions-of-users north star.  This module shards weblog rows by
``user_id`` hash across :mod:`multiprocessing` workers, runs the same
single-pass analyzer (:func:`repro.analyzer.pipeline.scan_rows_single_pass`)
over every shard chunk, and merges the partial results into one
:class:`~repro.analyzer.pipeline.AnalysisResult` that is identical to
what the sequential path produces — same observations in the same
order, same traffic histogram, same per-user aggregates.

Design notes
------------

* **Sharding key.**  ``crc32(user_id)`` — stable across processes and
  Python invocations (``hash()`` is salted per interpreter and must
  never be used for cross-process sharding).  Hashing by user keeps all
  of one user's rows in one shard, so per-user state (interest counts,
  "last informative row wins" OS/device fields) never straddles a merge
  boundary out of order.
* **Bounded memory.**  Rows are buffered per shard and dispatched to
  the pool in ``chunk_size`` slices with a bounded in-flight window
  (``2 x workers`` outstanding chunks), so the coordinator never holds
  the whole weblog; combined with :func:`repro.io.iter_weblog_csv` the
  end-to-end pipeline streams from disk.
* **Determinism.**  Every row carries its global weblog index through
  the workers; merged notifications/observations are re-sorted by that
  index, restoring the exact sequential emission order regardless of
  worker scheduling.  Partial feature extractors of the same shard are
  merged in chunk order so order-sensitive per-user fields match the
  sequential run.  Observations, traffic counts, notifications and
  per-user totals are *identical* to the sequential result; the only
  permitted deviation is float-summation associativity in the feature
  aggregates' running sums (``total_duration_ms`` may differ by ~1 ulp
  across chunk boundaries).
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence
from zlib import crc32

from repro import obs

from repro.analyzer.blacklist import DomainBlacklist, default_blacklist
from repro.analyzer.detector import DetectedNotification
from repro.analyzer.features import FeatureExtractor
from repro.analyzer.geoip import GeoIpResolver
from repro.analyzer.interests import PublisherDirectory
from repro.analyzer.pipeline import (
    AnalysisResult,
    PriceObservation,
    WeblogAnalyzer,
    scan_rows_single_pass,
)
from repro.trace.weblog import HttpRequest
from repro.util.parallel import pool_context, resolve_workers
from repro.util.validation import reject_legacy_kwargs

__all__ = [
    "ShardPartial",
    "analyze_parallel",
    "merge_partials",
    "shard_of",
]


def shard_of(user_id: str, n_shards: int) -> int:
    """Stable shard index for a user (crc32, never the salted hash())."""
    return crc32(user_id.encode("utf-8")) % n_shards


@dataclass
class ShardPartial:
    """One worker's single-pass result over one chunk of one shard.

    ``spans`` carries the worker's serialised trace records
    (:meth:`repro.obs.trace.Trace.to_dicts`) for its chunk; the
    coordinator :func:`repro.obs.trace.graft`\\ s them under its own
    ``analyzer.merge`` span so ``repro obs dump`` shows one stitched
    tree.  Empty when the coordinator ran without an active trace (the
    worker still records its own chunk-local trace, but shipping it is
    pointless) -- and defaulted so hand-built partials in tests keep
    working.
    """

    shard: int
    seq: int                     # chunk sequence number within the shard
    traffic_counts: Counter
    notifications: list[tuple[int, DetectedNotification]]
    observations: list[tuple[int, PriceObservation]]
    extractor: FeatureExtractor
    spans: list[dict] = field(default_factory=list)


# -- worker side ------------------------------------------------------------

_WORKER_ANALYZER: WeblogAnalyzer | None = None
_WORKER_TRACING: bool = False


def _init_worker(
    directory: PublisherDirectory,
    blacklist: DomainBlacklist,
    geoip: GeoIpResolver,
    tracing: bool = False,
) -> None:
    """Pool initializer: build the per-process analyzer once, not per chunk.

    ``tracing`` mirrors whether the *coordinator* had an active trace
    when the pool was built: workers cannot see the coordinator's
    context var, so the flag rides the initargs and turns per-chunk
    span collection on only when someone will stitch the spans.
    """
    global _WORKER_ANALYZER, _WORKER_TRACING
    _WORKER_ANALYZER = WeblogAnalyzer(directory, blacklist, geoip)
    _WORKER_TRACING = bool(tracing)


def _analyze_chunk(
    task: tuple[int, int, list[tuple[int, HttpRequest]]],
) -> ShardPartial:
    """Single-pass over one chunk: classify once, feed histogram +
    detection + features, emit indexed observations.

    When tracing is on, the chunk's work runs under a local
    ``analyzer.shard`` trace whose serialised records ship home in
    :attr:`ShardPartial.spans` for coordinator-side grafting.
    """
    shard, seq, indexed_rows = task
    analyzer = _WORKER_ANALYZER
    if analyzer is None:  # sequential fallback path (workers=1, tests)
        raise RuntimeError("worker used before _init_worker")
    collector = (
        obs.start_trace(
            "analyzer.shard", shard=shard, seq=seq, rows=len(indexed_rows)
        )
        if _WORKER_TRACING
        else None
    )

    def _scan() -> ShardPartial:
        extractor = FeatureExtractor.incremental(
            analyzer.blacklist, analyzer.directory, analyzer.geoip
        )
        with obs.span("analyzer.scan"):
            traffic_counts, notifications = scan_rows_single_pass(
                indexed_rows, analyzer.blacklist, extractor
            )
        with obs.span("analyzer.observations"):
            observations = [
                (index, analyzer._to_observation(det, extractor))
                for index, det in notifications
            ]
        # Strip the lookup tables (blacklist sets, directory, geoip with
        # its memo) before pickling the partial back to the coordinator:
        # merge only needs the aggregate state, and the coordinator
        # re-attaches its own tables to the merged extractor.
        extractor.blacklist = None  # type: ignore[assignment]
        extractor.directory = None  # type: ignore[assignment]
        extractor.geoip = None  # type: ignore[assignment]
        return ShardPartial(
            shard=shard,
            seq=seq,
            traffic_counts=traffic_counts,
            notifications=notifications,
            observations=observations,
            extractor=extractor,
        )

    if collector is None:
        return _scan()
    with collector:
        partial = _scan()
    partial.spans = collector.to_dicts()
    return partial


# -- coordinator side -------------------------------------------------------

def _chunk_tasks(
    rows: Iterable[HttpRequest], n_shards: int, chunk_size: int
) -> Iterator[tuple[int, int, list[tuple[int, HttpRequest]]]]:
    """Assign rows to shards, flushing ``chunk_size`` slices as tasks."""
    buffers: list[list[tuple[int, HttpRequest]]] = [[] for _ in range(n_shards)]
    seqs = [0] * n_shards
    for index, row in enumerate(rows):
        shard = shard_of(row.user_id, n_shards)
        buffers[shard].append((index, row))
        if len(buffers[shard]) >= chunk_size:
            yield shard, seqs[shard], buffers[shard]
            buffers[shard] = []
            seqs[shard] += 1
    for shard, buffered in enumerate(buffers):
        if buffered:
            yield shard, seqs[shard], buffered


def merge_partials(
    partials: Sequence[ShardPartial],
    blacklist: DomainBlacklist,
    directory: PublisherDirectory,
    geoip: GeoIpResolver,
) -> AnalysisResult:
    """Combine shard partials into one sequential-identical result.

    Partials are merged shard-by-shard in chunk order (per-user state is
    order-sensitive), then notifications/observations are re-sorted by
    global weblog index to restore the sequential emission order.
    """
    merged_traffic: Counter = Counter()
    indexed_notifications: list[tuple[int, DetectedNotification]] = []
    indexed_observations: list[tuple[int, PriceObservation]] = []
    extractor = FeatureExtractor.incremental(blacklist, directory, geoip)
    with obs.span("analyzer.merge", partials=len(partials)):
        for partial in sorted(partials, key=lambda p: (p.shard, p.seq)):
            merged_traffic.update(partial.traffic_counts)
            indexed_notifications.extend(partial.notifications)
            indexed_observations.extend(partial.observations)
            extractor.merge_from(partial.extractor)
            if partial.spans:
                # Stitch the worker's chunk trace under this merge span;
                # iterating partials in (shard, seq) order keeps the
                # grafted sibling order deterministic across runs.
                obs.graft(partial.spans)
        extractor.finalize_interests()
        indexed_notifications.sort(key=lambda pair: pair[0])
        indexed_observations.sort(key=lambda pair: pair[0])
    return AnalysisResult(
        observations=[o for _, o in indexed_observations],
        traffic_counts=merged_traffic,
        extractor=extractor,
        notifications=[det for _, det in indexed_notifications],
    )


def analyze_parallel(
    rows: Iterable[HttpRequest],
    directory: PublisherDirectory,
    *,
    blacklist: DomainBlacklist | None = None,
    geoip: GeoIpResolver | None = None,
    workers: int | None = None,
    chunk_size: int = 50_000,
    **legacy,
) -> AnalysisResult:
    """Sharded parallel equivalent of :meth:`WeblogAnalyzer.analyze`.

    ``rows`` may be any iterable (a list, or a streaming
    :func:`repro.io.iter_weblog_csv` generator); it is consumed once.
    ``workers=None`` uses the machine's CPU count
    (:func:`repro.util.parallel.resolve_workers`); ``workers=1`` runs
    the single-pass sequential path in-process (no pool overhead).
    The returned result is identical to the sequential analyzer's:
    same observation order, traffic counts, and per-user aggregates.

    Only ``workers=`` / ``chunk_size=`` are accepted; legacy spellings
    (``n_jobs``, ``chunksize``, ...) raise a TypeError naming the
    replacement.
    """
    reject_legacy_kwargs("analyze_parallel", legacy)
    blacklist = blacklist or default_blacklist()
    geoip = geoip or GeoIpResolver()
    workers = resolve_workers(workers)
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if workers <= 1:
        return WeblogAnalyzer(directory, blacklist, geoip).analyze(rows)

    with obs.stage(
        "analyzer.analyze", workers=workers, chunk_size=chunk_size
    ) as st:
        tracing = obs.active_trace() is not None
        ctx = pool_context()
        partials: list[ShardPartial] = []
        max_inflight = 2 * workers
        with obs.span("analyzer.dispatch"):
            with ctx.Pool(
                processes=workers,
                initializer=_init_worker,
                initargs=(directory, blacklist, geoip, tracing),
            ) as pool:
                inflight: deque = deque()
                for task in _chunk_tasks(rows, workers, chunk_size):
                    while len(inflight) >= max_inflight:
                        partials.append(inflight.popleft().get())
                    inflight.append(pool.apply_async(_analyze_chunk, (task,)))
                while inflight:
                    partials.append(inflight.popleft().get())
        st.set(chunks=len(partials))
        result = merge_partials(partials, blacklist, directory, geoip)
    return result
