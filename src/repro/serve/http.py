"""Minimal HTTP/1.1 framing over asyncio streams (stdlib only).

The serve subsystem deliberately avoids third-party web frameworks:
the PME's API surface is five small JSON endpoints, and a ~200-line
framing layer keeps the whole server dependency-free and auditable.
This module owns exactly the wire concerns:

* :func:`read_request` -- parse one request (request line, headers,
  ``Content-Length`` body) off a :class:`asyncio.StreamReader`, with
  hard limits on header-block and body sizes so a hostile client can
  not balloon server memory;
* :func:`render_response` -- serialise a status/headers/body triple,
  handling keep-alive negotiation (HTTP/1.1 persistent by default,
  HTTP/1.0 opt-in);
* :class:`HttpError` -- raised by the parser with the status code the
  connection handler should answer before closing.

No routing, no JSON, no TLS -- those live in :mod:`repro.serve.app`
(and TLS termination is a reverse proxy's job in any deployment this
subsystem targets).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from urllib.parse import parse_qsl, urlsplit

#: Largest accepted request-line + header block, bytes.
MAX_HEADER_BYTES = 16_384
#: Largest accepted request body, bytes (contribution batches are the
#: biggest legitimate payload; 1 MiB is ~5k records).
MAX_BODY_BYTES = 1_048_576

_REASONS = {
    200: "OK",
    204: "No Content",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A protocol violation the server should answer with ``status``."""

    def __init__(self, status: int, detail: str):
        super().__init__(detail)
        self.status = int(status)
        self.detail = detail


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str]
    version: str
    headers: dict[str, str]       # keys lowercased
    body: bytes = b""
    #: raw request target as sent (path + query string)
    target: str = ""
    #: header-echo bookkeeping for keep-alive negotiation
    keep_alive: bool = True

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)


def _parse_headers(block: bytes) -> dict[str, str]:
    headers: dict[str, str] = {}
    for raw in block.split(b"\r\n"):
        if not raw:
            continue
        name, sep, value = raw.partition(b":")
        if not sep or not name or name != name.strip():
            raise HttpError(400, f"malformed header line {raw[:64]!r}")
        try:
            key = name.decode("ascii").strip().lower()
            headers[key] = value.decode("latin-1").strip()
        except UnicodeDecodeError as exc:
            raise HttpError(400, "non-ascii header name") from exc
    return headers


def _wants_keep_alive(version: str, headers: dict[str, str]) -> bool:
    connection = headers.get("connection", "").lower()
    if version == "HTTP/1.0":
        return connection == "keep-alive"
    return connection != "close"


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_header_bytes: int = MAX_HEADER_BYTES,
    max_body_bytes: int = MAX_BODY_BYTES,
) -> Request | None:
    """Parse one request; ``None`` on clean EOF (client hung up).

    Raises :class:`HttpError` on malformed framing, oversized headers
    (431) or bodies (413) -- the handler answers and closes.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None                      # clean close between requests
        raise HttpError(400, "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(431, "header block exceeds stream limit") from exc
    if len(head) > max_header_bytes:
        raise HttpError(431, f"header block over {max_header_bytes} bytes")

    request_line, _, header_block = head[:-4].partition(b"\r\n")
    parts = request_line.split(b" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line {request_line[:64]!r}")
    raw_method, raw_target, raw_version = parts
    try:
        method = raw_method.decode("ascii")
        target = raw_target.decode("ascii")
        version = raw_version.decode("ascii")
    except UnicodeDecodeError as exc:
        raise HttpError(400, "non-ascii request line") from exc
    if version not in ("HTTP/1.0", "HTTP/1.1"):
        raise HttpError(400, f"unsupported version {version!r}")
    if not method.isalpha() or not method.isupper():
        raise HttpError(400, f"malformed method {method!r}")
    if not target.startswith("/"):
        raise HttpError(400, f"unsupported request target {target[:64]!r}")

    headers = _parse_headers(header_block)
    if "transfer-encoding" in headers:
        raise HttpError(501, "transfer-encoding not supported")

    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
        except ValueError as exc:
            raise HttpError(400, f"bad content-length {raw_length!r}") from exc
        if length < 0:
            raise HttpError(400, "negative content-length")
        if length > max_body_bytes:
            raise HttpError(413, f"body over {max_body_bytes} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "body shorter than content-length") from exc

    split = urlsplit(target)
    return Request(
        method=method,
        path=split.path,
        query=dict(parse_qsl(split.query)),
        version=version,
        headers=headers,
        body=body,
        target=target,
        keep_alive=_wants_keep_alive(version, headers),
    )


def render_response(
    status: int,
    body: bytes = b"",
    *,
    content_type: str = "application/json",
    headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialise one response (status line, headers, body) to bytes."""
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    out = dict(headers or {})
    out.setdefault("Content-Type", content_type)
    out["Content-Length"] = str(len(body))
    out["Connection"] = "keep-alive" if keep_alive else "close"
    lines.extend(f"{k}: {v}" for k, v in out.items())
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
    return head + body
