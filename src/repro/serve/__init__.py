"""``repro.serve`` -- the PME as a long-running asyncio service.

The paper's methodology is client/server: a centralised PME trains and
packages the price model, YourAdValue clients download it, estimate
encrypted prices locally, and stream anonymous contributions back for
retraining (sections 3.2-3.3).  This package is that loop as a
stdlib-only HTTP/1.1 service:

* :class:`PmeServer` (:mod:`repro.serve.app`) -- routes, micro-batched
  ``/estimate``, ``/model`` distribution with content-hash ETags,
  ``/contribute`` ingestion with retrain-triggered atomic hot reload,
  ``/healthz`` + ``/metrics``;
* :class:`MicroBatcher` (:mod:`repro.serve.batching`) -- coalesces
  concurrent estimates into single vectorised forest calls;
* :class:`ModelStore` / :class:`ModelSnapshot`
  (:mod:`repro.serve.store`) -- versioned, hot-swappable packages;
* :mod:`repro.serve.loadgen` -- keep-alive client + load generator.

Quickstart::

    from repro import quickstart_pipeline
    from repro.serve import PmeServer

    result = quickstart_pipeline()
    server = PmeServer(pme=result["pme"])
    server.run(port=8080)          # or: await server.start(port=0)

or from the command line: ``python -m repro.cli serve --model model.json.gz``.
"""

from repro.serve.app import PmeServer
from repro.serve.batching import MicroBatcher
from repro.serve.metrics import ServeMetrics
from repro.serve.store import ModelSnapshot, ModelStore, build_snapshot

__all__ = [
    "PmeServer",
    "MicroBatcher",
    "ServeMetrics",
    "ModelSnapshot",
    "ModelStore",
    "build_snapshot",
]
