"""Versioned, hot-swappable model packages for the serving layer.

The distribution contract (paper section 3.2: clients poll the PME and
download the current model package) needs three things server-side:

* a **canonical byte form** of the package so ``GET /model`` responses
  are stable and cheap (serialised once per version, not per request);
* a **content-hash ETag** so polling clients pay one round trip and
  zero bytes when nothing changed (``If-None-Match`` -> 304);
* an **atomic swap** discipline for retrains: a request handler grabs
  one immutable :class:`ModelSnapshot` reference at dispatch time and
  uses it for its whole lifetime, so a swap mid-request can never mix
  two models' outputs and readers never block (reference assignment is
  atomic under the event loop; there is no lock to contend on).

Snapshot construction (JSON canonicalisation, forest deserialisation,
flat-tree compilation) is deliberately separated from installation so
the expensive part can run in an executor thread during retrains while
installation stays a single event-loop-side pointer swap.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass

from repro.core.estimator import Estimator
from repro.core.price_model import EncryptedPriceModel


@dataclass(frozen=True)
class ModelSnapshot:
    """One immutable, fully-materialised model version.

    ``estimator`` is the :class:`repro.core.estimator.Estimator` facade
    over ``model``, built once per version so the ``/estimate`` hot path
    never constructs facades per batch.
    """

    package: dict
    body: bytes              # canonical JSON, the exact /model payload
    etag: str                # quoted strong ETag over ``body``
    version: int
    model: EncryptedPriceModel
    estimator: Estimator
    loaded_at: float         # time.time() at construction

    @property
    def age_seconds(self) -> float:
        return time.time() - self.loaded_at


def build_snapshot(package: dict, version: int | None = None) -> ModelSnapshot:
    """Materialise a snapshot: canonical bytes, hash, compiled model.

    CPU-heavy (deserialises the forest and compiles flat trees); call
    it off the event loop when a retrain produces the package.
    """
    package = dict(package)
    if version is not None:
        package["version"] = int(version)
    package.setdefault("version", 1)
    body = json.dumps(package, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    etag = '"' + hashlib.sha256(body).hexdigest() + '"'
    model = EncryptedPriceModel.from_package(package)
    return ModelSnapshot(
        package=package,
        body=body,
        etag=etag,
        version=int(package["version"]),
        model=model,
        estimator=Estimator(model),
        loaded_at=time.time(),
    )


class ModelStore:
    """Holds the current :class:`ModelSnapshot`; swaps are atomic."""

    def __init__(self, package: dict):
        self._current = build_snapshot(package)
        self._swaps = 0

    @property
    def current(self) -> ModelSnapshot:
        """Grab once per request; never re-read mid-request."""
        return self._current

    @property
    def swap_count(self) -> int:
        return self._swaps

    def install(self, snapshot: ModelSnapshot) -> ModelSnapshot:
        """Make ``snapshot`` current (single reference assignment)."""
        if snapshot.version <= self._current.version:
            raise ValueError(
                f"refusing to install version {snapshot.version} over "
                f"{self._current.version} (versions must increase)"
            )
        self._current = snapshot
        self._swaps += 1
        return snapshot

    def swap(self, package: dict) -> ModelSnapshot:
        """Build-and-install convenience (synchronous callers/tests)."""
        return self.install(
            build_snapshot(package, version=self._current.version + 1)
        )
