"""The PME serving application: routes, micro-batching, hot reload.

This is the long-running face of the Price Modeling Engine (paper
section 3.2's client/server loop, productionised the way the follow-up
YourAdvalue system paper describes):

========  ============  ====================================================
method    path          role
========  ============  ====================================================
POST      /estimate     estimate one encrypted impression's CPM; concurrent
                        requests are micro-batched into single vectorised
                        forest calls (:class:`repro.serve.batching.MicroBatcher`)
GET       /model        current JSON model package; strong content-hash
                        ``ETag`` + ``If-None-Match`` -> 304 for cheap polling
POST      /contribute   anonymous price-record ingestion
                        (:class:`repro.core.contributions.ContributionServer`);
                        enough releasable rows triggers a retrain + hot reload
GET       /healthz      liveness + current model version
GET       /metrics      counters, batch histogram, latency percentiles,
                        contribution stats, model version/age
========  ============  ====================================================

Hot-reload discipline: a retrain runs ``retrain_with_contributions``
plus snapshot materialisation **off the event loop** (default
executor); the loop side then installs the finished
:class:`~repro.serve.store.ModelSnapshot` with a single reference
assignment.  Handlers (and each micro-batch flush) grab one snapshot
reference up front, so in-flight estimates never block on -- and never
straddle -- a swap.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Awaitable, Callable

from repro.core.contributions import ContributionError, ContributionServer
from repro.core.pme import PriceModelingEngine
from repro.ml.tree import _check_splitter
from repro.serve.batching import MicroBatcher
from repro.util.parallel import resolve_workers
from repro.util.validation import reject_legacy_kwargs
from repro.serve.http import (
    MAX_BODY_BYTES,
    MAX_HEADER_BYTES,
    HttpError,
    Request,
    read_request,
    render_response,
)
from repro.serve.metrics import ServeMetrics
from repro.serve.store import ModelStore, build_snapshot

#: Routes and the methods they accept (anything else is a 405).
ROUTES: dict[str, tuple[str, ...]] = {
    "/estimate": ("POST",),
    "/model": ("GET",),
    "/contribute": ("POST",),
    "/healthz": ("GET",),
    "/metrics": ("GET",),
}


def _json_body(payload: dict) -> bytes:
    return (json.dumps(payload) + "\n").encode("utf-8")


class _Response:
    """A handler's verdict, rendered per-connection for keep-alive."""

    __slots__ = ("status", "body", "headers")

    def __init__(self, status: int, body: bytes = b"",
                 headers: dict[str, str] | None = None):
        self.status = status
        self.body = body
        self.headers = headers or {}

    @classmethod
    def json(cls, status: int, payload: dict,
             headers: dict[str, str] | None = None) -> "_Response":
        return cls(status, _json_body(payload), headers)

    @classmethod
    def error(cls, status: int, detail: str) -> "_Response":
        return cls.json(status, {"error": detail})


class PmeServer:
    """An asyncio HTTP server wrapping a packaged price model.

    ``package`` alone gives a serve-only deployment (estimation, model
    distribution, contribution *collection*); passing a ``pme`` whose
    state holds campaign ground truth additionally enables retraining:
    once ``retrain_min_new_rows`` new k-anonymous rows are releasable,
    the server retrains off-loop and hot-swaps the package.
    """

    def __init__(
        self,
        package: dict | None = None,
        *,
        pme: PriceModelingEngine | None = None,
        contributions: ContributionServer | None = None,
        max_batch: int = 32,
        max_delay_ms: float = 2.0,
        retrain_min_new_rows: int = 50,
        workers: int | None = 1,
        splitter: str = "exact",
        max_body_bytes: int = MAX_BODY_BYTES,
        **legacy,
    ):
        reject_legacy_kwargs("PmeServer", legacy)
        if package is None:
            if pme is None or pme.state.model is None:
                raise ValueError(
                    "need a model package, or a PME with a trained model"
                )
            package = pme.package_model()
        self.pme = pme
        self.store = ModelStore(package)
        self.contributions = contributions or ContributionServer()
        self.metrics = ServeMetrics()
        self.retrain_min_new_rows = int(retrain_min_new_rows)
        # Validate the retrain knobs eagerly -- a bad value should fail
        # at construction, not mid-retrain inside the executor job.
        self.workers = None if workers is None else resolve_workers(workers)
        self.splitter = _check_splitter(splitter)
        self.max_body_bytes = int(max_body_bytes)
        self._batcher = MicroBatcher(
            self._predict_batch,
            max_batch=max_batch,
            max_delay_ms=max_delay_ms,
            on_batch=self.metrics.on_batch,
            on_queue_wait=self.metrics.on_queue_wait,
        )
        self._server: asyncio.base_events.Server | None = None
        self._retrain_task: asyncio.Task | None = None
        self._retrained_at_rows = 0
        self.host: str | None = None
        self.port: int | None = None

    # -- properties ---------------------------------------------------------

    @property
    def retrain_enabled(self) -> bool:
        return self.pme is not None and self.pme.state.campaign_a1 is not None

    @property
    def retrain_in_progress(self) -> bool:
        return self._retrain_task is not None

    # -- lifecycle ----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start serving; ``port=0`` picks an ephemeral port."""
        self._batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host, port, limit=MAX_HEADER_BYTES * 2
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("call start() first")
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._retrain_task is not None:
            # The executor job cannot be interrupted; let it finish so
            # the PME state is never left half-mutated.
            await asyncio.shield(self._retrain_task)
        await self._batcher.stop()

    def run(self, host: str = "127.0.0.1", port: int = 8080) -> None:
        """Blocking convenience entry point (the CLI uses it)."""

        async def _main() -> None:
            await self.start(host, port)
            assert self._server is not None
            try:
                await self._server.serve_forever()
            finally:
                await self.stop()

        asyncio.run(_main())

    # -- connection handling ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body_bytes=self.max_body_bytes
                    )
                except HttpError as exc:
                    self.metrics.on_response(exc.status)
                    writer.write(
                        render_response(
                            exc.status,
                            _json_body({"error": exc.detail}),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                response = await self._dispatch(request)
                self.metrics.on_response(response.status)
                writer.write(
                    render_response(
                        response.status,
                        response.body,
                        headers=response.headers,
                        keep_alive=request.keep_alive,
                    )
                )
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: Request) -> _Response:
        methods = ROUTES.get(request.path)
        if methods is None:
            return _Response.error(404, f"no such endpoint: {request.path}")
        self.metrics.on_request(request.path)
        if request.method not in methods:
            return _Response.json(
                405,
                {"error": f"{request.method} not allowed on {request.path}"},
                headers={"Allow": ", ".join(methods)},
            )
        handler: Callable[[Request], Awaitable[_Response]] = {
            "/estimate": self._handle_estimate,
            "/model": self._handle_model,
            "/contribute": self._handle_contribute,
            "/healthz": self._handle_healthz,
            "/metrics": self._handle_metrics,
        }[request.path]
        try:
            return await handler(request)
        except Exception as exc:  # noqa: BLE001 - single request must not kill the loop
            if request.path == "/estimate":
                self.metrics.on_estimate_error()
            return _Response.error(500, f"{type(exc).__name__}: {exc}")

    # -- endpoint handlers ---------------------------------------------------

    def _parse_json(self, request: Request) -> dict:
        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise HttpError(400, "body must be a JSON object")
        return payload

    def _predict_batch(self, rows: list[dict]) -> list[tuple[float, int]]:
        """One vectorised pass for a whole micro-batch.

        The snapshot is captured once per batch: every request in the
        batch is answered by exactly one model version, and the result
        is bit-identical to a per-row ``estimate_one`` against that
        snapshot (the flat traversal is row-independent and the
        time-correction multiply is element-wise).
        """
        snapshot = self.store.current
        estimates = snapshot.estimator.estimate(rows).prices
        return [(float(v), snapshot.version) for v in estimates]

    async def _handle_estimate(self, request: Request) -> _Response:
        try:
            payload = self._parse_json(request)
        except HttpError as exc:
            return _Response.error(exc.status, exc.detail)
        features = payload.get("features")
        if not isinstance(features, dict):
            return _Response.error(
                400,
                "need {'features': {...}} -- one feature object per request; "
                "fire requests concurrently and the server micro-batches them",
            )
        start = time.perf_counter()
        estimate, version = await self._batcher.submit(features)
        self.metrics.on_estimate_latency(time.perf_counter() - start)
        return _Response.json(
            200, {"estimated_cpm": estimate, "model_version": version}
        )

    async def _handle_model(self, request: Request) -> _Response:
        snapshot = self.store.current
        headers = {
            "ETag": snapshot.etag,
            "X-Model-Version": str(snapshot.version),
        }
        candidates = [
            tag.strip()
            for tag in request.header("if-none-match").split(",")
            if tag.strip()
        ]
        if snapshot.etag in candidates or "*" in candidates:
            self.metrics.on_model_not_modified()
            return _Response(304, b"", headers)
        return _Response(200, snapshot.body, headers)

    async def _handle_contribute(self, request: Request) -> _Response:
        try:
            payload = self._parse_json(request)
        except HttpError as exc:
            return _Response.error(exc.status, exc.detail)
        token = payload.get("contributor_token")
        if isinstance(token, bool) or not isinstance(token, int):
            return _Response.error(400, "contributor_token must be an integer")
        records = payload.get("records")
        if not isinstance(records, list) or not all(
            isinstance(r, dict) for r in records
        ):
            return _Response.error(400, "records must be a list of objects")
        accepted = 0
        rejected = 0
        errors: list[str] = []
        for record in records:
            try:
                self.contributions.submit(record, token)
                accepted += 1
            except ContributionError as exc:
                rejected += 1
                if len(errors) < 3:
                    errors.append(str(exc))
        self._maybe_schedule_retrain()
        return _Response.json(
            200,
            {
                "accepted": accepted,
                "rejected": rejected,
                "errors": errors,
                "stats": self.contributions.stats,
            },
        )

    async def _handle_healthz(self, request: Request) -> _Response:
        return _Response.json(
            200,
            {
                "status": "ok",
                "model_version": self.store.current.version,
                "uptime_seconds": time.time() - self.metrics.started_at,
            },
        )

    async def _handle_metrics(self, request: Request) -> _Response:
        snapshot = self.store.current
        payload = self.metrics.snapshot()
        payload["model"] = {
            "version": snapshot.version,
            "etag": snapshot.etag,
            "age_seconds": snapshot.age_seconds,
            "swaps": self.store.swap_count,
        }
        payload["contributions"] = self.contributions.stats
        payload["retrain"] = {
            "enabled": self.retrain_enabled,
            "in_progress": self.retrain_in_progress,
            "min_new_rows": self.retrain_min_new_rows,
            "rows_at_last_retrain": self._retrained_at_rows,
        }
        payload["obs"] = {
            "metrics": self.metrics.obs_snapshot(),
            "last_estimate_trace": self._batcher.last_trace,
        }
        return _Response.json(200, payload)

    # -- retraining / hot reload --------------------------------------------

    def _maybe_schedule_retrain(self) -> None:
        """Kick off a retrain when enough new rows became releasable."""
        if not self.retrain_enabled or self._retrain_task is not None:
            return
        releasable = self.contributions.stats["releasable"]  # O(1)
        if releasable - self._retrained_at_rows < self.retrain_min_new_rows:
            return
        self._retrain_task = asyncio.get_running_loop().create_task(
            self._retrain()
        )

    async def _retrain(self) -> None:
        try:
            # Full scan once, at retrain time -- not per /metrics poll.
            rows, prices = self.contributions.training_rows()
            next_version = self.store.current.version + 1
            pme = self.pme
            assert pme is not None
            workers = self.workers
            splitter = self.splitter

            def job():
                pme.retrain_with_contributions(
                    rows, prices, workers=workers, splitter=splitter
                )
                return build_snapshot(pme.package_model(), version=next_version)

            snapshot = await asyncio.get_running_loop().run_in_executor(
                None, job
            )
            self.store.install(snapshot)
            self.metrics.on_retrain()
            self._retrained_at_rows = len(rows)
        finally:
            self._retrain_task = None
        # More rows may have crossed the floor while we trained.
        self._maybe_schedule_retrain()
