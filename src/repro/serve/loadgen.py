"""Load generator and minimal async HTTP client for the PME server.

Two layers:

* :class:`Connection` / :func:`request_once` -- a tiny keep-alive
  HTTP/1.1 client over asyncio streams, stdlib-only like the server.
  The serve test-suite reuses it, so client and server framing are
  exercised against each other over real sockets.
* :func:`run_load` -- the actual load generator: ``concurrency``
  workers, each with its own persistent connection, hammer
  ``POST /estimate`` until ``total`` requests have completed,
  recording per-request latency.  Returns throughput + percentile
  stats; ``benchmarks/bench_serve.py`` wraps it to compare batching
  on vs off.

Standalone usage (against an already-running ``repro serve``)::

    PYTHONPATH=src python -m repro.serve.loadgen \
        --host 127.0.0.1 --port 8080 --requests 2000 --concurrency 32
"""

from __future__ import annotations

import argparse
import asyncio
import json
import time
from dataclasses import dataclass, field


@dataclass
class Response:
    """One parsed client-side HTTP response."""

    status: int
    headers: dict[str, str]
    body: bytes

    def json(self) -> dict:
        return json.loads(self.body.decode("utf-8"))


class Connection:
    """A persistent (keep-alive) client connection."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _ensure_open(self) -> None:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
            self._reader = None

    async def request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> Response:
        await self._ensure_open()
        assert self._reader is not None and self._writer is not None
        lines = [f"{method} {path} HTTP/1.1", f"Host: {self.host}:{self.port}"]
        for k, v in (headers or {}).items():
            lines.append(f"{k}: {v}")
        payload = body or b""
        if payload or method in ("POST", "PUT"):
            lines.append(f"Content-Length: {len(payload)}")
        raw = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + payload
        self._writer.write(raw)
        await self._writer.drain()
        return await self._read_response()

    async def _read_response(self) -> Response:
        assert self._reader is not None
        head = await self._reader.readuntil(b"\r\n\r\n")
        status_line, _, header_block = head[:-4].partition(b"\r\n")
        parts = status_line.split(b" ", 2)
        status = int(parts[1])
        headers: dict[str, str] = {}
        for line in header_block.split(b"\r\n"):
            if not line:
                continue
            name, _, value = line.partition(b":")
            headers[name.decode("ascii").strip().lower()] = (
                value.decode("latin-1").strip()
            )
        length = int(headers.get("content-length", "0"))
        body = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return Response(status=status, headers=headers, body=body)


async def request_once(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes | None = None,
    headers: dict[str, str] | None = None,
) -> Response:
    """One-shot convenience: open, request, close."""
    conn = Connection(host, port)
    try:
        return await conn.request(method, path, body=body, headers=headers)
    finally:
        await conn.close()


# -- the load generator -----------------------------------------------------

#: A plausible S-feature context (overridable per run).
DEFAULT_FEATURES = {
    "context": "app",
    "device_type": "smartphone",
    "city": "Madrid",
    "time_of_day": 3,
    "day_of_week": 2,
    "slot_size": "320x50",
    "publisher_iab": "IAB9",
    "adx": "AdX-1",
}


@dataclass
class LoadResult:
    """What one load run measured."""

    requests: int
    errors: int
    seconds: float
    latencies: list[float] = field(repr=False, default_factory=list)

    @property
    def rows_per_sec(self) -> float:
        return self.requests / self.seconds if self.seconds > 0 else 0.0

    def percentile(self, p: float) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = min(len(ordered) - 1, max(0, round(p / 100 * len(ordered)) - 1))
        return ordered[rank]

    def summary(self) -> dict:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "seconds": self.seconds,
            "rows_per_sec": self.rows_per_sec,
            "latency_p50_ms": self.percentile(50) * 1000,
            "latency_p99_ms": self.percentile(99) * 1000,
        }


async def run_load(
    host: str,
    port: int,
    *,
    total: int = 1000,
    concurrency: int = 32,
    features: dict | None = None,
    path: str = "/estimate",
) -> LoadResult:
    """Fire ``total`` estimate requests from ``concurrency`` workers.

    Each worker holds one keep-alive connection (how a fleet of
    YourAdValue clients looks to the server: many sockets, one request
    in flight per socket).  Latency is measured per request, client
    side, so micro-batching delay is included -- the server cannot
    cheat the percentiles.
    """
    body = json.dumps(
        {"features": dict(features or DEFAULT_FEATURES)}
    ).encode("utf-8")
    remaining = list(range(total))
    latencies: list[float] = []
    errors = 0

    async def worker() -> None:
        nonlocal errors
        conn = Connection(host, port)
        try:
            while True:
                try:
                    remaining.pop()
                except IndexError:
                    return
                start = time.perf_counter()
                response = await conn.request("POST", path, body=body)
                latencies.append(time.perf_counter() - start)
                if response.status != 200:
                    errors += 1
        finally:
            await conn.close()

    started = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(max(1, concurrency))))
    elapsed = time.perf_counter() - started
    return LoadResult(
        requests=total, errors=errors, seconds=elapsed, latencies=latencies
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Load-generate against a running repro serve instance"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--requests", type=int, default=1000)
    parser.add_argument("--concurrency", type=int, default=32)
    parser.add_argument(
        "--features", default=None,
        help="JSON feature object to estimate (default: a built-in context)",
    )
    args = parser.parse_args(argv)
    features = json.loads(args.features) if args.features else None
    result = asyncio.run(
        run_load(
            args.host,
            args.port,
            total=args.requests,
            concurrency=args.concurrency,
            features=features,
        )
    )
    print(json.dumps(result.summary(), indent=2))
    return 0 if result.errors == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
