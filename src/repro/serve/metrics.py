"""Serving metrics, rebuilt on the :mod:`repro.obs` registry.

Everything that used to be bespoke per-server bookkeeping (plain
``collections.Counter`` dicts, a sorted ring buffer for latency
percentiles) is now a per-server :class:`repro.obs.metrics.
MetricsRegistry`:

* request / response / flush counts are labelled :class:`~repro.obs.
  metrics.Counter` series (``serve.requests{route=/estimate}``), so the
  counts stay **exact** under concurrency (each series add is lock'd;
  the 80-way serve test asserts exactness);
* estimate latency and the micro-batcher's queue-wait / flush split are
  :class:`~repro.obs.metrics.Histogram`\\ s with fixed log-scale bins --
  constant memory, bounded-relative-error percentiles, no ring to sort
  per ``/metrics`` poll.

The public ``snapshot()`` keeps the exact JSON shape the ``/metrics``
endpoint has always served (tests pin it); the raw registry dump is
additionally exposed as the endpoint's ``obs`` section, which is the
same payload shape ``repro obs dump`` renders.
"""

from __future__ import annotations

import time

from repro.obs.metrics import MetricsRegistry


class ServeMetrics:
    """All counters/histograms the serve endpoints expose.

    Each server owns its own registry (``registry=None`` builds one),
    so two servers in one process -- the hot-reload tests run several --
    never mix counts; pass a registry explicitly to aggregate.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.started_at = time.time()
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self._requests = reg.counter(
            "serve.requests", "requests per route")
        self._responses = reg.counter(
            "serve.responses", "responses per status class")
        self._flushes = reg.counter(
            "serve.batch.flushes", "micro-batch flushes per batch size")
        self._estimates = reg.counter(
            "serve.estimates", "rows estimated")
        self._estimate_errors = reg.counter(
            "serve.estimate.errors", "failed /estimate requests")
        self._retrains = reg.counter(
            "serve.retrains", "hot-reload retrains completed")
        self._model_not_modified = reg.counter(
            "serve.model.not_modified", "/model 304 responses")
        self._latency = reg.histogram(
            "serve.estimate.latency_seconds",
            "end-to-end /estimate latency (submit to result)")
        self._queue_wait = reg.histogram(
            "serve.batch.queue_wait_seconds",
            "per-request wait in the micro-batch queue")
        self._flush_seconds = reg.histogram(
            "serve.batch.flush_seconds",
            "forest-inference time per micro-batch flush")

    # -- observation hooks --------------------------------------------------

    def on_request(self, route: str) -> None:
        self._requests.inc(route=route)

    def on_response(self, status: int) -> None:
        self._responses.inc(status=f"{status // 100}xx")

    def on_batch(self, size: int, seconds: float) -> None:
        self._flushes.inc(size=size)
        self._estimates.inc(size)
        self._flush_seconds.observe(seconds)

    def on_queue_wait(self, seconds: float) -> None:
        self._queue_wait.observe(seconds)

    def on_estimate_latency(self, seconds: float) -> None:
        self._latency.observe(seconds)

    def on_estimate_error(self) -> None:
        self._estimate_errors.inc()

    def on_retrain(self) -> None:
        self._retrains.inc()

    def on_model_not_modified(self) -> None:
        self._model_not_modified.inc()

    # -- export -------------------------------------------------------------

    def batch_histogram(self) -> dict[str, int]:
        """Exact ``{batch size: flush count}``, keys as decimal strings."""
        sizes = self._flushes.labeled("size")
        return {
            size: int(n)
            for size, n in sorted(sizes.items(), key=lambda kv: int(kv[0]))
        }

    def mean_batch_size(self) -> float:
        histogram = self.batch_histogram()
        flushes = sum(histogram.values())
        if not flushes:
            return 0.0
        return sum(int(s) * n for s, n in histogram.items()) / flushes

    def snapshot(self) -> dict:
        """The ``/metrics`` payload core (app adds model/contrib fields)."""
        return {
            "uptime_seconds": time.time() - self.started_at,
            "requests": {
                route: int(n) for route, n in self._requests.labeled("route").items()
            },
            "responses": {
                cls: int(n) for cls, n in self._responses.labeled("status").items()
            },
            "estimates": {
                "total": int(self._estimates.total()),
                "errors": int(self._estimate_errors.total()),
                "batch_histogram": self.batch_histogram(),
                "mean_batch_size": self.mean_batch_size(),
                "latency_seconds": self._latency.percentiles(),
                "latency_samples": int(self._latency.count),
            },
            "retrains": int(self._retrains.total()),
            "model_not_modified": int(self._model_not_modified.total()),
        }

    def obs_snapshot(self) -> dict:
        """The raw registry dump (the ``/metrics`` ``obs`` section)."""
        return self.registry.snapshot()
