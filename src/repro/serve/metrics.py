"""Serving metrics: counters, batch-size histogram, latency percentiles.

Everything here is O(1) per observation and bounded-memory, because the
``/metrics`` endpoint is meant to be polled (and the counters bumped)
on every single request of a heavy-traffic deployment:

* request counters are plain dicts keyed by route and status class;
* the batch-size histogram is a dict ``size -> count`` (sizes are
  bounded by ``max_batch``, so it cannot grow unbounded);
* estimate latency keeps a fixed-size ring of the most recent
  observations and computes p50/p90/p99 over that window on demand --
  recent-window percentiles are what an operator actually wants from a
  live server, and the ring bounds both memory and the per-poll sort.
"""

from __future__ import annotations

import time
from collections import Counter, deque


class LatencyWindow:
    """Fixed-size ring of recent latency samples (seconds)."""

    def __init__(self, size: int = 4096):
        self._samples: deque[float] = deque(maxlen=size)
        self.count = 0

    def observe(self, seconds: float) -> None:
        self._samples.append(float(seconds))
        self.count += 1

    def percentiles(self, points: tuple[int, ...] = (50, 90, 99)) -> dict[str, float]:
        if not self._samples:
            return {f"p{p}": 0.0 for p in points}
        ordered = sorted(self._samples)
        out = {}
        for p in points:
            # nearest-rank on the recent window
            rank = min(len(ordered) - 1, max(0, round(p / 100 * len(ordered)) - 1))
            out[f"p{p}"] = ordered[rank]
        return out


class ServeMetrics:
    """All counters the serve endpoints expose."""

    def __init__(self, latency_window: int = 4096):
        self.started_at = time.time()
        self.requests: Counter[str] = Counter()        # route -> hits
        self.responses: Counter[str] = Counter()       # status class -> hits
        self.batch_sizes: Counter[int] = Counter()     # batch size -> flushes
        self.estimate_latency = LatencyWindow(latency_window)
        self.estimates = 0
        self.estimate_errors = 0
        self.retrains = 0
        self.model_not_modified = 0                    # /model 304s

    # -- observation hooks --------------------------------------------------

    def on_request(self, route: str) -> None:
        self.requests[route] += 1

    def on_response(self, status: int) -> None:
        self.responses[f"{status // 100}xx"] += 1

    def on_batch(self, size: int, seconds: float) -> None:
        self.batch_sizes[size] += 1
        self.estimates += size

    def on_estimate_latency(self, seconds: float) -> None:
        self.estimate_latency.observe(seconds)

    # -- export -------------------------------------------------------------

    def batch_histogram(self) -> dict[str, int]:
        return {str(size): n for size, n in sorted(self.batch_sizes.items())}

    def mean_batch_size(self) -> float:
        flushes = sum(self.batch_sizes.values())
        if not flushes:
            return 0.0
        return sum(s * n for s, n in self.batch_sizes.items()) / flushes

    def snapshot(self) -> dict:
        """The ``/metrics`` payload core (app adds model/contrib fields)."""
        return {
            "uptime_seconds": time.time() - self.started_at,
            "requests": dict(self.requests),
            "responses": dict(self.responses),
            "estimates": {
                "total": self.estimates,
                "errors": self.estimate_errors,
                "batch_histogram": self.batch_histogram(),
                "mean_batch_size": self.mean_batch_size(),
                "latency_seconds": self.estimate_latency.percentiles(),
                "latency_samples": self.estimate_latency.count,
            },
            "retrains": self.retrains,
            "model_not_modified": self.model_not_modified,
        }
