"""Micro-batching queue for the ``/estimate`` hot path.

PR 2's forest bench showed why this exists: one flattened
``predict_proba`` call costs O(trees x depth) *python-level* work no
matter how many rows ride along -- scoring 32 rows in one call is
nearly as cheap as scoring 1.  A serving process therefore wants to
coalesce concurrent in-flight estimate requests into a single
vectorised call instead of walking the forest once per request.

:class:`MicroBatcher` implements the standard two-knob policy:

* ``max_batch`` -- flush as soon as this many requests are queued;
* ``max_delay_ms`` -- flush a partial batch once the *oldest* queued
  request has waited this long (the latency bound).

``max_batch=1`` degrades to pass-through (batching off) and is the
baseline configuration ``bench_serve`` compares against.  The batcher
is single-consumer and lives on the event loop; the predict callable
runs inline (it is one short vectorised numpy call) so results complete
in submission order and every waiter observes exactly one model
snapshot per batch.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro import obs


@dataclass
class _Pending:
    row: Any
    future: asyncio.Future
    enqueued_at: float          # perf_counter at submit time


class MicroBatcher:
    """Coalesce awaited ``submit(row)`` calls into batched predictions.

    ``predict`` maps a list of rows to a sequence of results (one per
    row, order-preserving).  ``on_batch(size, seconds)`` and
    ``on_queue_wait(seconds)`` are optional metrics hooks: the former
    fires once per flush with the batch size and inference time, the
    latter once per request with its time spent queued.

    Observability: every flush runs under a ``serve.estimate_batch``
    trace -- per-request ``serve.queue_wait`` events, one
    ``serve.batch_flush`` span around the predict call (the estimator's
    ``estimator.encode`` / ``forest.inference`` / ``estimator.
    time_correction`` spans nest inside, because predict runs inline on
    the same task).  The finished tree of the most recent flush is kept
    on :attr:`last_trace` for the ``/metrics`` endpoint.
    """

    def __init__(
        self,
        predict: Callable[[list[Any]], Sequence[Any]],
        *,
        max_batch: int = 32,
        max_delay_ms: float = 2.0,
        max_queue: int = 10_000,
        on_batch: Callable[[int, float], None] | None = None,
        on_queue_wait: Callable[[float], None] | None = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay_ms < 0:
            raise ValueError("max_delay_ms must be >= 0")
        self._predict = predict
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay_ms) / 1000.0
        self._queue: asyncio.Queue[_Pending] = asyncio.Queue(maxsize=max_queue)
        self._on_batch = on_batch
        self._on_queue_wait = on_queue_wait
        self._task: asyncio.Task | None = None
        self._closed = False
        #: Nested span tree of the most recent flush (or None).
        self.last_trace: dict | None = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self._task is None:
            self._closed = False
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Drain the queue, cancel the consumer, fail any stragglers."""
        self._closed = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        while not self._queue.empty():
            pending = self._queue.get_nowait()
            if not pending.future.done():
                pending.future.set_exception(RuntimeError("batcher stopped"))

    # -- submission ---------------------------------------------------------

    async def submit(self, row: Any) -> Any:
        """Queue one row; resolves with its prediction."""
        if self._closed or self._task is None:
            raise RuntimeError("batcher is not running")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        await self._queue.put(_Pending(row, future, time.perf_counter()))
        return await future

    # -- consumer -----------------------------------------------------------

    async def _collect(self) -> list[_Pending]:
        """Block for the first row, then top up until size or deadline."""
        batch = [await self._queue.get()]
        if self.max_batch == 1:
            return batch
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.max_delay
        while len(batch) < self.max_batch:
            # Fast path: take whatever is already queued without yielding.
            try:
                batch.append(self._queue.get_nowait())
                continue
            except asyncio.QueueEmpty:
                pass
            timeout = deadline - loop.time()
            if timeout <= 0:
                break
            try:
                batch.append(
                    await asyncio.wait_for(self._queue.get(), timeout)
                )
            except asyncio.TimeoutError:
                break
        return batch

    async def _run(self) -> None:
        while True:
            batch = await self._collect()
            start = time.perf_counter()
            error: Exception | None = None
            results: Sequence[Any] = ()
            with obs.start_trace(
                "serve.estimate_batch", batch_size=len(batch)
            ) as trace:
                for pending in batch:
                    wait = start - pending.enqueued_at
                    obs.event("serve.queue_wait", duration=wait)
                    if self._on_queue_wait is not None:
                        self._on_queue_wait(wait)
                with obs.span("serve.batch_flush", rows=len(batch)):
                    try:
                        results = self._predict([p.row for p in batch])
                    except Exception as exc:  # noqa: BLE001 - fan the error out
                        error = exc
            self.last_trace = trace.tree()
            if error is not None:
                for pending in batch:
                    if not pending.future.done():
                        pending.future.set_exception(error)
                continue
            elapsed = time.perf_counter() - start
            if len(results) != len(batch):
                error = RuntimeError(
                    f"predict returned {len(results)} results "
                    f"for a batch of {len(batch)}"
                )
                for pending in batch:
                    if not pending.future.done():
                        pending.future.set_exception(error)
                continue
            for pending, result in zip(batch, results):
                if not pending.future.done():
                    pending.future.set_result(result)
            if self._on_batch is not None:
                self._on_batch(len(batch), elapsed)
