"""OpenRTB 2.x JSON wire codec.

The exchanges the paper studies speak OpenRTB over the wire (it cites
the MoPub, OpenX and PulsePoint integration guides); our in-memory
:mod:`repro.rtb.openrtb` objects map onto the spec's JSON layout:

* ``BidRequest``  -> ``{id, imp:[...], app|site, device, user, tmax}``
* ``BidResponse`` -> ``{id, seatbid:[{seat, bid:[...]}]}``

Prices travel as CPM floats in ``bidfloor``/``price`` per the spec.
The codec is strict on the fields this system relies on (auction id,
impression, price) and tolerant of extra fields, mirroring how real
bidders integrate.
"""

from __future__ import annotations

import json
from typing import Any

from repro.rtb.adslots import AdSlotSize
from repro.rtb.iab import InterestProfile
from repro.rtb.openrtb import (
    Bid,
    BidRequest,
    BidResponse,
    Device,
    Geo,
    Impression,
    UserInfo,
)


class OpenRtbError(ValueError):
    """Raised on malformed OpenRTB payloads."""


_DEVICE_TYPE_CODES = {"smartphone": 4, "tablet": 5, "pc": 2}
_DEVICE_TYPE_NAMES = {v: k for k, v in _DEVICE_TYPE_CODES.items()}


def bid_request_to_dict(request: BidRequest) -> dict[str, Any]:
    """Encode a bid request as an OpenRTB 2.x JSON-compatible dict."""
    imp = {
        "id": request.imp.impression_id,
        "banner": {
            "w": request.imp.slot_size.width,
            "h": request.imp.slot_size.height,
        },
        "bidfloor": request.imp.bidfloor_cpm,
        "instl": int(request.imp.interstitial),
    }
    inventory_key = "app" if request.is_app else "site"
    inventory = {
        "id": request.publisher,
        "domain": request.publisher,
        "cat": [request.publisher_iab],
        "publisher": {"id": request.publisher},
    }
    payload: dict[str, Any] = {
        "id": request.auction_id,
        "at": 2,  # second-price auction
        "tmax": request.tmax_ms,
        "imp": [imp],
        inventory_key: inventory,
        "device": {
            "ua": request.device.user_agent,
            "ip": request.device.ip,
            "os": request.device.os,
            "devicetype": _DEVICE_TYPE_CODES.get(request.device.device_type, 1),
            "geo": {
                "country": request.geo.country,
                "city": request.geo.city,
            },
        },
        "user": {
            "id": request.user.exchange_uid,
            "buyeruid": dict(request.user.buyer_uids),
            "keywords": ",".join(code for code, _ in request.user.interests.weights),
        },
        "ext": {"adx": request.adx, "ts": request.timestamp},
    }
    return payload


def bid_request_from_dict(payload: dict[str, Any]) -> BidRequest:
    """Decode an OpenRTB 2.x bid request dict."""
    try:
        auction_id = payload["id"]
        imp_payload = payload["imp"][0]
        banner = imp_payload["banner"]
        slot = AdSlotSize(width=int(banner["w"]), height=int(banner["h"]))
    except (KeyError, IndexError, TypeError) as exc:
        raise OpenRtbError(f"malformed bid request: {exc!r}") from exc

    is_app = "app" in payload
    inventory = payload.get("app") or payload.get("site") or {}
    categories = inventory.get("cat") or ["IAB24"]
    device_payload = payload.get("device", {})
    geo_payload = device_payload.get("geo", {})
    user_payload = payload.get("user", {})
    ext = payload.get("ext", {})

    keywords = [
        k for k in (user_payload.get("keywords") or "").split(",") if k
    ]
    interests = InterestProfile.from_counts({k: 1.0 for k in keywords})

    return BidRequest(
        auction_id=str(auction_id),
        timestamp=float(ext.get("ts", 0.0)),
        imp=Impression(
            impression_id=str(imp_payload.get("id", f"{auction_id}-1")),
            slot_size=slot,
            bidfloor_cpm=float(imp_payload.get("bidfloor", 0.0)),
            interstitial=bool(imp_payload.get("instl", 0)),
        ),
        publisher=str(inventory.get("domain", "")),
        publisher_iab=str(categories[0]),
        device=Device(
            os=str(device_payload.get("os", "Other")),
            device_type=_DEVICE_TYPE_NAMES.get(
                int(device_payload.get("devicetype", 1)), "unknown"
            ),
            user_agent=str(device_payload.get("ua", "")),
            ip=str(device_payload.get("ip", "")),
        ),
        geo=Geo(
            country=str(geo_payload.get("country", "")),
            city=str(geo_payload.get("city", "")),
        ),
        user=UserInfo(
            exchange_uid=str(user_payload.get("id", "")),
            buyer_uids={
                str(k): str(v)
                for k, v in (user_payload.get("buyeruid") or {}).items()
            },
            interests=interests,
        ),
        is_app=is_app,
        adx=str(ext.get("adx", "")),
        tmax_ms=int(payload.get("tmax", 100)),
    )


def bid_response_to_dict(response: BidResponse) -> dict[str, Any]:
    """Encode a bid response; an empty response uses nbr (no-bid reason)."""
    if response.is_no_bid:
        return {"id": response.auction_id, "seatbid": [], "nbr": 2}
    return {
        "id": response.auction_id,
        "seatbid": [
            {
                "seat": response.dsp,
                "bid": [
                    {
                        "id": f"{response.auction_id}-{i}",
                        "impid": f"{response.auction_id}-1",
                        "price": bid.price_cpm,
                        "adomain": [bid.creative_domain],
                        "cid": bid.campaign_id,
                        "ext": {"advertiser": bid.advertiser},
                    }
                    for i, bid in enumerate(response.bids)
                ],
            }
        ],
    }


def bid_response_from_dict(payload: dict[str, Any], dsp: str | None = None) -> BidResponse:
    """Decode an OpenRTB 2.x bid response dict."""
    try:
        auction_id = str(payload["id"])
    except KeyError as exc:
        raise OpenRtbError("bid response missing id") from exc
    seatbids = payload.get("seatbid") or []
    if not seatbids:
        return BidResponse(auction_id=auction_id, dsp=dsp or "", bids=())
    seat = seatbids[0]
    seat_name = str(seat.get("seat", dsp or ""))
    bids = []
    for bid_payload in seat.get("bid", []):
        try:
            price = float(bid_payload["price"])
        except (KeyError, TypeError, ValueError) as exc:
            raise OpenRtbError(f"malformed bid: {bid_payload!r}") from exc
        adomain = bid_payload.get("adomain") or [""]
        bids.append(
            Bid(
                dsp=seat_name,
                advertiser=str(
                    bid_payload.get("ext", {}).get("advertiser", adomain[0])
                ),
                campaign_id=str(bid_payload.get("cid", "")),
                price_cpm=price,
                creative_domain=str(adomain[0]),
            )
        )
    return BidResponse(auction_id=auction_id, dsp=seat_name, bids=tuple(bids))


def dumps_request(request: BidRequest) -> str:
    """JSON-encode a bid request."""
    return json.dumps(bid_request_to_dict(request), separators=(",", ":"))


def loads_request(text: str) -> BidRequest:
    """Decode a JSON bid request string."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise OpenRtbError(f"invalid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise OpenRtbError("bid request must be a JSON object")
    return bid_request_from_dict(payload)


def dumps_response(response: BidResponse) -> str:
    """JSON-encode a bid response."""
    return json.dumps(bid_response_to_dict(response), separators=(",", ":"))


def loads_response(text: str, dsp: str | None = None) -> BidResponse:
    """Decode a JSON bid response string."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise OpenRtbError(f"invalid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise OpenRtbError("bid response must be a JSON object")
    return bid_response_from_dict(payload, dsp=dsp)
