"""Campaign budget pacing.

DSPs smooth a campaign's spend over its flight so the budget is not
"consumed quickly" -- the exact worry that made the paper's authors cap
their probe DSP's bids (section 5.3).  This controller implements the
standard throttling approach: track realised spend against the ideal
linear spend curve and probabilistically skip participation when ahead
of schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.timeutil import Period
from repro.util.validation import require_positive


@dataclass
class PacingController:
    """Linear-curve budget pacing with probabilistic throttling.

    ``participate(ts, rng)`` answers "may the campaign bid right now?".
    The throttle compares realised spend with the pro-rata budget at
    ``ts``; overspend beyond ``tolerance`` lowers the participation
    probability proportionally, underspend restores it to 1.
    """

    budget_usd: float
    flight: Period
    tolerance: float = 0.10
    spent_usd: float = 0.0
    throttled: int = 0
    admitted: int = 0

    def __post_init__(self) -> None:
        require_positive(self.budget_usd, "budget_usd")
        if self.tolerance < 0:
            raise ValueError("tolerance must be non-negative")

    def ideal_spend(self, ts: float) -> float:
        """Pro-rata budget at time ``ts`` along the flight."""
        elapsed = min(max(ts - self.flight.start, 0.0), self.flight.duration)
        return self.budget_usd * elapsed / self.flight.duration

    def pace_ratio(self, ts: float) -> float:
        """Realised / ideal spend (>1 means ahead of schedule)."""
        ideal = self.ideal_spend(ts)
        if ideal <= 0:
            return 0.0 if self.spent_usd == 0 else float("inf")
        return self.spent_usd / ideal

    def participation_probability(self, ts: float) -> float:
        """Throttle level at ``ts``: 1 when on/behind schedule, falling
        towards 0 as overspend grows past the tolerance."""
        if self.spent_usd >= self.budget_usd:
            return 0.0
        ratio = self.pace_ratio(ts)
        if ratio <= 1.0 + self.tolerance:
            return 1.0
        # Steep linear fall-off: fully throttled once 20% past the
        # tolerated overspend, which pins realised spend to the curve.
        return float(np.clip(1.0 - (ratio - 1.0 - self.tolerance) / 0.2, 0.0, 1.0))

    def participate(self, ts: float, rng: np.random.Generator) -> bool:
        """Gate one auction opportunity."""
        p = self.participation_probability(ts)
        allowed = bool(p >= 1.0 or rng.random() < p)
        if allowed:
            self.admitted += 1
        else:
            self.throttled += 1
        return allowed

    def record_spend(self, charge_price_cpm: float) -> None:
        """Book one won impression's cost."""
        if charge_price_cpm < 0:
            raise ValueError("negative charge price")
        self.spent_usd += charge_price_cpm / 1000.0

    @property
    def exhausted(self) -> bool:
        return self.spent_usd >= self.budget_usd

    @property
    def remaining_usd(self) -> float:
        return max(0.0, self.budget_usd - self.spent_usd)


@dataclass
class PacedEngine:
    """Wrap any bid engine with a pacing controller.

    Drop-in for :class:`repro.rtb.bidding.BidEngine` users: the wrapped
    engine is only consulted when the controller admits the
    opportunity, and wins must be reported via :meth:`notify_win`.
    """

    inner: object
    controller: PacingController

    def price_bid(self, request, campaign, rng) -> float | None:
        if not self.controller.participate(request.timestamp, rng):
            return None
        return self.inner.price_bid(request, campaign, rng)  # type: ignore[attr-defined]

    def notify_win(self, charge_price_cpm: float) -> None:
        self.controller.record_spend(charge_price_cpm)
