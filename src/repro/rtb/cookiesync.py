"""Cookie synchronisation between exchanges/SSPs and DSPs.

Cookie syncing maps one party's user identifier into another party's id
space, which is how DSPs recognise the user an exchange is auctioning
(paper sections 2.1, 4.1, 4.3).  The number of cookie syncs observed for
a user is one of the paper's Table-4 user features, and sync events
leave detectable beacon requests in the weblog.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


def synced_uid(party: str, user_id: str) -> str:
    """Deterministic per-party pseudonym for a user."""
    return hashlib.sha1(f"{party}|{user_id}".encode()).hexdigest()[:16]


@dataclass
class CookieSyncRegistry:
    """Tracks which (user, party-pair) syncs have happened.

    A sync is established once per (user, source, destination) triple;
    repeated visits do not re-sync (matching real match-table behaviour,
    where sync pixels fire only when the mapping is missing or stale).
    """

    _table: dict[tuple[str, str, str], str] = field(default_factory=dict)
    _per_user: dict[str, int] = field(default_factory=dict)
    _by_user_source: dict[tuple[str, str], dict[str, str]] = field(default_factory=dict)

    def sync(self, user_id: str, source: str, destination: str) -> tuple[str, bool]:
        """Record a sync attempt; returns (destination uid, was_new)."""
        key = (user_id, source, destination)
        if key in self._table:
            return self._table[key], False
        uid = synced_uid(destination, user_id)
        self._table[key] = uid
        self._per_user[user_id] = self._per_user.get(user_id, 0) + 1
        self._by_user_source.setdefault((user_id, source), {})[destination] = uid
        return uid, True

    def lookup(self, user_id: str, source: str, destination: str) -> str | None:
        """Destination-side uid if the pair has synced this user."""
        return self._table.get((user_id, source, destination))

    def known_destinations(self, user_id: str, source: str) -> dict[str, str]:
        """All destination uids a source can attach for this user.

        This is the match table a real exchange consults when
        assembling the ``BuyerUID`` fields of a bid request; it is an
        O(1) lookup because it sits on the auction hot path.
        """
        return dict(self._by_user_source.get((user_id, source), {}))

    def sync_count(self, user_id: str) -> int:
        """Total distinct syncs observed for a user (a Table-4 feature)."""
        return self._per_user.get(user_id, 0)

    def beacon_url(self, user_id: str, source: str, destination: str) -> str:
        """The sync-pixel URL such an event leaves in the weblog."""
        uid = synced_uid(destination, user_id)
        return (
            f"https://sync.{source.lower()}.com/match?partner={destination}"
            f"&partner_uid={uid}"
        )
