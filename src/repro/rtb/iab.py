"""IAB content taxonomy (tier-1 categories).

Publishers, user-interest profiles and ad-campaign targeting all speak
IAB tier-1 category codes (``IAB1`` ... ``IAB26``), following the IAB
Tech Lab Content Taxonomy the paper references.  The paper's figures
call out IAB3 (Business) as the dearest category and IAB15 (Science)
as the cheapest.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Tier-1 IAB categories, code -> human name.
IAB_CATEGORIES: dict[str, str] = {
    "IAB1": "Arts & Entertainment",
    "IAB2": "Automotive",
    "IAB3": "Business",
    "IAB4": "Careers",
    "IAB5": "Education",
    "IAB6": "Family & Parenting",
    "IAB7": "Health & Fitness",
    "IAB8": "Food & Drink",
    "IAB9": "Hobbies & Interests",
    "IAB10": "Home & Garden",
    "IAB11": "Law, Government & Politics",
    "IAB12": "News",
    "IAB13": "Personal Finance",
    "IAB14": "Society",
    "IAB15": "Science",
    "IAB16": "Pets",
    "IAB17": "Sports",
    "IAB18": "Style & Fashion",
    "IAB19": "Technology & Computing",
    "IAB20": "Travel",
    "IAB21": "Real Estate",
    "IAB22": "Shopping",
    "IAB23": "Religion & Spirituality",
    "IAB24": "Uncategorized",
    "IAB25": "Non-Standard Content",
    "IAB26": "Illegal Content",
}

#: The categories observed in the paper's dataset D (Table 3: 18 IABs) --
#: the trace generator draws publishers from these.
DATASET_CATEGORIES: tuple[str, ...] = (
    "IAB1", "IAB2", "IAB3", "IAB5", "IAB7", "IAB8", "IAB9", "IAB10",
    "IAB12", "IAB13", "IAB14", "IAB15", "IAB17", "IAB18", "IAB19",
    "IAB20", "IAB22", "IAB25",
)

#: Categories shown in the paper's Figure 11 (MoPub 2-month slice).
FIGURE11_CATEGORIES: tuple[str, ...] = (
    "IAB1", "IAB2", "IAB3", "IAB5", "IAB9", "IAB12", "IAB15", "IAB17",
    "IAB19", "IAB22",
)

#: Categories common to both probe campaigns in Figure 15.
FIGURE15_CATEGORIES: tuple[str, ...] = (
    "IAB1", "IAB12", "IAB13", "IAB17", "IAB19", "IAB20",
)


def is_valid_category(code: str) -> bool:
    """True when ``code`` is a known tier-1 IAB code."""
    return code in IAB_CATEGORIES


def category_name(code: str) -> str:
    """Human-readable name of an IAB code; raises KeyError when unknown."""
    return IAB_CATEGORIES[code]


def category_index(code: str) -> int:
    """Numeric part of an IAB code (``'IAB13'`` -> 13)."""
    if not code.startswith("IAB"):
        raise ValueError(f"not an IAB code: {code!r}")
    return int(code[3:])


@dataclass(frozen=True)
class InterestProfile:
    """A user's weighted IAB interest profile.

    Weights are non-negative and normalised to sum to 1; the dominant
    category is what campaign targeting and price modelling key on.
    """

    weights: tuple[tuple[str, float], ...]

    def __post_init__(self) -> None:
        for code, weight in self.weights:
            if not is_valid_category(code):
                raise ValueError(f"unknown IAB code {code!r}")
            if weight < 0:
                raise ValueError(f"negative weight for {code}")

    @classmethod
    def from_counts(cls, counts: dict[str, float]) -> "InterestProfile":
        """Normalise raw per-category visit counts into a profile."""
        total = sum(counts.values())
        if total <= 0:
            return cls(weights=())
        items = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return cls(weights=tuple((code, c / total) for code, c in items))

    @property
    def dominant(self) -> str | None:
        """Highest-weight category, or None for an empty profile."""
        return self.weights[0][0] if self.weights else None

    def weight(self, code: str) -> float:
        """Weight of one category (0 when absent)."""
        for c, w in self.weights:
            if c == code:
                return w
        return 0.0

    def top(self, k: int) -> list[str]:
        """The ``k`` highest-weight category codes."""
        return [c for c, _ in self.weights[:k]]
