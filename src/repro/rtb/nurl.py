"""Winning-price notification URLs (nURLs).

After an RTB auction, the ADX piggybacks a notification URL in the ad
response; the user's browser fires it, confirming delivery to the
winning DSP and carrying the charge price -- in cleartext for some
ADX-DSP pairs, encrypted for others (paper Table 1, section 2.2).

This module is the *grammar* of those URLs: a per-exchange format
registry that can render a win notification into a URL
(exchange/simulator side) and parse a URL back into price + metadata
(observer side).  The observer-side parser deliberately uses only
information an external auditor has: known notification domains, known
price-parameter macros, and the 28-byte shape of encrypted blobs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping
from urllib.parse import parse_qsl, quote, urlencode, urlparse

from repro.rtb.pricecrypto import looks_like_encrypted_price

#: Query parameter names known to carry *charge* prices (from manual
#: inspection + published RTB API macros, per paper section 4.1).
CHARGE_PRICE_PARAMS: tuple[str, ...] = (
    "charge_price", "price", "wp", "win_price", "mcpm", "rtbwinprice",
    "cp", "auction_price", "charge",
)

#: Parameter names that carry *bid* prices, which must be filtered out
#: so bids are never tallied as charges (paper section 4.1).
BID_PRICE_PARAMS: tuple[str, ...] = ("bid_price", "bp", "bid", "max_bid")


@dataclass(frozen=True)
class NUrlFormat:
    """How one exchange shapes its win notifications."""

    adx: str
    host: str
    path: str
    price_param: str
    #: Extra static query parameters always present (e.g. ``exch=ruc``).
    static_params: tuple[tuple[str, str], ...] = ()
    #: Include a redundant bid_price parameter (some exchanges do; the
    #: analyzer must ignore it).
    include_bid_price: bool = False
    #: Include ad-slot dimensions as ``width``/``height`` params.
    include_size: bool = False

    def base_url(self) -> str:
        return f"https://{self.host}{self.path}"


#: Format registry for the simulated exchanges.  The three exemplars of
#: the paper's Table 1 (MoPub cleartext, Mathtag/Rubicon encrypted,
#: myThings/DoubleClick encrypted) anchor the shapes; remaining
#: exchanges get plausible variants so the detector cannot cheat by
#: assuming one format.
FORMATS: dict[str, NUrlFormat] = {
    "MoPub": NUrlFormat(
        adx="MoPub",
        host="cpp.imp.mpx.mopub.com",
        path="/imp",
        price_param="charge_price",
        include_bid_price=True,
    ),
    "Adnxs": NUrlFormat(
        adx="Adnxs",
        host="secure.adnxs.com",
        path="/winnotify",
        price_param="cp",
    ),
    "DoubleClick": NUrlFormat(
        adx="DoubleClick",
        host="ad.doubleclick.net",
        path="/ddm/winnotice",
        price_param="wp",
    ),
    "OpenX": NUrlFormat(
        adx="OpenX",
        host="ox-d.openx.net",
        path="/w/1.0/win",
        price_param="price",
    ),
    "Rubicon": NUrlFormat(
        adx="Rubicon",
        host="tags.mathtag.com",
        path="/notify/js",
        price_param="price",
        static_params=(("exch", "ruc"),),
    ),
    "PulsePoint": NUrlFormat(
        adx="PulsePoint",
        host="bid.contextweb.com",
        path="/rtb/win",
        price_param="win_price",
    ),
    "Turn": NUrlFormat(
        adx="Turn",
        host="ad.turn.com",
        path="/server/ads.js",
        price_param="mcpm",
        include_size=True,
    ),
    "MediaMath": NUrlFormat(
        adx="MediaMath",
        host="pixel.mathtag.com",
        path="/win/img",
        price_param="auction_price",
    ),
    "Smaato": NUrlFormat(
        adx="Smaato",
        host="soma.smaato.net",
        path="/oapi/win",
        price_param="price",
    ),
    "Inneractive": NUrlFormat(
        adx="Inneractive",
        host="wv.inner-active.mobi",
        path="/simpleM2M/winNotice",
        price_param="wp",
    ),
    "Criteo": NUrlFormat(
        adx="Criteo",
        host="cas.criteo.com",
        path="/delivery/win.php",
        price_param="charge",
    ),
    "AdColony": NUrlFormat(
        adx="AdColony",
        host="events.adcolony.com",
        path="/win",
        price_param="price",
    ),
    "Millennial": NUrlFormat(
        adx="Millennial",
        host="ads.mp.mydas.mobi",
        path="/winNotify",
        price_param="wp",
    ),
    "Nexage": NUrlFormat(
        adx="Nexage",
        host="bid.nexage.com",
        path="/win",
        price_param="win_price",
        include_size=True,
    ),
    "Amobee": NUrlFormat(
        adx="Amobee",
        host="rtb.amobee.com",
        path="/notify",
        price_param="price",
    ),
    "StrikeAd": NUrlFormat(
        adx="StrikeAd",
        host="bid.strikead.com",
        path="/rtb/win",
        price_param="cp",
    ),
    "Airpush": NUrlFormat(
        adx="Airpush",
        host="api.airpush.com",
        path="/winnotice",
        price_param="wp",
    ),
}

#: Observer-side knowledge: notification host -> exchange name.
HOST_TO_ADX: dict[str, str] = {fmt.host: name for name, fmt in FORMATS.items()}


@dataclass(frozen=True)
class WinNotification:
    """The information an exchange embeds into one nURL."""

    adx: str
    dsp: str
    charge_price_cpm: float | None
    encrypted_price: str | None
    impression_id: str
    auction_id: str
    ad_domain: str = ""
    slot_size: str = ""
    publisher: str = ""
    currency: str = "USD"
    bid_price_cpm: float | None = None
    country: str = ""
    campaign_id: str = ""

    def __post_init__(self) -> None:
        if (self.charge_price_cpm is None) == (self.encrypted_price is None):
            raise ValueError(
                "exactly one of charge_price_cpm / encrypted_price must be set"
            )

    @property
    def is_encrypted(self) -> bool:
        return self.encrypted_price is not None


def build_nurl(notification: WinNotification) -> str:
    """Render a win notification into its exchange's URL format."""
    fmt = FORMATS.get(notification.adx)
    if fmt is None:
        raise ValueError(f"unknown exchange {notification.adx!r}")

    params: list[tuple[str, str]] = list(fmt.static_params)
    if notification.is_encrypted:
        assert notification.encrypted_price is not None
        params.append((fmt.price_param, notification.encrypted_price))
    else:
        assert notification.charge_price_cpm is not None
        params.append((fmt.price_param, f"{notification.charge_price_cpm:.4f}"))

    params.append(("imp_id", notification.impression_id))
    params.append(("auction_id", notification.auction_id))
    params.append(("bidder_name", notification.dsp))
    if notification.ad_domain:
        params.append(("ad_domain", notification.ad_domain))
    if notification.publisher:
        params.append(("pub_name", notification.publisher))
    if notification.country:
        params.append(("country", notification.country))
    if notification.campaign_id:
        params.append(("cmp_id", notification.campaign_id))
    params.append(("currency", notification.currency))
    if fmt.include_bid_price and notification.bid_price_cpm is not None:
        params.append(("bid_price", f"{notification.bid_price_cpm:.4f}"))
    if fmt.include_size and notification.slot_size:
        width, height = notification.slot_size.split("x")
        params.append(("width", width))
        params.append(("height", height))
    elif notification.slot_size:
        params.append(("size", notification.slot_size))

    query = urlencode(params, quote_via=quote)
    return f"{fmt.base_url()}?{query}"


@dataclass(frozen=True)
class ParsedNotification:
    """What an external observer recovers from one nURL."""

    url: str
    adx: str
    dsp: str | None
    cleartext_price_cpm: float | None
    encrypted_token: str | None
    params: Mapping[str, str] = field(default_factory=dict)

    @property
    def is_encrypted(self) -> bool:
        return self.encrypted_token is not None

    @property
    def campaign_id(self) -> str | None:
        """Campaign identifier when the exchange carries one."""
        return self.params.get("cmp_id")

    @property
    def slot_size(self) -> str | None:
        """Slot label when the exchange carries dimensions."""
        if "size" in self.params:
            return self.params["size"]
        if "width" in self.params and "height" in self.params:
            return f"{self.params['width']}x{self.params['height']}"
        return None


def parse_nurl(url: str) -> ParsedNotification | None:
    """Observer-side nURL parser.

    Returns ``None`` when the URL is not a recognised win notification
    (unknown host, or no known charge-price macro among its
    parameters).  Bid-price parameters are explicitly ignored.
    """
    try:
        parsed = urlparse(url)
    except ValueError:
        return None
    adx = HOST_TO_ADX.get(parsed.netloc)
    if adx is None:
        return None
    params = dict(parse_qsl(parsed.query, keep_blank_values=True))

    price_value: str | None = None
    for macro in CHARGE_PRICE_PARAMS:
        if macro in params:
            price_value = params[macro]
            break
    if price_value is None:
        return None

    cleartext: float | None = None
    encrypted: str | None = None
    try:
        cleartext = float(price_value)
        # Hostile or broken notifications can smuggle NaN/inf literals
        # through float(); a price must be a finite non-negative number.
        if not math.isfinite(cleartext) or cleartext < 0:
            return None
    except (ValueError, OverflowError):
        if looks_like_encrypted_price(price_value):
            cleartext = None
            encrypted = price_value
        else:
            return None

    return ParsedNotification(
        url=url,
        adx=adx,
        dsp=params.get("bidder_name"),
        cleartext_price_cpm=cleartext,
        encrypted_token=encrypted,
        params=params,
    )
