"""Minimal OpenRTB-style request/response objects.

A compact subset of the OpenRTB 2.x object model (the paper cites the
MoPub/OpenX/PulsePoint OpenRTB integration guides): enough structure
for an ADX to describe an impression opportunity to DSPs and for DSPs
to answer with bids.  Field names follow the spec (``tmax``, ``imp``,
``bidfloor``, ...) so readers familiar with OpenRTB can map them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rtb.adslots import AdSlotSize
from repro.rtb.iab import InterestProfile


@dataclass(frozen=True)
class Device:
    """Device object: what the exchange knows about the user's hardware."""

    os: str                      # "Android" | "iOS" | "Windows Mobile" | ...
    device_type: str             # "smartphone" | "tablet" | "pc"
    user_agent: str = ""
    ip: str = ""


@dataclass(frozen=True)
class Geo:
    """Geo object resolved from the device IP."""

    country: str = ""
    city: str = ""


@dataclass(frozen=True)
class UserInfo:
    """User object: the exchange-side view of the audience member.

    ``buyer_uid`` is the cookie-synced identifier a DSP can use to look
    up its own profile of this user (see :mod:`repro.rtb.cookiesync`).
    """

    exchange_uid: str
    buyer_uids: dict[str, str] = field(default_factory=dict)
    interests: InterestProfile = field(default_factory=lambda: InterestProfile(()))


@dataclass(frozen=True)
class Impression:
    """One auctioned ad slot within a bid request."""

    impression_id: str
    slot_size: AdSlotSize
    bidfloor_cpm: float = 0.0
    interstitial: bool = False

    def __post_init__(self) -> None:
        if self.bidfloor_cpm < 0:
            raise ValueError(f"negative bid floor {self.bidfloor_cpm}")


@dataclass(frozen=True)
class BidRequest:
    """The auction call an ADX broadcasts to participating DSPs."""

    auction_id: str
    timestamp: float
    imp: Impression
    publisher: str
    publisher_iab: str
    device: Device
    geo: Geo
    user: UserInfo
    is_app: bool
    adx: str
    tmax_ms: int = 100           # the 100 ms budget of step 6 in Figure 1

    @property
    def context(self) -> str:
        """``'app'`` or ``'web'`` -- the paper's interaction-type feature."""
        return "app" if self.is_app else "web"


@dataclass(frozen=True)
class Bid:
    """A DSP's answer for one impression."""

    dsp: str
    advertiser: str
    campaign_id: str
    price_cpm: float
    creative_domain: str = ""

    def __post_init__(self) -> None:
        if self.price_cpm < 0:
            raise ValueError(f"negative bid {self.price_cpm}")


@dataclass(frozen=True)
class BidResponse:
    """A DSP's full response to a bid request (possibly empty = no-bid)."""

    auction_id: str
    dsp: str
    bids: tuple[Bid, ...] = ()

    @property
    def is_no_bid(self) -> bool:
        return len(self.bids) == 0
