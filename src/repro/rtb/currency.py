"""Currency normalisation for charge prices.

The paper assumes every observed charge price is USD (footnote 4:
"Given that the majority of ADXs are located in US ... we assume every
charge price to be in US Dollars").  Real nURLs carry a ``currency``
parameter (see Table 1's MoPub example), so a careful analyzer can do
better: convert each price into USD with a rate table before tallying.
This module provides that conversion with a bundled 2015-2016 era rate
snapshot; deployments would refresh the table from a rates feed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: USD per unit of currency, mid-2015 snapshot (ECB reference rates).
DEFAULT_RATES_TO_USD: dict[str, float] = {
    "USD": 1.0,
    "EUR": 1.10,
    "GBP": 1.53,
    "JPY": 0.0081,
    "CHF": 1.05,
    "SEK": 0.118,
    "AUD": 0.75,
    "CAD": 0.78,
}


class CurrencyError(ValueError):
    """Raised for unknown currencies or invalid rates."""


@dataclass
class CurrencyConverter:
    """Converts CPM prices between currencies via USD."""

    rates_to_usd: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_RATES_TO_USD)
    )
    #: What to do with unknown currency codes: "raise" or "assume_usd"
    #: (the paper's behaviour).
    unknown_policy: str = "assume_usd"

    def __post_init__(self) -> None:
        if self.unknown_policy not in ("raise", "assume_usd"):
            raise CurrencyError(f"bad unknown_policy {self.unknown_policy!r}")
        for code, rate in self.rates_to_usd.items():
            if rate <= 0:
                raise CurrencyError(f"non-positive rate for {code}")

    def supports(self, code: str) -> bool:
        return code.upper() in self.rates_to_usd

    def to_usd(self, amount: float, currency: str) -> float:
        """Convert an amount from ``currency`` into USD."""
        code = (currency or "USD").upper()
        rate = self.rates_to_usd.get(code)
        if rate is None:
            if self.unknown_policy == "assume_usd":
                return amount
            raise CurrencyError(f"unknown currency {currency!r}")
        return amount * rate

    def convert(self, amount: float, source: str, target: str) -> float:
        """Convert between two known currencies via USD."""
        usd = self.to_usd(amount, source)
        code = (target or "USD").upper()
        rate = self.rates_to_usd.get(code)
        if rate is None:
            raise CurrencyError(f"unknown target currency {target!r}")
        return usd / rate

    def set_rate(self, code: str, usd_per_unit: float) -> None:
        """Install/refresh one rate (a rates-feed update)."""
        if usd_per_unit <= 0:
            raise CurrencyError(f"non-positive rate for {code}")
        self.rates_to_usd[code.upper()] = usd_per_unit


def normalize_price_usd(
    price_cpm: float,
    currency: str | None,
    converter: CurrencyConverter | None = None,
) -> float:
    """The analyzer-side helper: one observed price -> USD CPM."""
    converter = converter or CurrencyConverter()
    return converter.to_usd(price_cpm, currency or "USD")
