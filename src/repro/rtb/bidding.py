"""DSP bid decision engines.

A DSP's decision engine answers the question the paper poses in section
2.1: "How much is it worth to bid for an ad slot for this user, if
any?".  Our engines decompose a bid into

    bid = base_value(request features) * dsp_noise * campaign aggressiveness

where ``base_value`` is a shared, feature-multiplicative valuation of
the impression (configured by :mod:`repro.trace.pricing` to encode the
paper's observed price structure) and the noise term models the spread
of independent bidder beliefs.  Second-price clearing over several such
bidders yields charge prices that inherit the feature structure --
which is precisely why the paper's Random Forest can learn them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from repro.rtb.campaign import Campaign
from repro.rtb.openrtb import Bid, BidRequest, BidResponse

#: A valuation function: request -> fair CPM value of the impression.
ValueModel = Callable[[BidRequest], float]


class BidEngine(Protocol):
    """Strategy interface: price a campaign's bid for one request."""

    def price_bid(self, request: BidRequest, campaign: Campaign,
                  rng: np.random.Generator) -> float | None:
        """CPM bid, or None to no-bid."""


@dataclass
class FeatureBidEngine:
    """Value-based bidding with lognormal belief noise.

    ``noise_sigma`` is the std of the bidder's log-valuation error;
    ``aggressiveness`` scales bids up/down (retargeting-style campaigns
    would use > 1).  ``participation`` is the probability the DSP bids
    at all on an eligible request (models bid throttling / pacing).
    """

    value_model: ValueModel
    noise_sigma: float = 0.35
    aggressiveness: float = 1.0
    participation: float = 1.0

    def __post_init__(self) -> None:
        if self.noise_sigma < 0:
            raise ValueError(f"negative noise_sigma {self.noise_sigma}")
        if self.aggressiveness <= 0:
            raise ValueError(f"aggressiveness must be positive")
        if not 0.0 <= self.participation <= 1.0:
            raise ValueError(f"participation must be in [0,1]")

    def price_bid(self, request: BidRequest, campaign: Campaign,
                  rng: np.random.Generator) -> float | None:
        if self.participation < 1.0 and rng.random() > self.participation:
            return None
        value = self.value_model(request)
        if value <= 0:
            return None
        noise = float(np.exp(rng.normal(0.0, self.noise_sigma))) if self.noise_sigma else 1.0
        bid = value * noise * self.aggressiveness
        # The bid cap protects the budget (paper section 5.3) -- bids are
        # clipped, not dropped, so capped campaigns still compete.
        return min(bid, campaign.max_bid_cpm)


@dataclass
class FixedBidEngine:
    """Bid a constant CPM on every eligible request (test harness aid)."""

    bid_cpm: float

    def __post_init__(self) -> None:
        if self.bid_cpm <= 0:
            raise ValueError("bid_cpm must be positive")

    def price_bid(self, request: BidRequest, campaign: Campaign,
                  rng: np.random.Generator) -> float | None:
        return min(self.bid_cpm, campaign.max_bid_cpm)


@dataclass
class RetargetingEngine:
    """Audience-retargeting bidding (the paper's deferred future work).

    The paper's probe campaigns deliberately avoided retargeting
    ("studying the effects of retargeting is beyond the scope of this
    paper ... we plan to investigate [it] in a separate study"), while
    hypothesising that aggressive retargeting is one driver of the
    encrypted-price premium.  This engine implements the mechanism so
    the ablation benches can study it: the DSP bids only on users in
    its retargeting audience (recognised through cookie-synced ids) and
    values them at a multiple of the common valuation.

    ``audience_uids`` live in the DSP's own id space
    (:func:`repro.rtb.cookiesync.synced_uid` of ``dsp_name``); a user
    is reachable only when a cookie sync has put the DSP's uid into the
    bid request -- exactly the dependency real retargeting has on sync.
    """

    dsp_name: str
    value_model: ValueModel
    audience_uids: frozenset[str]
    boost: float = 2.0
    noise_sigma: float = 0.25

    def __post_init__(self) -> None:
        if self.boost <= 0:
            raise ValueError("boost must be positive")
        if self.noise_sigma < 0:
            raise ValueError("negative noise_sigma")

    def in_audience(self, request: BidRequest) -> bool:
        uid = request.user.buyer_uids.get(self.dsp_name)
        return uid is not None and uid in self.audience_uids

    def price_bid(self, request: BidRequest, campaign: Campaign,
                  rng: np.random.Generator) -> float | None:
        if not self.in_audience(request):
            return None
        value = self.value_model(request)
        if value <= 0:
            return None
        noise = float(np.exp(rng.normal(0.0, self.noise_sigma))) if self.noise_sigma else 1.0
        return min(value * noise * self.boost, campaign.max_bid_cpm)


class Dsp:
    """A demand-side platform: a bidder holding campaigns and an engine.

    The DSP receives bid requests from exchanges, finds eligible
    campaigns, prices a bid for the best one and responds.  Wins are
    reported back via :meth:`notify_win` so budgets stay accounted.
    """

    def __init__(
        self,
        name: str,
        engine: BidEngine,
        rng: np.random.Generator,
        campaigns: list[Campaign] | None = None,
    ):
        if not name:
            raise ValueError("DSP name must be non-empty")
        self.name = name
        self.engine = engine
        self.rng = rng
        self.campaigns: list[Campaign] = list(campaigns or [])
        self.wins = 0
        self.total_spend_usd = 0.0

    def add_campaign(self, campaign: Campaign) -> None:
        self.campaigns.append(campaign)

    def respond(self, request: BidRequest) -> BidResponse:
        """Answer a bid request with at most one bid (the best campaign)."""
        best_bid: Bid | None = None
        for campaign in self.campaigns:
            if not campaign.eligible_for(request):
                continue
            price = self.engine.price_bid(request, campaign, self.rng)
            if price is None or price <= 0:
                continue
            if best_bid is None or price > best_bid.price_cpm:
                best_bid = Bid(
                    dsp=self.name,
                    advertiser=campaign.advertiser,
                    campaign_id=campaign.campaign_id,
                    price_cpm=price,
                    creative_domain=f"ads.{campaign.advertiser.lower()}.com",
                )
        bids = (best_bid,) if best_bid is not None else ()
        return BidResponse(auction_id=request.auction_id, dsp=self.name, bids=bids)

    def notify_win(
        self,
        campaign_id: str,
        charge_price_cpm: float,
        request: BidRequest | None = None,
    ) -> None:
        """Book a win against the campaign's budget.

        ``request`` carries the auction context; the base DSP ignores it,
        but recording DSPs (probe campaigns) log it as the per-impression
        performance report advertisers receive.
        """
        for campaign in self.campaigns:
            if campaign.campaign_id == campaign_id:
                campaign.record_win(charge_price_cpm)
                self.wins += 1
                self.total_spend_usd += charge_price_cpm / 1000.0
                return
        raise KeyError(f"DSP {self.name} has no campaign {campaign_id!r}")
