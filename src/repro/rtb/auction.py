"""Second-price (Vickrey) auction clearing.

RTB auctions "typically follow the second higher price model", so the
winner pays the second-highest submitted bid (paper section 2.1).  When
only one bid clears the floor, the charge price is the floor (or the
bid itself when no floor is set, the degenerate single-bidder case).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rtb.openrtb import Bid


class AuctionError(Exception):
    """Raised on malformed auction inputs."""


@dataclass(frozen=True)
class AuctionOutcome:
    """Result of clearing one auction."""

    winner: Bid
    charge_price_cpm: float
    n_bids: int
    second_price_cpm: float | None

    def __post_init__(self) -> None:
        if self.charge_price_cpm < 0:
            raise AuctionError(f"negative charge price {self.charge_price_cpm}")
        if self.charge_price_cpm > self.winner.price_cpm + 1e-9:
            raise AuctionError(
                f"charge price {self.charge_price_cpm} exceeds winning bid "
                f"{self.winner.price_cpm}"
            )


def run_first_price_auction(
    bids: list[Bid],
    floor_cpm: float = 0.0,
) -> AuctionOutcome | None:
    """Clear a first-price auction (the winner pays its own bid).

    The RTB industry moved from second- to first-price clearing after
    the paper's publication (2018-2019); this variant lets the
    reproduction study whether the price-transparency methodology
    survives the mechanism change (it does -- the methodology models
    *observed charges*, whatever produced them; see the first-price
    ablation benchmark).
    """
    if floor_cpm < 0:
        raise AuctionError(f"negative floor {floor_cpm}")
    eligible = [b for b in bids if b.price_cpm >= floor_cpm]
    if not eligible:
        return None
    ranked = sorted(eligible, key=lambda b: (-b.price_cpm, b.dsp, b.campaign_id))
    winner = ranked[0]
    return AuctionOutcome(
        winner=winner,
        charge_price_cpm=winner.price_cpm,
        n_bids=len(eligible),
        second_price_cpm=ranked[1].price_cpm if len(ranked) >= 2 else None,
    )


def run_second_price_auction(
    bids: list[Bid],
    floor_cpm: float = 0.0,
    min_increment_cpm: float = 0.01,
) -> AuctionOutcome | None:
    """Clear a second-price auction.

    Bids below the floor are discarded.  The winner is the highest
    bidder (deterministic tie-break on (price, dsp, campaign_id) so the
    simulation is reproducible); the charge price is
    ``max(second_highest_bid + min_increment, floor)`` capped at the
    winning bid, or the floor/bid when the winner is alone.

    Returns ``None`` when no bid clears the floor (unsold slot, which an
    SSP would backfill -- see paper section 2.1 footnote on backfill).
    """
    if floor_cpm < 0:
        raise AuctionError(f"negative floor {floor_cpm}")
    eligible = [b for b in bids if b.price_cpm >= floor_cpm]
    if not eligible:
        return None

    ranked = sorted(
        eligible, key=lambda b: (-b.price_cpm, b.dsp, b.campaign_id)
    )
    winner = ranked[0]
    if len(ranked) >= 2:
        second = ranked[1].price_cpm
        charge = min(winner.price_cpm, max(second + min_increment_cpm, floor_cpm))
        second_price = second
    else:
        charge = floor_cpm if floor_cpm > 0 else winner.price_cpm
        second_price = None
    return AuctionOutcome(
        winner=winner,
        charge_price_cpm=charge,
        n_bids=len(eligible),
        second_price_cpm=second_price,
    )
