"""The 28-byte winning-price encryption scheme.

Implements the scheme Google documents for DoubleClick Ad Exchange
("Decrypt Price Confirmations"), which the paper identifies as the
"popular 28-byte encryption scheme companies use [that] cannot be
easily broken":

    ciphertext = initialization_vector (16 bytes)
               || (price_micros XOR pad)  (8 bytes)
               || integrity_signature     (4 bytes)

    pad       = first 8 bytes of HMAC-SHA1(encryption_key, iv)
    signature = first 4 bytes of HMAC-SHA1(integrity_key, price || iv)

and the 28 bytes travel inside the nURL as web-safe base64.  ADXs hold
the keys; an external observer (YourAdValue) sees only opaque 38-char
tokens -- which is exactly the property the paper's methodology works
around by *modelling* the hidden prices.
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import struct
from dataclasses import dataclass

from repro.util.money import cpm_to_micros, micros_to_cpm

IV_SIZE = 16
PRICE_SIZE = 8
SIGNATURE_SIZE = 4
CIPHERTEXT_SIZE = IV_SIZE + PRICE_SIZE + SIGNATURE_SIZE  # the "28 bytes"


class PriceCryptoError(Exception):
    """Raised on malformed or tampered ciphertexts."""


def _hmac_sha1(key: bytes, payload: bytes) -> bytes:
    return hmac.new(key, payload, hashlib.sha1).digest()


def _websafe_b64encode(raw: bytes) -> str:
    return base64.urlsafe_b64encode(raw).decode("ascii").rstrip("=")


def _websafe_b64decode(token: str) -> bytes:
    padding = "=" * (-len(token) % 4)
    try:
        return base64.urlsafe_b64decode(token + padding)
    except (ValueError, TypeError) as exc:
        raise PriceCryptoError(f"invalid base64 token: {token!r}") from exc


@dataclass(frozen=True)
class PriceKeys:
    """An ADX's (encryption, integrity) key pair."""

    encryption_key: bytes
    integrity_key: bytes

    def __post_init__(self) -> None:
        if len(self.encryption_key) == 0 or len(self.integrity_key) == 0:
            raise ValueError("keys must be non-empty")

    @classmethod
    def derive(cls, secret: str) -> "PriceKeys":
        """Deterministically derive a key pair from an ADX secret string."""
        enc = hashlib.sha256(f"enc:{secret}".encode()).digest()
        sig = hashlib.sha256(f"sig:{secret}".encode()).digest()
        return cls(encryption_key=enc, integrity_key=sig)


def encrypt_price(cpm: float, keys: PriceKeys, iv: bytes) -> str:
    """Encrypt a CPM price into a web-safe base64 token.

    ``iv`` must be exactly 16 bytes; real exchanges derive it from the
    impression timestamp and server id, our simulator draws it from the
    auction RNG.
    """
    if len(iv) != IV_SIZE:
        raise PriceCryptoError(f"iv must be {IV_SIZE} bytes, got {len(iv)}")
    price_bytes = struct.pack(">Q", cpm_to_micros(cpm))
    pad = _hmac_sha1(keys.encryption_key, iv)[:PRICE_SIZE]
    enc_price = bytes(a ^ b for a, b in zip(price_bytes, pad))
    signature = _hmac_sha1(keys.integrity_key, price_bytes + iv)[:SIGNATURE_SIZE]
    return _websafe_b64encode(iv + enc_price + signature)


def decrypt_price(token: str, keys: PriceKeys) -> float:
    """Decrypt a token back to its CPM price, verifying integrity.

    Raises :class:`PriceCryptoError` on wrong length, bad base64 or a
    failed integrity check (wrong key or tampering).
    """
    raw = _websafe_b64decode(token)
    if len(raw) != CIPHERTEXT_SIZE:
        raise PriceCryptoError(
            f"ciphertext must be {CIPHERTEXT_SIZE} bytes, got {len(raw)}"
        )
    iv = raw[:IV_SIZE]
    enc_price = raw[IV_SIZE : IV_SIZE + PRICE_SIZE]
    signature = raw[IV_SIZE + PRICE_SIZE :]

    pad = _hmac_sha1(keys.encryption_key, iv)[:PRICE_SIZE]
    price_bytes = bytes(a ^ b for a, b in zip(enc_price, pad))
    expected = _hmac_sha1(keys.integrity_key, price_bytes + iv)[:SIGNATURE_SIZE]
    if not hmac.compare_digest(signature, expected):
        raise PriceCryptoError("integrity check failed (tampered or wrong key)")
    (micros,) = struct.unpack(">Q", price_bytes)
    return micros_to_cpm(micros)


def looks_like_encrypted_price(token: str) -> bool:
    """Heuristic an external observer can apply: is this an opaque
    28-byte web-safe-base64 price blob?

    The detector uses this to classify a price parameter as encrypted
    versus cleartext (a cleartext price parses as a float).
    """
    if not token or len(token) < 20:
        return False
    try:
        raw = _websafe_b64decode(token)
    except PriceCryptoError:
        return False
    return len(raw) == CIPHERTEXT_SIZE
