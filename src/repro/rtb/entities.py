"""The RTB ecosystem's cast: publishers, advertisers, SSPs, DMPs.

Key-player definitions follow the paper's section 2.1.  The module also
records the mobile RTB market composition of the paper's Figure 3 (the
per-entity RTB shares of dataset D) which the trace generator uses to
allocate auction volume across exchanges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rtb.adslots import AdSlotSize
from repro.rtb.iab import InterestProfile, is_valid_category

#: RTB share of auction volume per ad entity, from the paper's Figure 3
#: x-axis (MoPub 33.55%, Adnxs 10.74%, ...).  The figure anonymises all
#: but the top two entities; we assign the remaining shares to the other
#: exchanges the paper names, in descending order.
MARKET_SHARES: dict[str, float] = {
    "MoPub": 0.3355,
    "Adnxs": 0.1074,
    "DoubleClick": 0.0942,
    "OpenX": 0.0691,
    "Rubicon": 0.0646,
    "PulsePoint": 0.0445,
    "Turn": 0.0414,
    "MediaMath": 0.0387,
    "Smaato": 0.0354,
    "Inneractive": 0.0293,
    "Criteo": 0.0252,
    "AdColony": 0.0240,
    "Millennial": 0.0236,
    "Nexage": 0.0200,
    "Amobee": 0.0197,
    "StrikeAd": 0.0168,
    "Airpush": 0.0106,
}

#: Exchanges that (by the end of 2015) encrypt prices toward at least
#: some DSPs.  DoubleClick, Rubicon and OpenX are the paper's named
#: "major supporters" of encryption; PulsePoint is the fourth ADX the
#: authors probe in campaign A1.
ENCRYPTING_ADXS: tuple[str, ...] = ("DoubleClick", "Rubicon", "OpenX", "PulsePoint")

#: The DSPs participating in simulated auctions.
DSP_NAMES: tuple[str, ...] = (
    "Criteo-DSP", "MediaMath-DSP", "DBM", "AppNexus-DSP", "InviteMedia",
    "Turn-DSP", "Adform", "DataXu",
)


@dataclass(frozen=True)
class Publisher:
    """A website or app with auctioned ad inventory."""

    domain: str
    name: str
    iab_category: str
    is_app: bool
    slot_sizes: tuple[AdSlotSize, ...]
    ssp: str = ""
    popularity: float = 1.0     # relative visit weight in the trace

    def __post_init__(self) -> None:
        if not is_valid_category(self.iab_category):
            raise ValueError(f"unknown IAB category {self.iab_category!r}")
        if not self.slot_sizes:
            raise ValueError(f"publisher {self.domain} has no ad slots")
        if self.popularity <= 0:
            raise ValueError("popularity must be positive")

    @property
    def kind(self) -> str:
        """``'app'`` or ``'web'``."""
        return "app" if self.is_app else "web"


@dataclass(frozen=True)
class Advertiser:
    """A buyer of ad inventory."""

    name: str
    domain: str
    iab_category: str

    def __post_init__(self) -> None:
        if not is_valid_category(self.iab_category):
            raise ValueError(f"unknown IAB category {self.iab_category!r}")


@dataclass(frozen=True)
class Ssp:
    """Supply-side platform: fronts publishers toward exchanges.

    The SSP chooses which exchange receives each ad request and sets
    the price floor for the publisher's inventory.
    """

    name: str
    exchanges: tuple[str, ...]
    floor_cpm: float = 0.01

    def __post_init__(self) -> None:
        if not self.exchanges:
            raise ValueError(f"SSP {self.name} fronts no exchanges")
        if self.floor_cpm < 0:
            raise ValueError("negative floor")


@dataclass
class Dmp:
    """Data-management platform: the ecosystem's user-data warehouse.

    Aggregates the "run-time user profile" DSPs consult before bidding
    (paper section 2.1): interest profile, observed locations, device.
    Access requires a cookie sync between the querying party and the
    DMP, mirroring how real match tables gate profile lookups.
    """

    name: str = "DataHub"
    _profiles: dict[str, dict] = field(default_factory=dict)

    def ingest(
        self,
        user_id: str,
        interests: InterestProfile | None = None,
        city: str | None = None,
        device_os: str | None = None,
    ) -> None:
        """Merge freshly observed attributes into the user's profile."""
        profile = self._profiles.setdefault(
            user_id, {"interests": InterestProfile(()), "cities": [], "device_os": None}
        )
        if interests is not None:
            profile["interests"] = interests
        if city is not None and city not in profile["cities"]:
            profile["cities"].append(city)
        if device_os is not None:
            profile["device_os"] = device_os

    def query(self, user_id: str) -> dict | None:
        """The run-time profile for a user, or None when unknown."""
        profile = self._profiles.get(user_id)
        return dict(profile) if profile is not None else None

    def audience_segment(self, iab_category: str) -> list[str]:
        """Users whose dominant interest matches a category."""
        return [
            uid
            for uid, profile in self._profiles.items()
            if profile["interests"].dominant == iab_category
        ]

    def __len__(self) -> int:
        return len(self._profiles)
