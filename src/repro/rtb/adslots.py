"""Ad-slot size catalog.

Exchanges quote auctioned slots by pixel dimensions.  The paper's
Figures 12-14 study the slot sizes below; the industry nicknames
("MPU", "leaderboard", ...) follow the paper's section 4.4.
"""

from __future__ import annotations

import re
from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class AdSlotSize:
    """A ``width x height`` ad-slot size in CSS pixels."""

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"non-positive slot dimensions {self.width}x{self.height}")

    @property
    def area(self) -> int:
        """Pixel area -- the paper sorts its slot figures by this."""
        return self.width * self.height

    @property
    def label(self) -> str:
        """Canonical ``WxH`` label, e.g. ``'300x250'``."""
        return f"{self.width}x{self.height}"

    @property
    def nickname(self) -> str | None:
        """Industry nickname when one exists (paper section 4.4)."""
        return NICKNAMES.get(self.label)

    @classmethod
    def parse(cls, label: str) -> "AdSlotSize":
        """Parse a ``WxH`` string (case-insensitive 'x')."""
        match = re.fullmatch(r"(\d+)\s*[xX]\s*(\d+)", label.strip())
        if match is None:
            raise ValueError(f"not a slot size label: {label!r}")
        return cls(width=int(match.group(1)), height=int(match.group(2)))

    def __str__(self) -> str:
        return self.label


#: Nicknames used in the paper.
NICKNAMES: dict[str, str] = {
    "300x250": "MPU (Medium Rectangle)",
    "300x600": "Monster MPU",
    "728x90": "Leaderboard",
    "320x50": "Large Mobile Banner",
    "468x60": "Full Banner",
    "120x600": "Skyscraper",
    "160x600": "Wide Skyscraper",
    "320x480": "Mobile Interstitial (portrait)",
    "480x320": "Mobile Interstitial (landscape)",
    "768x1024": "Tablet Interstitial (portrait)",
    "1024x768": "Tablet Interstitial (landscape)",
}

#: All sizes appearing in the paper's Figure 12 legend (plus tablet
#: interstitials from Table 5), as labels.
FIGURE12_SIZES: tuple[str, ...] = (
    "300x50", "320x50", "468x60", "200x200", "316x150", "728x90",
    "280x250", "120x600", "300x250", "336x280", "160x600", "800x130",
    "400x300", "320x480", "480x320", "300x600", "350x600",
)

#: The subset carried by the Turn-style exchange in Figures 13-14.
TURN_SIZES: tuple[str, ...] = (
    "320x50", "468x60", "728x90", "120x600", "300x250", "160x600", "300x600",
)

#: Smartphone formats offered in the probe campaigns (Table 5).
CAMPAIGN_PHONE_SIZES: tuple[str, ...] = ("320x50", "300x250", "320x480")

#: Tablet formats offered in the probe campaigns (Table 5).
CAMPAIGN_TABLET_SIZES: tuple[str, ...] = ("728x90", "300x250", "768x1024")


def catalog() -> list[AdSlotSize]:
    """All known slot sizes, sorted by area then width."""
    labels = set(FIGURE12_SIZES) | set(CAMPAIGN_TABLET_SIZES) | set(NICKNAMES)
    sizes = [AdSlotSize.parse(lbl) for lbl in labels]
    return sorted(sizes, key=lambda s: (s.area, s.width))


def sort_by_area(labels: list[str] | tuple[str, ...]) -> list[str]:
    """Sort slot labels by pixel area (the paper's figure ordering)."""
    return sorted(labels, key=lambda lbl: AdSlotSize.parse(lbl).area)
