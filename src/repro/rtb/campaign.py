"""Ad campaigns: targeting, budgets, pacing.

Campaigns are what DSPs bid on behalf of.  The targeting vocabulary is
exactly the control-variable set of the paper's probe campaigns
(Table 5): location, web-interaction type, time of day, day of week,
device type, OS, ad size, ADX, IAB category.  The open-market campaigns
of the trace simulator use loose targeting; the probe campaigns of
:mod:`repro.core.campaigns` use one fully pinned setup each.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Iterable

from repro.rtb.openrtb import BidRequest
from repro.util.timeutil import is_weekend

#: Table-5 time-of-day campaign windows (coarser than the analyzer's
#: six four-hour buckets).
CAMPAIGN_DAYPARTS: tuple[str, ...] = ("12am-9am", "9am-6pm", "6pm-12am")


def campaign_daypart(ts: float) -> str:
    """Map a timestamp into the Table-5 daypart windows."""
    from repro.util.timeutil import hour_of

    hour = hour_of(ts)
    if hour < 9:
        return "12am-9am"
    if hour < 18:
        return "9am-6pm"
    return "6pm-12am"


@dataclass(frozen=True)
class TargetingSpec:
    """Audience filter for a campaign.

    Every field is an optional frozenset; ``None`` means "any".  A
    request matches when every non-None constraint is satisfied.
    """

    cities: frozenset[str] | None = None
    contexts: frozenset[str] | None = None        # {"app", "web"}
    dayparts: frozenset[str] | None = None        # CAMPAIGN_DAYPARTS values
    day_types: frozenset[str] | None = None       # {"weekday", "weekend"}
    device_types: frozenset[str] | None = None    # {"smartphone", "tablet"}
    oses: frozenset[str] | None = None            # {"Android", "iOS", ...}
    slot_sizes: frozenset[str] | None = None      # {"320x50", ...}
    adxs: frozenset[str] | None = None
    iab_categories: frozenset[str] | None = None

    def matches(self, request: BidRequest) -> bool:
        """True when the bid request satisfies every constraint."""
        if self.cities is not None and request.geo.city not in self.cities:
            return False
        if self.contexts is not None and request.context not in self.contexts:
            return False
        if self.dayparts is not None and campaign_daypart(request.timestamp) not in self.dayparts:
            return False
        if self.day_types is not None:
            day_type = "weekend" if is_weekend(request.timestamp) else "weekday"
            if day_type not in self.day_types:
                return False
        if self.device_types is not None and request.device.device_type not in self.device_types:
            return False
        if self.oses is not None and request.device.os not in self.oses:
            return False
        if self.slot_sizes is not None and request.imp.slot_size.label not in self.slot_sizes:
            return False
        if self.adxs is not None and request.adx not in self.adxs:
            return False
        if self.iab_categories is not None and request.publisher_iab not in self.iab_categories:
            return False
        return True

    @classmethod
    def any(cls) -> "TargetingSpec":
        """A spec that matches everything."""
        return cls()


@dataclass
class Campaign:
    """One ad campaign with a budget and targeting.

    Mutable on purpose: the DSP records spend and wins as auctions
    resolve.  ``max_bid_cpm`` is the bid cap the paper gave its DSP "to
    safeguard that the allocated budget will not be consumed quickly".
    """

    campaign_id: str
    advertiser: str
    targeting: TargetingSpec = field(default_factory=TargetingSpec.any)
    max_bid_cpm: float = 10.0
    budget_usd: float = float("inf")
    spent_usd: float = 0.0
    impressions_won: int = 0

    def __post_init__(self) -> None:
        if self.max_bid_cpm <= 0:
            raise ValueError(f"max_bid_cpm must be positive, got {self.max_bid_cpm}")
        if self.budget_usd < 0:
            raise ValueError(f"negative budget {self.budget_usd}")

    @property
    def remaining_budget_usd(self) -> float:
        return max(0.0, self.budget_usd - self.spent_usd)

    @property
    def exhausted(self) -> bool:
        """True when the budget cannot pay for one more impression at cap."""
        return self.remaining_budget_usd < self.max_bid_cpm / 1000.0

    def eligible_for(self, request: BidRequest) -> bool:
        """Can this campaign bid on the request at all?"""
        return not self.exhausted and self.targeting.matches(request)

    def record_win(self, charge_price_cpm: float) -> None:
        """Account for a won impression at the given charge price."""
        if charge_price_cpm < 0:
            raise ValueError(f"negative charge price {charge_price_cpm}")
        self.spent_usd += charge_price_cpm / 1000.0
        self.impressions_won += 1

    @property
    def average_cpm(self) -> float:
        """Realised average CPM across won impressions (0 when none)."""
        if self.impressions_won == 0:
            return 0.0
        return self.spent_usd * 1000.0 / self.impressions_won


def expand_setup_grid(
    cities: Iterable[str],
    contexts: Iterable[str],
    dayparts: Iterable[str],
    day_types: Iterable[str],
    device_oses: Iterable[tuple[str, str, str]],
    adxs: Iterable[str],
) -> list[TargetingSpec]:
    """Cartesian product of campaign control variables (paper section 5.2).

    ``device_oses`` couples device type, OS and slot size since the
    Table-5 ad formats depend on the device class (smartphone formats vs
    tablet formats).  Returns one fully pinned :class:`TargetingSpec`
    per experimental setup.
    """
    specs = []
    for city, ctx, daypart, day_type, (device, os_name, size), adx in itertools.product(
        cities, contexts, dayparts, day_types, device_oses, adxs
    ):
        specs.append(
            TargetingSpec(
                cities=frozenset({city}),
                contexts=frozenset({ctx}),
                dayparts=frozenset({daypart}),
                day_types=frozenset({day_type}),
                device_types=frozenset({device}),
                oses=frozenset({os_name}),
                slot_sizes=frozenset({size}),
                adxs=frozenset({adx}),
            )
        )
    return specs


def clone_for_adx(spec: TargetingSpec, adx: str) -> TargetingSpec:
    """Copy of a setup retargeted at a different exchange (A2 reuses A1)."""
    return replace(spec, adxs=frozenset({adx}))
