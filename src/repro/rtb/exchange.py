"""Ad exchanges: auction hosting and the price-notification channel.

The ADX runs the second-price auction, notifies the winning DSP through
the browser-borne nURL (the dominant option per paper section 2.2), and
-- per its policy with that DSP -- sends the charge price in cleartext
or encrypted with the exchange's 28-byte scheme (section 2.3).

Encryption adoption is modelled per ADX-DSP *pair* with an adoption
date, reproducing the paper's Figure 2 finding that the fraction of
encrypted pairs rises steadily through 2015.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.rtb.auction import (
    AuctionOutcome,
    run_first_price_auction,
    run_second_price_auction,
)
from repro.rtb.bidding import Dsp
from repro.rtb.nurl import FORMATS, WinNotification, build_nurl
from repro.rtb.openrtb import Bid, BidRequest
from repro.rtb.pricecrypto import PriceKeys, encrypt_price


@dataclass
class PairEncryptionPolicy:
    """Per (ADX, DSP) pair: when (if ever) the pair switched to
    encrypted price notifications.

    ``adoption_ts`` of ``None`` means the pair always sends cleartext.
    """

    adoption: dict[tuple[str, str], float | None] = field(default_factory=dict)

    def set_adoption(self, adx: str, dsp: str, ts: float | None) -> None:
        self.adoption[(adx, dsp)] = ts

    def is_encrypted(self, adx: str, dsp: str, ts: float) -> bool:
        """Does this pair encrypt at time ``ts``?"""
        adoption_ts = self.adoption.get((adx, dsp))
        return adoption_ts is not None and ts >= adoption_ts

    def pairs(self) -> list[tuple[str, str]]:
        return list(self.adoption)

    def encrypted_fraction(self, ts: float) -> float:
        """Fraction of known pairs encrypting at ``ts`` (Figure 2 series)."""
        if not self.adoption:
            return 0.0
        encrypted = sum(
            1 for (adx, dsp) in self.adoption if self.is_encrypted(adx, dsp, ts)
        )
        return encrypted / len(self.adoption)

    @classmethod
    def always_cleartext(cls, adxs: list[str], dsps: list[str]) -> "PairEncryptionPolicy":
        """Every pair sends cleartext forever."""
        return cls(adoption={pair: None for pair in itertools.product(adxs, dsps)})


@dataclass(frozen=True)
class AuctionRecord:
    """Everything one resolved auction produced.

    The simulator keeps the ground-truth charge price even when the
    wire carries it encrypted; observer-side code must only ever look
    at ``nurl``.
    """

    request: BidRequest
    outcome: AuctionOutcome
    notification: WinNotification
    nurl: str
    true_charge_price_cpm: float

    @property
    def is_encrypted(self) -> bool:
        return self.notification.is_encrypted


class AdExchange:
    """A digital marketplace hosting RTB auctions (paper section 2.1)."""

    def __init__(
        self,
        name: str,
        rng: np.random.Generator,
        secret: str | None = None,
        floor_cpm: float = 0.01,
        mechanism: str = "second_price",
    ):
        if name not in FORMATS:
            raise ValueError(f"no nURL format registered for exchange {name!r}")
        if mechanism not in ("second_price", "first_price"):
            raise ValueError(f"unknown auction mechanism {mechanism!r}")
        self.name = name
        self.rng = rng
        self.keys = PriceKeys.derive(secret if secret is not None else f"adx:{name}")
        self.floor_cpm = floor_cpm
        self.mechanism = mechanism
        self.auctions_run = 0
        self.auctions_sold = 0
        self.revenue_usd = 0.0

    def run_auction(
        self,
        request: BidRequest,
        dsps: list[Dsp],
        policy: PairEncryptionPolicy,
    ) -> AuctionRecord | None:
        """Broadcast the request, clear the auction, emit the nURL.

        Returns ``None`` when no DSP bids above the floor (unsold
        inventory, which real SSPs would backfill outside RTB).
        """
        self.auctions_run += 1
        bids: list[Bid] = []
        for dsp in dsps:
            response = dsp.respond(request)
            bids.extend(response.bids)

        clear = (
            run_first_price_auction
            if self.mechanism == "first_price"
            else run_second_price_auction
        )
        outcome = clear(bids, floor_cpm=self.floor_cpm)
        if outcome is None:
            return None

        winner = outcome.winner
        charge = outcome.charge_price_cpm
        for dsp in dsps:
            if dsp.name == winner.dsp:
                dsp.notify_win(winner.campaign_id, charge, request=request)
                break

        encrypted = policy.is_encrypted(self.name, winner.dsp, request.timestamp)
        impression_id = f"imp-{self.name[:3].lower()}-{self.auctions_run:08d}"
        if encrypted:
            iv = self.rng.bytes(16)
            notification = WinNotification(
                adx=self.name,
                dsp=winner.dsp,
                charge_price_cpm=None,
                encrypted_price=encrypt_price(charge, self.keys, iv),
                impression_id=impression_id,
                auction_id=request.auction_id,
                ad_domain=winner.creative_domain,
                slot_size=request.imp.slot_size.label,
                publisher=request.publisher,
                country=request.geo.country,
                bid_price_cpm=winner.price_cpm,
                campaign_id=winner.campaign_id,
            )
        else:
            notification = WinNotification(
                adx=self.name,
                dsp=winner.dsp,
                charge_price_cpm=charge,
                encrypted_price=None,
                impression_id=impression_id,
                auction_id=request.auction_id,
                ad_domain=winner.creative_domain,
                slot_size=request.imp.slot_size.label,
                publisher=request.publisher,
                country=request.geo.country,
                bid_price_cpm=winner.price_cpm,
                campaign_id=winner.campaign_id,
            )

        self.auctions_sold += 1
        self.revenue_usd += charge / 1000.0
        return AuctionRecord(
            request=request,
            outcome=outcome,
            notification=notification,
            nurl=build_nurl(notification),
            true_charge_price_cpm=charge,
        )

    @property
    def sell_through_rate(self) -> float:
        """Fraction of auctions that produced a winner."""
        if self.auctions_run == 0:
            return 0.0
        return self.auctions_sold / self.auctions_run

    def decrypt_own_price(self, token: str) -> float:
        """ADX-side decryption (used for probe-campaign ground truth)."""
        from repro.rtb.pricecrypto import decrypt_price

        return decrypt_price(token, self.keys)
