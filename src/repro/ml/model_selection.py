"""Cross-validation and data-splitting utilities.

The paper evaluates its classifier with 10-fold cross validation,
averaged over 10 runs (section 5.4).  Stratified folds keep the four
price classes balanced in every fold, matching the "well balanced
groups" the clustering step produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.ml.metrics import ClassificationReport, classification_report
from repro.util.rng import derive_seed


def train_test_split(
    n_samples: int, test_fraction: float = 0.25, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Random (train_indices, test_indices) partition of ``range(n)``."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    if n_samples < 2:
        raise ValueError("need at least two samples to split")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n_samples)
    n_test = max(1, int(round(n_samples * test_fraction)))
    n_test = min(n_test, n_samples - 1)
    return order[n_test:], order[:n_test]


def kfold_indices(
    n_samples: int, n_folds: int = 10, seed: int = 0
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield (train, test) index pairs for plain shuffled k-fold CV."""
    if n_folds < 2:
        raise ValueError("need at least 2 folds")
    if n_samples < n_folds:
        raise ValueError(f"cannot make {n_folds} folds from {n_samples} samples")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n_samples)
    folds = np.array_split(order, n_folds)
    for i in range(n_folds):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(n_folds) if j != i])
        yield train, test


def stratified_kfold_indices(
    labels: Sequence[int], n_folds: int = 10, seed: int = 0
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield (train, test) index pairs preserving class proportions."""
    y = np.asarray(labels, dtype=int)
    if n_folds < 2:
        raise ValueError("need at least 2 folds")
    rng = np.random.default_rng(seed)
    fold_members: list[list[int]] = [[] for _ in range(n_folds)]
    for cls in np.unique(y):
        members = np.flatnonzero(y == cls)
        rng.shuffle(members)
        for i, idx in enumerate(members):
            fold_members[i % n_folds].append(int(idx))
    folds = [np.asarray(sorted(m), dtype=int) for m in fold_members]
    for i in range(n_folds):
        test = folds[i]
        if test.size == 0:
            continue
        train = np.concatenate([folds[j] for j in range(n_folds) if j != i])
        yield train, test


@dataclass(frozen=True)
class CrossValidationResult:
    """Aggregate of per-fold classification reports."""

    reports: tuple[ClassificationReport, ...]

    def _mean(self, metric: str) -> float:
        values = [getattr(r, metric) for r in self.reports]
        values = [v for v in values if v is not None]
        return float(np.mean(values)) if values else float("nan")

    def _std(self, metric: str) -> float:
        values = [getattr(r, metric) for r in self.reports]
        values = [v for v in values if v is not None]
        return float(np.std(values)) if values else float("nan")

    @property
    def accuracy(self) -> float:
        return self._mean("accuracy")

    @property
    def tp_rate(self) -> float:
        return self._mean("tp_rate")

    @property
    def fp_rate(self) -> float:
        return self._mean("fp_rate")

    @property
    def precision(self) -> float:
        return self._mean("precision")

    @property
    def recall(self) -> float:
        return self._mean("recall")

    @property
    def auc_roc(self) -> float:
        return self._mean("auc_roc")

    def summary(self) -> dict[str, float]:
        """The section-5.4 metric row as a dict."""
        return {
            "accuracy": self.accuracy,
            "tp_rate": self.tp_rate,
            "fp_rate": self.fp_rate,
            "precision": self.precision,
            "recall": self.recall,
            "auc_roc": self.auc_roc,
            "accuracy_std": self._std("accuracy"),
        }


ModelFactory = Callable[[], object]


def cross_validate_classifier(
    model_factory: ModelFactory,
    x: np.ndarray,
    y: np.ndarray,
    n_folds: int = 10,
    n_runs: int = 1,
    seed: int = 0,
    stratified: bool = True,
) -> CrossValidationResult:
    """k-fold cross validation repeated ``n_runs`` times (paper: 10x10).

    ``model_factory`` must return a fresh unfitted model exposing
    ``fit(x, y)``, ``predict(x)`` and ``predict_proba(x)``.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=int)
    n_classes = int(y.max()) + 1
    reports: list[ClassificationReport] = []
    for run in range(n_runs):
        run_seed = derive_seed(seed, f"cv-run-{run}")
        splitter = (
            stratified_kfold_indices(y, n_folds, run_seed)
            if stratified
            else kfold_indices(len(y), n_folds, run_seed)
        )
        for train, test in splitter:
            model = model_factory()
            model.fit(x[train], y[train])  # type: ignore[attr-defined]
            pred = model.predict(x[test])  # type: ignore[attr-defined]
            probs = None
            if hasattr(model, "predict_proba"):
                raw = model.predict_proba(x[test])  # type: ignore[attr-defined]
                probs = np.zeros((len(test), n_classes))
                probs[:, : raw.shape[1]] = raw
            reports.append(
                classification_report(y[test], pred, probs, n_classes=n_classes)
            )
    return CrossValidationResult(reports=tuple(reports))
