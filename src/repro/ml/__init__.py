"""From-scratch machine-learning substrate (no scikit-learn available).

Provides everything the paper's Price Modeling Engine needs: CART
decision trees, Random Forests with OOB error and Gini importances,
Weka-style weighted classification metrics (TP/FP rate, precision,
recall, AUCROC), stratified k-fold cross validation, PCA, linear/ridge
regression baselines, feature encoders/filters, and JSON model
serialisation for shipping trees to YourAdValue clients.
"""

from repro.ml.flat import FlatTree, flatten_classifier_tree, flatten_regressor_tree
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.metrics import (
    ClassificationReport,
    accuracy,
    classification_report,
    confusion_matrix,
    mean_absolute_error,
    mean_squared_error,
    r2_score,
    roc_auc_ovr_weighted,
    root_mean_squared_error,
)
from repro.ml.model_selection import (
    CrossValidationResult,
    cross_validate_classifier,
    kfold_indices,
    stratified_kfold_indices,
    train_test_split,
)
from repro.ml.pca import PCA
from repro.ml.preprocessing import (
    CorrelationFilter,
    FrameEncoder,
    OneHotEncoder,
    OrdinalEncoder,
    Standardizer,
    VarianceFilter,
)
from repro.ml.regression import LinearRegression, RidgeRegression
from repro.ml.serialize import (
    dumps,
    forest_from_dict,
    forest_to_dict,
    loads,
    tree_from_dict,
    tree_to_dict,
)
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor, TreeNode

__all__ = [
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "TreeNode",
    "FlatTree",
    "flatten_classifier_tree",
    "flatten_regressor_tree",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "ClassificationReport",
    "classification_report",
    "confusion_matrix",
    "accuracy",
    "roc_auc_ovr_weighted",
    "mean_squared_error",
    "root_mean_squared_error",
    "mean_absolute_error",
    "r2_score",
    "CrossValidationResult",
    "cross_validate_classifier",
    "kfold_indices",
    "stratified_kfold_indices",
    "train_test_split",
    "PCA",
    "OrdinalEncoder",
    "OneHotEncoder",
    "FrameEncoder",
    "Standardizer",
    "VarianceFilter",
    "CorrelationFilter",
    "LinearRegression",
    "RidgeRegression",
    "tree_to_dict",
    "tree_from_dict",
    "forest_to_dict",
    "forest_from_dict",
    "dumps",
    "loads",
]
