"""Histogram-based split finding over a pre-binned columnar dataset.

The exact CART splitter re-argsorts every candidate column at every
node -- ``O(n log n)`` per (node, feature), float comparisons, plus (in
the seed) an ``n x n_classes`` one-hot allocation.  The paper's feature
set S (context, device, city, time-of-day, day-of-week, slot size,
IAB category, ADX -- section 5.1) is almost entirely categorical or
ordinal with tiny cardinalities, which is the best possible case for
the histogram training used by modern GBDT/RTB-CTR systems: quantise
each feature **once** per forest into at most 256 ordinal bins, then
find every split with integer ``bincount`` histograms over the codes.

Four structural wins over the exact engine:

* **Pre-binned columnar codes.**  :class:`BinnedDataset` maps each
  column to ``uint8`` codes against a monotone threshold ladder, built
  once from the full training matrix and shared *read-only* across
  member trees and fork-pool workers (copy-on-write pages -- the code
  matrix is never re-binned or re-pickled per tree).  Bin boundaries
  map back to real feature-space thresholds, so fitted trees are
  ordinary :class:`~repro.ml.tree.TreeNode` graphs: ``FlatTree``
  compilation, serialisation and serving are completely unchanged.
* **Level-wise vectorised growth.**  Nodes are grown breadth-first: at
  each depth the class histograms of *every* frontier node land in one
  flattened ``np.bincount`` (histogram address of row ``i`` under node
  ``j`` at feature ``f`` is
  ``j*stride + (code + offsets[f])*n_classes + y[i]``), every
  (node, feature, bin-boundary) candidate is scored in one broadcast
  pass, and the row partition for the whole level is a single stable
  ``argsort`` on ``(node, side)`` keys.  Per-node Python work collapses
  to building the two ``TreeNode`` children -- the deep, many-thousand
  -node trees the price model grows (depth 18, leaf size 2) stop
  paying a fixed ~25-numpy-call toll per node.
* **Sibling-histogram subtraction.**  When a node splits, only the
  **smaller** child is re-scanned (all scans of a level share one
  ``bincount``) and the other child's histogram is derived as
  ``parent - sibling`` -- per level, at most half the rows are
  re-histogrammed.
* **Index-subset growth.**  Nodes carry ``intp`` row-index arrays into
  the shared code matrix instead of copying ``x[mask]`` / ``y[mask]``
  at every level (bootstrap resamples are just index multisets).

Everything here is deterministic given the data and the tree's own
``rng``: the breadth-first frontier order is a pure function of the
data, feature subsets are drawn once per frontier node in that order,
and ties in the vectorised score surface break toward the lowest flat
bin address (lowest feature index, then lowest bin).  ``splitter="hist"``
training is therefore bit-identical across ``workers=1/N`` -- the same
guarantee PR 2 established for exact mode.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.tree import TreeNode, _entropy, _EPS, _gini, _GrowthParams

__all__ = [
    "MAX_BINS",
    "BinnedDataset",
    "HistClassifierGrower",
    "HistRegressorGrower",
    "bin_thresholds",
    "column_codes",
]

#: Hard cap on bins per feature: codes must fit ``uint8``.
MAX_BINS = 256

#: Soft cap on ``frontier_nodes * total_bins * n_classes`` entries per
#: level-wise scoring pass; frontiers larger than this are chunked so the
#: broadcast score arrays stay within a few tens of megabytes.
_CHUNK_ENTRIES = 2_000_000


# -- quantisation ------------------------------------------------------------

def bin_thresholds(col: np.ndarray, max_bins: int = MAX_BINS) -> np.ndarray:
    """Strictly increasing real-valued bin boundaries for one column.

    At most ``max_bins - 1`` thresholds (so at most ``max_bins`` bins).
    Columns with ``<= max_bins`` distinct values get one bin per
    distinct value with boundaries at adjacent-value midpoints --
    i.e. exactly the candidate thresholds the exact splitter would
    consider, which makes hist lossless for the low-cardinality
    feature set S.  Higher-cardinality columns are cut at equally
    spaced ranks of the (duplicate-weighted) sorted column, with a
    distinct-value-space fallback when the mass is so concentrated
    that every rank lands on one value.  NaNs are ignored here and
    coded into the top bin (so they route right at inference, matching
    ``FlatTree``'s IEEE semantics).
    """
    col = np.asarray(col, dtype=float)
    if not 2 <= max_bins <= MAX_BINS:
        raise ValueError(f"max_bins must be in [2, {MAX_BINS}], got {max_bins}")
    uniques = np.unique(col)
    if uniques.size and np.isnan(uniques[-1]):
        uniques = uniques[~np.isnan(uniques)]
    m = uniques.size
    if m <= 1:
        return np.empty(0, dtype=float)  # constant column: never splittable
    if m <= max_bins:
        thr = 0.5 * uniques[:-1] + 0.5 * uniques[1:]
    else:
        svals = np.sort(col[~np.isnan(col)])
        pos = (np.arange(1, max_bins) * svals.size) // max_bins
        cut_vals = np.unique(svals[pos])
        iu = np.searchsorted(uniques, cut_vals)
        iu = iu[iu < m - 1]  # a cut at the max value cannot split
        if iu.size == 0:
            # Degenerate concentration (almost all mass on one value):
            # fall back to equally spaced distinct-value boundaries.
            ks = np.unique((np.arange(1, max_bins) * m) // max_bins)
            ks = ks[(ks >= 1) & (ks <= m - 1)]
            return np.unique(0.5 * uniques[ks - 1] + 0.5 * uniques[ks])
        thr = 0.5 * uniques[iu] + 0.5 * uniques[iu + 1]
    # 0.5*a + 0.5*b never overflows, but may round onto a or b for
    # adjacent representables; collapse any degenerate duplicates so the
    # ladder stays strictly increasing.
    return np.unique(thr)


def column_codes(col: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
    """``uint8`` ordinal codes for one column against its ladder.

    ``code(v) = searchsorted(thresholds, v, side="left")`` makes the
    round-trip exact by construction: ``code(v) <= b`` if and only if
    ``v <= thresholds[b]``, so a split chosen in code space induces the
    identical row partition when replayed as a real-valued threshold
    (the property-test suite pins this).  NaN sorts past every
    threshold and lands in the top bin.
    """
    codes = np.searchsorted(thresholds, np.asarray(col, dtype=float),
                            side="left")
    return codes.astype(np.uint8)


@dataclass(frozen=True)
class BinnedDataset:
    """Quantised view of a training matrix, built once per forest.

    ``codes`` is the ``(n_rows, n_features)`` ``uint8`` matrix (C
    order, 8x smaller than the float matrix); ``thresholds[f]`` maps
    code boundary ``b`` of feature ``f`` back to the real threshold
    ``x[:, f] <= thresholds[f][b]``.  ``offsets``/``total_bins`` lay
    every feature's bins out in one flat histogram address space so a
    node's full histogram is a single ``np.bincount``.
    """

    codes: np.ndarray
    thresholds: tuple[np.ndarray, ...]
    n_bins: np.ndarray
    offsets: np.ndarray
    total_bins: int

    @property
    def n_rows(self) -> int:
        return self.codes.shape[0]

    @property
    def n_features(self) -> int:
        return self.codes.shape[1]

    @classmethod
    def from_matrix(cls, x: np.ndarray, max_bins: int = MAX_BINS) -> "BinnedDataset":
        """Quantise ``x`` column by column (one pass, done once)."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError("x must be 2-D")
        n, f = x.shape
        codes = np.empty((n, f), dtype=np.uint8, order="C")
        thresholds: list[np.ndarray] = []
        n_bins = np.empty(f, dtype=np.int64)
        for j in range(f):
            thr = bin_thresholds(x[:, j], max_bins)
            thresholds.append(thr)
            codes[:, j] = column_codes(x[:, j], thr)
            n_bins[j] = thr.size + 1
        offsets = np.zeros(f, dtype=np.int64)
        if f:
            np.cumsum(n_bins[:-1], out=offsets[1:])
        return cls(
            codes=codes,
            thresholds=tuple(thresholds),
            n_bins=n_bins,
            offsets=offsets,
            total_bins=int(n_bins.sum()) if f else 0,
        )

    def check_matches(self, x: np.ndarray) -> None:
        """Guard against pairing codes with a differently shaped matrix."""
        if tuple(x.shape) != tuple(self.codes.shape):
            raise ValueError(
                f"binned dataset was built for shape {self.codes.shape}, "
                f"got x of shape {tuple(x.shape)}"
            )


# -- level-wise growth machinery --------------------------------------------

def _boundary_mask(binned: BinnedDataset) -> np.ndarray:
    """Flat-bin positions that are legal split boundaries.

    The last bin of every feature is not a boundary (nothing to its
    right); features with a single bin (constant columns) contribute no
    boundaries at all.
    """
    ok = np.ones(binned.total_bins, dtype=bool)
    if binned.n_features:
        ok[binned.offsets + binned.n_bins - 1] = False
    return ok


def _chunked(items: list, size: int):
    for i in range(0, len(items), size):
        yield items[i:i + size]


class _LevelGrower:
    """Shared breadth-first scaffolding for the two hist growers.

    A *frontier entry* is ``(node, idx, hist)``: a still-splittable
    :class:`TreeNode`, its row-index multiset into the shared code
    matrix, and -- in full-feature growth -- its flat bin histogram
    (``None`` under per-node feature subsampling, where each level
    re-histograms only the sampled blocks).  Subclasses supply the
    histogram scan and the vectorised (node, boundary) scoring; this
    class owns the frontier loop, the per-level stable-sort row
    partition, and the scan-smaller / derive-larger sibling
    subtraction bookkeeping of full-feature growth.
    """

    #: Set by subclasses: True when per-node feature subsampling is on
    #: and the subclass scores compact per-node sampled histograms
    #: (frontier entries then carry no histogram).
    use_sampled = False

    def __init__(self, binned: BinnedDataset, params: _GrowthParams):
        self.binned = binned
        self.params = params
        self.boundary_ok = _boundary_mask(binned)
        self.offsets = binned.offsets
        self.n_bins = binned.n_bins
        self.max_nb = int(binned.n_bins.max()) if binned.n_features else 0
        # Concatenated per-feature bin-edge arrays + offsets, so the
        # real-space threshold of every winning (feature, boundary) pair
        # is one fancy-indexed gather instead of a per-node lookup.
        # (Per-feature edge counts are n_bins - 1, hence a separate
        # offset vector from the flat *bin* offsets.)
        if binned.n_features:
            self._flat_thresholds = np.concatenate(binned.thresholds)
            self._thr_offsets = np.concatenate(
                ([0], np.cumsum(binned.n_bins[:-1] - 1))
            )
        else:  # pragma: no cover - empty feature space
            self._flat_thresholds = np.empty(0, dtype=np.float64)
            self._thr_offsets = np.empty(0, dtype=np.int64)
        self.chunk_nodes = 1  # subclasses size this from their score width

    # -- subclass hooks ------------------------------------------------------

    def _scan_many(self, idx_list: list[np.ndarray]) -> np.ndarray:
        """Stacked full-space histograms, one flattened ``bincount``."""
        raise NotImplementedError

    def _score_chunk(self, chunk: list, sizes: np.ndarray,
                     big: np.ndarray, node_ids: np.ndarray) -> tuple:
        """Return ``(ok, f_best, b_best, nl_best, left_stats, right_stats)``.

        ``ok`` marks nodes that split; ``f_best``/``b_best`` are the
        winning feature and bin boundary per node;
        ``left_stats``/``right_stats`` yield the ``(value, impurity)``
        pair for child ``i`` of a split node.  ``big``/``node_ids`` are
        the chunk's concatenated row indices and their node ownership
        (the compact sampled scan histograms them directly).
        """
        raise NotImplementedError

    # -- shared engine -------------------------------------------------------

    def _splittable(self, node: TreeNode, depth: int) -> bool:
        p = self.params
        return (
            node.impurity > _EPS
            and node.n_samples >= p.min_samples_split
            and (p.max_depth is None or depth < p.max_depth)
        )

    def _sampled_features(self, k: int) -> np.ndarray | None:
        """(k, max_features) sorted sampled feature ids, one batched draw.

        Each frontier node samples ``max_features`` features without
        replacement via one ``rng.random((k, n_features))`` key matrix
        and a per-row partial sort (the smallest keys win) -- a single
        generator call per frontier chunk instead of one ``rng.choice``
        per node.  Chunk boundaries are a pure function of the data, so
        the draw stream -- and therefore the fitted tree -- is a pure
        function of the tree seed, and identical across ``workers=1/N``.
        Returns ``None`` when every feature is in play.
        """
        p = self.params
        nf = self.binned.n_features
        if p.max_features is None or p.max_features >= nf:
            return None
        assert p.rng is not None
        keys = p.rng.random((k, nf))
        picked = np.argpartition(keys, p.max_features - 1, axis=1)
        return np.sort(picked[:, :p.max_features], axis=1)

    def _sampled_mask(self, k: int) -> np.ndarray | None:
        """(k, total_bins) feature-subsample mask over the flat bin axis."""
        feat = self._sampled_features(k)
        if feat is None:
            return None
        flags = np.zeros((k, self.binned.n_features), dtype=bool)
        np.put_along_axis(flags, feat, True, axis=1)
        return np.repeat(flags, self.n_bins, axis=1)

    def _grow_from(self, idx: np.ndarray, root: TreeNode) -> TreeNode:
        """Grow breadth-first from a prepared ``root`` over ``idx``."""
        depth = 0
        if not self.boundary_ok.any() or not self._splittable(root, depth):
            return root
        root_hist = None if self.use_sampled else self._scan_many([idx])[0]
        frontier = [(root, idx, root_hist)]
        while frontier:
            nxt: list = []
            for chunk in _chunked(frontier, self.chunk_nodes):
                nxt.extend(self._split_chunk(chunk, depth))
            frontier = nxt
            depth += 1
        return root

    def _split_chunk(self, chunk: list, depth: int) -> list:
        """Split every node of one frontier chunk; return the next frontier."""
        k = len(chunk)
        sizes = np.fromiter((e[1].size for e in chunk), np.int64, count=k)
        big = (
            chunk[0][1] if k == 1
            else np.concatenate([e[1] for e in chunk])
        )
        node_ids = np.repeat(np.arange(k), sizes)
        ok, f_best, b_best, nl_best, left_stats, right_stats = (
            self._score_chunk(chunk, sizes, big, node_ids)
        )
        if not ok.any():
            return []

        # One stable argsort partitions every splitting node's rows into
        # (left, right) runs at once: key = 2*node + went_right, stable
        # so rows keep their ancestral order inside each run.
        sel = ok[node_ids]
        rows = big[sel]
        nid = node_ids[sel]
        went_right = self.binned.codes[rows, f_best[nid]] > b_best[nid]
        rows = rows[np.argsort(nid * 2 + went_right, kind="stable")]

        split_ids = np.nonzero(ok)[0]
        child_sizes = np.empty(2 * split_ids.size, dtype=np.int64)
        child_sizes[0::2] = nl_best[split_ids]
        child_sizes[1::2] = sizes[split_ids] - nl_best[split_ids]
        bounds = np.concatenate(([0], np.cumsum(child_sizes)))

        # Plain-int/float views for the construction loop below:
        # indexing Python lists beats numpy scalar extraction when the
        # loop runs once per split node of a many-thousand-node level.
        # Real-space thresholds are gathered for all winners in one
        # fancy-indexing step over the concatenated edge array.
        cs_l = child_sizes.tolist()
        bounds_l = bounds.tolist()
        f_l = f_best.tolist()
        thr_l = self._flat_thresholds[
            self._thr_offsets[f_best[split_ids]] + b_best[split_ids]
        ].tolist()
        depth1 = depth + 1
        sampled = self.use_sampled
        p = self.params
        min_split = p.min_samples_split
        depth_ok = p.max_depth is None or depth1 < p.max_depth

        nxt: list = []
        scan_entries: list[tuple[TreeNode | None, np.ndarray]] = []
        derive: list[tuple[int, np.ndarray, TreeNode, np.ndarray]] = []
        for s, i in enumerate(split_ids.tolist()):
            node, _, hist = chunk[i]
            node.feature = f_l[i]
            node.threshold = thr_l[s]
            lv, li = left_stats(i)
            rv, ri = right_stats(i)
            ln = cs_l[2 * s]
            rn = cs_l[2 * s + 1]
            left = TreeNode(value=lv, n_samples=ln, impurity=li)
            right = TreeNode(value=rv, n_samples=rn, impurity=ri)
            node.left, node.right = left, right
            li_idx = rows[bounds_l[2 * s]:bounds_l[2 * s + 1]]
            ri_idx = rows[bounds_l[2 * s + 1]:bounds_l[2 * s + 2]]
            # _splittable, inlined: the call + attribute traffic is
            # measurable at two checks per split of a deep level.
            lgrow = depth_ok and li > _EPS and ln >= min_split
            rgrow = depth_ok and ri > _EPS and rn >= min_split
            if sampled:
                # Compact sampled scoring re-histograms each level
                # directly; no per-node histogram flows down.
                if lgrow:
                    nxt.append((left, li_idx, None))
                if rgrow:
                    nxt.append((right, ri_idx, None))
                continue
            if not (lgrow or rgrow):
                continue
            small, small_idx, small_grow, large, large_idx, large_grow = (
                (left, li_idx, lgrow, right, ri_idx, rgrow)
                if li_idx.size <= ri_idx.size
                else (right, ri_idx, rgrow, left, li_idx, lgrow)
            )
            # Sibling subtraction: re-scan only the smaller child (all
            # scans of the level share one bincount below); a growing
            # larger child takes parent-minus-sibling instead.
            scan_pos = len(scan_entries)
            scan_entries.append((small, small_idx))
            if large_grow:
                derive.append((scan_pos, hist, large, large_idx))
            if not small_grow:
                # Scanned purely to derive the sibling; drop from the
                # frontier bookkeeping after the subtraction.
                scan_entries[-1] = (None, small_idx)

        if sampled or not scan_entries:
            return nxt
        scanned = self._scan_many([e[1] for e in scan_entries])
        for pos, (node, node_idx) in enumerate(scan_entries):
            if node is not None:
                nxt.append((node, node_idx, scanned[pos]))
        for pos, parent_hist, node, node_idx in derive:
            nxt.append((node, node_idx, parent_hist - scanned[pos]))
        return nxt


class HistClassifierGrower(_LevelGrower):
    """Grows one classification tree over a shared :class:`BinnedDataset`.

    Stop conditions, per-node feature subsampling, leaf-size and
    impurity-decrease gates, and importance accumulation all mirror
    :meth:`repro.ml.tree.DecisionTreeClassifier._grow`; the split
    *search* runs level-wise over integer class histograms.  With
    feature subsampling on (the Random Forest configuration) each level
    histograms only the sampled blocks, addressed compactly as
    ``(node, sampled slot, bin, class)``; without it, full-space
    histograms flow down the tree under sibling subtraction.
    """

    def __init__(
        self,
        binned: BinnedDataset,
        y: np.ndarray,
        n_classes: int,
        criterion: str,
        params: _GrowthParams,
        importance_acc: np.ndarray,
    ):
        if criterion not in ("gini", "entropy"):
            raise ValueError(f"unknown criterion {criterion!r}")
        self.n_classes = int(n_classes)
        super().__init__(binned, params)
        self.y32 = np.ascontiguousarray(y, dtype=np.int64)
        self.criterion = criterion
        self.importance_acc = importance_acc
        self._impurity = _gini if criterion == "gini" else _entropy
        nf = binned.n_features
        self.use_sampled = (
            params.max_features is not None and params.max_features < nf
        )
        c = self.n_classes
        if self.use_sampled:
            width = params.max_features * self.max_nb * c
        else:
            width = binned.total_bins * c
            # addr[i, f]: flat (bin, class) histogram address of row i
            # under feature f -- computed once, reused at every level.
            addr = binned.codes.astype(np.int64) * c
            addr += (binned.offsets * c)[None, :]
            addr += self.y32[:, None]
            self.addr = addr
        self.chunk_nodes = max(1, _CHUNK_ENTRIES // max(1, width))

    def _scan_many(self, idx_list: list[np.ndarray]) -> np.ndarray:
        k = len(idx_list)
        stride = self.binned.total_bins * self.n_classes
        if k == 1:
            flat = self.addr[idx_list[0]]
        else:
            nid = np.repeat(
                np.arange(k),
                np.fromiter((a.size for a in idx_list), np.int64, count=k),
            )
            flat = self.addr[np.concatenate(idx_list)] + (nid * stride)[:, None]
        return np.bincount(flat.ravel(), minlength=k * stride).reshape(
            k, self.binned.total_bins, self.n_classes
        )

    def grow(self, idx: np.ndarray) -> TreeNode:
        """Grow the tree over the row-index (multi)set ``idx``."""
        # Sorted bootstrap indices keep every level's gathers monotone
        # in memory; class counts are order-free, so the fitted tree is
        # unchanged by the reordering.
        idx = np.sort(np.asarray(idx, dtype=np.intp), kind="stable")
        counts = np.bincount(self.y32[idx], minlength=self.n_classes)
        counts = counts.astype(float)
        root = TreeNode(value=counts, n_samples=int(idx.size),
                        impurity=self._impurity(counts))
        return self._grow_from(idx, root)

    def _score_chunk(self, chunk: list, sizes: np.ndarray,
                     big: np.ndarray, node_ids: np.ndarray) -> tuple:
        k = len(chunk)
        c = self.n_classes
        n_node = sizes
        feat = self._sampled_features(k) if self.use_sampled else None
        if feat is None:
            # Every feature in play: cumsum the frontier histograms
            # along the full flat bin axis.
            hist = (
                chunk[0][2][None] if k == 1
                else np.stack([e[2] for e in chunk])
            )
            csum = np.cumsum(hist, axis=1)
            totals = csum[:, self.n_bins[0] - 1, :]        # every row, once
            pe = np.zeros((k, self.binned.n_features, c), dtype=csum.dtype)
            if self.binned.n_features > 1:
                pe[:, 1:, :] = csum[:, self.offsets[1:] - 1, :]
            lc = csum - np.repeat(pe, self.n_bins, axis=1)
            lc4 = None
            valid = np.broadcast_to(
                self.boundary_ok, (k, lc.shape[1])
            ).copy()
            max_nb = 0
        else:
            # Feature subsampling: one bincount histograms every
            # (node, sampled slot, class, bin) cell of the level at
            # once -- rows are scanned per *sampled* feature (mf of F),
            # and the broadcast score arrays shrink to the padded
            # compact layout.  Bins are the innermost axis so the
            # per-slot cumsum runs over contiguous memory.
            mf = feat.shape[1]
            max_nb = self.max_nb
            stride = mf * max_nb * c
            codes_rows = self.binned.codes[big[:, None], feat[node_ids]]
            a = codes_rows.astype(np.int64)
            a += (node_ids * stride)[:, None]
            a += (np.arange(mf) * (max_nb * c))[None, :]
            a += (self.y32[big] * max_nb)[:, None]
            ch = np.bincount(a.ravel(), minlength=k * stride).reshape(
                k, mf, c, max_nb
            )
            lc4 = np.cumsum(ch, axis=3)
            totals = lc4[:, 0, :, -1]                      # every row, once
            lc = None
            nbf = self.n_bins[feat]                        # (k, mf)
            valid = (
                np.arange(max_nb)[None, None, :] < nbf[:, :, None] - 1
            ).reshape(k, mf * max_nb)

        ar = np.arange(k)

        if self.criterion == "gini":
            # Weighted child Gini rearranges to
            # (n - sum lc^2/nl - sum rc^2/nr) / n: minimising it is
            # maximising g = sum lc^2/nl + sum rc^2/nr.  With
            # rc = tot - lc, sum rc^2 = sum tot^2 - 2 sum tot*lc
            # + sum lc^2, so the whole score needs three einsum
            # reductions over the cumulative counts and never
            # materialises a right-child array.  Counts are exact in
            # float64 (far below 2**53), so the scores -- and hence the
            # chosen splits -- are identical to integer arithmetic.
            if lc4 is None:
                # Full-space layout (k, bins, classes): view as the
                # one-slot class-major block the einsums expect.
                lc4f = np.ascontiguousarray(
                    lc.astype(np.float64).transpose(0, 2, 1)
                )[:, None, :, :]
                width = lc.shape[1]
            else:
                lc4f = lc4.astype(np.float64)
                width = max_nb
            nl = np.einsum("kfcb->kfb", lc4f).reshape(k, -1)
            nr = n_node[:, None] - nl
            valid &= (nl > 0) & (nr > 0)
            totf = totals.astype(np.float64)
            e_ll = np.einsum("kfcb,kfcb->kfb", lc4f, lc4f).reshape(k, -1)
            e_tl = np.einsum("kc,kfcb->kfb", totf, lc4f).reshape(k, -1)
            tot2 = np.einsum("kc,kc->k", totf, totf)
            # g is assembled in place on the einsum outputs -- the
            # value at every position is the same expression
            # e_ll/nl + (tot2 - 2*e_tl + e_ll)/nr, just without fresh
            # (k, positions) temporaries per operator.
            g = e_tl
            g *= -2.0
            g += tot2[:, None]
            g += e_ll
            np.maximum(nr, 1.0, out=nr)
            g /= nr
            e_ll /= np.maximum(nl, 1.0)
            g += e_ll
            g[~valid] = -np.inf
            best_pos = np.argmax(g, axis=1)
            has = np.isfinite(g[ar, best_pos])
            nl_best = nl[ar, best_pos]
            nr_best = n_node - nl_best
            lc_best = lc4f[ar, best_pos // width, :, best_pos % width]
            rc_best = totf - lc_best
            # Exact impurities/score only at the k winning positions,
            # with the same arithmetic the full formula uses.
            pl = lc_best / np.maximum(nl_best, _EPS)[:, None]
            pr = rc_best / np.maximum(nr_best, _EPS)[:, None]
            il_best = 1.0 - np.sum(pl * pl, axis=1)
            ir_best = 1.0 - np.sum(pr * pr, axis=1)
        else:
            if lc is None:
                lc = np.ascontiguousarray(
                    lc4.transpose(0, 1, 3, 2)
                ).reshape(k, mf * max_nb, c)
            nl = lc.sum(axis=2)
            nr = n_node[:, None] - nl
            valid &= (nl > 0) & (nr > 0)
            rc = totals[:, None, :] - lc
            pl = lc / np.maximum(nl, _EPS)[:, :, None]
            pr = rc / np.maximum(nr, _EPS)[:, :, None]
            with np.errstate(divide="ignore", invalid="ignore"):
                il = -np.sum(np.where(pl > 0, pl * np.log(pl), 0.0), axis=2)
                ir = -np.sum(np.where(pr > 0, pr * np.log(pr), 0.0), axis=2)
            weighted = (nl * il + nr * ir) / n_node[:, None]
            weighted[~valid] = np.inf
            best_pos = np.argmin(weighted, axis=1)
            has = np.isfinite(weighted[ar, best_pos])
            nl_best = nl[ar, best_pos]
            nr_best = n_node - nl_best
            lc_best = lc[ar, best_pos]
            rc_best = totals - lc_best
            il_best = il[ar, best_pos]
            ir_best = ir[ar, best_pos]

        best_w = (nl_best * il_best + nr_best * ir_best) / n_node
        impurity = np.fromiter((e[0].impurity for e in chunk), float, count=k)
        decrease = impurity - best_w
        p = self.params
        ok = (
            has
            & (nl_best >= p.min_samples_leaf)
            & (nr_best >= p.min_samples_leaf)
            & (decrease >= p.min_impurity_decrease)
        )
        if feat is None:
            f_best = np.searchsorted(self.offsets, best_pos, side="right") - 1
            b_best = best_pos - self.offsets[f_best]
        else:
            b_best = best_pos % max_nb
            f_best = feat[ar, best_pos // max_nb]
        if ok.any():
            np.add.at(self.importance_acc, f_best[ok],
                      (n_node * decrease)[ok])

        lcf = lc_best.astype(float)
        rcf = rc_best.astype(float)
        il_l = il_best.tolist()
        ir_l = ir_best.tolist()

        def left_stats(i: int):
            return lcf[i], il_l[i]

        def right_stats(i: int):
            return rcf[i], ir_l[i]

        return ok, f_best, b_best, nl_best, left_stats, right_stats


class HistRegressorGrower(_LevelGrower):
    """Grows one regression tree over a shared :class:`BinnedDataset`.

    Histograms carry (count, sum y, sum y^2) per bin; counts subtract
    exactly (integers held in float64 -- exact up to 2**53) while the
    moment channels may pick up ~1 ulp from parent-minus-sibling
    re-association -- deterministic either way, and clamped
    non-negative in the variance formula.
    """

    def __init__(self, binned: BinnedDataset, y: np.ndarray,
                 params: _GrowthParams):
        super().__init__(binned, params)
        self.y = np.ascontiguousarray(y, dtype=float)
        # addr[i, f]: flat bin address of row i under feature f.
        self.addr = binned.codes.astype(np.int64) + binned.offsets[None, :]
        self.chunk_nodes = max(
            1, _CHUNK_ENTRIES // max(1, 3 * binned.total_bins)
        )

    def _scan_many(self, idx_list: list[np.ndarray]) -> np.ndarray:
        k = len(idx_list)
        tb = self.binned.total_bins
        nf = self.binned.n_features
        if k == 1:
            big = idx_list[0]
            flat = self.addr[big]
        else:
            nid = np.repeat(
                np.arange(k),
                np.fromiter((a.size for a in idx_list), np.int64, count=k),
            )
            big = np.concatenate(idx_list)
            flat = self.addr[big] + (nid * tb)[:, None]
        flat = flat.ravel()
        yb = np.repeat(self.y[big], nf)
        out = np.empty((k, 3, tb), dtype=float)
        out[:, 0, :] = np.bincount(flat, minlength=k * tb).reshape(k, tb)
        out[:, 1, :] = np.bincount(flat, weights=yb,
                                   minlength=k * tb).reshape(k, tb)
        out[:, 2, :] = np.bincount(flat, weights=yb * yb,
                                   minlength=k * tb).reshape(k, tb)
        return out

    def grow(self, idx: np.ndarray) -> TreeNode:
        """Grow the tree over the row-index (multi)set ``idx``."""
        idx = np.sort(np.asarray(idx, dtype=np.intp), kind="stable")
        y0 = self.y[idx]
        root = TreeNode(value=float(y0.mean()), n_samples=int(idx.size),
                        impurity=float(y0.var()))
        return self._grow_from(idx, root)

    def _score_chunk(self, chunk: list, sizes: np.ndarray,
                     big: np.ndarray, node_ids: np.ndarray) -> tuple:
        k = len(chunk)
        hist = (
            chunk[0][2][None] if k == 1
            else np.stack([e[2] for e in chunk])
        )
        csum = np.cumsum(hist, axis=2)
        pe = np.zeros((k, 3, self.binned.n_features), dtype=float)
        if self.binned.n_features > 1:
            pe[:, :, 1:] = csum[:, :, self.offsets[1:] - 1]
        left = csum - np.repeat(pe, self.n_bins, axis=2)
        totals = csum[:, :, self.n_bins[0] - 1]            # every row, once
        nl, sl, s2l = left[:, 0, :], left[:, 1, :], left[:, 2, :]
        n_node = sizes
        nr = n_node[:, None] - nl
        sr = totals[:, 1][:, None] - sl
        s2r = totals[:, 2][:, None] - s2l

        valid = self.boundary_ok[None, :] & (nl > 0) & (nr > 0)
        sampled = self._sampled_mask(k)
        if sampled is not None:
            valid &= sampled

        nlf = np.maximum(nl, 1.0)
        nrf = np.maximum(nr, 1.0)
        var_l = np.maximum(s2l / nlf - (sl / nlf) ** 2, 0.0)
        var_r = np.maximum(s2r / nrf - (sr / nrf) ** 2, 0.0)
        weighted = (nl * var_l + nr * var_r) / n_node[:, None]
        weighted[~valid] = np.inf

        best_pos = np.argmin(weighted, axis=1)
        ar = np.arange(k)
        best_w = weighted[ar, best_pos]
        impurity = np.fromiter((e[0].impurity for e in chunk), float, count=k)
        nl_best = nl[ar, best_pos].astype(np.int64)
        nr_best = n_node - nl_best
        p = self.params
        ok = (
            np.isfinite(best_w)
            & (best_w < impurity - _EPS)
            & (nl_best >= p.min_samples_leaf)
            & (nr_best >= p.min_samples_leaf)
        )

        f_best = np.searchsorted(self.offsets, best_pos, side="right") - 1
        b_best = best_pos - self.offsets[f_best]

        sl_best = sl[ar, best_pos]
        sr_best = sr[ar, best_pos]
        vl_best = var_l[ar, best_pos]
        vr_best = var_r[ar, best_pos]

        def left_stats(i: int):
            return float(sl_best[i] / nl_best[i]), float(vl_best[i])

        def right_stats(i: int):
            return float(sr_best[i] / nr_best[i]), float(vr_best[i])

        return ok, f_best, b_best, nl_best, left_stats, right_stats
